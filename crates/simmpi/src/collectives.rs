//! Cost models for MPI collective operations.
//!
//! Real MPI libraries pick algorithms by message size and communicator
//! shape; we model the common choices:
//!
//! * **Barrier / small allreduce / small bcast** — binomial or recursive
//!   doubling: `ceil(log2 p)` latency-dominated rounds.
//! * **Large allreduce** — Rabenseifner (reduce-scatter + allgather):
//!   `2·(p-1)/p · n` bytes on the wire per rank plus `2·log2 p` latencies.
//! * **Large bcast** — scatter + allgather (van de Geijn), similar shape.
//! * **Alltoall** — `p-1` pairwise exchanges of `n` bytes, derated by the
//!   topology's bisection factor (alltoall is the pattern that stresses it).
//!
//! All models are **hierarchical**: ranks on one node communicate through
//! shared memory first (reduce to a node leader), then leaders cross the
//! network, then results fan back out on-node. This is what MPICH/OpenMPI
//! actually do, and it is why fully-populated single-node runs in the paper
//! see almost no "network" cost.

use netsim::Network;

/// Which algorithm a collective cost model used (reported for ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveAlgorithm {
    /// Latency-optimal recursive doubling / binomial tree.
    RecursiveDoubling,
    /// Bandwidth-optimal ring / Rabenseifner.
    Ring,
}

impl CollectiveAlgorithm {
    /// Stable lowercase label, used as a metric-name suffix
    /// (e.g. `mpi.allreduce.alg.ring.calls`).
    pub fn name(self) -> &'static str {
        match self {
            CollectiveAlgorithm::RecursiveDoubling => "recursive_doubling",
            CollectiveAlgorithm::Ring => "ring",
        }
    }
}

/// Message size (bytes) above which bandwidth-optimal algorithms win.
pub const ALGORITHM_CUTOVER_BYTES: u64 = 16 * 1024;

/// The algorithm the allreduce/bcast models pick for a message of `bytes`
/// — the size-dependent selection rule made test-visible. The conformance
/// suite asserts the crossover is monotone (recursive doubling for every
/// size below the cutover, ring/Rabenseifner for every size at or above it,
/// with no interleaving) and the differential DES harness uses it to
/// simulate the same algorithm the closed form prices.
pub fn select_algorithm(bytes: u64) -> CollectiveAlgorithm {
    if bytes < ALGORITHM_CUTOVER_BYTES {
        CollectiveAlgorithm::RecursiveDoubling
    } else {
        CollectiveAlgorithm::Ring
    }
}

/// Shared-memory cost of reducing/gathering `bytes` across `local_ranks`
/// ranks on one node, microseconds. Tree depth log2, each step a shm copy.
pub(crate) fn shm_tree_time_us(net: &Network, local_ranks: u32, bytes: u64) -> f64 {
    if local_ranks <= 1 {
        return 0.0;
    }
    let rounds = 32 - (local_ranks - 1).leading_zeros(); // ceil(log2)
    f64::from(rounds) * net.flight_time_us(0, 0, bytes)
}

/// Representative inter-node flight time for the leaders of `nodes`,
/// microseconds: averages the distance from node 0 to the others so that
/// larger jobs on low-diameter topologies see realistic hop counts.
pub(crate) fn leader_flight_us(net: &Network, nodes: &[usize], bytes: u64) -> f64 {
    if nodes.len() <= 1 {
        return 0.0;
    }
    let from = nodes[0];
    let sum: f64 = nodes[1..]
        .iter()
        .map(|&n| net.flight_time_us(from, n, bytes))
        .sum();
    sum / (nodes.len() - 1) as f64
}

fn dedup_nodes(node_of_rank: &[usize]) -> Vec<usize> {
    let mut v = node_of_rank.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

fn max_ranks_per_node(node_of_rank: &[usize]) -> u32 {
    let mut counts = std::collections::HashMap::new();
    for &n in node_of_rank {
        *counts.entry(n).or_insert(0u32) += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}

/// Inter-node leg of an allreduce over one leader per node, priced with an
/// explicit algorithm. The public models call this through
/// [`select_algorithm`]; the conformance suite calls it directly to check
/// the crossover behaviour of each algorithm in isolation.
pub(crate) fn inter_allreduce_us(
    net: &Network,
    nodes: &[usize],
    bytes: u64,
    algo: CollectiveAlgorithm,
) -> f64 {
    if nodes.len() <= 1 {
        return 0.0;
    }
    let n = nodes.len() as u64;
    let rounds = (64 - (n - 1).leading_zeros()) as f64; // ceil(log2)
    match algo {
        // Recursive doubling: log2(n) full-size exchanges.
        CollectiveAlgorithm::RecursiveDoubling => rounds * leader_flight_us(net, nodes, bytes),
        // Rabenseifner: 2*(n-1)/n of the payload over the wire, plus
        // 2*log2(n) latency terms; derate by bisection for big jobs.
        CollectiveAlgorithm::Ring => {
            let eff_bw = net.global_traffic_bw_gbs() * 1e3; // bytes/us
            let wire = 2.0 * ((n - 1) as f64 / n as f64) * bytes as f64 / eff_bw;
            let lat = 2.0 * rounds * leader_flight_us(net, nodes, 0);
            wire + lat
        }
    }
}

/// Time for an `MPI_Allreduce` of `bytes` bytes per rank over the ranks whose
/// node placements are given by `node_of_rank`. Returns microseconds.
pub fn allreduce_time_us(net: &Network, node_of_rank: &[usize], bytes: u64) -> f64 {
    allreduce_time_with(net, node_of_rank, bytes, select_algorithm(bytes))
}

/// [`allreduce_time_us`] with the inter-node algorithm forced instead of
/// size-selected — the seam the algorithm-selection tests sweep to locate
/// the crossover point of each topology.
pub fn allreduce_time_with(
    net: &Network,
    node_of_rank: &[usize],
    bytes: u64,
    algo: CollectiveAlgorithm,
) -> f64 {
    let p = node_of_rank.len() as u32;
    if p <= 1 {
        return 0.0;
    }
    let nodes = dedup_nodes(node_of_rank);
    let local = max_ranks_per_node(node_of_rank);
    // Phase 1+3: on-node reduce then on-node bcast of the result.
    let shm = 2.0 * shm_tree_time_us(net, local, bytes);
    // Phase 2: leaders allreduce across nodes.
    shm + inter_allreduce_us(net, &nodes, bytes, algo)
}

/// Time for a **flat** (non-hierarchical) allreduce: every rank crosses the
/// network individually, with no on-node leader aggregation — what an MPI
/// library without shared-memory awareness would do. Per-node wire traffic
/// is multiplied by the ranks sharing the NIC. Exists as a test seam: the
/// conformance suite asserts the hierarchical model never beats this by
/// more than the intra-node aggregation can explain.
pub fn allreduce_time_flat_us(net: &Network, node_of_rank: &[usize], bytes: u64) -> f64 {
    let p = node_of_rank.len();
    if p <= 1 {
        return 0.0;
    }
    let rounds = (usize::BITS - (p - 1).leading_zeros()) as f64; // ceil(log2)
    let local = f64::from(max_ranks_per_node(node_of_rank));
    // Average flight from rank 0 to every other rank, shm or wire as placed.
    let avg_flight = |b: u64| -> f64 {
        let sum: f64 = node_of_rank[1..]
            .iter()
            .map(|&n| net.flight_time_us(node_of_rank[0], n, b))
            .sum();
        sum / (p - 1) as f64
    };
    if bytes < ALGORITHM_CUTOVER_BYTES {
        rounds * avg_flight(bytes)
    } else {
        let eff_bw = net.global_traffic_bw_gbs() * 1e3;
        let wire = local * 2.0 * ((p - 1) as f64 / p as f64) * bytes as f64 / eff_bw;
        wire + 2.0 * rounds * avg_flight(0)
    }
}

/// Time for an `MPI_Bcast` of `bytes` from rank 0, microseconds.
pub fn bcast_time_us(net: &Network, node_of_rank: &[usize], bytes: u64) -> f64 {
    let p = node_of_rank.len() as u32;
    if p <= 1 {
        return 0.0;
    }
    let nodes = dedup_nodes(node_of_rank);
    let local = max_ranks_per_node(node_of_rank);
    let shm = shm_tree_time_us(net, local, bytes);
    let inter = if nodes.len() > 1 {
        let n = nodes.len() as u64;
        let rounds = (64 - (n - 1).leading_zeros()) as f64;
        if bytes < ALGORITHM_CUTOVER_BYTES {
            rounds * leader_flight_us(net, &nodes, bytes)
        } else {
            let eff_bw = net.global_traffic_bw_gbs() * 1e3;
            let wire = 2.0 * ((n - 1) as f64 / n as f64) * bytes as f64 / eff_bw;
            wire + rounds * leader_flight_us(net, &nodes, 0)
        }
    } else {
        0.0
    };
    shm + inter
}

/// Time for an `MPI_Barrier`, microseconds: an allreduce of zero payload.
pub fn barrier_time_us(net: &Network, node_of_rank: &[usize]) -> f64 {
    allreduce_time_us(net, node_of_rank, 8)
}

/// Time for an `MPI_Allgather` where each rank contributes `bytes`,
/// microseconds. Ring algorithm: (p-1) steps each moving `bytes`.
pub fn allgather_time_us(net: &Network, node_of_rank: &[usize], bytes: u64) -> f64 {
    let p = node_of_rank.len();
    if p <= 1 {
        return 0.0;
    }
    let nodes = dedup_nodes(node_of_rank);
    if nodes.len() == 1 {
        return (p - 1) as f64 * net.flight_time_us(0, 0, bytes);
    }
    let eff_bw = net.global_traffic_bw_gbs() * 1e3;
    let wire = (p - 1) as f64 * bytes as f64 / eff_bw;
    let lat = (nodes.len() - 1) as f64 * leader_flight_us(net, &nodes, 0);
    wire + lat
}

/// Time for an `MPI_Alltoall` with `bytes` per (rank, rank) pair,
/// microseconds. This is the transpose pattern of parallel 3-D FFTs
/// (CASTEP); it stresses bisection bandwidth.
pub fn alltoall_time_us(net: &Network, node_of_rank: &[usize], bytes_per_pair: u64) -> f64 {
    let p = node_of_rank.len();
    if p <= 1 {
        return 0.0;
    }
    let nodes = dedup_nodes(node_of_rank);
    let total_out = (p - 1) as u64 * bytes_per_pair;
    if nodes.len() == 1 {
        // Pure shared-memory alltoall: each rank copies (p-1) blocks.
        return net.flight_time_us(0, 0, total_out) + (p - 2) as f64 * 0.2;
    }
    // Off-node fraction of each rank's traffic crosses the bisection.
    let local = max_ranks_per_node(node_of_rank) as f64;
    let off_frac = 1.0 - (local - 1.0) / (p - 1) as f64;
    let eff_bw = net.global_traffic_bw_gbs() * 1e3;
    let wire = off_frac * total_out as f64 / eff_bw * (local).max(1.0);
    let lat = (nodes.len() - 1) as f64 * leader_flight_us(net, &nodes, 0) / nodes.len() as f64;
    let shm = net.flight_time_us(0, 0, (total_out as f64 * (1.0 - off_frac)) as u64);
    wire + lat + shm
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::InterconnectKind;

    fn net(nodes: usize) -> Network {
        Network::new(InterconnectKind::EdrInfiniband, nodes.max(1))
    }

    fn placement(nodes: usize, rpn: usize) -> Vec<usize> {
        (0..nodes * rpn).map(|r| r / rpn).collect()
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let n = net(1);
        assert_eq!(allreduce_time_us(&n, &[0], 1024), 0.0);
        assert_eq!(bcast_time_us(&n, &[0], 1024), 0.0);
        assert_eq!(alltoall_time_us(&n, &[0], 1024), 0.0);
    }

    #[test]
    fn allreduce_grows_with_ranks_and_bytes() {
        let n = net(16);
        let t2 = allreduce_time_us(&n, &placement(2, 1), 8);
        let t16 = allreduce_time_us(&n, &placement(16, 1), 8);
        assert!(t16 > t2);
        let small = allreduce_time_us(&n, &placement(8, 1), 8);
        let big = allreduce_time_us(&n, &placement(8, 1), 1 << 20);
        assert!(big > small);
    }

    #[test]
    fn single_node_allreduce_avoids_the_wire() {
        let n = net(16);
        let on_node = allreduce_time_us(&n, &placement(1, 48), 8);
        let across = allreduce_time_us(&n, &placement(48, 1), 8);
        assert!(
            on_node < across,
            "48 ranks on one node ({on_node} us) should beat 48 nodes ({across} us)"
        );
    }

    #[test]
    fn allreduce_log_scaling_for_small_messages() {
        let n = net(64);
        let t4 = allreduce_time_us(&n, &placement(4, 1), 8);
        let t64 = allreduce_time_us(&n, &placement(64, 1), 8);
        // log2(64)/log2(4) = 3: latency-bound allreduce grows ~log p, not p.
        assert!(t64 < 6.0 * t4, "t64={t64} t4={t4}");
        assert!(t64 > t4);
    }

    #[test]
    fn large_allreduce_uses_bandwidth_term() {
        let n = net(8);
        let bytes = 64u64 << 20;
        let t = allreduce_time_us(&n, &placement(8, 1), bytes);
        let min_wire = 2.0 * (7.0 / 8.0) * bytes as f64 / (n.global_traffic_bw_gbs() * 1e3);
        assert!(t >= min_wire);
        assert!(t < 4.0 * min_wire);
    }

    #[test]
    fn barrier_cheaper_than_payload_allreduce() {
        let n = net(8);
        let b = barrier_time_us(&n, &placement(8, 4));
        let a = allreduce_time_us(&n, &placement(8, 4), 1 << 20);
        assert!(b < a);
    }

    #[test]
    fn alltoall_dominates_allgather_per_rank() {
        let n = net(8);
        let p = placement(8, 4);
        let a2a = alltoall_time_us(&n, &p, 64 * 1024);
        let ag = allgather_time_us(&n, &p, 64 * 1024);
        assert!(
            a2a > ag,
            "alltoall moves p x the data of allgather: {a2a} vs {ag}"
        );
    }

    #[test]
    fn algorithm_selection_crossover_is_monotone() {
        // Sweeping message sizes across the cutover, the winning algorithm
        // may switch at most once, and only from latency-optimal recursive
        // doubling to bandwidth-optimal ring — no algorithm wins, loses,
        // then wins again as the message grows.
        use archsim::InterconnectKind::*;
        for kind in [TofuD, Aries, FdrInfiniband, EdrInfiniband, OmniPath] {
            let n = Network::new(kind, 16);
            let p = placement(16, 1);
            let mut winners = Vec::new();
            let mut bytes = 64u64;
            while bytes <= 64 << 20 {
                let rd = allreduce_time_with(&n, &p, bytes, CollectiveAlgorithm::RecursiveDoubling);
                let ring = allreduce_time_with(&n, &p, bytes, CollectiveAlgorithm::Ring);
                winners.push(if rd <= ring {
                    CollectiveAlgorithm::RecursiveDoubling
                } else {
                    CollectiveAlgorithm::Ring
                });
                bytes *= 2;
            }
            let switches = winners.windows(2).filter(|w| w[0] != w[1]).count();
            assert!(switches <= 1, "{kind:?}: winner flip-flops: {winners:?}");
            if switches == 1 {
                assert_eq!(
                    winners[0],
                    CollectiveAlgorithm::RecursiveDoubling,
                    "{kind:?}: the small-message winner must be latency-optimal"
                );
                assert_eq!(
                    *winners.last().unwrap(),
                    CollectiveAlgorithm::Ring,
                    "{kind:?}"
                );
            }
            // The size-based selection rule is itself monotone.
            assert_eq!(
                select_algorithm(ALGORITHM_CUTOVER_BYTES - 1),
                CollectiveAlgorithm::RecursiveDoubling
            );
            assert_eq!(
                select_algorithm(ALGORITHM_CUTOVER_BYTES),
                CollectiveAlgorithm::Ring
            );
        }
    }

    #[test]
    fn hierarchy_never_beats_flat_beyond_intra_node_speedup() {
        // The hierarchical decomposition's advantage comes from replacing
        // per-rank wire crossings with on-node aggregation, so its speedup
        // over the flat model is bounded by the aggregation opportunity:
        // the ranks sharing a node (bandwidth regime) or the round-count
        // ratio log2(p)/log2(n) (latency regime).
        let n = net(8);
        for rpn in [2usize, 8, 48] {
            let p = placement(8, rpn);
            let nodes = 8.0f64;
            let ranks = (8 * rpn) as f64;
            let bound = (rpn as f64).max(ranks.log2().ceil() / nodes.log2().ceil());
            for bytes in [8u64, 4 * 1024, 1 << 20, 32 << 20] {
                let hier = allreduce_time_us(&n, &p, bytes);
                let flat = allreduce_time_flat_us(&n, &p, bytes);
                assert!(
                    flat <= bound * hier * (1.0 + 1e-9),
                    "rpn={rpn} bytes={bytes}: flat {flat:.2}us vs hier {hier:.2}us \
                     exceeds speedup bound {bound:.2}"
                );
            }
        }
    }

    #[test]
    fn hierarchical_beats_flat_for_dense_nodes() {
        let n = net(4);
        // 4 nodes x 48 ranks: the hierarchical model should cost far less
        // than 192 ranks all crossing the wire individually would.
        let t = allreduce_time_us(&n, &placement(4, 48), 8);
        let flat_lower_bound = 8.0 * n.flight_time_us(0, 1, 8);
        assert!(t < flat_lower_bound);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use archsim::InterconnectKind;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn collective_times_nonnegative_and_monotone_in_bytes(
            nodes in 1usize..16,
            rpn in 1usize..8,
            b1 in 0u64..1_000_000,
            b2 in 0u64..1_000_000,
        ) {
            let net = Network::new(InterconnectKind::TofuD, nodes.max(1));
            let placement: Vec<usize> = (0..nodes * rpn).map(|r| r / rpn).collect();
            let (lo, hi) = (b1.min(b2), b1.max(b2));
            for f in [allreduce_time_us, bcast_time_us, allgather_time_us, alltoall_time_us] {
                let t_lo = f(&net, &placement, lo);
                let t_hi = f(&net, &placement, hi);
                prop_assert!(t_lo >= 0.0);
                prop_assert!(t_hi + 1e-9 >= t_lo, "not monotone: {} vs {}", t_lo, t_hi);
            }
        }

        #[test]
        fn more_nodes_never_cheaper_small_allreduce(nodes in 2usize..32) {
            let net = Network::new(InterconnectKind::Aries, 32);
            let p_small: Vec<usize> = (0..nodes - 1).collect();
            let p_big: Vec<usize> = (0..nodes).collect();
            prop_assert!(
                allreduce_time_us(&net, &p_big, 8) + 1e-9 >= allreduce_time_us(&net, &p_small, 8)
            );
        }
    }
}
