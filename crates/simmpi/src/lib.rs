//! # simmpi — a simulated MPI layer
//!
//! The paper's benchmarks are MPI (and MPI+OpenMP) codes. This crate
//! simulates an MPI job on a modelled system: every rank carries a virtual
//! clock; point-to-point messages and collectives advance those clocks using
//! the `netsim` network (topology hops, link bandwidth, NIC contention) and a
//! shared-memory path for ranks on the same node.
//!
//! The pieces:
//!
//! * [`placement`] — how ranks and OpenMP threads are laid out over nodes,
//!   sockets/CMGs and cores. The paper's Figure 1 is entirely about this.
//! * [`world`] — the simulated communicator: per-rank clocks, `compute`,
//!   point-to-point exchange, and collectives.
//! * [`collectives`] — cost models for barrier/bcast/reduce/allreduce/
//!   allgather/alltoall with hierarchical (intra-node + inter-node)
//!   decomposition and size-dependent algorithm selection, mirroring real
//!   MPI implementations.
//! * [`desval`] — message-level discrete-event simulations of the same
//!   collectives, used to validate the analytic models.
//! * [`collcache`] — process-wide hit/miss counters for the per-`World`
//!   collective-time memo tables.

#![warn(missing_docs)]

pub mod collcache;
pub mod collectives;
pub mod desval;
pub mod placement;
pub mod world;

pub use collectives::{allreduce_time_us, alltoall_time_us, bcast_time_us, CollectiveAlgorithm};
pub use placement::{Placement, PlacementPolicy};
pub use world::World;
