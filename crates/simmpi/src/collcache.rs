//! Process-global counters for the per-[`World`](crate::World)
//! collective-time cache.
//!
//! Every `World` memoizes its closed-form collective durations per
//! `(op, bytes)` tuple (the closed forms depend only on the network and
//! the live node map, both fixed between ULFM shrinks). These counters
//! aggregate hits and misses across *all* worlds in the process so
//! tooling (`bench_json`, `BENCH_repro.json`) can show the cache
//! working without touching the `obs` recorder — collective pricing
//! happens inside recorded regions whose metric snapshots are pinned as
//! byte-exact goldens, so it must not grow new ambient counters.
//!
//! The counters are monotonic, relaxed atomics: cheap on the hot path,
//! and purely observational (they never feed back into pricing).

use std::sync::atomic::{AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide collective-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollCacheStats {
    /// Collective calls answered from a `World`'s memo table.
    pub hits: u64,
    /// Collective calls that ran the closed-form model (and populated
    /// the memo table).
    pub misses: u64,
    /// Entries evicted under the per-`World` capacity bound
    /// (`World::set_coll_cache_cap`). Bit-transparent: a re-computed
    /// entry is the identical `f64`.
    pub evictions: u64,
}

pub(crate) fn record_hit() {
    HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_miss() {
    MISSES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_eviction() {
    EVICTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Current process-wide hit/miss/eviction totals.
pub fn stats() -> CollCacheStats {
    CollCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
    }
}

/// Reset the counters to zero (benchmark harnesses measuring one
/// region). Racy counts from concurrently-running worlds land in
/// whichever window observes them; the counters are diagnostics, not
/// part of any priced result.
pub fn reset() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    EVICTIONS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        // Other tests may run worlds concurrently, so assert deltas via
        // monotonicity rather than absolute values.
        let before = stats();
        record_miss();
        record_hit();
        record_hit();
        let after = stats();
        assert!(after.hits >= before.hits + 2);
        assert!(after.misses > before.misses);
        reset();
        // After a reset the totals restart from (approximately) zero;
        // only our own contribution is guaranteed visible.
        record_hit();
        assert!(stats().hits >= 1);
    }
}
