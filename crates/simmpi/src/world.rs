//! The simulated MPI world: per-rank virtual clocks driven by compute and
//! communication events.
//!
//! Applications describe their execution as a sequence of steps — compute
//! phases (whose duration the caller obtains from the roofline cost model),
//! point-to-point exchanges (halo patterns), and collectives. `World`
//! advances each rank's clock accordingly; the job's runtime is the maximum
//! clock at the end. Load imbalance (e.g. COSA's uneven block distribution)
//! appears naturally: ranks with more work arrive late at the next
//! collective and everyone else waits.

use std::collections::HashMap;

use archsim::Node;
use faultsim::{FaultSchedule, LinkFaults, RetryPolicy};
use netsim::Network;

use crate::collcache;
use crate::collectives;
use crate::placement::Placement;

/// Cache keys for the collective memo table: one code per collective op,
/// so e.g. an 8-byte allreduce and the barrier (internally an 8-byte
/// allreduce) keep distinct entries.
const OP_ALLREDUCE: u8 = 0;
const OP_BCAST: u8 = 1;
const OP_BARRIER: u8 = 2;
const OP_ALLGATHER: u8 = 3;
const OP_ALLTOALL: u8 = 4;

/// World-level fault state: what an installed [`FaultSchedule`] means for
/// this job's ranks and nodes. Held separately from the schedule so the
/// fault-free path pays nothing.
struct WorldFaults {
    /// Per-rank compute-time multiplier (straggler jitter), `>= 1`.
    straggler_mult: Vec<f64>,
    /// Per-node crash instant, µs (`None` = the node survives).
    crash_us: Vec<Option<f64>>,
    /// Per-node memory-bandwidth factor (memory-pressure derate), `<= 1`.
    mem_derate: Vec<f64>,
}

/// A simulated MPI job: a network, a placement and one clock per rank.
pub struct World {
    net: Network,
    placement: Placement,
    clock_us: Vec<f64>,
    node_map: Vec<usize>,
    /// Per-rank cumulative time spent waiting (skew absorbed at sync points).
    wait_us: Vec<f64>,
    /// Per-rank cumulative compute time.
    compute_us: Vec<f64>,
    /// Per-rank liveness (ULFM shrink). All-true until a crash is absorbed.
    alive: Vec<bool>,
    /// Installed fault state; `None` is the exact pre-fault code path.
    faults: Option<WorldFaults>,
    /// Completed shrink-and-recover operations.
    recoveries: u32,
    /// Memoized closed-form collective durations, keyed `(op, bytes)`;
    /// each entry carries its last-use tick for LRU eviction. The closed
    /// forms depend only on the network and the live node map, so
    /// entries stay valid until [`World::shrink_failed`] changes the
    /// live set (which clears the table).
    coll_cache: HashMap<(u8, u64), (f64, u64)>,
    /// Logical clock for `coll_cache` last-use stamps.
    coll_tick: u64,
    /// Entry-count bound on `coll_cache` (see
    /// [`World::set_coll_cache_cap`]). Eviction is bit-transparent: a
    /// re-computed entry is the identical `f64`.
    coll_cache_cap: usize,
}

/// Default `coll_cache` entry bound. The paper's workloads memoize tens
/// of distinct `(op, bytes)` tuples per world, so 4096 is pure insurance
/// against adversarial byte distributions (e.g. a sweep feeding a fresh
/// message size every call) growing a long-lived world without limit.
pub const DEFAULT_COLL_CACHE_CAP: usize = 4096;

impl World {
    /// Create a world for `placement` on `net`. The network must span at
    /// least `placement.nodes_used()` nodes.
    pub fn new(net: Network, placement: Placement) -> Self {
        assert!(
            net.topology().num_nodes() >= placement.nodes_used() as usize,
            "network smaller than the job: {} nodes < {}",
            net.topology().num_nodes(),
            placement.nodes_used()
        );
        let n = placement.ranks() as usize;
        let node_map = placement.node_map();
        World {
            net,
            placement,
            clock_us: vec![0.0; n],
            node_map,
            wait_us: vec![0.0; n],
            compute_us: vec![0.0; n],
            alive: vec![true; n],
            faults: None,
            recoveries: 0,
            coll_cache: HashMap::new(),
            coll_tick: 0,
            coll_cache_cap: DEFAULT_COLL_CACHE_CAP,
        }
    }

    /// Bound the collective-time memo table to `cap` entries (at least
    /// 1); at the bound, the least-recently-used entry is evicted.
    /// Eviction is bit-transparent — re-computing an evicted entry
    /// returns the identical `f64` — so this only trades wall-clock time
    /// for memory.
    pub fn set_coll_cache_cap(&mut self, cap: usize) {
        self.coll_cache_cap = cap.max(1);
        while self.coll_cache.len() > self.coll_cache_cap {
            self.evict_coll_lru();
        }
    }

    /// Evict the least-recently-used `coll_cache` entry.
    fn evict_coll_lru(&mut self) {
        if let Some(key) = self
            .coll_cache
            .iter()
            .min_by_key(|(_, &(_, tick))| tick)
            .map(|(&k, _)| k)
        {
            self.coll_cache.remove(&key);
            collcache::record_eviction();
        }
    }

    /// Install a fault schedule: straggler multipliers stretch this
    /// world's compute phases, node crash times feed
    /// [`World::poll_failed`], memory derates shrink
    /// [`World::rank_bw_share_gbs`], and the schedule's message-drop /
    /// link-degradation state is installed into the network under `retry`.
    ///
    /// Installing an *empty* schedule (e.g. [`FaultSchedule::none`]) is
    /// bit-identical to never calling this at all — the fault layer is
    /// strictly additive.
    ///
    /// # Panics
    /// Panics if the schedule was generated for a different rank count or
    /// for fewer nodes than the placement uses.
    pub fn install_faults(&mut self, sched: &FaultSchedule, retry: RetryPolicy) {
        assert_eq!(
            sched.nranks,
            self.placement.ranks(),
            "schedule keyed to a different rank count"
        );
        assert!(
            sched.nodes >= self.placement.nodes_used() as usize,
            "schedule spans fewer nodes than the job"
        );
        self.faults = Some(WorldFaults {
            straggler_mult: sched.straggler_mult.clone(),
            crash_us: sched.crash_times_us(),
            mem_derate: sched.mem_derate.clone(),
        });
        self.net.set_faults(LinkFaults::new(sched.clone(), retry));
    }

    /// Whether `rank` is still a member of the (possibly shrunk) job.
    pub fn is_alive(&self, rank: u32) -> bool {
        self.alive[rank as usize]
    }

    /// Ranks still alive.
    pub fn alive_ranks(&self) -> u32 {
        self.alive.iter().filter(|&&a| a).count() as u32
    }

    /// Completed shrink-and-recover operations.
    pub fn recoveries(&self) -> u32 {
        self.recoveries
    }

    /// Fault notification (the ULFM `MPI_Comm_failure_ack` analogue):
    /// ranks whose node has crashed at or before their current clock and
    /// that have not yet been shrunk away. Empty when no faults are
    /// installed or nothing has failed yet.
    pub fn poll_failed(&self) -> Vec<u32> {
        let Some(f) = &self.faults else {
            return Vec::new();
        };
        (0..self.clock_us.len() as u32)
            .filter(|&r| {
                self.alive[r as usize]
                    && f.crash_us[self.node_map[r as usize]]
                        .is_some_and(|t| t <= self.clock_us[r as usize])
            })
            .collect()
    }

    /// ULFM-style shrink-and-recover: every currently-failed rank leaves
    /// the job (its clock freezes at the crash instant), and the survivors
    /// run an agreement + rebuild round (two barriers over the shrunk
    /// communicator — revoke propagation, then the new communicator's
    /// first synchronisation). Returns the ranks that were removed.
    pub fn shrink_failed(&mut self) -> Vec<u32> {
        let failed = self.poll_failed();
        if failed.is_empty() {
            return failed;
        }
        let f = self.faults.as_ref().expect("poll_failed found faults");
        for &r in &failed {
            self.alive[r as usize] = false;
            // The rank stopped at the crash, not at wherever its virtual
            // clock had speculatively advanced to.
            if let Some(t) = f.crash_us[self.node_map[r as usize]] {
                self.clock_us[r as usize] = self.clock_us[r as usize].min(t);
            }
        }
        self.recoveries += 1;
        if obs::enabled() {
            obs::add("mpi.shrink.ops", 1);
            obs::add("mpi.shrink.ranks_removed", failed.len() as u64);
            for &r in &failed {
                obs::instant(
                    "fault",
                    "fault.crash",
                    self.clock_us[r as usize],
                    &[
                        ("rank", obs::AttrValue::U64(u64::from(r))),
                        (
                            "node",
                            obs::AttrValue::U64(self.node_map[r as usize] as u64),
                        ),
                    ],
                );
            }
        }
        // The live set just changed, so every memoized collective time
        // is stale — including the two rebuild barriers below, which
        // must be priced over the shrunk communicator.
        self.coll_cache.clear();
        // Agreement + communicator rebuild among the survivors.
        self.barrier();
        self.barrier();
        failed
    }

    /// Convenience: build the network for a system's interconnect and wrap it.
    pub fn for_system(spec: &archsim::SystemSpec, placement: Placement) -> Self {
        let net = Network::new(spec.interconnect, placement.nodes_used() as usize);
        World::new(net, placement)
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.placement.ranks()
    }

    /// The placement in use.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The network in use.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Current virtual time of `rank`, microseconds.
    pub fn now_us(&self, rank: u32) -> f64 {
        self.clock_us[rank as usize]
    }

    /// Advance `rank`'s clock by a compute phase of `us` microseconds.
    /// Under an installed fault schedule the duration is stretched by the
    /// rank's straggler multiplier; ranks shrunk away by
    /// [`World::shrink_failed`] no longer advance.
    pub fn compute(&mut self, rank: u32, us: f64) {
        assert!(
            us >= 0.0 && !us.is_nan(),
            "compute time must be non-negative"
        );
        let r = rank as usize;
        if !self.alive[r] {
            return;
        }
        // `m == 1.0` makes this an exact identity, so an empty schedule
        // prices bit-identically to no schedule at all.
        let us = match &self.faults {
            Some(f) => us * f.straggler_mult[r],
            None => us,
        };
        self.clock_us[r] += us;
        self.compute_us[r] += us;
    }

    /// Advance every rank by a per-rank compute duration (slice of length
    /// `ranks()`), the common SPMD pattern.
    pub fn compute_all(&mut self, us_per_rank: &[f64]) {
        assert_eq!(us_per_rank.len(), self.clock_us.len());
        for (r, &us) in us_per_rank.iter().enumerate() {
            self.compute(r as u32, us);
        }
    }

    /// Advance every rank by the same compute duration.
    pub fn compute_uniform(&mut self, us: f64) {
        for r in 0..self.clock_us.len() {
            self.compute(r as u32, us);
        }
    }

    /// Perform a set of point-to-point exchanges: `(src, dst, bytes)`
    /// triples, all logically concurrent (posted at each sender's current
    /// time). Receivers' clocks advance to the arrival of their last
    /// message; senders pay a small software overhead per message.
    pub fn exchange(&mut self, msgs: &[(u32, u32, u64)]) {
        const SEND_OVERHEAD_US: f64 = 0.2;
        let mut arrivals: Vec<f64> = self.clock_us.clone();
        for &(src, dst, bytes) in msgs {
            let s = src as usize;
            let d = dst as usize;
            // A message to or from a shrunk-away rank is never posted, so
            // it also never touches the network's retry stream.
            if !self.alive[s] || !self.alive[d] {
                continue;
            }
            let done =
                self.net
                    .transfer(self.node_map[s], self.node_map[d], bytes, self.clock_us[s]);
            self.clock_us[s] += SEND_OVERHEAD_US;
            arrivals[d] = arrivals[d].max(done);
            if obs::enabled() {
                obs::add("mpi.p2p.msgs", 1);
                obs::add("mpi.p2p.bytes", bytes);
            }
        }
        for (r, &arr) in arrivals.iter().enumerate() {
            if arr > self.clock_us[r] {
                self.wait_us[r] += arr - self.clock_us[r];
                self.clock_us[r] = arr;
            }
        }
    }

    /// A symmetric halo exchange: every `(a, b, bytes)` pair exchanges
    /// `bytes` in both directions.
    pub fn halo_exchange(&mut self, pairs: &[(u32, u32, u64)]) {
        let mut msgs = Vec::with_capacity(pairs.len() * 2);
        for &(a, b, bytes) in pairs {
            msgs.push((a, b, bytes));
            msgs.push((b, a, bytes));
        }
        self.exchange(&msgs);
    }

    fn synchronise(&mut self) -> f64 {
        let t = self
            .clock_us
            .iter()
            .zip(&self.alive)
            .filter_map(|(&c, &a)| a.then_some(c))
            .fold(0.0, f64::max);
        let trace = obs::enabled();
        for (r, c) in self.clock_us.iter_mut().enumerate() {
            if !self.alive[r] {
                continue;
            }
            self.wait_us[r] += t - *c;
            if trace {
                // Rendezvous skew absorbed at this sync point, per rank
                // (the latest rank contributes a 0-wait observation).
                obs::observe("mpi.sync_wait_us", t - *c);
            }
            *c = t;
        }
        t
    }

    /// Record one collective into the ambient recorder: an `mpi.<op>` span
    /// over the synchronised interval plus call/byte counters, split per
    /// selected algorithm when the op is size-switched. `pre0_us` is rank
    /// 0's clock before the rendezvous; the span carries the implied wait
    /// (`wait0_us`) so attribution can split phase time into network wait
    /// vs. the operation proper.
    fn record_collective(
        &self,
        op: &str,
        bytes: Option<u64>,
        pre0_us: f64,
        start_us: f64,
        dur_us: f64,
    ) {
        if !obs::enabled() {
            return;
        }
        let name = format!("mpi.{op}");
        obs::add(&format!("{name}.calls"), 1);
        let wait0 = if self.alive.first().copied().unwrap_or(false) {
            start_us - pre0_us
        } else {
            0.0
        };
        let mut attrs: Vec<(&str, obs::AttrValue)> = vec![
            ("ranks", obs::AttrValue::U64(u64::from(self.alive_ranks()))),
            ("wait0_us", obs::AttrValue::F64(wait0)),
        ];
        if let Some(b) = bytes {
            obs::add(&format!("{name}.bytes"), b);
            attrs.push(("bytes", obs::AttrValue::U64(b)));
        }
        // allreduce/bcast pick their algorithm by message size; count the
        // calls each algorithm actually serves (ablation evidence).
        if matches!(op, "allreduce" | "bcast") {
            if let Some(b) = bytes {
                let alg = collectives::select_algorithm(b).name();
                obs::add(&format!("{name}.alg.{alg}.calls"), 1);
                attrs.push(("alg", obs::AttrValue::Str(alg)));
            }
        }
        obs::span("mpi", &name, start_us, dur_us, &attrs);
    }

    /// The node map restricted to live ranks — what the collectives see.
    /// Borrows the original map while everyone is alive so the fault-free
    /// path allocates nothing and prices identically.
    fn live_node_map(&self) -> std::borrow::Cow<'_, [usize]> {
        if self.alive.iter().all(|&a| a) {
            std::borrow::Cow::Borrowed(&self.node_map)
        } else {
            std::borrow::Cow::Owned(
                self.node_map
                    .iter()
                    .zip(&self.alive)
                    .filter_map(|(&n, &a)| a.then_some(n))
                    .collect(),
            )
        }
    }

    /// Memoized closed-form collective duration. The closed forms are
    /// pure in (network, live node map, bytes); the network is fixed for
    /// the world's lifetime (faults act on point-to-point delivery and
    /// compute, never on these forms) and the live map only changes in
    /// [`World::shrink_failed`], which clears the table. A hit returns
    /// the exact `f64` a fresh evaluation would produce, so cached runs
    /// are bit-identical — they merely skip the per-call node-map
    /// dedup/sort inside the models.
    fn collective_time(
        &mut self,
        op: u8,
        bytes: u64,
        f: fn(&Network, &[usize], u64) -> f64,
    ) -> f64 {
        self.coll_tick += 1;
        let tick = self.coll_tick;
        if let Some(entry) = self.coll_cache.get_mut(&(op, bytes)) {
            entry.1 = tick;
            collcache::record_hit();
            return entry.0;
        }
        let t = f(&self.net, &self.live_node_map(), bytes);
        collcache::record_miss();
        while self.coll_cache.len() >= self.coll_cache_cap {
            self.evict_coll_lru();
        }
        self.coll_cache.insert((op, bytes), (t, tick));
        t
    }

    /// `MPI_Allreduce` of `bytes` per rank across all ranks.
    pub fn allreduce(&mut self, bytes: u64) {
        let pre0 = self.clock_us[0];
        let start = self.synchronise();
        let t = self.collective_time(OP_ALLREDUCE, bytes, collectives::allreduce_time_us);
        self.record_collective("allreduce", Some(bytes), pre0, start, t);
        self.set_all(start + t);
    }

    /// `MPI_Bcast` of `bytes` from rank 0.
    pub fn bcast(&mut self, bytes: u64) {
        let pre0 = self.clock_us[0];
        let start = self.synchronise();
        let t = self.collective_time(OP_BCAST, bytes, collectives::bcast_time_us);
        self.record_collective("bcast", Some(bytes), pre0, start, t);
        self.set_all(start + t);
    }

    /// `MPI_Barrier`.
    pub fn barrier(&mut self) {
        let pre0 = self.clock_us[0];
        let start = self.synchronise();
        let t = self.collective_time(OP_BARRIER, 0, |net, map, _| {
            collectives::barrier_time_us(net, map)
        });
        self.record_collective("barrier", None, pre0, start, t);
        self.set_all(start + t);
    }

    /// `MPI_Allgather`, `bytes` contributed per rank.
    pub fn allgather(&mut self, bytes: u64) {
        let pre0 = self.clock_us[0];
        let start = self.synchronise();
        let t = self.collective_time(OP_ALLGATHER, bytes, collectives::allgather_time_us);
        self.record_collective("allgather", Some(bytes), pre0, start, t);
        self.set_all(start + t);
    }

    /// `MPI_Alltoall`, `bytes` per (src, dst) pair.
    pub fn alltoall(&mut self, bytes_per_pair: u64) {
        let pre0 = self.clock_us[0];
        let start = self.synchronise();
        let t = self.collective_time(OP_ALLTOALL, bytes_per_pair, collectives::alltoall_time_us);
        self.record_collective("alltoall", Some(bytes_per_pair), pre0, start, t);
        self.set_all(start + t);
    }

    fn set_all(&mut self, t: f64) {
        for (c, &a) in self.clock_us.iter_mut().zip(&self.alive) {
            if a {
                *c = t;
            }
        }
    }

    /// Elapsed job time so far: the maximum live-rank clock, microseconds.
    /// Shrunk-away ranks froze at their crash and do not define the end of
    /// the job — unless *every* rank is dead, in which case the job ended
    /// at the last crash.
    pub fn elapsed_us(&self) -> f64 {
        let live = self
            .clock_us
            .iter()
            .zip(&self.alive)
            .filter_map(|(&c, &a)| a.then_some(c))
            .fold(f64::NEG_INFINITY, f64::max);
        if live.is_finite() {
            live.max(0.0)
        } else {
            self.clock_us.iter().copied().fold(0.0, f64::max)
        }
    }

    /// Elapsed job time in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_us() / 1e6
    }

    /// Total wait (load-imbalance + communication skew) time of `rank`.
    pub fn wait_us(&self, rank: u32) -> f64 {
        self.wait_us[rank as usize]
    }

    /// Total compute time of `rank`.
    pub fn compute_us(&self, rank: u32) -> f64 {
        self.compute_us[rank as usize]
    }

    /// Aggregate parallel efficiency estimate: mean compute / elapsed.
    pub fn compute_efficiency(&self) -> f64 {
        let e = self.elapsed_us();
        if e == 0.0 {
            return 1.0;
        }
        let mean: f64 = self.compute_us.iter().sum::<f64>() / self.compute_us.len() as f64;
        mean / e
    }

    /// Bandwidth share (GB/s) available to `rank` for streaming memory
    /// traffic, given the node layout: the domain's sustained bandwidth
    /// divided by the ranks sharing that domain, derated if too few cores
    /// are active to saturate the domain.
    pub fn rank_bw_share_gbs(&self, rank: u32, node: &Node, saturation_cores: u32) -> f64 {
        let dom = self.placement.domain_of(rank);
        let active = self.placement.cores_active_in_domain(rank);
        let domain_bw = node
            .memory
            .domain_bw_for_cores(dom, active, saturation_cores);
        let share = domain_bw / f64::from(self.placement.ranks_in_domain(rank));
        // Derate of exactly 1.0 is an exact identity (fault-off parity).
        match &self.faults {
            Some(f) => share * f.mem_derate[self.node_map[rank as usize]],
            None => share,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{Placement, PlacementPolicy};
    use archsim::{system, InterconnectKind, SystemId};

    fn world(nodes: u32, rpn: u32) -> World {
        let node = system(SystemId::A64fx).node;
        let p = Placement::new(
            nodes * rpn,
            rpn,
            1,
            &node,
            PlacementPolicy::RoundRobinDomain,
        )
        .unwrap();
        let net = Network::new(InterconnectKind::TofuD, nodes as usize);
        World::new(net, p)
    }

    #[test]
    fn capped_coll_cache_evicts_lru_and_stays_bit_identical() {
        // An unbounded world and one capped to 2 entries run the same
        // collective sequence (5 distinct sizes, interleaved revisits —
        // guaranteed thrashing); every clock must match exactly.
        let mut free = world(2, 4);
        let mut capped = world(2, 4);
        capped.set_coll_cache_cap(2);
        let before = collcache::stats();
        let sizes = [8u64, 64, 512, 4096, 32768];
        for round in 0..3 {
            for (i, &b) in sizes.iter().enumerate() {
                if (round + i) % 2 == 0 {
                    free.allreduce(b);
                    capped.allreduce(b);
                } else {
                    free.allgather(b);
                    capped.allgather(b);
                }
            }
        }
        let after = collcache::stats();
        assert!(
            after.evictions > before.evictions,
            "5 distinct sizes against a cap of 2 must evict"
        );
        assert!(capped.coll_cache.len() <= 2);
        for r in 0..free.ranks() {
            assert_eq!(
                free.now_us(r),
                capped.now_us(r),
                "eviction must be bit-transparent (rank {r})"
            );
        }
    }

    #[test]
    fn shrinking_the_cap_evicts_down_immediately() {
        let mut w = world(1, 4);
        for b in [8u64, 16, 32, 64] {
            w.allreduce(b);
        }
        assert_eq!(w.coll_cache.len(), 4);
        w.set_coll_cache_cap(1);
        assert_eq!(w.coll_cache.len(), 1);
        // The survivor is the most recently used (64-byte) entry.
        let before = collcache::stats();
        w.allreduce(64);
        let after = collcache::stats();
        assert_eq!(after.hits, before.hits + 1, "MRU entry must survive");
    }

    #[test]
    fn compute_advances_only_that_rank() {
        let mut w = world(1, 4);
        w.compute(2, 100.0);
        assert_eq!(w.now_us(2), 100.0);
        assert_eq!(w.now_us(0), 0.0);
        assert_eq!(w.elapsed_us(), 100.0);
    }

    #[test]
    fn allreduce_synchronises_stragglers() {
        let mut w = world(2, 4);
        w.compute(0, 1000.0); // rank 0 is the straggler
        w.allreduce(8);
        let t = w.now_us(0);
        for r in 0..w.ranks() {
            assert_eq!(w.now_us(r), t, "all ranks aligned after allreduce");
        }
        assert!(t > 1000.0);
        // Rank 1 waited at least the straggler's lead.
        assert!(w.wait_us(1) >= 1000.0);
    }

    #[test]
    fn exchange_delays_receiver_not_sender() {
        let mut w = world(2, 1);
        w.exchange(&[(0, 1, 1 << 20)]);
        assert!(w.now_us(1) > w.now_us(0));
        assert!(w.now_us(0) < 1.0, "sender only pays overhead");
    }

    #[test]
    fn halo_exchange_is_symmetric() {
        let mut w = world(2, 1);
        w.halo_exchange(&[(0, 1, 64 * 1024)]);
        assert!((w.now_us(0) - w.now_us(1)).abs() < 1e-6);
    }

    #[test]
    fn imbalance_lowers_compute_efficiency() {
        let mut balanced = world(2, 4);
        balanced.compute_uniform(1000.0);
        balanced.barrier();
        let mut skewed = world(2, 4);
        let mut us = vec![500.0; 8];
        us[0] = 1000.0;
        skewed.compute_all(&us);
        skewed.barrier();
        assert!(balanced.compute_efficiency() > skewed.compute_efficiency());
    }

    #[test]
    fn bw_share_splits_domain_among_ranks() {
        let spec = system(SystemId::A64fx);
        let node = &spec.node;
        // 48 ranks, round-robin over 4 CMGs: 12 per CMG.
        let p = Placement::mpi_only_full_node(1, node);
        let net = Network::new(InterconnectKind::TofuD, 1);
        let w = World::new(net, p);
        let share = w.rank_bw_share_gbs(0, node, spec.bw_saturation_cores);
        assert!((share - 210.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn single_rank_per_domain_gets_full_domain_bandwidth_with_threads() {
        let spec = system(SystemId::A64fx);
        let node = &spec.node;
        let p = Placement::one_rank_per_domain(1, node);
        let net = Network::new(InterconnectKind::TofuD, 1);
        let w = World::new(net, p);
        let share = w.rank_bw_share_gbs(0, node, spec.bw_saturation_cores);
        // 12 threads saturate the CMG; the single rank owns all of it.
        assert!((share - 210.0).abs() < 1e-9);
    }

    #[test]
    fn underpopulated_domain_sees_reduced_bandwidth() {
        let spec = system(SystemId::A64fx);
        let node = &spec.node;
        // 4 single-thread ranks: one per CMG, each using 1 of 12 cores.
        let p = Placement::new(4, 4, 1, node, PlacementPolicy::RoundRobinDomain).unwrap();
        let net = Network::new(InterconnectKind::TofuD, 1);
        let w = World::new(net, p);
        let share = w.rank_bw_share_gbs(0, node, spec.bw_saturation_cores);
        assert!(share < 210.0, "one core cannot saturate HBM: {share}");
    }

    #[test]
    fn elapsed_is_max_clock() {
        let mut w = world(1, 4);
        w.compute(3, 42.0);
        assert_eq!(w.elapsed_us(), 42.0);
        assert!((w.elapsed_s() - 42e-6).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_compute_rejected() {
        let mut w = world(1, 1);
        w.compute(0, -1.0);
    }

    /// One round of a representative workload; returns per-rank clocks.
    fn run_workload(w: &mut World) -> Vec<f64> {
        w.compute_uniform(250.0);
        w.halo_exchange(&[(0, 1, 64 * 1024), (1, 2, 64 * 1024)]);
        w.allreduce(8);
        w.compute_all(&[100.0, 120.0, 140.0, 160.0, 100.0, 120.0, 140.0, 160.0]);
        w.barrier();
        (0..w.ranks()).map(|r| w.now_us(r)).collect()
    }

    #[test]
    fn empty_fault_schedule_is_bit_identical_at_world_level() {
        let mut plain = world(2, 4);
        let mut faulted = world(2, 4);
        faulted.install_faults(
            &FaultSchedule::none(SystemId::A64fx, 8, 2),
            RetryPolicy::default_policy(),
        );
        let a = run_workload(&mut plain);
        let b = run_workload(&mut faulted);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "fault layer must be additive");
        }
        assert_eq!(plain.elapsed_us().to_bits(), faulted.elapsed_us().to_bits());
        let spec = system(SystemId::A64fx);
        assert_eq!(
            plain
                .rank_bw_share_gbs(0, &spec.node, spec.bw_saturation_cores)
                .to_bits(),
            faulted
                .rank_bw_share_gbs(0, &spec.node, spec.bw_saturation_cores)
                .to_bits()
        );
    }

    #[test]
    fn stragglers_stretch_compute_time() {
        let mut s = FaultSchedule::none(SystemId::A64fx, 8, 2);
        s.straggler_mult[3] = 1.5;
        let mut w = world(2, 4);
        w.install_faults(&s, RetryPolicy::default_policy());
        w.compute_uniform(1000.0);
        assert_eq!(w.now_us(3), 1500.0);
        assert_eq!(w.now_us(0), 1000.0);
    }

    #[test]
    fn mem_derate_shrinks_bandwidth_share() {
        let mut s = FaultSchedule::none(SystemId::A64fx, 8, 2);
        s.mem_derate[0] = 0.5;
        let mut w = world(2, 4);
        let spec = system(SystemId::A64fx);
        let before = w.rank_bw_share_gbs(0, &spec.node, spec.bw_saturation_cores);
        w.install_faults(&s, RetryPolicy::default_policy());
        let after = w.rank_bw_share_gbs(0, &spec.node, spec.bw_saturation_cores);
        assert!((after - before * 0.5).abs() < 1e-12);
    }

    #[test]
    fn crash_is_noticed_then_shrunk_and_survivors_continue() {
        let mut s = FaultSchedule::none(SystemId::A64fx, 8, 2);
        s.events.push(faultsim::FaultEvent::NodeCrash {
            node: 1,
            at_us: 500.0,
        });
        let mut w = world(2, 4);
        w.install_faults(&s, RetryPolicy::default_policy());
        assert!(w.poll_failed().is_empty(), "nothing failed at t=0");
        w.compute_uniform(600.0);
        let failed = w.poll_failed();
        assert_eq!(failed.len(), 4, "all four ranks of node 1 failed");
        let removed = w.shrink_failed();
        assert_eq!(removed, failed);
        assert_eq!(w.alive_ranks(), 4);
        assert_eq!(w.recoveries(), 1);
        for &r in &removed {
            assert!(!w.is_alive(r));
            assert_eq!(w.now_us(r), 500.0, "dead rank frozen at the crash");
        }
        // Survivors keep making progress; the dead stay frozen.
        let before = w.elapsed_us();
        w.compute_uniform(100.0);
        w.allreduce(8);
        assert!(w.elapsed_us() > before);
        for &r in &removed {
            assert_eq!(w.now_us(r), 500.0);
        }
        // Messages to the dead are dropped rather than simulated.
        let alive0 = w.now_us(0);
        w.exchange(&[(0, removed[0], 1 << 20)]);
        assert!(w.now_us(0) - alive0 < 1.0, "no send overhead to the dead");
        // A second shrink with nothing new failed is a no-op.
        assert!(w.shrink_failed().is_empty());
        assert_eq!(w.recoveries(), 1);
    }

    #[test]
    fn collective_cache_hits_serve_the_exact_f64() {
        let mut w = world(2, 4);
        let t0 = w.now_us(0);
        w.allreduce(1 << 20);
        let miss = w.now_us(0) - t0;
        let t1 = w.now_us(0);
        w.allreduce(1 << 20);
        let hit = w.now_us(0) - t1;
        assert_eq!(miss.to_bits(), hit.to_bits(), "hit must be bit-identical");
        // The cached value is exactly what a fresh evaluation produces.
        let fresh = collectives::allreduce_time_us(w.network(), &w.placement().node_map(), 1 << 20);
        assert_eq!(miss.to_bits(), fresh.to_bits());
        // Barrier and an 8-byte allreduce are distinct keys even though
        // the barrier is internally an 8-byte allreduce.
        let before = collcache::stats();
        w.allreduce(8);
        w.barrier();
        let after = collcache::stats();
        assert!(after.misses >= before.misses + 2, "distinct ops must miss");
    }

    #[test]
    fn shrink_invalidates_collective_cache() {
        let mut s = FaultSchedule::none(SystemId::A64fx, 8, 2);
        s.events.push(faultsim::FaultEvent::NodeCrash {
            node: 1,
            at_us: 500.0,
        });
        let mut w = world(2, 4);
        w.install_faults(&s, RetryPolicy::default_policy());
        let t0 = w.now_us(0);
        w.allreduce(8);
        let pre = w.now_us(0) - t0;
        w.compute_uniform(600.0);
        w.shrink_failed();
        let t1 = w.now_us(0);
        w.allreduce(8);
        let post = w.now_us(0) - t1;
        assert_ne!(
            pre.to_bits(),
            post.to_bits(),
            "shrunk communicator must be re-priced, not served stale"
        );
        // The re-priced value matches a fresh evaluation over the
        // survivors (all four on node 0). Shrink ends with a barrier, so
        // every survivor clock equals `t1` and the collective advances the
        // clock to exactly `t1 + fresh`; comparing the absolute clock keeps
        // the check bit-exact (the `post` delta re-rounds through the
        // subtraction and need not equal `fresh` bitwise).
        let fresh = collectives::allreduce_time_us(w.network(), &[0, 0, 0, 0], 8);
        assert_eq!(w.now_us(0).to_bits(), (t1 + fresh).to_bits());
    }

    #[test]
    fn collectives_record_spans_without_perturbing_clocks() {
        let plain = {
            let mut w = world(2, 4);
            run_workload(&mut w)
        };
        let rec = std::sync::Arc::new(obs::MemRecorder::new());
        let traced = obs::with_recorder(rec.clone(), || {
            let mut w = world(2, 4);
            run_workload(&mut w)
        });
        for (x, y) in plain.iter().zip(&traced) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "recording must be pure observation"
            );
        }
        assert_eq!(rec.counter("mpi.allreduce.calls"), Some(1));
        assert_eq!(rec.counter("mpi.allreduce.bytes"), Some(8));
        // 8 bytes < cutover: recursive doubling serves the call.
        assert_eq!(
            rec.counter("mpi.allreduce.alg.recursive_doubling.calls"),
            Some(1)
        );
        assert_eq!(rec.counter("mpi.barrier.calls"), Some(1));
        assert_eq!(
            rec.counter("mpi.p2p.msgs"),
            Some(4),
            "2 halo pairs = 4 messages"
        );
        let spans = rec.spans();
        let allreduce = spans.iter().find(|s| s.name == "mpi.allreduce").unwrap();
        assert!(allreduce.dur_us > 0.0);
        assert!(allreduce
            .attrs
            .iter()
            .any(|(k, v)| k == "alg" && v.contains("recursive_doubling")));
        // Each sync point contributes one wait observation per live rank.
        let waits = rec.histogram("mpi.sync_wait_us").unwrap();
        assert_eq!(waits.count, 16, "2 sync points x 8 ranks");
    }

    #[test]
    fn shrink_records_crash_instants() {
        let mut s = FaultSchedule::none(SystemId::A64fx, 8, 2);
        s.events.push(faultsim::FaultEvent::NodeCrash {
            node: 1,
            at_us: 500.0,
        });
        let rec = std::sync::Arc::new(obs::MemRecorder::new());
        obs::with_recorder(rec.clone(), || {
            let mut w = world(2, 4);
            w.install_faults(&s, RetryPolicy::default_policy());
            w.compute_uniform(600.0);
            w.shrink_failed();
        });
        assert_eq!(rec.counter("mpi.shrink.ops"), Some(1));
        assert_eq!(rec.counter("mpi.shrink.ranks_removed"), Some(4));
        let instants = rec.instants();
        assert_eq!(instants.len(), 4);
        assert!(instants
            .iter()
            .all(|i| i.name == "fault.crash" && i.at_us == 500.0));
    }

    #[test]
    #[should_panic(expected = "different rank count")]
    fn mismatched_schedule_rejected() {
        let mut w = world(2, 4);
        w.install_faults(
            &FaultSchedule::none(SystemId::A64fx, 7, 2),
            RetryPolicy::default_policy(),
        );
    }
}
