//! The simulated MPI world: per-rank virtual clocks driven by compute and
//! communication events.
//!
//! Applications describe their execution as a sequence of steps — compute
//! phases (whose duration the caller obtains from the roofline cost model),
//! point-to-point exchanges (halo patterns), and collectives. `World`
//! advances each rank's clock accordingly; the job's runtime is the maximum
//! clock at the end. Load imbalance (e.g. COSA's uneven block distribution)
//! appears naturally: ranks with more work arrive late at the next
//! collective and everyone else waits.

use archsim::Node;
use netsim::Network;

use crate::collectives;
use crate::placement::Placement;

/// A simulated MPI job: a network, a placement and one clock per rank.
pub struct World {
    net: Network,
    placement: Placement,
    clock_us: Vec<f64>,
    node_map: Vec<usize>,
    /// Per-rank cumulative time spent waiting (skew absorbed at sync points).
    wait_us: Vec<f64>,
    /// Per-rank cumulative compute time.
    compute_us: Vec<f64>,
}

impl World {
    /// Create a world for `placement` on `net`. The network must span at
    /// least `placement.nodes_used()` nodes.
    pub fn new(net: Network, placement: Placement) -> Self {
        assert!(
            net.topology().num_nodes() >= placement.nodes_used() as usize,
            "network smaller than the job: {} nodes < {}",
            net.topology().num_nodes(),
            placement.nodes_used()
        );
        let n = placement.ranks() as usize;
        let node_map = placement.node_map();
        World {
            net,
            placement,
            clock_us: vec![0.0; n],
            node_map,
            wait_us: vec![0.0; n],
            compute_us: vec![0.0; n],
        }
    }

    /// Convenience: build the network for a system's interconnect and wrap it.
    pub fn for_system(spec: &archsim::SystemSpec, placement: Placement) -> Self {
        let net = Network::new(spec.interconnect, placement.nodes_used() as usize);
        World::new(net, placement)
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.placement.ranks()
    }

    /// The placement in use.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The network in use.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Current virtual time of `rank`, microseconds.
    pub fn now_us(&self, rank: u32) -> f64 {
        self.clock_us[rank as usize]
    }

    /// Advance `rank`'s clock by a compute phase of `us` microseconds.
    pub fn compute(&mut self, rank: u32, us: f64) {
        assert!(
            us >= 0.0 && !us.is_nan(),
            "compute time must be non-negative"
        );
        self.clock_us[rank as usize] += us;
        self.compute_us[rank as usize] += us;
    }

    /// Advance every rank by a per-rank compute duration (slice of length
    /// `ranks()`), the common SPMD pattern.
    pub fn compute_all(&mut self, us_per_rank: &[f64]) {
        assert_eq!(us_per_rank.len(), self.clock_us.len());
        for (r, &us) in us_per_rank.iter().enumerate() {
            self.compute(r as u32, us);
        }
    }

    /// Advance every rank by the same compute duration.
    pub fn compute_uniform(&mut self, us: f64) {
        for r in 0..self.clock_us.len() {
            self.compute(r as u32, us);
        }
    }

    /// Perform a set of point-to-point exchanges: `(src, dst, bytes)`
    /// triples, all logically concurrent (posted at each sender's current
    /// time). Receivers' clocks advance to the arrival of their last
    /// message; senders pay a small software overhead per message.
    pub fn exchange(&mut self, msgs: &[(u32, u32, u64)]) {
        const SEND_OVERHEAD_US: f64 = 0.2;
        let mut arrivals: Vec<f64> = self.clock_us.clone();
        for &(src, dst, bytes) in msgs {
            let s = src as usize;
            let d = dst as usize;
            let done =
                self.net
                    .transfer(self.node_map[s], self.node_map[d], bytes, self.clock_us[s]);
            self.clock_us[s] += SEND_OVERHEAD_US;
            arrivals[d] = arrivals[d].max(done);
        }
        for (r, &arr) in arrivals.iter().enumerate() {
            if arr > self.clock_us[r] {
                self.wait_us[r] += arr - self.clock_us[r];
                self.clock_us[r] = arr;
            }
        }
    }

    /// A symmetric halo exchange: every `(a, b, bytes)` pair exchanges
    /// `bytes` in both directions.
    pub fn halo_exchange(&mut self, pairs: &[(u32, u32, u64)]) {
        let mut msgs = Vec::with_capacity(pairs.len() * 2);
        for &(a, b, bytes) in pairs {
            msgs.push((a, b, bytes));
            msgs.push((b, a, bytes));
        }
        self.exchange(&msgs);
    }

    fn synchronise(&mut self) -> f64 {
        let t = self.clock_us.iter().copied().fold(0.0, f64::max);
        for (r, c) in self.clock_us.iter_mut().enumerate() {
            self.wait_us[r] += t - *c;
            *c = t;
        }
        t
    }

    /// `MPI_Allreduce` of `bytes` per rank across all ranks.
    pub fn allreduce(&mut self, bytes: u64) {
        let start = self.synchronise();
        let t = collectives::allreduce_time_us(&self.net, &self.node_map, bytes);
        self.set_all(start + t);
    }

    /// `MPI_Bcast` of `bytes` from rank 0.
    pub fn bcast(&mut self, bytes: u64) {
        let start = self.synchronise();
        let t = collectives::bcast_time_us(&self.net, &self.node_map, bytes);
        self.set_all(start + t);
    }

    /// `MPI_Barrier`.
    pub fn barrier(&mut self) {
        let start = self.synchronise();
        let t = collectives::barrier_time_us(&self.net, &self.node_map);
        self.set_all(start + t);
    }

    /// `MPI_Allgather`, `bytes` contributed per rank.
    pub fn allgather(&mut self, bytes: u64) {
        let start = self.synchronise();
        let t = collectives::allgather_time_us(&self.net, &self.node_map, bytes);
        self.set_all(start + t);
    }

    /// `MPI_Alltoall`, `bytes` per (src, dst) pair.
    pub fn alltoall(&mut self, bytes_per_pair: u64) {
        let start = self.synchronise();
        let t = collectives::alltoall_time_us(&self.net, &self.node_map, bytes_per_pair);
        self.set_all(start + t);
    }

    fn set_all(&mut self, t: f64) {
        for c in &mut self.clock_us {
            *c = t;
        }
    }

    /// Elapsed job time so far: the maximum rank clock, microseconds.
    pub fn elapsed_us(&self) -> f64 {
        self.clock_us.iter().copied().fold(0.0, f64::max)
    }

    /// Elapsed job time in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_us() / 1e6
    }

    /// Total wait (load-imbalance + communication skew) time of `rank`.
    pub fn wait_us(&self, rank: u32) -> f64 {
        self.wait_us[rank as usize]
    }

    /// Total compute time of `rank`.
    pub fn compute_us(&self, rank: u32) -> f64 {
        self.compute_us[rank as usize]
    }

    /// Aggregate parallel efficiency estimate: mean compute / elapsed.
    pub fn compute_efficiency(&self) -> f64 {
        let e = self.elapsed_us();
        if e == 0.0 {
            return 1.0;
        }
        let mean: f64 = self.compute_us.iter().sum::<f64>() / self.compute_us.len() as f64;
        mean / e
    }

    /// Bandwidth share (GB/s) available to `rank` for streaming memory
    /// traffic, given the node layout: the domain's sustained bandwidth
    /// divided by the ranks sharing that domain, derated if too few cores
    /// are active to saturate the domain.
    pub fn rank_bw_share_gbs(&self, rank: u32, node: &Node, saturation_cores: u32) -> f64 {
        let dom = self.placement.domain_of(rank);
        let active = self.placement.cores_active_in_domain(rank);
        let domain_bw = node
            .memory
            .domain_bw_for_cores(dom, active, saturation_cores);
        domain_bw / f64::from(self.placement.ranks_in_domain(rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{Placement, PlacementPolicy};
    use archsim::{system, InterconnectKind, SystemId};

    fn world(nodes: u32, rpn: u32) -> World {
        let node = system(SystemId::A64fx).node;
        let p = Placement::new(
            nodes * rpn,
            rpn,
            1,
            &node,
            PlacementPolicy::RoundRobinDomain,
        )
        .unwrap();
        let net = Network::new(InterconnectKind::TofuD, nodes as usize);
        World::new(net, p)
    }

    #[test]
    fn compute_advances_only_that_rank() {
        let mut w = world(1, 4);
        w.compute(2, 100.0);
        assert_eq!(w.now_us(2), 100.0);
        assert_eq!(w.now_us(0), 0.0);
        assert_eq!(w.elapsed_us(), 100.0);
    }

    #[test]
    fn allreduce_synchronises_stragglers() {
        let mut w = world(2, 4);
        w.compute(0, 1000.0); // rank 0 is the straggler
        w.allreduce(8);
        let t = w.now_us(0);
        for r in 0..w.ranks() {
            assert_eq!(w.now_us(r), t, "all ranks aligned after allreduce");
        }
        assert!(t > 1000.0);
        // Rank 1 waited at least the straggler's lead.
        assert!(w.wait_us(1) >= 1000.0);
    }

    #[test]
    fn exchange_delays_receiver_not_sender() {
        let mut w = world(2, 1);
        w.exchange(&[(0, 1, 1 << 20)]);
        assert!(w.now_us(1) > w.now_us(0));
        assert!(w.now_us(0) < 1.0, "sender only pays overhead");
    }

    #[test]
    fn halo_exchange_is_symmetric() {
        let mut w = world(2, 1);
        w.halo_exchange(&[(0, 1, 64 * 1024)]);
        assert!((w.now_us(0) - w.now_us(1)).abs() < 1e-6);
    }

    #[test]
    fn imbalance_lowers_compute_efficiency() {
        let mut balanced = world(2, 4);
        balanced.compute_uniform(1000.0);
        balanced.barrier();
        let mut skewed = world(2, 4);
        let mut us = vec![500.0; 8];
        us[0] = 1000.0;
        skewed.compute_all(&us);
        skewed.barrier();
        assert!(balanced.compute_efficiency() > skewed.compute_efficiency());
    }

    #[test]
    fn bw_share_splits_domain_among_ranks() {
        let spec = system(SystemId::A64fx);
        let node = &spec.node;
        // 48 ranks, round-robin over 4 CMGs: 12 per CMG.
        let p = Placement::mpi_only_full_node(1, node);
        let net = Network::new(InterconnectKind::TofuD, 1);
        let w = World::new(net, p);
        let share = w.rank_bw_share_gbs(0, node, spec.bw_saturation_cores);
        assert!((share - 210.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn single_rank_per_domain_gets_full_domain_bandwidth_with_threads() {
        let spec = system(SystemId::A64fx);
        let node = &spec.node;
        let p = Placement::one_rank_per_domain(1, node);
        let net = Network::new(InterconnectKind::TofuD, 1);
        let w = World::new(net, p);
        let share = w.rank_bw_share_gbs(0, node, spec.bw_saturation_cores);
        // 12 threads saturate the CMG; the single rank owns all of it.
        assert!((share - 210.0).abs() < 1e-9);
    }

    #[test]
    fn underpopulated_domain_sees_reduced_bandwidth() {
        let spec = system(SystemId::A64fx);
        let node = &spec.node;
        // 4 single-thread ranks: one per CMG, each using 1 of 12 cores.
        let p = Placement::new(4, 4, 1, node, PlacementPolicy::RoundRobinDomain).unwrap();
        let net = Network::new(InterconnectKind::TofuD, 1);
        let w = World::new(net, p);
        let share = w.rank_bw_share_gbs(0, node, spec.bw_saturation_cores);
        assert!(share < 210.0, "one core cannot saturate HBM: {share}");
    }

    #[test]
    fn elapsed_is_max_clock() {
        let mut w = world(1, 4);
        w.compute(3, 42.0);
        assert_eq!(w.elapsed_us(), 42.0);
        assert!((w.elapsed_s() - 42e-6).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_compute_rejected() {
        let mut w = world(1, 1);
        w.compute(0, -1.0);
    }
}
