//! Message-level discrete-event validation of the collective cost models.
//!
//! The analytic models in [`crate::collectives`] price collectives with
//! closed forms. This module simulates the same algorithms **message by
//! message** on the `netsim` event queue — every send becomes an event, NIC
//! contention included — and the test suite checks the closed forms against
//! the event-driven ground truth. This is what keeps the fast analytic path
//! honest.

use netsim::{EventQueue, Network};

/// [`Network::transfer`] with a `net.hop` span when a recorder is active:
/// one span per simulated message, over the send->arrival interval. Only
/// the message-level DES path emits these — the analytic collective
/// models move far too many logical messages to trace individually.
fn hop(net: &mut Network, src: usize, dst: usize, bytes: u64, t_send: f64) -> f64 {
    let done = net.transfer(src, dst, bytes, t_send);
    if obs::enabled() {
        obs::span(
            "net",
            "net.hop",
            t_send,
            done - t_send,
            &[
                ("src_node", obs::AttrValue::U64(src as u64)),
                ("dst_node", obs::AttrValue::U64(dst as u64)),
                ("bytes", obs::AttrValue::U64(bytes)),
            ],
        );
    }
    done
}

/// One message delivery in the event-driven allreduce.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    rank: usize,
    round: u32,
}

/// Simulate a recursive-doubling allreduce of `bytes` per rank, message by
/// message, over the given rank→node placement. Ranks are padded virtually
/// to the next power of two (extra ranks are free riders on node 0, as real
/// implementations fold them in a pre-round we conservatively skip).
/// Returns the completion time in microseconds.
pub fn allreduce_recursive_doubling_des(
    net: &mut Network,
    node_of_rank: &[usize],
    bytes: u64,
) -> f64 {
    let p = node_of_rank.len();
    if p <= 1 {
        return 0.0;
    }
    let rounds = usize::BITS - (p - 1).leading_zeros();
    let mut clock = vec![0.0f64; p];
    // Peak depth is one in-flight arrival per rank (rounds are drained
    // before the next is scheduled), so pre-size the heap to match.
    let mut q: EventQueue<Arrival> = EventQueue::with_capacity(p);

    // Round 0 sends are scheduled immediately; later rounds are scheduled
    // when both partners have finished the previous round. We process
    // rounds as barriers per pair, which recursive doubling implies.
    for round in 0..rounds {
        // Collect this round's exchanges at current clocks.
        let mask = 1usize << round;
        let mut arrivals: Vec<(usize, f64)> = Vec::new();
        for rank in 0..p {
            let partner = rank ^ mask;
            if partner >= p {
                continue; // padded rank: no message this round
            }
            let t_send = clock[rank];
            let done = hop(
                net,
                node_of_rank[rank],
                node_of_rank[partner],
                bytes,
                t_send,
            );
            q.schedule_at(
                done.max(q.now_us()),
                Arrival {
                    rank: partner,
                    round,
                },
            );
            arrivals.push((partner, done));
        }
        // Drain the round's events; each rank advances to its arrival.
        while let Some(ev) = q.pop() {
            debug_assert_eq!(ev.payload.round, round);
            let r = ev.payload.rank;
            clock[r] = clock[r].max(ev.time_us);
        }
        // Pair synchronisation: both sides proceed at the max of the pair.
        for rank in 0..p {
            let partner = rank ^ mask;
            if partner < p {
                let t = clock[rank].max(clock[partner]);
                clock[rank] = t;
                clock[partner] = t;
            }
        }
    }
    clock.into_iter().fold(0.0, f64::max)
}

/// Simulate a ring allreduce (reduce-scatter + allgather) message by
/// message. Returns the completion time in microseconds.
pub fn allreduce_ring_des(net: &mut Network, node_of_rank: &[usize], bytes: u64) -> f64 {
    let p = node_of_rank.len();
    if p <= 1 {
        return 0.0;
    }
    let chunk = (bytes / p as u64).max(1);
    let mut clock = vec![0.0f64; p];
    // 2(p-1) steps; in step s, rank r sends a chunk to (r+1) % p.
    for _step in 0..2 * (p - 1) {
        let sends: Vec<f64> = (0..p)
            .map(|r| {
                let dst = (r + 1) % p;
                hop(net, node_of_rank[r], node_of_rank[dst], chunk, clock[r])
            })
            .collect();
        let mut next = clock.clone();
        for (r, &done) in sends.iter().enumerate() {
            let dst = (r + 1) % p;
            next[dst] = next[dst].max(done);
        }
        clock = next;
    }
    clock.into_iter().fold(0.0, f64::max)
}

/// Simulate a Rabenseifner allreduce (recursive-halving reduce-scatter,
/// then recursive-doubling allgather) message by message — the algorithm
/// the analytic model prices for messages at or above the cutover. Ranks
/// beyond the largest power of two fold into a partner in a pre-round and
/// receive the result in a post-round, as in MPICH. Returns the completion
/// time in microseconds.
pub fn allreduce_rabenseifner_des(net: &mut Network, node_of_rank: &[usize], bytes: u64) -> f64 {
    let p = node_of_rank.len();
    if p <= 1 {
        return 0.0;
    }
    let steps = usize::BITS - 1 - p.leading_zeros(); // floor(log2 p)
    let p2 = 1usize << steps;
    let extras = p - p2;
    let mut clock = vec![0.0f64; p];
    // Pre-round: rank p2 + i folds its payload into rank i.
    for i in 0..extras {
        let src = p2 + i;
        let done = hop(net, node_of_rank[src], node_of_rank[i], bytes, clock[src]);
        clock[i] = clock[i].max(done);
    }
    // Reduce-scatter by recursive halving, then allgather by recursive
    // doubling: the same pairs exchange the same chunk sizes in reverse.
    let exchange = |net: &mut Network, clock: &mut [f64], step: u32, chunk: u64| {
        let mask = 1usize << step;
        for rank in 0..p2 {
            let partner = rank ^ mask;
            if partner < rank {
                continue; // handle each pair once, both directions below
            }
            let fwd = hop(
                net,
                node_of_rank[rank],
                node_of_rank[partner],
                chunk,
                clock[rank],
            );
            let rev = hop(
                net,
                node_of_rank[partner],
                node_of_rank[rank],
                chunk,
                clock[partner],
            );
            let t = fwd.max(rev);
            clock[rank] = t;
            clock[partner] = t;
        }
    };
    for step in 0..steps {
        exchange(net, &mut clock, step, (bytes >> (step + 1)).max(1));
    }
    for step in (0..steps).rev() {
        exchange(net, &mut clock, step, (bytes >> (step + 1)).max(1));
    }
    // Post-round: results flow back to the folded ranks.
    for i in 0..extras {
        let dst = p2 + i;
        let done = hop(net, node_of_rank[i], node_of_rank[dst], bytes, clock[i]);
        clock[dst] = clock[dst].max(done);
    }
    clock.into_iter().fold(0.0, f64::max)
}

/// Binomial-tree reduce (or, reversed, broadcast) of `bytes` across the
/// `ranks` resident on one `node`, message by message over the
/// shared-memory transport. Returns the completion time given per-rank
/// start clocks of zero.
fn shm_tree_des(net: &mut Network, node: usize, ranks: usize, bytes: u64) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let mut clock = vec![0.0f64; ranks];
    let rounds = usize::BITS - (ranks - 1).leading_zeros();
    for round in 0..rounds {
        let stride = 1usize << round;
        let mut idx = 0;
        while idx + stride < ranks {
            let done = hop(net, node, node, bytes, clock[idx + stride]);
            clock[idx] = clock[idx].max(done);
            idx += stride * 2;
        }
    }
    clock[0]
}

/// Message-level simulation of the full **hierarchical** allreduce the
/// analytic [`crate::collectives::allreduce_time_us`] model prices: a
/// binomial on-node reduce over the shared-memory transport, an inter-node
/// leader allreduce (recursive doubling below the algorithm cutover,
/// Rabenseifner at or above it — the same [`collectives::select_algorithm`]
/// rule), and an on-node broadcast of the result. During the
/// bandwidth-bound leader leg every node injects simultaneously, so the
/// fabric is derated to the topology's bisection factor via
/// [`Network::set_congestion`]. This is the ground truth the conformance
/// suite's differential sweeps hold the closed forms to.
///
/// [`collectives::select_algorithm`]: crate::collectives::select_algorithm
pub fn allreduce_hierarchical_des(net: &mut Network, node_of_rank: &[usize], bytes: u64) -> f64 {
    let p = node_of_rank.len();
    if p <= 1 {
        return 0.0;
    }
    let mut nodes = node_of_rank.to_vec();
    nodes.sort_unstable();
    nodes.dedup();
    // Phases 1 and 3: on-node binomial reduce, then broadcast back out.
    // Nodes proceed independently; the phase ends when the slowest does.
    let shm_phase = |net: &mut Network, nodes: &[usize]| -> f64 {
        nodes
            .iter()
            .map(|&node| {
                let local = node_of_rank.iter().filter(|&&n| n == node).count();
                shm_tree_des(net, node, local, bytes)
            })
            .fold(0.0, f64::max)
    };
    let reduce_t = shm_phase(net, &nodes);
    // Phase 2: leaders allreduce across the wire.
    let inter_t = if nodes.len() > 1 {
        match crate::collectives::select_algorithm(bytes) {
            crate::collectives::CollectiveAlgorithm::RecursiveDoubling => {
                allreduce_recursive_doubling_des(net, &nodes, bytes)
            }
            crate::collectives::CollectiveAlgorithm::Ring => {
                let fabric = net.topology().bisection_factor();
                net.set_congestion(fabric);
                let t = allreduce_rabenseifner_des(net, &nodes, bytes);
                net.set_congestion(1.0);
                t
            }
        }
    } else {
        0.0
    };
    let bcast_t = shm_phase(net, &nodes);
    reduce_t + inter_t + bcast_t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::allreduce_time_us;
    use archsim::InterconnectKind;

    fn one_rank_per_node(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn des_transfers_emit_hop_spans_without_perturbing_time() {
        let placement = one_rank_per_node(4);
        let mut net = Network::new(InterconnectKind::EdrInfiniband, 4);
        let plain = allreduce_recursive_doubling_des(&mut net, &placement, 4096);
        let rec = std::sync::Arc::new(obs::MemRecorder::new());
        let traced = obs::with_recorder(rec.clone(), || {
            let mut net = Network::new(InterconnectKind::EdrInfiniband, 4);
            allreduce_recursive_doubling_des(&mut net, &placement, 4096)
        });
        assert_eq!(
            traced.to_bits(),
            plain.to_bits(),
            "recording moved the DES clock"
        );
        let hops: Vec<_> = rec
            .spans()
            .iter()
            .filter(|s| s.cat == "net" && s.name == "net.hop")
            .cloned()
            .collect();
        // 4 ranks, 2 rounds of recursive doubling: 4 messages per round.
        assert_eq!(hops.len(), 8, "one span per simulated message");
        assert!(hops.iter().all(|s| s.dur_us > 0.0));
    }

    #[test]
    fn des_and_analytic_agree_for_small_messages() {
        // Latency-dominated regime: the analytic recursive-doubling model
        // must agree with the event-driven simulation within 2x.
        for nodes in [2usize, 4, 8, 16] {
            let placement = one_rank_per_node(nodes);
            let mut net = Network::new(InterconnectKind::EdrInfiniband, nodes);
            let des = allreduce_recursive_doubling_des(&mut net, &placement, 8);
            let net2 = Network::new(InterconnectKind::EdrInfiniband, nodes);
            let analytic = allreduce_time_us(&net2, &placement, 8);
            let ratio = des / analytic;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{nodes} nodes: DES {des:.2}us vs analytic {analytic:.2}us"
            );
        }
    }

    #[test]
    fn des_and_analytic_agree_for_large_messages() {
        // Bandwidth-dominated regime: ring DES vs the Rabenseifner closed
        // form, within 2.5x (different algorithms, same asymptotic volume).
        for nodes in [4usize, 8] {
            let placement = one_rank_per_node(nodes);
            let mut net = Network::new(InterconnectKind::TofuD, nodes);
            let des = allreduce_ring_des(&mut net, &placement, 8 << 20);
            let net2 = Network::new(InterconnectKind::TofuD, nodes);
            let analytic = allreduce_time_us(&net2, &placement, 8 << 20);
            let ratio = des / analytic;
            assert!(
                (0.4..=2.5).contains(&ratio),
                "{nodes} nodes: DES {des:.1}us vs analytic {analytic:.1}us"
            );
        }
    }

    #[test]
    fn des_allreduce_grows_logarithmically() {
        let t4 = {
            let mut n = Network::new(InterconnectKind::Aries, 4);
            allreduce_recursive_doubling_des(&mut n, &one_rank_per_node(4), 8)
        };
        let t16 = {
            let mut n = Network::new(InterconnectKind::Aries, 16);
            allreduce_recursive_doubling_des(&mut n, &one_rank_per_node(16), 8)
        };
        // log2(16)/log2(4) = 2: latency-bound growth is logarithmic.
        assert!(t16 < 3.5 * t4, "t4={t4} t16={t16}");
        assert!(t16 > t4);
    }

    #[test]
    fn des_handles_non_power_of_two() {
        let mut net = Network::new(InterconnectKind::OmniPath, 6);
        let t = allreduce_recursive_doubling_des(&mut net, &one_rank_per_node(6), 1024);
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn single_rank_is_free() {
        let mut net = Network::new(InterconnectKind::TofuD, 1);
        assert_eq!(allreduce_recursive_doubling_des(&mut net, &[0], 8), 0.0);
        assert_eq!(allreduce_ring_des(&mut net, &[0], 8), 0.0);
    }

    #[test]
    fn rabenseifner_des_tracks_analytic_closed_form() {
        // The analytic large-message model prices Rabenseifner; simulating
        // Rabenseifner message by message must land close for one rank per
        // node on a non-blocking fabric.
        for nodes in [4usize, 8, 16] {
            let placement = one_rank_per_node(nodes);
            let mut net = Network::new(InterconnectKind::EdrInfiniband, nodes);
            let des = allreduce_rabenseifner_des(&mut net, &placement, 8 << 20);
            let net2 = Network::new(InterconnectKind::EdrInfiniband, nodes);
            let analytic = allreduce_time_us(&net2, &placement, 8 << 20);
            let ratio = des / analytic;
            assert!(
                (0.75..=1.35).contains(&ratio),
                "{nodes} nodes: DES {des:.1}us vs analytic {analytic:.1}us"
            );
        }
    }

    #[test]
    fn rabenseifner_des_handles_non_power_of_two() {
        for nodes in [3usize, 5, 6, 7, 12] {
            let mut net = Network::new(InterconnectKind::TofuD, nodes);
            let t = allreduce_rabenseifner_des(&mut net, &one_rank_per_node(nodes), 1 << 20);
            assert!(t > 0.0 && t.is_finite(), "{nodes} nodes");
        }
    }

    #[test]
    fn hierarchical_des_free_for_one_rank_and_positive_otherwise() {
        let mut net = Network::new(InterconnectKind::EdrInfiniband, 4);
        assert_eq!(allreduce_hierarchical_des(&mut net, &[0], 1024), 0.0);
        // 4 nodes x 4 ranks.
        let placement: Vec<usize> = (0..16).map(|r| r / 4).collect();
        let t = allreduce_hierarchical_des(&mut net, &placement, 1024);
        assert!(t > 0.0 && t.is_finite());
        // Congestion is always restored afterwards.
        assert_eq!(net.congestion(), 1.0);
        let big = allreduce_hierarchical_des(&mut net, &placement, 8 << 20);
        assert!(big > t);
        assert_eq!(net.congestion(), 1.0);
    }

    #[test]
    fn hierarchical_des_matches_analytic_shm_phases_on_one_node() {
        // Everything on one node: no wire, just the two shm tree phases —
        // which the DES and the closed form model identically.
        let placement = vec![0usize; 8];
        let mut net = Network::new(InterconnectKind::Aries, 2);
        let des = allreduce_hierarchical_des(&mut net, &placement, 4096);
        let net2 = Network::new(InterconnectKind::Aries, 2);
        let analytic = allreduce_time_us(&net2, &placement, 4096);
        assert!(
            (des - analytic).abs() <= 1e-9 * analytic.max(1.0),
            "DES {des} vs analytic {analytic}"
        );
    }

    #[test]
    fn ring_beats_doubling_for_huge_payloads() {
        // The classic algorithm-selection rule the cutover constant encodes.
        let placement = one_rank_per_node(8);
        let bytes = 32 << 20;
        let mut n1 = Network::new(InterconnectKind::EdrInfiniband, 8);
        let ring = allreduce_ring_des(&mut n1, &placement, bytes);
        let mut n2 = Network::new(InterconnectKind::EdrInfiniband, 8);
        let doubling = allreduce_recursive_doubling_des(&mut n2, &placement, bytes);
        assert!(ring < doubling, "ring {ring} vs doubling {doubling}");
    }
}
