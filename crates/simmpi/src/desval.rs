//! Message-level discrete-event validation of the collective cost models.
//!
//! The analytic models in [`crate::collectives`] price collectives with
//! closed forms. This module simulates the same algorithms **message by
//! message** on the `netsim` event queue — every send becomes an event, NIC
//! contention included — and the test suite checks the closed forms against
//! the event-driven ground truth. This is what keeps the fast analytic path
//! honest.

use netsim::shard::{Ctx, DesBackend, RunStats, ShardedEventQueue};
use netsim::{EventQueue, Network};

/// [`Network::transfer`] with a `net.hop` span when a recorder is active:
/// one span per simulated message, over the send->arrival interval. Only
/// the message-level DES path emits these — the analytic collective
/// models move far too many logical messages to trace individually.
fn hop(net: &mut Network, src: usize, dst: usize, bytes: u64, t_send: f64) -> f64 {
    let done = net.transfer(src, dst, bytes, t_send);
    if obs::enabled() {
        obs::span(
            "net",
            "net.hop",
            t_send,
            done - t_send,
            &[
                ("src_node", obs::AttrValue::U64(src as u64)),
                ("dst_node", obs::AttrValue::U64(dst as u64)),
                ("bytes", obs::AttrValue::U64(bytes)),
            ],
        );
    }
    done
}

/// One message delivery in the event-driven allreduce.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    rank: usize,
    round: u32,
}

/// Simulate a recursive-doubling allreduce of `bytes` per rank, message by
/// message, over the given rank→node placement. Ranks are padded virtually
/// to the next power of two (extra ranks are free riders on node 0, as real
/// implementations fold them in a pre-round we conservatively skip).
/// Returns the completion time in microseconds.
pub fn allreduce_recursive_doubling_des(
    net: &mut Network,
    node_of_rank: &[usize],
    bytes: u64,
) -> f64 {
    let p = node_of_rank.len();
    if p <= 1 {
        return 0.0;
    }
    let rounds = usize::BITS - (p - 1).leading_zeros();
    let mut clock = vec![0.0f64; p];
    // Peak depth is one in-flight arrival per rank (rounds are drained
    // before the next is scheduled), so pre-size the heap to match.
    let mut q: EventQueue<Arrival> = EventQueue::with_capacity(p);

    // Round 0 sends are scheduled immediately; later rounds are scheduled
    // when both partners have finished the previous round. We process
    // rounds as barriers per pair, which recursive doubling implies.
    for round in 0..rounds {
        // Collect this round's exchanges at current clocks.
        let mask = 1usize << round;
        let mut arrivals: Vec<(usize, f64)> = Vec::new();
        for rank in 0..p {
            let partner = rank ^ mask;
            if partner >= p {
                continue; // padded rank: no message this round
            }
            let t_send = clock[rank];
            let done = hop(
                net,
                node_of_rank[rank],
                node_of_rank[partner],
                bytes,
                t_send,
            );
            q.schedule_at(
                done.max(q.now_us()),
                Arrival {
                    rank: partner,
                    round,
                },
            );
            arrivals.push((partner, done));
        }
        // Drain the round's events; each rank advances to its arrival.
        while let Some(ev) = q.pop() {
            debug_assert_eq!(ev.payload.round, round);
            let r = ev.payload.rank;
            clock[r] = clock[r].max(ev.time_us);
        }
        // Pair synchronisation: both sides proceed at the max of the pair.
        for rank in 0..p {
            let partner = rank ^ mask;
            if partner < p {
                let t = clock[rank].max(clock[partner]);
                clock[rank] = t;
                clock[partner] = t;
            }
        }
    }
    clock.into_iter().fold(0.0, f64::max)
}

/// Simulate a ring allreduce (reduce-scatter + allgather) message by
/// message. Returns the completion time in microseconds.
pub fn allreduce_ring_des(net: &mut Network, node_of_rank: &[usize], bytes: u64) -> f64 {
    let p = node_of_rank.len();
    if p <= 1 {
        return 0.0;
    }
    let chunk = (bytes / p as u64).max(1);
    let mut clock = vec![0.0f64; p];
    // 2(p-1) steps; in step s, rank r sends a chunk to (r+1) % p.
    for _step in 0..2 * (p - 1) {
        let sends: Vec<f64> = (0..p)
            .map(|r| {
                let dst = (r + 1) % p;
                hop(net, node_of_rank[r], node_of_rank[dst], chunk, clock[r])
            })
            .collect();
        let mut next = clock.clone();
        for (r, &done) in sends.iter().enumerate() {
            let dst = (r + 1) % p;
            next[dst] = next[dst].max(done);
        }
        clock = next;
    }
    clock.into_iter().fold(0.0, f64::max)
}

/// Simulate a Rabenseifner allreduce (recursive-halving reduce-scatter,
/// then recursive-doubling allgather) message by message — the algorithm
/// the analytic model prices for messages at or above the cutover. Ranks
/// beyond the largest power of two fold into a partner in a pre-round and
/// receive the result in a post-round, as in MPICH. Returns the completion
/// time in microseconds.
pub fn allreduce_rabenseifner_des(net: &mut Network, node_of_rank: &[usize], bytes: u64) -> f64 {
    let p = node_of_rank.len();
    if p <= 1 {
        return 0.0;
    }
    let steps = usize::BITS - 1 - p.leading_zeros(); // floor(log2 p)
    let p2 = 1usize << steps;
    let extras = p - p2;
    let mut clock = vec![0.0f64; p];
    // Pre-round: rank p2 + i folds its payload into rank i.
    for i in 0..extras {
        let src = p2 + i;
        let done = hop(net, node_of_rank[src], node_of_rank[i], bytes, clock[src]);
        clock[i] = clock[i].max(done);
    }
    // Reduce-scatter by recursive halving, then allgather by recursive
    // doubling: the same pairs exchange the same chunk sizes in reverse.
    let exchange = |net: &mut Network, clock: &mut [f64], step: u32, chunk: u64| {
        let mask = 1usize << step;
        for rank in 0..p2 {
            let partner = rank ^ mask;
            if partner < rank {
                continue; // handle each pair once, both directions below
            }
            let fwd = hop(
                net,
                node_of_rank[rank],
                node_of_rank[partner],
                chunk,
                clock[rank],
            );
            let rev = hop(
                net,
                node_of_rank[partner],
                node_of_rank[rank],
                chunk,
                clock[partner],
            );
            let t = fwd.max(rev);
            clock[rank] = t;
            clock[partner] = t;
        }
    };
    for step in 0..steps {
        exchange(net, &mut clock, step, (bytes >> (step + 1)).max(1));
    }
    for step in (0..steps).rev() {
        exchange(net, &mut clock, step, (bytes >> (step + 1)).max(1));
    }
    // Post-round: results flow back to the folded ranks.
    for i in 0..extras {
        let dst = p2 + i;
        let done = hop(net, node_of_rank[i], node_of_rank[dst], bytes, clock[i]);
        clock[dst] = clock[dst].max(done);
    }
    clock.into_iter().fold(0.0, f64::max)
}

/// Binomial-tree reduce (or, reversed, broadcast) of `bytes` across the
/// `ranks` resident on one `node`, message by message over the
/// shared-memory transport. Returns the completion time given per-rank
/// start clocks of zero.
fn shm_tree_des(net: &mut Network, node: usize, ranks: usize, bytes: u64) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let mut clock = vec![0.0f64; ranks];
    let rounds = usize::BITS - (ranks - 1).leading_zeros();
    for round in 0..rounds {
        let stride = 1usize << round;
        let mut idx = 0;
        while idx + stride < ranks {
            let done = hop(net, node, node, bytes, clock[idx + stride]);
            clock[idx] = clock[idx].max(done);
            idx += stride * 2;
        }
    }
    clock[0]
}

/// Message-level simulation of the full **hierarchical** allreduce the
/// analytic [`crate::collectives::allreduce_time_us`] model prices: a
/// binomial on-node reduce over the shared-memory transport, an inter-node
/// leader allreduce (recursive doubling below the algorithm cutover,
/// Rabenseifner at or above it — the same [`collectives::select_algorithm`]
/// rule), and an on-node broadcast of the result. During the
/// bandwidth-bound leader leg every node injects simultaneously, so the
/// fabric is derated to the topology's bisection factor via
/// [`Network::set_congestion`]. This is the ground truth the conformance
/// suite's differential sweeps hold the closed forms to.
///
/// [`collectives::select_algorithm`]: crate::collectives::select_algorithm
pub fn allreduce_hierarchical_des(net: &mut Network, node_of_rank: &[usize], bytes: u64) -> f64 {
    let p = node_of_rank.len();
    if p <= 1 {
        return 0.0;
    }
    let mut nodes = node_of_rank.to_vec();
    nodes.sort_unstable();
    nodes.dedup();
    // Phases 1 and 3: on-node binomial reduce, then broadcast back out.
    // Nodes proceed independently; the phase ends when the slowest does.
    let shm_phase = |net: &mut Network, nodes: &[usize]| -> f64 {
        nodes
            .iter()
            .map(|&node| {
                let local = node_of_rank.iter().filter(|&&n| n == node).count();
                shm_tree_des(net, node, local, bytes)
            })
            .fold(0.0, f64::max)
    };
    let reduce_t = shm_phase(net, &nodes);
    // Phase 2: leaders allreduce across the wire.
    let inter_t = if nodes.len() > 1 {
        match crate::collectives::select_algorithm(bytes) {
            crate::collectives::CollectiveAlgorithm::RecursiveDoubling => {
                allreduce_recursive_doubling_des(net, &nodes, bytes)
            }
            crate::collectives::CollectiveAlgorithm::Ring => {
                let fabric = net.topology().bisection_factor();
                net.set_congestion(fabric);
                let t = allreduce_rabenseifner_des(net, &nodes, bytes);
                net.set_congestion(1.0);
                t
            }
        }
    } else {
        0.0
    };
    let bcast_t = shm_phase(net, &nodes);
    reduce_t + inter_t + bcast_t
}

/// One round of a leader's precomputed pairwise-exchange schedule: an
/// optional send of `bytes` to `(dst leader, dst round index)` issued on
/// entering the round, and optionally one expected arrival gating exit.
struct ExchangeRound {
    send: Option<(usize, u32)>,
    bytes: u64,
    expect: bool,
}

/// Recursive-doubling schedule over `p` leaders: `ceil(log2 p)` rounds, in
/// round `k` leader `r` exchanges the full payload with `r ^ (1 << k)`.
/// Leaders whose partner falls beyond `p` (virtual power-of-two padding)
/// idle through that round, as in [`allreduce_recursive_doubling_des`].
fn doubling_schedule(p: usize, bytes: u64) -> Vec<Vec<ExchangeRound>> {
    let rounds = usize::BITS - (p - 1).leading_zeros();
    (0..p)
        .map(|rank| {
            (0..rounds)
                .map(|k| {
                    let partner = rank ^ (1usize << k);
                    if partner < p {
                        ExchangeRound {
                            send: Some((partner, k)),
                            bytes,
                            expect: true,
                        }
                    } else {
                        ExchangeRound {
                            send: None,
                            bytes: 0,
                            expect: false,
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// Rabenseifner schedule over `p` leaders: recursive-halving
/// reduce-scatter then recursive-doubling allgather (the same pairs, same
/// chunk sizes, mirrored), with leaders beyond the largest power of two
/// folding into a partner in a pre-round and receiving the result in a
/// post-round, as in [`allreduce_rabenseifner_des`].
fn rabenseifner_schedule(p: usize, bytes: u64) -> Vec<Vec<ExchangeRound>> {
    let steps = usize::BITS - 1 - p.leading_zeros(); // floor(log2 p)
    let p2 = 1usize << steps;
    let extras = p - p2;
    // Leaders below `extras` open with a pre-round arrival slot, shifting
    // their exchange rounds by one.
    let offset = |rank: usize| -> u32 { u32::from(rank < extras) };
    (0..p)
        .map(|rank| {
            if rank >= p2 {
                // Folded leader: hand off at the start, collect at the end.
                return vec![
                    ExchangeRound {
                        send: Some((rank - p2, 0)),
                        bytes,
                        expect: false,
                    },
                    ExchangeRound {
                        send: None,
                        bytes: 0,
                        expect: true,
                    },
                ];
            }
            let mut rounds = Vec::with_capacity(2 * steps as usize + 2);
            if rank < extras {
                rounds.push(ExchangeRound {
                    send: None,
                    bytes: 0,
                    expect: true,
                });
            }
            for s in 0..2 * steps {
                let h = if s < steps { s } else { 2 * steps - 1 - s };
                let partner = rank ^ (1usize << h);
                rounds.push(ExchangeRound {
                    send: Some((partner, offset(partner) + s)),
                    bytes: (bytes >> (h + 1)).max(1),
                    expect: true,
                });
            }
            if rank < extras {
                rounds.push(ExchangeRound {
                    send: Some((p2 + rank, 1)),
                    bytes,
                    expect: false,
                });
            }
            rounds
        })
        .collect()
}

/// Message payload of the engine-driven leader allreduce.
#[derive(Debug, Clone, Copy)]
enum LeaderMsg {
    /// Root event: the leader enters round 0 at time zero.
    Start,
    /// A partner's chunk for the given round index arrived.
    Arrive(u32),
}

/// Per-leader progress through its exchange schedule.
#[derive(Debug, Clone)]
struct LeaderState {
    clock: f64,
    round: usize,
    sent: bool,
    arrived: Vec<f64>, // per round; NaN = not yet
}

/// Advance leader `e` through its schedule as far as buffered arrivals
/// allow: each round's send is issued once at the clock the leader entered
/// with, and an expected round is left only when its arrival is in —
/// `clock = max(clock, arrival)`, the LogGP dependency rule.
fn pump_leader<F>(
    ctx: &mut Ctx<'_, LeaderState, LeaderMsg>,
    e: usize,
    schedule: &[ExchangeRound],
    node_of_leader: &[usize],
    flight: &F,
) where
    F: Fn(usize, usize, u64) -> f64,
{
    loop {
        let (r, clock, sent) = {
            let st = ctx.state(e);
            (st.round, st.clock, st.sent)
        };
        if r >= schedule.len() {
            break;
        }
        let round = &schedule[r];
        if !sent {
            ctx.state(e).sent = true;
            if let Some((dst, dst_round)) = round.send {
                let t = clock + flight(node_of_leader[e], node_of_leader[dst], round.bytes);
                ctx.emit(dst, t, LeaderMsg::Arrive(dst_round));
            }
        }
        if round.expect {
            let arrival = ctx.state(e).arrived[r];
            if arrival.is_nan() {
                break;
            }
            let st = ctx.state(e);
            st.clock = st.clock.max(arrival);
        }
        let st = ctx.state(e);
        st.round += 1;
        st.sent = false;
    }
}

/// Event-engine simulation of the hierarchical allreduce, routed through a
/// [`DesBackend`]: closed-form on-node shm reduce/broadcast phases (which
/// the pure-flight binomial tree prices exactly) around an event-driven
/// inter-node leader leg on the serial or sharded engine. The leader leg
/// runs the same algorithm the analytic model selects — recursive doubling
/// below the cutover, Rabenseifner (with the fabric derated to the
/// topology's bisection factor) at or above it.
///
/// Serial and sharded backends produce **bit-identical** times at every
/// shard count — the engine's determinism guarantee, pinned by the conform
/// `des` suite. Returns `(completion time in microseconds, engine run
/// statistics)`; stats are zero when fewer than two nodes are involved.
pub fn allreduce_des_stats(
    net: &Network,
    node_of_rank: &[usize],
    bytes: u64,
    backend: DesBackend,
) -> (f64, RunStats) {
    let p = node_of_rank.len();
    if p <= 1 {
        return (0.0, RunStats::default());
    }
    let mut nodes = node_of_rank.to_vec();
    nodes.sort_unstable();
    nodes.dedup();
    // Phases 1 and 3: binomial shm tree per node, priced in closed form —
    // under pure flights the tree root finishes after exactly
    // ceil(log2(local)) * shm_flight, which is shm_tree_des to the bit.
    let mut local = vec![0u32; nodes.last().map_or(0, |&n| n + 1)];
    for &n in node_of_rank {
        local[n] += 1;
    }
    let max_local = nodes.iter().map(|&n| local[n]).max().unwrap_or(1);
    let shm_phase = if max_local > 1 {
        let rounds = 32 - (max_local - 1).leading_zeros();
        f64::from(rounds) * net.flight_time_us(nodes[0], nodes[0], bytes)
    } else {
        0.0
    };
    // Phase 2: leaders exchange over the wire on the selected engine.
    let (inter_t, stats) = if nodes.len() > 1 {
        let algo = crate::collectives::select_algorithm(bytes);
        let (schedule, fabric) = match algo {
            crate::collectives::CollectiveAlgorithm::RecursiveDoubling => {
                (doubling_schedule(nodes.len(), bytes), 1.0)
            }
            crate::collectives::CollectiveAlgorithm::Ring => (
                rabenseifner_schedule(nodes.len(), bytes),
                net.topology().bisection_factor(),
            ),
        };
        let link = net.link();
        let topo = net.topology();
        let flight = move |a: usize, b: usize, chunk: u64| -> f64 {
            let hops = topo.hops(a, b);
            let base = link.latency_us + f64::from(hops) * link.per_hop_us;
            let wire = chunk as f64 / (link.injection_bw_gbs() * fabric * 1e3);
            if chunk >= link.rendezvous_cutover_bytes {
                2.0 * base + wire
            } else {
                base + wire
            }
        };
        // Every cross-shard flight is a wire flight (leaders sit on
        // distinct nodes), so the link latency is a sound lookahead.
        let mut engine: ShardedEventQueue<LeaderMsg> =
            ShardedEventQueue::for_backend(backend, topo, &nodes, link.latency_us);
        let mut states: Vec<LeaderState> = schedule
            .iter()
            .map(|rounds| LeaderState {
                clock: 0.0,
                round: 0,
                sent: false,
                arrived: vec![f64::NAN; rounds.len()],
            })
            .collect();
        for e in 0..nodes.len() {
            engine.schedule_at(e, 0.0, LeaderMsg::Start);
        }
        let threads = backend
            .shards()
            .min(densela::pool::available_parallelism())
            .max(1);
        let pool = densela::KernelPool::new(threads);
        let stats = engine.run(&pool, &mut states, |ctx, t, e, msg| {
            if let LeaderMsg::Arrive(round) = msg {
                let st = ctx.state(e);
                debug_assert!(st.arrived[round as usize].is_nan(), "duplicate arrival");
                st.arrived[round as usize] = t;
            }
            pump_leader(ctx, e, &schedule[e], &nodes, &flight);
        });
        let inter = states
            .iter()
            .enumerate()
            .map(|(e, st)| {
                assert_eq!(st.round, schedule[e].len(), "leader {e} did not finish");
                st.clock
            })
            .fold(0.0, f64::max);
        (inter, stats)
    } else {
        (0.0, RunStats::default())
    };
    (shm_phase + inter_t + shm_phase, stats)
}

/// [`allreduce_des_stats`] without the statistics: the backend-routed
/// completion time in microseconds.
pub fn allreduce_des(
    net: &Network,
    node_of_rank: &[usize],
    bytes: u64,
    backend: DesBackend,
) -> f64 {
    allreduce_des_stats(net, node_of_rank, bytes, backend).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::allreduce_time_us;
    use archsim::InterconnectKind;

    fn one_rank_per_node(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn des_transfers_emit_hop_spans_without_perturbing_time() {
        let placement = one_rank_per_node(4);
        let mut net = Network::new(InterconnectKind::EdrInfiniband, 4);
        let plain = allreduce_recursive_doubling_des(&mut net, &placement, 4096);
        let rec = std::sync::Arc::new(obs::MemRecorder::new());
        let traced = obs::with_recorder(rec.clone(), || {
            let mut net = Network::new(InterconnectKind::EdrInfiniband, 4);
            allreduce_recursive_doubling_des(&mut net, &placement, 4096)
        });
        assert_eq!(
            traced.to_bits(),
            plain.to_bits(),
            "recording moved the DES clock"
        );
        let hops: Vec<_> = rec
            .spans()
            .iter()
            .filter(|s| s.cat == "net" && s.name == "net.hop")
            .cloned()
            .collect();
        // 4 ranks, 2 rounds of recursive doubling: 4 messages per round.
        assert_eq!(hops.len(), 8, "one span per simulated message");
        assert!(hops.iter().all(|s| s.dur_us > 0.0));
    }

    #[test]
    fn des_and_analytic_agree_for_small_messages() {
        // Latency-dominated regime: the analytic recursive-doubling model
        // must agree with the event-driven simulation within 2x.
        for nodes in [2usize, 4, 8, 16] {
            let placement = one_rank_per_node(nodes);
            let mut net = Network::new(InterconnectKind::EdrInfiniband, nodes);
            let des = allreduce_recursive_doubling_des(&mut net, &placement, 8);
            let net2 = Network::new(InterconnectKind::EdrInfiniband, nodes);
            let analytic = allreduce_time_us(&net2, &placement, 8);
            let ratio = des / analytic;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{nodes} nodes: DES {des:.2}us vs analytic {analytic:.2}us"
            );
        }
    }

    #[test]
    fn des_and_analytic_agree_for_large_messages() {
        // Bandwidth-dominated regime: ring DES vs the Rabenseifner closed
        // form, within 2.5x (different algorithms, same asymptotic volume).
        for nodes in [4usize, 8] {
            let placement = one_rank_per_node(nodes);
            let mut net = Network::new(InterconnectKind::TofuD, nodes);
            let des = allreduce_ring_des(&mut net, &placement, 8 << 20);
            let net2 = Network::new(InterconnectKind::TofuD, nodes);
            let analytic = allreduce_time_us(&net2, &placement, 8 << 20);
            let ratio = des / analytic;
            assert!(
                (0.4..=2.5).contains(&ratio),
                "{nodes} nodes: DES {des:.1}us vs analytic {analytic:.1}us"
            );
        }
    }

    #[test]
    fn des_allreduce_grows_logarithmically() {
        let t4 = {
            let mut n = Network::new(InterconnectKind::Aries, 4);
            allreduce_recursive_doubling_des(&mut n, &one_rank_per_node(4), 8)
        };
        let t16 = {
            let mut n = Network::new(InterconnectKind::Aries, 16);
            allreduce_recursive_doubling_des(&mut n, &one_rank_per_node(16), 8)
        };
        // log2(16)/log2(4) = 2: latency-bound growth is logarithmic.
        assert!(t16 < 3.5 * t4, "t4={t4} t16={t16}");
        assert!(t16 > t4);
    }

    #[test]
    fn des_handles_non_power_of_two() {
        let mut net = Network::new(InterconnectKind::OmniPath, 6);
        let t = allreduce_recursive_doubling_des(&mut net, &one_rank_per_node(6), 1024);
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn single_rank_is_free() {
        let mut net = Network::new(InterconnectKind::TofuD, 1);
        assert_eq!(allreduce_recursive_doubling_des(&mut net, &[0], 8), 0.0);
        assert_eq!(allreduce_ring_des(&mut net, &[0], 8), 0.0);
    }

    #[test]
    fn rabenseifner_des_tracks_analytic_closed_form() {
        // The analytic large-message model prices Rabenseifner; simulating
        // Rabenseifner message by message must land close for one rank per
        // node on a non-blocking fabric.
        for nodes in [4usize, 8, 16] {
            let placement = one_rank_per_node(nodes);
            let mut net = Network::new(InterconnectKind::EdrInfiniband, nodes);
            let des = allreduce_rabenseifner_des(&mut net, &placement, 8 << 20);
            let net2 = Network::new(InterconnectKind::EdrInfiniband, nodes);
            let analytic = allreduce_time_us(&net2, &placement, 8 << 20);
            let ratio = des / analytic;
            assert!(
                (0.75..=1.35).contains(&ratio),
                "{nodes} nodes: DES {des:.1}us vs analytic {analytic:.1}us"
            );
        }
    }

    #[test]
    fn rabenseifner_des_handles_non_power_of_two() {
        for nodes in [3usize, 5, 6, 7, 12] {
            let mut net = Network::new(InterconnectKind::TofuD, nodes);
            let t = allreduce_rabenseifner_des(&mut net, &one_rank_per_node(nodes), 1 << 20);
            assert!(t > 0.0 && t.is_finite(), "{nodes} nodes");
        }
    }

    #[test]
    fn hierarchical_des_free_for_one_rank_and_positive_otherwise() {
        let mut net = Network::new(InterconnectKind::EdrInfiniband, 4);
        assert_eq!(allreduce_hierarchical_des(&mut net, &[0], 1024), 0.0);
        // 4 nodes x 4 ranks.
        let placement: Vec<usize> = (0..16).map(|r| r / 4).collect();
        let t = allreduce_hierarchical_des(&mut net, &placement, 1024);
        assert!(t > 0.0 && t.is_finite());
        // Congestion is always restored afterwards.
        assert_eq!(net.congestion(), 1.0);
        let big = allreduce_hierarchical_des(&mut net, &placement, 8 << 20);
        assert!(big > t);
        assert_eq!(net.congestion(), 1.0);
    }

    #[test]
    fn hierarchical_des_matches_analytic_shm_phases_on_one_node() {
        // Everything on one node: no wire, just the two shm tree phases —
        // which the DES and the closed form model identically.
        let placement = vec![0usize; 8];
        let mut net = Network::new(InterconnectKind::Aries, 2);
        let des = allreduce_hierarchical_des(&mut net, &placement, 4096);
        let net2 = Network::new(InterconnectKind::Aries, 2);
        let analytic = allreduce_time_us(&net2, &placement, 4096);
        assert!(
            (des - analytic).abs() <= 1e-9 * analytic.max(1.0),
            "DES {des} vs analytic {analytic}"
        );
    }

    #[test]
    fn ring_beats_doubling_for_huge_payloads() {
        // The classic algorithm-selection rule the cutover constant encodes.
        let placement = one_rank_per_node(8);
        let bytes = 32 << 20;
        let mut n1 = Network::new(InterconnectKind::EdrInfiniband, 8);
        let ring = allreduce_ring_des(&mut n1, &placement, bytes);
        let mut n2 = Network::new(InterconnectKind::EdrInfiniband, 8);
        let doubling = allreduce_recursive_doubling_des(&mut n2, &placement, bytes);
        assert!(ring < doubling, "ring {ring} vs doubling {doubling}");
    }

    #[test]
    fn backend_routed_allreduce_is_bit_identical_across_shard_counts() {
        // The engine's core guarantee: serial and sharded runs produce the
        // same completion time to the bit, for both collective algorithms,
        // mixed placements, and non-power-of-two leader counts.
        let placements: Vec<Vec<usize>> = vec![
            one_rank_per_node(6),
            one_rank_per_node(16),
            vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4],
            vec![0, 2, 2, 5, 5, 5, 7],
        ];
        for kind in [
            InterconnectKind::TofuD,
            InterconnectKind::Aries,
            InterconnectKind::EdrInfiniband,
        ] {
            for placement in &placements {
                for bytes in [8u64, 4096, 1 << 20] {
                    let nodes = placement.iter().max().unwrap() + 1;
                    let net = Network::new(kind, nodes);
                    let serial = allreduce_des(&net, placement, bytes, DesBackend::Serial);
                    for shards in [2usize, 4] {
                        let sharded =
                            allreduce_des(&net, placement, bytes, DesBackend::Sharded { shards });
                        assert_eq!(
                            serial.to_bits(),
                            sharded.to_bits(),
                            "{kind:?} {placement:?} {bytes}B: serial {serial} vs sharded{shards} {sharded}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn backend_routed_allreduce_tracks_the_analytic_model() {
        // Same algorithm, same flight pricing, different accounting of
        // overlap: the engine and the closed form should stay within 2.5x
        // in both the latency- and bandwidth-dominated regimes.
        for nodes in [4usize, 16, 64] {
            for bytes in [8u64, 1 << 20] {
                let placement = one_rank_per_node(nodes);
                let net = Network::new(InterconnectKind::TofuD, nodes);
                let des = allreduce_des(&net, &placement, bytes, DesBackend::Serial);
                let analytic = allreduce_time_us(&net, &placement, bytes);
                let ratio = des / analytic;
                assert!(
                    (0.4..=2.5).contains(&ratio),
                    "{nodes} nodes {bytes}B: DES {des:.2}us vs analytic {analytic:.2}us"
                );
            }
        }
    }

    #[test]
    fn backend_routed_allreduce_matches_shm_closed_form_on_one_node() {
        // Single node: no wire leg, just the two shm tree phases, which
        // the closed-form analytic model prices identically.
        let placement = vec![0usize; 8];
        let net = Network::new(InterconnectKind::Aries, 2);
        let des = allreduce_des(&net, &placement, 4096, DesBackend::Sharded { shards: 4 });
        let analytic = allreduce_time_us(&net, &placement, 4096);
        assert!(
            (des - analytic).abs() <= 1e-9 * analytic.max(1.0),
            "DES {des} vs analytic {analytic}"
        );
        // And the degenerate cases are free.
        assert_eq!(allreduce_des(&net, &[0], 4096, DesBackend::Serial), 0.0);
        assert_eq!(allreduce_des(&net, &[], 4096, DesBackend::Serial), 0.0);
    }

    #[test]
    fn backend_routed_allreduce_reports_run_stats() {
        let placement = one_rank_per_node(16);
        let net = Network::new(InterconnectKind::TofuD, 16);
        let (t, stats) = allreduce_des_stats(&net, &placement, 8, DesBackend::Serial);
        assert!(t > 0.0);
        // 16 leaders, 4 recursive-doubling rounds: 16 Start roots plus one
        // Arrive per message.
        assert_eq!(stats.events, 16 + 16 * 4);
        assert!(stats.windows > 0);
        let (t2, stats2) =
            allreduce_des_stats(&net, &placement, 8, DesBackend::Sharded { shards: 4 });
        assert_eq!(t.to_bits(), t2.to_bits());
        // Window count and event count are shard-invariant by construction.
        assert_eq!(stats.windows, stats2.windows);
        assert_eq!(stats.events, stats2.events);
        assert!(stats2.cross_msgs > 0, "4 shards must exchange messages");
    }
}
