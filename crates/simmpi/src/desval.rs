//! Message-level discrete-event validation of the collective cost models.
//!
//! The analytic models in [`crate::collectives`] price collectives with
//! closed forms. This module simulates the same algorithms **message by
//! message** on the `netsim` event queue — every send becomes an event, NIC
//! contention included — and the test suite checks the closed forms against
//! the event-driven ground truth. This is what keeps the fast analytic path
//! honest.

use netsim::{EventQueue, Network};

/// One message delivery in the event-driven allreduce.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    rank: usize,
    round: u32,
}

/// Simulate a recursive-doubling allreduce of `bytes` per rank, message by
/// message, over the given rank→node placement. Ranks are padded virtually
/// to the next power of two (extra ranks are free riders on node 0, as real
/// implementations fold them in a pre-round we conservatively skip).
/// Returns the completion time in microseconds.
pub fn allreduce_recursive_doubling_des(
    net: &mut Network,
    node_of_rank: &[usize],
    bytes: u64,
) -> f64 {
    let p = node_of_rank.len();
    if p <= 1 {
        return 0.0;
    }
    let rounds = usize::BITS - (p - 1).leading_zeros();
    let mut clock = vec![0.0f64; p];
    let mut q: EventQueue<Arrival> = EventQueue::new();

    // Round 0 sends are scheduled immediately; later rounds are scheduled
    // when both partners have finished the previous round. We process
    // rounds as barriers per pair, which recursive doubling implies.
    for round in 0..rounds {
        // Collect this round's exchanges at current clocks.
        let mask = 1usize << round;
        let mut arrivals: Vec<(usize, f64)> = Vec::new();
        for rank in 0..p {
            let partner = rank ^ mask;
            if partner >= p {
                continue; // padded rank: no message this round
            }
            let t_send = clock[rank];
            let done = net.transfer(node_of_rank[rank], node_of_rank[partner], bytes, t_send);
            q.schedule_at(
                done.max(q.now_us()),
                Arrival {
                    rank: partner,
                    round,
                },
            );
            arrivals.push((partner, done));
        }
        // Drain the round's events; each rank advances to its arrival.
        while let Some(ev) = q.pop() {
            debug_assert_eq!(ev.payload.round, round);
            let r = ev.payload.rank;
            clock[r] = clock[r].max(ev.time_us);
        }
        // Pair synchronisation: both sides proceed at the max of the pair.
        for rank in 0..p {
            let partner = rank ^ mask;
            if partner < p {
                let t = clock[rank].max(clock[partner]);
                clock[rank] = t;
                clock[partner] = t;
            }
        }
    }
    clock.into_iter().fold(0.0, f64::max)
}

/// Simulate a ring allreduce (reduce-scatter + allgather) message by
/// message. Returns the completion time in microseconds.
pub fn allreduce_ring_des(net: &mut Network, node_of_rank: &[usize], bytes: u64) -> f64 {
    let p = node_of_rank.len();
    if p <= 1 {
        return 0.0;
    }
    let chunk = (bytes / p as u64).max(1);
    let mut clock = vec![0.0f64; p];
    // 2(p-1) steps; in step s, rank r sends a chunk to (r+1) % p.
    for _step in 0..2 * (p - 1) {
        let sends: Vec<f64> = (0..p)
            .map(|r| {
                let dst = (r + 1) % p;
                net.transfer(node_of_rank[r], node_of_rank[dst], chunk, clock[r])
            })
            .collect();
        let mut next = clock.clone();
        for (r, &done) in sends.iter().enumerate() {
            let dst = (r + 1) % p;
            next[dst] = next[dst].max(done);
        }
        clock = next;
    }
    clock.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::allreduce_time_us;
    use archsim::InterconnectKind;

    fn one_rank_per_node(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn des_and_analytic_agree_for_small_messages() {
        // Latency-dominated regime: the analytic recursive-doubling model
        // must agree with the event-driven simulation within 2x.
        for nodes in [2usize, 4, 8, 16] {
            let placement = one_rank_per_node(nodes);
            let mut net = Network::new(InterconnectKind::EdrInfiniband, nodes);
            let des = allreduce_recursive_doubling_des(&mut net, &placement, 8);
            let net2 = Network::new(InterconnectKind::EdrInfiniband, nodes);
            let analytic = allreduce_time_us(&net2, &placement, 8);
            let ratio = des / analytic;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{nodes} nodes: DES {des:.2}us vs analytic {analytic:.2}us"
            );
        }
    }

    #[test]
    fn des_and_analytic_agree_for_large_messages() {
        // Bandwidth-dominated regime: ring DES vs the Rabenseifner closed
        // form, within 2.5x (different algorithms, same asymptotic volume).
        for nodes in [4usize, 8] {
            let placement = one_rank_per_node(nodes);
            let mut net = Network::new(InterconnectKind::TofuD, nodes);
            let des = allreduce_ring_des(&mut net, &placement, 8 << 20);
            let net2 = Network::new(InterconnectKind::TofuD, nodes);
            let analytic = allreduce_time_us(&net2, &placement, 8 << 20);
            let ratio = des / analytic;
            assert!(
                (0.4..=2.5).contains(&ratio),
                "{nodes} nodes: DES {des:.1}us vs analytic {analytic:.1}us"
            );
        }
    }

    #[test]
    fn des_allreduce_grows_logarithmically() {
        let t4 = {
            let mut n = Network::new(InterconnectKind::Aries, 4);
            allreduce_recursive_doubling_des(&mut n, &one_rank_per_node(4), 8)
        };
        let t16 = {
            let mut n = Network::new(InterconnectKind::Aries, 16);
            allreduce_recursive_doubling_des(&mut n, &one_rank_per_node(16), 8)
        };
        // log2(16)/log2(4) = 2: latency-bound growth is logarithmic.
        assert!(t16 < 3.5 * t4, "t4={t4} t16={t16}");
        assert!(t16 > t4);
    }

    #[test]
    fn des_handles_non_power_of_two() {
        let mut net = Network::new(InterconnectKind::OmniPath, 6);
        let t = allreduce_recursive_doubling_des(&mut net, &one_rank_per_node(6), 1024);
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn single_rank_is_free() {
        let mut net = Network::new(InterconnectKind::TofuD, 1);
        assert_eq!(allreduce_recursive_doubling_des(&mut net, &[0], 8), 0.0);
        assert_eq!(allreduce_ring_des(&mut net, &[0], 8), 0.0);
    }

    #[test]
    fn ring_beats_doubling_for_huge_payloads() {
        // The classic algorithm-selection rule the cutover constant encodes.
        let placement = one_rank_per_node(8);
        let bytes = 32 << 20;
        let mut n1 = Network::new(InterconnectKind::EdrInfiniband, 8);
        let ring = allreduce_ring_des(&mut n1, &placement, bytes);
        let mut n2 = Network::new(InterconnectKind::EdrInfiniband, 8);
        let doubling = allreduce_recursive_doubling_des(&mut n2, &placement, bytes);
        assert!(ring < doubling, "ring {ring} vs doubling {doubling}");
    }
}
