//! Rank and thread placement over nodes, memory domains and cores.
//!
//! The paper's methodology pins processes and threads to cores
//! ("Reproducibility", §III) and explores process/thread mixes explicitly
//! (Figure 1: 2 A64FX nodes running 96×1, 48×2, 16×6, 8×12 or 4×24
//! ranks×threads). `Placement` captures such a configuration and answers the
//! questions the cost model needs: which node and memory domain a rank lives
//! on, how many cores it owns, and how many ranks share each domain.

use archsim::Node;
use serde::{Deserialize, Serialize};

/// How ranks are distributed over a node's memory domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Fill domain 0's cores to capacity, then domain 1's, etc. (block
    /// placement; what you get without pinning on some MPI launchers).
    Packed,
    /// Deal ranks round-robin across domains (cyclic placement) — the usual
    /// best choice on the A64FX, giving each rank its own CMG slice.
    RoundRobinDomain,
}

/// A concrete layout of an MPI(+OpenMP) job on a system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    ranks: u32,
    ranks_per_node: u32,
    threads_per_rank: u32,
    nodes_used: u32,
    domains_per_node: u32,
    cores_per_node: u32,
    policy: PlacementPolicy,
}

impl Placement {
    /// Lay out `ranks` MPI ranks, `ranks_per_node` to a node, each owning
    /// `threads_per_rank` cores, over nodes shaped like `node`.
    ///
    /// # Errors
    /// Returns a descriptive error if the layout oversubscribes cores
    /// (ranks×threads per node exceeding the hardware threads available) or
    /// is degenerate.
    pub fn new(
        ranks: u32,
        ranks_per_node: u32,
        threads_per_rank: u32,
        node: &Node,
        policy: PlacementPolicy,
    ) -> Result<Self, String> {
        if ranks == 0 || ranks_per_node == 0 || threads_per_rank == 0 {
            return Err("ranks, ranks_per_node and threads_per_rank must be positive".into());
        }
        let hw_threads = node.cores() * node.processor.smt.max_threads();
        let per_node = ranks_per_node * threads_per_rank;
        if per_node > hw_threads {
            return Err(format!(
                "oversubscribed: {ranks_per_node} ranks x {threads_per_rank} threads = {per_node} \
                 > {hw_threads} hardware threads per node"
            ));
        }
        let nodes_used = ranks.div_ceil(ranks_per_node);
        Ok(Placement {
            ranks,
            ranks_per_node,
            threads_per_rank,
            nodes_used,
            domains_per_node: node.memory.num_domains() as u32,
            cores_per_node: node.cores(),
            policy,
        })
    }

    /// Fully-populated MPI-only layout: one rank per core, all cores used.
    pub fn mpi_only_full_node(nodes: u32, node: &Node) -> Self {
        Placement::new(
            nodes * node.cores(),
            node.cores(),
            1,
            node,
            PlacementPolicy::RoundRobinDomain,
        )
        .expect("full-node MPI layout is always valid")
    }

    /// The paper's preferred A64FX hybrid layout: one rank per memory domain
    /// (CMG), threads filling the domain's cores.
    pub fn one_rank_per_domain(nodes: u32, node: &Node) -> Self {
        let dpn = node.memory.num_domains() as u32;
        Placement::new(
            nodes * dpn,
            dpn,
            node.cores() / dpn,
            node,
            PlacementPolicy::RoundRobinDomain,
        )
        .expect("one-rank-per-domain layout is always valid")
    }

    /// Total MPI ranks.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// Ranks resident on each (full) node.
    pub fn ranks_per_node(&self) -> u32 {
        self.ranks_per_node
    }

    /// OpenMP threads (cores) owned by each rank.
    pub fn threads_per_rank(&self) -> u32 {
        self.threads_per_rank
    }

    /// Nodes the job occupies.
    pub fn nodes_used(&self) -> u32 {
        self.nodes_used
    }

    /// Total cores in use across the job.
    pub fn cores_used(&self) -> u32 {
        self.ranks * self.threads_per_rank
    }

    /// The node a rank runs on.
    pub fn node_of(&self, rank: u32) -> usize {
        (rank / self.ranks_per_node) as usize
    }

    /// The memory domain (NUMA node / CMG) a rank's first-touch memory is in.
    pub fn domain_of(&self, rank: u32) -> usize {
        let local = rank % self.ranks_per_node;
        match self.policy {
            PlacementPolicy::RoundRobinDomain => (local % self.domains_per_node) as usize,
            PlacementPolicy::Packed => {
                // Fill each domain's cores before moving to the next.
                let cores_per_domain = self.cores_per_node / self.domains_per_node;
                let capacity = (cores_per_domain / self.threads_per_rank).max(1);
                ((local / capacity) as usize).min(self.domains_per_node as usize - 1)
            }
        }
    }

    /// Number of ranks sharing the same memory domain as `rank` on its node.
    pub fn ranks_in_domain(&self, rank: u32) -> u32 {
        let node = self.node_of(rank);
        let dom = self.domain_of(rank);
        let lo = node as u32 * self.ranks_per_node;
        let hi = (lo + self.ranks_per_node).min(self.ranks);
        (lo..hi).filter(|&r| self.domain_of(r) == dom).count() as u32
    }

    /// Cores active in `rank`'s memory domain (its ranks × their threads).
    pub fn cores_active_in_domain(&self, rank: u32) -> u32 {
        self.ranks_in_domain(rank) * self.threads_per_rank
    }

    /// Per-node vector mapping each rank to its node, for the collectives'
    /// hierarchical decomposition.
    pub fn node_map(&self) -> Vec<usize> {
        (0..self.ranks).map(|r| self.node_of(r)).collect()
    }

    /// Ranks resident on the same node as `rank` (including itself).
    pub fn ranks_on_node(&self, rank: u32) -> u32 {
        let node = self.node_of(rank) as u32;
        let lo = node * self.ranks_per_node;
        let hi = (lo + self.ranks_per_node).min(self.ranks);
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::{system, SystemId};

    fn a64fx_node() -> Node {
        system(SystemId::A64fx).node
    }

    #[test]
    fn full_node_mpi_on_a64fx() {
        let p = Placement::mpi_only_full_node(2, &a64fx_node());
        assert_eq!(p.ranks(), 96);
        assert_eq!(p.nodes_used(), 2);
        assert_eq!(p.cores_used(), 96);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(48), 1);
        assert_eq!(p.node_of(95), 1);
    }

    #[test]
    fn one_rank_per_cmg_is_the_paper_hybrid_config() {
        // Figure 1: 8 ranks x 12 threads on 2 A64FX nodes is fastest.
        let p = Placement::one_rank_per_domain(2, &a64fx_node());
        assert_eq!(p.ranks(), 8);
        assert_eq!(p.threads_per_rank(), 12);
        assert_eq!(p.ranks_per_node(), 4);
        for r in 0..8 {
            assert_eq!(p.ranks_in_domain(r), 1, "each CMG hosts exactly one rank");
            assert_eq!(p.cores_active_in_domain(r), 12);
        }
    }

    #[test]
    fn round_robin_spreads_across_domains() {
        let p = Placement::new(8, 4, 1, &a64fx_node(), PlacementPolicy::RoundRobinDomain).unwrap();
        // 4 ranks on node 0 land in domains 0,1,2,3.
        let doms: Vec<_> = (0..4).map(|r| p.domain_of(r)).collect();
        assert_eq!(doms, vec![0, 1, 2, 3]);
    }

    #[test]
    fn packed_fills_domains_to_core_capacity() {
        // 24 single-thread ranks on an A64FX node: packed placement fills
        // CMG 0's 12 cores, then CMG 1's.
        let p = Placement::new(24, 24, 1, &a64fx_node(), PlacementPolicy::Packed).unwrap();
        assert_eq!(p.domain_of(0), 0);
        assert_eq!(p.domain_of(11), 0);
        assert_eq!(p.domain_of(12), 1);
        assert_eq!(p.domain_of(23), 1);
        // An underpopulated packed job starves: all 4 ranks share CMG 0.
        let q = Placement::new(4, 4, 1, &a64fx_node(), PlacementPolicy::Packed).unwrap();
        for r in 0..4 {
            assert_eq!(q.domain_of(r), 0);
        }
        assert_eq!(q.ranks_in_domain(0), 4);
    }

    #[test]
    fn oversubscription_rejected_on_a64fx() {
        // A64FX has no SMT: 49 ranks x 1 thread per node must fail.
        let err = Placement::new(49, 49, 1, &a64fx_node(), PlacementPolicy::Packed);
        assert!(err.is_err());
        // ... and 48 ranks x 2 threads likewise.
        assert!(Placement::new(48, 48, 2, &a64fx_node(), PlacementPolicy::Packed).is_err());
    }

    #[test]
    fn smt_allows_oversubscription_on_thunderx2() {
        let node = system(SystemId::Fulhame).node;
        // 64 cores, SMT4: 128 ranks per node is legal.
        assert!(Placement::new(128, 128, 1, &node, PlacementPolicy::Packed).is_ok());
        assert!(Placement::new(257, 257, 1, &node, PlacementPolicy::Packed).is_err());
    }

    #[test]
    fn partial_last_node() {
        let p = Placement::new(100, 48, 1, &a64fx_node(), PlacementPolicy::Packed).unwrap();
        assert_eq!(p.nodes_used(), 3);
        assert_eq!(p.ranks_on_node(99), 4); // 100 - 96 on the last node
    }

    #[test]
    fn node_map_length_and_monotonicity() {
        let p = Placement::mpi_only_full_node(4, &a64fx_node());
        let m = p.node_map();
        assert_eq!(m.len(), 192);
        assert!(m.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*m.last().unwrap(), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use archsim::{system, SystemId};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn every_rank_has_consistent_domain(
            sys_pick in 0usize..5,
            nodes in 1u32..8,
            rpn_seed in 1u32..65,
            tpr in 1u32..4,
            policy_pick in 0u8..2,
        ) {
            let id = SystemId::all()[sys_pick];
            let node = system(id).node;
            let rpn = (rpn_seed % node.cores()).max(1);
            let policy = if policy_pick == 0 { PlacementPolicy::Packed } else { PlacementPolicy::RoundRobinDomain };
            if let Ok(p) = Placement::new(nodes * rpn, rpn, tpr, &node, policy) {
                for r in 0..p.ranks() {
                    prop_assert!(p.domain_of(r) < node.memory.num_domains());
                    prop_assert!(p.node_of(r) < p.nodes_used() as usize);
                    prop_assert!(p.ranks_in_domain(r) >= 1);
                    prop_assert!(p.ranks_in_domain(r) <= p.ranks_per_node());
                }
                // Sum of ranks per domain on node 0 equals ranks on node 0.
                let on0: u32 = (0..p.ranks()).filter(|&r| p.node_of(r) == 0).count() as u32;
                prop_assert_eq!(on0, p.ranks_on_node(0));
            }
        }
    }
}
