//! # conform — the conformance harness
//!
//! Holds the simulation to its own published numbers and to itself:
//!
//! * [`golden`] — every paper table the experiment driver emits is
//!   snapshotted as versioned JSON with per-metric tolerance bands; a run
//!   diffs regenerated tables cell by cell and renders a reviewable report
//!   on drift. Re-blessing (`cargo run -p conform -- --bless`) is the one
//!   sanctioned way to move a golden.
//! * [`differential`] — the analytic collective cost models are pitted
//!   against the message-level discrete-event simulation across topology
//!   families, message sizes spanning the algorithm-selection crossover,
//!   and rank placements, with bounded relative error.
//! * [`parity`] — serial, spawn-per-call and persistent-pool kernels are
//!   forced to 2/4/8 configured threads and held to the runtime's
//!   bit-identity and repeat-determinism promises.
//! * [`resilience`] — the fault-injection layer with everything disabled
//!   must be bit-identical to the plain executor (strict additivity), and
//!   fault schedules must be pure functions of `(seed, system, nranks)`.
//! * [`obs`] — the tracing/metrics layer's determinism and purity: metric
//!   snapshots of HPCG and Nekbone on two systems are pinned byte-for-byte
//!   as goldens, double runs must reproduce metrics and Chrome-trace JSON
//!   exactly, and an installed recorder may not move a priced runtime by
//!   a single ulp.
//! * [`ecm`] — the cache-hierarchy ECM pricing backend must refine the
//!   flat roofline, never contradict it: a flat-vs-ECM differential sweep
//!   at forced 1/2/4 threads holds ECM under the flat envelope, within
//!   tolerance of flat at memory-resident working sets and strictly
//!   cheaper at L1-resident ones; E1 must be deterministic and invariant
//!   under the installed pricing default (its values are golden-pinned).
//! * [`sharded`] — the parallel sharded DES engine must be invisible:
//!   serial and 2/4-shard runs of the backend-routed allreduce are held to
//!   bit-identity on every differential sweep cell, and the event-driven
//!   model is held within a small factor of the analytic model at
//!   1024/4096 simulated nodes.
//! * [`attrib`] — the attribution layer on top of `obs`: the O1
//!   time-breakdown table is golden-pinned and byte-stable across double
//!   runs, the critical-path invariants (category totals sum to
//!   end-to-end bitwise, path bounded by extent) hold on every pinned
//!   job, and DES-engine internals never leak into app attribution.
//! * [`campaign`] — the crash-safe campaign layer's contracts: journal
//!   records round-trip byte-exactly, torn/bit-rotted journals load as
//!   the longest valid prefix, kill-and-resume reproduces an
//!   uninterrupted run byte for byte, retry leaves no mark on output,
//!   LRU trace-cache eviction is bit-transparent, and the fixed-seed
//!   chaos self-test passes with byte-identical double runs.
//!
//! The `conform` binary runs all nine suites (exit 1 on any failure);
//! `cargo test -p conform` runs them as ordinary tests.

#![warn(missing_docs)]

pub mod attrib;
pub mod campaign;
pub mod differential;
pub mod ecm;
pub mod golden;
pub mod json;
pub mod obs;
pub mod parity;
pub mod resilience;
pub mod sharded;

use a64fx_core::Table;

/// The outcome of one conformance suite.
pub struct SuiteResult {
    /// Suite name.
    pub name: &'static str,
    /// Rendered report (tables and/or diff lines).
    pub report: String,
    /// Failures; empty means the suite is conformant.
    pub failures: Vec<String>,
}

impl SuiteResult {
    /// Whether the suite passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run the golden-table suite (optionally re-blessing the snapshots).
pub fn golden_suite(bless: bool) -> SuiteResult {
    if bless {
        return match golden::bless_all() {
            Ok(written) => {
                let report = written
                    .iter()
                    .map(|(id, changed)| {
                        format!("blessed {id}{}", if *changed { " (changed)" } else { "" })
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
                SuiteResult {
                    name: "golden",
                    report,
                    failures: Vec::new(),
                }
            }
            Err(e) => SuiteResult {
                name: "golden",
                report: String::new(),
                failures: vec![e],
            },
        };
    }
    let r = golden::check_all();
    SuiteResult {
        name: "golden",
        report: format!(
            "{} tables checked against {}",
            r.checked,
            golden::goldens_dir().display()
        ),
        failures: r.diffs,
    }
}

/// Run the DES-vs-analytic differential sweep.
pub fn differential_suite() -> SuiteResult {
    let (table, failures) = differential::run();
    SuiteResult {
        name: "differential",
        report: render(&table),
        failures,
    }
}

/// Run the kernel-parity suite.
pub fn parity_suite() -> SuiteResult {
    let (table, failures) = parity::run();
    SuiteResult {
        name: "parity",
        report: render(&table),
        failures,
    }
}

/// Run the fault-off resilience parity and schedule-determinism suite.
pub fn resilience_suite() -> SuiteResult {
    let (table, failures) = resilience::run();
    SuiteResult {
        name: "resilience",
        report: render(&table),
        failures,
    }
}

/// Run the observability suite (optionally re-blessing the pinned metric
/// snapshots).
pub fn obs_suite(bless: bool) -> SuiteResult {
    if bless {
        return match obs::bless_all() {
            Ok(written) => {
                let report = written
                    .iter()
                    .map(|(id, changed)| {
                        format!("blessed {id}{}", if *changed { " (changed)" } else { "" })
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
                SuiteResult {
                    name: "obs",
                    report,
                    failures: Vec::new(),
                }
            }
            Err(e) => SuiteResult {
                name: "obs",
                report: String::new(),
                failures: vec![e],
            },
        };
    }
    let (table, failures) = obs::run();
    SuiteResult {
        name: "obs",
        report: render(&table),
        failures,
    }
}

/// Run the sharded-DES bit-identity and at-scale fidelity suite.
pub fn des_suite() -> SuiteResult {
    let (table, failures) = sharded::run();
    SuiteResult {
        name: "des",
        report: render(&table),
        failures,
    }
}

/// Run the ECM-pricing differential and invariance suite.
pub fn ecm_suite() -> SuiteResult {
    let (table, failures) = ecm::run();
    SuiteResult {
        name: "ecm",
        report: render(&table),
        failures,
    }
}

/// Run the attribution (critical-path analysis) suite.
pub fn attrib_suite() -> SuiteResult {
    let (table, failures) = attrib::run();
    SuiteResult {
        name: "attrib",
        report: render(&table),
        failures,
    }
}

/// Run the crash-safe campaign robustness suite.
pub fn campaign_suite() -> SuiteResult {
    let (table, failures) = campaign::run();
    SuiteResult {
        name: "campaign",
        report: render(&table),
        failures,
    }
}

/// Render a report table as aligned plain text.
pub fn render(t: &Table) -> String {
    let mut widths: Vec<usize> = t.headers.iter().map(String::len).collect();
    for row in &t.rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let mut out = format!("{}: {}\n", t.id, t.title);
    out.push_str(&fmt_row(&t.headers));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &t.rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    for note in &t.notes {
        out.push_str(&format!("note: {note}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("X", "demo", &["a", "longer"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.note("n");
        let s = render(&t);
        assert!(s.contains("a  longer"), "{s}");
        assert!(s.contains("note: n"), "{s}");
    }
}
