//! Sharded-DES conformance: the parallel engine must be an *invisible*
//! optimisation.
//!
//! Two obligations, both pinned here:
//!
//! 1. **Bit-identity.** For every cell of the differential sweep (all four
//!    topology families × three placements × five message sizes), the
//!    backend-routed [`simmpi::desval::allreduce_des`] must produce the
//!    same `f64`, bit for bit, on the serial heap and on the sharded
//!    engine at 2 and 4 shards — and the shard-invariant run statistics
//!    (event and window counts) must match exactly. This is the engine's
//!    determinism guarantee: conservative-lookahead windows process each
//!    entity's events in the same `(time, seq)` order as the serial heap.
//! 2. **Fidelity at scale.** At 1024 and 4096 simulated nodes — beyond
//!    what the differential suite sweeps — the event-driven model must
//!    stay within a small factor of the closed-form analytic model, in
//!    both the latency-bound and bandwidth-bound regimes. This is the
//!    regime the sharded engine exists for (D1 pushes it to 131072).

use a64fx_core::Table;
use archsim::InterconnectKind;
use netsim::{DesBackend, Network};
use simmpi::collectives::allreduce_time_us;
use simmpi::desval::allreduce_des_stats;

use crate::differential::{sweep_placements, FAMILIES, SWEEP_BYTES, SWEEP_NODES};

/// Shard counts the bit-identity sweep forces (besides serial).
pub const SHARD_COUNTS: [usize; 2] = [2, 4];

/// Scales of the DES-vs-analytic fidelity check (one rank per node).
pub const SCALE_NODES: [usize; 2] = [1024, 4096];

/// DES/analytic ratio bounds at scale: the engine and the closed form
/// share flight pricing but account for overlap differently, so they may
/// drift apart — but never past a small factor.
pub const SCALE_RATIO_BOUNDS: (f64, f64) = (0.3, 3.0);

/// Run the sharded-DES suite: the bit-identity sweep, then the at-scale
/// fidelity check. Returns the report table and any failures.
pub fn run() -> (Table, Vec<String>) {
    let mut table = Table::new(
        "DES",
        "Sharded engine: bit-identity vs serial on the differential sweep, \
         then DES-vs-analytic fidelity at scale",
        &["Check", "Case", "Serial us", "Sharded", "Verdict"],
    );
    let mut failures = Vec::new();

    // 1. Bit-identity over the full differential sweep.
    let mut cells = 0usize;
    let mut mismatches = 0usize;
    for kind in FAMILIES {
        for (label, placement) in sweep_placements() {
            let map = placement.node_map();
            for bytes in SWEEP_BYTES {
                let net = Network::new(kind, SWEEP_NODES as usize);
                let (serial, sstats) = allreduce_des_stats(&net, &map, bytes, DesBackend::Serial);
                for shards in SHARD_COUNTS {
                    cells += 1;
                    let (sharded, pstats) =
                        allreduce_des_stats(&net, &map, bytes, DesBackend::Sharded { shards });
                    if serial.to_bits() != sharded.to_bits() {
                        mismatches += 1;
                        failures.push(format!(
                            "{} / {label} / {bytes} B: serial {serial:.6}us != sharded{shards} {sharded:.6}us",
                            kind.name()
                        ));
                    }
                    if (sstats.events, sstats.windows) != (pstats.events, pstats.windows) {
                        mismatches += 1;
                        failures.push(format!(
                            "{} / {label} / {bytes} B: sharded{shards} stats drifted: \
                             {}/{} events, {}/{} windows",
                            kind.name(),
                            sstats.events,
                            pstats.events,
                            sstats.windows,
                            pstats.windows
                        ));
                    }
                }
            }
        }
    }
    table.push_row(vec![
        "bit-identity".to_string(),
        format!(
            "{cells} cells ({} families x {} placements x {} sizes x {} shard counts)",
            FAMILIES.len(),
            sweep_placements().len(),
            SWEEP_BYTES.len(),
            SHARD_COUNTS.len()
        ),
        "-".to_string(),
        "-".to_string(),
        if mismatches == 0 {
            "identical".to_string()
        } else {
            format!("{mismatches} MISMATCHES")
        },
    ]);

    // 2. Fidelity at scale, on the sharded engine (4 shards).
    for nodes in SCALE_NODES {
        for bytes in [8u64, 64 * 1024] {
            let placement: Vec<usize> = (0..nodes).collect();
            let net = Network::new(InterconnectKind::TofuD, nodes);
            let analytic = allreduce_time_us(&net, &placement, bytes);
            let (des, _) =
                allreduce_des_stats(&net, &placement, bytes, DesBackend::Sharded { shards: 4 });
            let ratio = des / analytic;
            let (lo, hi) = SCALE_RATIO_BOUNDS;
            let ok = ratio.is_finite() && (lo..=hi).contains(&ratio);
            table.push_row(vec![
                "at-scale".to_string(),
                format!("{nodes} nodes, {bytes} B"),
                format!("{analytic:.2} (analytic)"),
                format!("{des:.2}"),
                format!("ratio {ratio:.2}"),
            ]);
            if !ok {
                failures.push(format!(
                    "{nodes} nodes / {bytes} B: DES {des:.2}us vs analytic {analytic:.2}us — \
                     ratio {ratio:.2} outside [{lo}, {hi}]"
                ));
            }
        }
    }
    // 3. Metric export equality: the serial engine counts every pop into
    //    `des.events.popped`; the sharded engine exports its RunStats
    //    event total as `des.shard.events`. For the same run they must
    //    agree exactly — the obs counters are attribution evidence, not
    //    approximations.
    for (nodes, bytes) in [(64usize, 8u64), (256, 64 * 1024)] {
        let placement: Vec<usize> = (0..nodes).collect();
        let net = Network::new(InterconnectKind::TofuD, nodes);
        let srec = std::sync::Arc::new(obs::MemRecorder::new());
        obs::with_recorder(srec.clone(), || {
            allreduce_des_stats(&net, &placement, bytes, DesBackend::Serial)
        });
        let serial_popped = srec.counter("des.events.popped").unwrap_or(0);
        for shards in SHARD_COUNTS {
            let prec = std::sync::Arc::new(obs::MemRecorder::new());
            obs::with_recorder(prec.clone(), || {
                allreduce_des_stats(&net, &placement, bytes, DesBackend::Sharded { shards })
            });
            let sharded_events = prec.counter("des.shard.events").unwrap_or(0);
            let ok = serial_popped == sharded_events && serial_popped > 0;
            table.push_row(vec![
                "event counters".to_string(),
                format!("{nodes} nodes, {bytes} B, {shards} shards"),
                format!("{serial_popped} popped"),
                format!("{sharded_events} events"),
                if ok {
                    "equal".to_string()
                } else {
                    "MISMATCH".to_string()
                },
            ]);
            if !ok {
                failures.push(format!(
                    "{nodes} nodes / {bytes} B / {shards} shards: serial des.events.popped \
                     {serial_popped} != sharded des.shard.events {sharded_events}"
                ));
            }
        }
    }

    table.note(
        "Bit-identity holds by construction: per-entity event order is \
         shard-count-invariant under conservative-lookahead windows.",
    );
    (table, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_suite_passes() {
        let (table, failures) = run();
        assert!(failures.is_empty(), "{failures:?}");
        // One bit-identity summary row, one row per at-scale cell, and
        // one counter-equality row per (config, shard count).
        assert_eq!(
            table.rows.len(),
            1 + SCALE_NODES.len() * 2 + 2 * SHARD_COUNTS.len()
        );
        assert!(table.rows[0][4] == "identical", "{:?}", table.rows[0]);
        assert!(
            table
                .rows
                .iter()
                .filter(|r| r[0] == "event counters")
                .all(|r| r[4] == "equal"),
            "counter rows must agree"
        );
    }
}
