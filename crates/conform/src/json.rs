//! A minimal JSON reader for the golden snapshot files.
//!
//! The workspace's `serde` is an offline marker stub (no real
//! serialisation), so the conformance harness carries its own parser for
//! the small JSON subset the goldens use: objects with string keys,
//! arrays, strings, numbers, booleans and null. Object key order is
//! preserved so diffs stay reviewable.
//!
//! The parser is total: any input — malformed, truncated mid-token, or
//! binary garbage — yields a descriptive [`ParseError`] with the byte
//! offset of the first problem, never a panic. [`parse_file`] adds the
//! file path, so a corrupted golden reports as
//! `goldens/t3.json: byte 124: expected ',' or '}'`.

use std::fmt;
use std::path::Path;

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(offset: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        offset,
        message: message.into(),
    })
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// An array of strings (e.g. headers, notes, a row of cells).
    pub fn as_str_vec(&self) -> Option<Vec<&str>> {
        self.as_arr()?.iter().map(Value::as_str).collect()
    }
}

/// Parse a JSON document.
///
/// # Errors
/// Returns a [`ParseError`] with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return err(pos, "trailing content after the document");
    }
    Ok(v)
}

/// Read and parse a JSON file, reporting the path in every failure.
///
/// # Errors
/// Returns `"<path>: <io error>"` for unreadable files and
/// `"<path>: byte <n>: <problem>"` for malformed or truncated content.
pub fn parse_file(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        err(*pos, format!("expected '{}'", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => err(*pos, "unexpected end of input"),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key_at = *pos;
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    _ => return err(key_at, "object key must be a string"),
                };
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return err(*pos, "expected ',' or '}'"),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return err(*pos, "expected ',' or ']'"),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, ParseError> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        err(*pos, format!("invalid literal (expected '{word}')"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    let opened_at = *pos;
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return err(opened_at, "unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok());
                        let code = match hex.and_then(|h| u32::from_str_radix(h, 16).ok()) {
                            Some(c) => c,
                            None => return err(*pos, "bad \\u escape"),
                        };
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return err(*pos, "bad escape"),
                }
                *pos += 1;
            }
            Some(_) => {
                // Batch-consume the run of ordinary bytes up to the next
                // quote or escape. Both stoppers are ASCII, so the run
                // always ends on a UTF-8 boundary.
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                let s = match std::str::from_utf8(&b[start..*pos]) {
                    Ok(s) => s,
                    Err(_) => return err(start, "invalid UTF-8 in string"),
                };
                out.push_str(s);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .map_or_else(|| err(start, "invalid number"), Ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"id": "t3", "tol": 0.02, "rows": [["a", "1"], ["b", "-2.5"]],
                "flags": [true, false, null]}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("t3"));
        assert_eq!(v.get("tol").unwrap().as_f64(), Some(0.02));
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[1].as_str_vec().unwrap(), vec!["b", "-2.5"]);
        assert_eq!(v.get("flags").unwrap().as_arr().unwrap()[2], Value::Null);
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""quote \" slash \\ newline \n unicode é""#).unwrap();
        assert_eq!(v.as_str(), Some("quote \" slash \\ newline \n unicode é"));
    }

    #[test]
    fn round_trips_core_table_json() {
        use a64fx_core::Table;
        let mut t = Table::new("T9", "demo — dash", &["sys", "val"]);
        t.push_row(vec!["A64FX".into(), "38.26 / 36.90 (0.96x)".into()]);
        t.note("a \"quoted\" note");
        let v = parse(&t.to_json(&[("tolerances", "[0, 0.02]".into())])).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("T9"));
        assert_eq!(v.get("title").unwrap().as_str(), Some("demo — dash"));
        assert_eq!(
            v.get("notes").unwrap().as_str_vec().unwrap(),
            vec!["a \"quoted\" note"]
        );
        let tols = v.get("tolerances").unwrap().as_arr().unwrap();
        assert_eq!(tols[1].as_f64(), Some(0.02));
    }

    #[test]
    fn rejects_garbage_with_offsets() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        let e = parse("{\"a\": 1} extra").unwrap_err();
        assert_eq!(e.offset, 9);
        assert!(e.to_string().contains("byte 9"), "{e}");
        let e = parse("{\"a\": @}").unwrap_err();
        assert_eq!(e.offset, 6, "{e}");
    }

    #[test]
    fn malformed_inputs_error_cleanly_never_panic() {
        // The satellite's negative suite: truncations, bad keys, bad
        // escapes, binary-ish noise. Every case must be an Err with a
        // sensible offset, not a panic.
        let cases: &[&str] = &[
            "",
            "   ",
            "{",
            "}",
            "[",
            "]",
            "{]",
            "[}",
            r#"{"a""#,
            r#"{"a":"#,
            r#"{"a":1,"#,
            r#"{"a":1,}"#,
            r#"{1: 2}"#,
            r#"{"a": 1 "b": 2}"#,
            r#""unterminated"#,
            r#""bad escape \q""#,
            r#""bad unicode \u12"#,
            r#""bad unicode \uzzzz""#,
            "tru",
            "falsy",
            "nul",
            "+-+.",
            "1e",
            "--3",
            "\u{0}\u{1}\u{2}",
            "{\"a\": \u{7f}}",
        ];
        for case in cases {
            let r = parse(case);
            let e = r.expect_err(&format!("{case:?} must be rejected"));
            assert!(e.offset <= case.len(), "{case:?}: offset {}", e.offset);
            assert!(!e.message.is_empty());
        }
    }

    #[test]
    fn every_truncation_of_a_valid_golden_errors_cleanly() {
        // A representative golden document: every strict prefix must fail
        // with an Err (no prefix of an object document is valid JSON).
        let doc = r#"{"id": "T3", "rows": [["A64FX", "38.26 / 36.90 (0.96x)"]],
                     "tolerance": {"kind": "relative", "columns": [0, 0.02]},
                     "flags": [true, false, null], "n": -1.5e3}"#;
        assert!(parse(doc).is_ok());
        for cut in 0..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            let prefix = &doc[..cut];
            let e = parse(prefix).expect_err("every strict prefix is invalid");
            assert!(e.offset <= prefix.len());
        }
    }

    #[test]
    fn parse_file_reports_path_and_offset() {
        let dir = std::env::temp_dir();
        let path = dir.join("conform_json_negative_test.json");
        std::fs::write(&path, "{\"id\": \"T1\"").unwrap();
        let e = parse_file(&path).unwrap_err();
        assert!(
            e.contains("conform_json_negative_test.json") && e.contains("byte"),
            "{e}"
        );
        std::fs::remove_file(&path).ok();
        let missing = dir.join("conform_json_no_such_file.json");
        let e = parse_file(&missing).unwrap_err();
        assert!(e.contains("conform_json_no_such_file.json"), "{e}");
    }
}
