//! A minimal JSON reader for the golden snapshot files.
//!
//! The workspace's `serde` is an offline marker stub (no real
//! serialisation), so the conformance harness carries its own parser for
//! the small JSON subset the goldens use: objects with string keys,
//! arrays, strings, numbers, booleans and null. Object key order is
//! preserved so diffs stay reviewable.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// An array of strings (e.g. headers, notes, a row of cells).
    pub fn as_str_vec(&self) -> Option<Vec<&str>> {
        self.as_arr()?.iter().map(Value::as_str).collect()
    }
}

/// Parse a JSON document.
///
/// # Errors
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key must be a string near byte {pos}")),
                };
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar from the source slice.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"id": "t3", "tol": 0.02, "rows": [["a", "1"], ["b", "-2.5"]],
                "flags": [true, false, null]}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("t3"));
        assert_eq!(v.get("tol").unwrap().as_f64(), Some(0.02));
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[1].as_str_vec().unwrap(), vec!["b", "-2.5"]);
        assert_eq!(v.get("flags").unwrap().as_arr().unwrap()[2], Value::Null);
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""quote \" slash \\ newline \n unicode é""#).unwrap();
        assert_eq!(v.as_str(), Some("quote \" slash \\ newline \n unicode é"));
    }

    #[test]
    fn round_trips_core_table_json() {
        use a64fx_core::Table;
        let mut t = Table::new("T9", "demo — dash", &["sys", "val"]);
        t.push_row(vec!["A64FX".into(), "38.26 / 36.90 (0.96x)".into()]);
        t.note("a \"quoted\" note");
        let v = parse(&t.to_json(&[("tolerances", "[0, 0.02]".into())])).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("T9"));
        assert_eq!(v.get("title").unwrap().as_str(), Some("demo — dash"));
        assert_eq!(
            v.get("notes").unwrap().as_str_vec().unwrap(),
            vec!["a \"quoted\" note"]
        );
        let tols = v.get("tolerances").unwrap().as_arr().unwrap();
        assert_eq!(tols[1].as_f64(), Some(0.02));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("nope").is_err());
    }
}
