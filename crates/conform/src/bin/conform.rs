//! Conformance runner.
//!
//! ```text
//! conform                 run all nine suites, exit 1 on any failure
//! conform --bless         rewrite the golden snapshots from the current run
//! conform golden          run only the named suite(s): golden, differential,
//!                         parity, resilience, obs, des, ecm, attrib, campaign
//! conform --report p.txt  also write the full report to a file (CI artifact)
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut bless = false;
    let mut report_path: Option<String> = None;
    let mut suites: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bless" => bless = true,
            "--report" => match args.next() {
                Some(p) => report_path = Some(p),
                None => {
                    eprintln!("--report needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "golden" | "differential" | "parity" | "resilience" | "obs" | "des" | "ecm"
            | "attrib" | "campaign" => suites.push(arg),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: conform [--bless] [--report <path>] [golden|differential|parity|resilience|obs|des|ecm|attrib|campaign]..."
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let run_all = suites.is_empty();
    let want = |name: &str| run_all || suites.iter().any(|s| s == name);

    let mut results = Vec::new();
    if want("golden") {
        results.push(conform::golden_suite(bless));
    }
    if want("differential") {
        results.push(conform::differential_suite());
    }
    if want("parity") {
        results.push(conform::parity_suite());
    }
    if want("resilience") {
        results.push(conform::resilience_suite());
    }
    if want("obs") {
        results.push(conform::obs_suite(bless));
    }
    if want("des") {
        results.push(conform::des_suite());
    }
    if want("ecm") {
        results.push(conform::ecm_suite());
    }
    if want("attrib") {
        results.push(conform::attrib_suite());
    }
    if want("campaign") {
        results.push(conform::campaign_suite());
    }

    let mut out = String::new();
    let mut failed = false;
    for r in &results {
        out.push_str(&format!("== suite: {} ==\n{}\n", r.name, r.report));
        if r.passed() {
            out.push_str("PASS\n\n");
        } else {
            failed = true;
            out.push_str(&format!("FAIL ({} problem(s)):\n", r.failures.len()));
            for f in &r.failures {
                out.push_str(&format!("  - {f}\n"));
            }
            out.push('\n');
        }
    }
    print!("{out}");
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, &out) {
            eprintln!("could not write report to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("report written to {path}");
    }
    if failed {
        eprintln!("conformance FAILED — see diffs above");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
