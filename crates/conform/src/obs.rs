//! Observability conformance: pinned metric snapshots and recording purity.
//!
//! The tracing/metrics layer (the `obs` crate) promises two things this
//! suite holds it to:
//!
//! 1. **Determinism** — a recorded run is a pure function of the inputs.
//!    The metrics snapshot of HPCG and Nekbone on two paper systems is
//!    pinned byte-for-byte as a golden file (`goldens/obs_<app>_<sys>.json`),
//!    and two back-to-back recordings of the same run must produce
//!    byte-identical metrics *and* Chrome-trace JSON. Re-blessing
//!    (`cargo run -p conform -- --bless`) is the one sanctioned way to
//!    move a snapshot, same as the paper-table goldens.
//! 2. **Purity** — recording is observation only. A run with a recorder
//!    installed must price a bit-identical runtime (`f64::to_bits`
//!    equality) to the same run with recording off; with recording off
//!    the instrumentation is dead code behind `obs::enabled()`.

use std::path::PathBuf;
use std::sync::Arc;

use a64fx_apps::trace::Trace;
use a64fx_apps::{hpcg, nekbone};
use a64fx_core::costmodel::{Executor, JobLayout};
use a64fx_core::tracecache;
use a64fx_core::Table;
use archsim::{paper_toolchain, system, SystemId};

use crate::golden::goldens_dir;

/// The (app, system) pairs whose metric snapshots are pinned. Both apps
/// ran on both systems in the paper (Tables 4 and 6).
pub const PAIRS: [(&str, SystemId); 4] = [
    ("hpcg", SystemId::A64fx),
    ("hpcg", SystemId::Ngio),
    ("nekbone", SystemId::A64fx),
    ("nekbone", SystemId::Ngio),
];

/// Nodes per pinned job (matches the resilience suite's parity jobs).
const NODES: u32 = 2;

fn sys_slug(sys: SystemId) -> &'static str {
    match sys {
        SystemId::A64fx => "a64fx",
        SystemId::Archer => "archer",
        SystemId::Cirrus => "cirrus",
        SystemId::Ngio => "ngio",
        SystemId::Fulhame => "fulhame",
    }
}

fn app_trace(app: &str, ranks: u32) -> Arc<Trace> {
    match app {
        "hpcg" => tracecache::hpcg(hpcg::HpcgConfig::paper(), ranks),
        "nekbone" => tracecache::nekbone(nekbone::NekboneConfig::paper(), ranks),
        other => unreachable!("unknown obs app {other}"),
    }
}

/// Path of the pinned metrics snapshot for one (app, system) pair.
pub fn golden_path(app: &str, sys: SystemId) -> PathBuf {
    goldens_dir().join(format!("obs_{app}_{}.json", sys_slug(sys)))
}

/// One recorded run: the recorder and the priced runtime (seconds).
fn record(app: &str, sys: SystemId) -> (Arc<obs::MemRecorder>, f64) {
    let spec = system(sys);
    let layout = JobLayout::mpi_full(NODES, &spec);
    let tc = paper_toolchain(sys, app).expect("pinned pairs ran in the paper");
    let trace = app_trace(app, layout.ranks);
    let rec = Arc::new(obs::MemRecorder::new());
    let run = obs::with_recorder(rec.clone(), || {
        Executor::new(&spec, &tc).run(&trace, layout)
    });
    (rec, run.runtime_s)
}

/// The same run with recording off — the baseline for the purity check.
fn run_unrecorded(app: &str, sys: SystemId) -> f64 {
    let spec = system(sys);
    let layout = JobLayout::mpi_full(NODES, &spec);
    let tc = paper_toolchain(sys, app).expect("pinned pairs ran in the paper");
    let trace = app_trace(app, layout.ranks);
    Executor::new(&spec, &tc).run(&trace, layout).runtime_s
}

/// Render the metrics snapshot document for one pair.
fn snapshot(rec: &obs::MemRecorder, app: &str, sys: SystemId) -> String {
    rec.metrics_json(&[
        ("app", app.to_string()),
        ("system", sys_slug(sys).to_string()),
        ("nodes", format!("{NODES}")),
    ])
}

struct Checker {
    table: Table,
    failures: Vec<String>,
}

impl Checker {
    fn record(&mut self, check: &str, subject: &str, result: Result<String, String>) {
        let (cell, failed) = match &result {
            Ok(ok) => (format!("pass ({ok})"), false),
            Err(e) => (format!("FAIL: {e}"), true),
        };
        self.table
            .push_row(vec![check.to_string(), subject.to_string(), cell]);
        if failed {
            self.failures
                .push(format!("{check} [{subject}]: {}", result.unwrap_err()));
        }
    }
}

/// Run the observability suite; returns the report table and failure lines.
pub fn run() -> (Table, Vec<String>) {
    let mut chk = Checker {
        table: Table::new(
            "OBS",
            "Observability: pinned metric snapshots, double-run determinism, recorder-off purity",
            &["Check", "Subject", "Result"],
        ),
        failures: Vec::new(),
    };

    for (app, sys) in PAIRS {
        let subject = format!("{app} on {}", system(sys).name);
        let (rec, traced_runtime) = record(app, sys);

        // 1. Pinned snapshot: byte-for-byte against the golden file.
        let snap = snapshot(&rec, app, sys);
        let path = golden_path(app, sys);
        match std::fs::read_to_string(&path) {
            Err(_) => chk.record(
                "metrics snapshot matches golden",
                &subject,
                Err(format!(
                    "no golden at {} — run `cargo run -p conform -- --bless` and review the new file",
                    path.display()
                )),
            ),
            Ok(golden) => chk.record(
                "metrics snapshot matches golden",
                &subject,
                if golden == snap {
                    Ok(format!("{} bytes, byte-identical", snap.len()))
                } else {
                    Err(format!(
                        "snapshot drifted from {} — diff and re-bless if intended",
                        path.display()
                    ))
                },
            ),
        }

        // 2. Double-run determinism: a second recording of the same run
        //    must reproduce both output documents byte-for-byte.
        let (rec2, _) = record(app, sys);
        chk.record(
            "double-run metrics are byte-identical",
            &subject,
            if snap == snapshot(&rec2, app, sys) {
                Ok("same bytes".into())
            } else {
                Err("second recording produced a different snapshot".into())
            },
        );
        chk.record(
            "double-run traces are byte-identical",
            &subject,
            if rec.chrome_trace_json() == rec2.chrome_trace_json() {
                Ok(format!("{} spans", rec.totals().spans))
            } else {
                Err("second recording produced a different trace".into())
            },
        );

        // 3. Purity: recording must not move the priced runtime by an ulp.
        let plain_runtime = run_unrecorded(app, sys);
        chk.record(
            "recorded run is bit-identical to unrecorded run",
            &subject,
            if traced_runtime.to_bits() == plain_runtime.to_bits() {
                Ok(format!("{traced_runtime:.3} s both ways"))
            } else {
                Err(format!(
                    "{traced_runtime:.17e} (recorded) vs {plain_runtime:.17e} (plain)"
                ))
            },
        );
    }

    chk.table.note(format!(
        "pinned jobs: {NODES} nodes, full-node MPI; snapshots under {}",
        goldens_dir().display()
    ));
    chk.table.note(
        "purity means f64::to_bits equality — an installed recorder may not perturb \
         the simulation by a single ulp",
    );
    (chk.table, chk.failures)
}

/// Rewrite every pinned snapshot from the current run. Returns the files
/// written, flagged with whether they changed.
///
/// # Errors
/// Returns the I/O error message if a file cannot be written.
pub fn bless_all() -> Result<Vec<(String, bool)>, String> {
    std::fs::create_dir_all(goldens_dir()).map_err(|e| e.to_string())?;
    let mut written = Vec::new();
    for (app, sys) in PAIRS {
        let (rec, _) = record(app, sys);
        let path = golden_path(app, sys);
        let new = snapshot(&rec, app, sys);
        let changed = !std::fs::read_to_string(&path).is_ok_and(|old| old == new);
        std::fs::write(&path, &new).map_err(|e| format!("{}: {e}", path.display()))?;
        written.push((format!("obs_{app}_{}", sys_slug(sys)), changed));
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_suite_is_clean() {
        let (table, failures) = run();
        assert!(failures.is_empty(), "{}", failures.join("\n"));
        assert!(
            table.rows.iter().any(|r| r[0].contains("matches golden")),
            "snapshot rows present"
        );
        assert!(
            table.rows.iter().any(|r| r[0].contains("byte-identical")),
            "determinism rows present"
        );
    }

    #[test]
    fn snapshots_carry_expected_metric_families() {
        let (rec, _) = record("hpcg", SystemId::A64fx);
        let snap = snapshot(&rec, "hpcg", SystemId::A64fx);
        for key in ["app.phases", "mpi.allreduce.calls", "mpi.sync_wait_us"] {
            assert!(snap.contains(key), "snapshot lacks {key}:\n{snap}");
        }
        assert!(rec.totals().spans > 0, "run emitted no spans");
    }
}
