//! Golden snapshots of every paper table with per-metric tolerance bands.
//!
//! Each experiment table `core::experiments` emits is versioned as a JSON
//! file under `crates/conform/goldens/`. A conformance run regenerates the
//! tables and diffs them cell by cell against the snapshots: text must
//! match exactly, numbers must stay inside the column's tolerance band
//! (which is written into the golden file itself, so the bands are
//! reviewed with the snapshot they govern). The one sanctioned way to move
//! a golden is `cargo run -p conform -- --bless` plus a human reading the
//! resulting diff in review.

use crate::json::{self, Value};
use a64fx_core::experiments;
use a64fx_core::Table;
use std::path::{Path, PathBuf};

/// Directory holding the golden snapshot files.
pub fn goldens_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("goldens")
}

/// The relative tolerance band of each column of a table.
///
/// Spec tables (T1 node specs, T2 toolchains, T8 rank counts) are pure
/// configuration and must match exactly. For measurement tables the first
/// column is the row label (system, core count, node count) and must match
/// exactly; every metric column gets a 2% relative band — wide enough for
/// benign model recalibration, far tighter than any real drift in the
/// paper comparison (the `pair` cells carry paper/simulated/ratio, so a
/// drifting simulation moves two of the three numbers).
pub fn column_tolerances(t: &Table) -> Vec<f64> {
    const METRIC_REL_TOL: f64 = 0.02;
    let exact_table = matches!(t.id.to_ascii_lowercase().as_str(), "t1" | "t2" | "t8");
    t.headers
        .iter()
        .enumerate()
        .map(|(i, _)| {
            if exact_table || i == 0 {
                0.0
            } else {
                METRIC_REL_TOL
            }
        })
        .collect()
}

/// Serialise a table plus its tolerance bands as a golden document.
pub fn golden_json(t: &Table) -> String {
    let tols = column_tolerances(t)
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(", ");
    t.to_json(&[(
        "tolerance",
        format!("{{\"kind\": \"relative\", \"columns\": [{tols}]}}"),
    )])
}

/// Split a rendered cell into a skeleton (numbers replaced by `#`) and the
/// numeric tokens, in order. `"38.26 / 36.90 (0.96x)"` becomes
/// `("# / # (#x)", [38.26, 36.90, 0.96])`.
pub fn split_cell(s: &str) -> (String, Vec<f64>) {
    let b = s.as_bytes();
    let mut skeleton = String::new();
    let mut numbers = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        let starts_number = c.is_ascii_digit()
            || (c == b'-'
                && b.get(i + 1).is_some_and(u8::is_ascii_digit)
                && (i == 0 || !b[i - 1].is_ascii_alphanumeric()));
        if starts_number {
            let start = i;
            if c == b'-' {
                i += 1;
            }
            let mut seen_dot = false;
            while i < b.len() && (b[i].is_ascii_digit() || (b[i] == b'.' && !seen_dot)) {
                seen_dot |= b[i] == b'.';
                i += 1;
            }
            // A trailing '.' is punctuation, not part of the number.
            if b[i - 1] == b'.' {
                i -= 1;
            }
            let tok = &s[start..i];
            numbers.push(tok.parse::<f64>().expect("lexed token parses"));
            skeleton.push('#');
        } else {
            // Copy one UTF-8 scalar.
            let ch = s[i..].chars().next().unwrap();
            skeleton.push(ch);
            i += ch.len_utf8();
        }
    }
    (skeleton, numbers)
}

fn push_diff(diffs: &mut Vec<String>, id: &str, what: &str) {
    diffs.push(format!("{id}: {what}"));
}

/// Diff one regenerated table against its parsed golden document. Returns
/// human-readable mismatch lines (empty when conformant).
pub fn compare_table(current: &Table, golden: &Value) -> Vec<String> {
    let mut diffs = Vec::new();
    let id = &current.id;
    let g_str = |key: &str| -> Option<&str> { golden.get(key)?.as_str() };
    if g_str("id") != Some(id.as_str()) {
        push_diff(
            &mut diffs,
            id,
            &format!("golden id is {:?}", g_str("id").unwrap_or("<missing>")),
        );
        return diffs;
    }
    if g_str("title") != Some(current.title.as_str()) {
        push_diff(
            &mut diffs,
            id,
            &format!(
                "title changed\n  golden:  {:?}\n  current: {:?}",
                g_str("title").unwrap_or("<missing>"),
                current.title
            ),
        );
    }
    let headers: Vec<&str> = match golden.get("headers").and_then(Value::as_str_vec) {
        Some(h) => h,
        None => {
            push_diff(&mut diffs, id, "golden has no headers array");
            return diffs;
        }
    };
    if headers
        != current
            .headers
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
    {
        push_diff(
            &mut diffs,
            id,
            &format!(
                "headers changed\n  golden:  {headers:?}\n  current: {:?}",
                current.headers
            ),
        );
        return diffs; // column-aligned comparison is meaningless now
    }
    // Tolerance bands come from the golden file (versioned with the data);
    // fall back to the current policy if an old golden lacks them.
    let tols: Vec<f64> = golden
        .get("tolerance")
        .and_then(|t| t.get("columns"))
        .and_then(Value::as_arr)
        .map(|cols| cols.iter().map(|v| v.as_f64().unwrap_or(0.0)).collect())
        .unwrap_or_else(|| column_tolerances(current));
    let empty = Vec::new();
    let g_rows = golden.get("rows").and_then(Value::as_arr).unwrap_or(&empty);
    if g_rows.len() != current.rows.len() {
        push_diff(
            &mut diffs,
            id,
            &format!(
                "row count changed: golden {} vs current {}",
                g_rows.len(),
                current.rows.len()
            ),
        );
    }
    for (r, (g_row, c_row)) in g_rows.iter().zip(&current.rows).enumerate() {
        let g_cells = match g_row.as_str_vec() {
            Some(c) => c,
            None => {
                push_diff(&mut diffs, id, &format!("golden row {r} is not strings"));
                continue;
            }
        };
        for (c, (g_cell, c_cell)) in g_cells.iter().zip(c_row).enumerate() {
            let tol = tols.get(c).copied().unwrap_or(0.0);
            diffs.extend(compare_cell(
                id,
                &headers
                    .get(c)
                    .map_or_else(|| c.to_string(), |h| h.to_string()),
                r,
                g_cell,
                c_cell,
                tol,
            ));
        }
    }
    let g_notes = golden
        .get("notes")
        .and_then(Value::as_str_vec)
        .unwrap_or_default();
    if g_notes != current.notes.iter().map(String::as_str).collect::<Vec<_>>() {
        push_diff(
            &mut diffs,
            id,
            &format!(
                "notes changed\n  golden:  {g_notes:?}\n  current: {:?}",
                current.notes
            ),
        );
    }
    diffs
}

/// Diff one cell under a relative tolerance band.
fn compare_cell(
    id: &str,
    column: &str,
    row: usize,
    golden: &str,
    current: &str,
    tol: f64,
) -> Vec<String> {
    if golden == current {
        return Vec::new();
    }
    let at = format!("row {row}, column '{column}'");
    let (g_skel, g_nums) = split_cell(golden);
    let (c_skel, c_nums) = split_cell(current);
    if g_skel != c_skel || g_nums.len() != c_nums.len() {
        return vec![format!(
            "{id}: {at}: cell structure changed\n  golden:  {golden:?}\n  current: {current:?}"
        )];
    }
    let mut diffs = Vec::new();
    for (k, (g, c)) in g_nums.iter().zip(&c_nums).enumerate() {
        let within = if tol == 0.0 {
            g == c
        } else {
            (g - c).abs() <= tol * g.abs().max(1e-12)
        };
        if !within {
            let drift = if *g != 0.0 {
                format!("{:+.2}%", (c - g) / g * 100.0)
            } else {
                format!("{c} from zero")
            };
            diffs.push(format!(
                "{id}: {at}: value #{k} left its tolerance band\n  golden:  {golden:?}\n  current: {current:?}\n  {g} -> {c} ({drift}), allowed ±{:.1}%",
                tol * 100.0
            ));
        }
    }
    diffs
}

/// Outcome of a golden-suite run.
pub struct GoldenReport {
    /// Human-readable mismatch lines, empty when conformant.
    pub diffs: Vec<String>,
    /// Tables checked.
    pub checked: usize,
}

/// Regenerate every experiment table and diff it against its golden.
pub fn check_all() -> GoldenReport {
    let dir = goldens_dir();
    let mut diffs = Vec::new();
    let tables = experiments::run_all();
    for t in &tables {
        let path = dir.join(format!("{}.json", t.id.to_ascii_lowercase()));
        if !path.is_file() {
            diffs.push(format!(
                "{}: no golden at {} — run `cargo run -p conform -- --bless` and review the new file",
                t.id,
                path.display()
            ));
            continue;
        }
        // parse_file reports "<path>: byte <n>: <problem>" for malformed or
        // truncated goldens — a corrupted snapshot is a diagnosis, not a panic.
        match json::parse_file(&path) {
            Err(e) => diffs.push(format!("{}: golden is not valid JSON: {e}", t.id)),
            Ok(v) => diffs.extend(compare_table(t, &v)),
        }
    }
    // Goldens with no matching experiment are stale, not harmless.
    if let Ok(entries) = std::fs::read_dir(&dir) {
        let known: Vec<String> = tables
            .iter()
            .map(|t| format!("{}.json", t.id.to_ascii_lowercase()))
            .collect();
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            // `obs_*.json` files are the observability suite's pinned
            // metric snapshots, not experiment tables.
            if name.ends_with(".json") && !name.starts_with("obs_") && !known.contains(&name) {
                diffs.push(format!(
                    "stale golden {name}: no experiment emits this table any more"
                ));
            }
        }
    }
    GoldenReport {
        diffs,
        checked: tables.len(),
    }
}

/// Rewrite every golden from the current run. Returns the files written,
/// flagged with whether they changed.
///
/// # Errors
/// Returns the I/O error message if a file cannot be written.
pub fn bless_all() -> Result<Vec<(String, bool)>, String> {
    let dir = goldens_dir();
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let mut written = Vec::new();
    for t in experiments::run_all() {
        let path = dir.join(format!("{}.json", t.id.to_ascii_lowercase()));
        let new = golden_json(&t);
        let changed = !std::fs::read_to_string(&path).is_ok_and(|old| old == new);
        std::fs::write(&path, &new).map_err(|e| format!("{}: {e}", path.display()))?;
        written.push((t.id.clone(), changed));
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_cell_lexes_pair_cells() {
        let (skel, nums) = split_cell("38.26 / 36.90 (0.96x)");
        assert_eq!(skel, "# / # (#x)");
        assert_eq!(nums, vec![38.26, 36.90, 0.96]);
        let (skel, nums) = split_cell("- / 5.00");
        assert_eq!(skel, "- / #");
        assert_eq!(nums, vec![5.0]);
        let (skel, nums) = split_cell("96×1");
        assert_eq!(skel, "#×#");
        assert_eq!(nums, vec![96.0, 1.0]);
        let (skel, nums) = split_cell("-2.5 then -x");
        assert_eq!(skel, "# then -x");
        assert_eq!(nums, vec![-2.5]);
        assert_eq!(split_cell("no numbers."), ("no numbers.".into(), vec![]));
        // A sentence-ending period after a number stays punctuation.
        let (skel, nums) = split_cell("ends with 7.");
        assert_eq!(skel, "ends with #.");
        assert_eq!(nums, vec![7.0]);
    }

    fn demo_table() -> Table {
        let mut t = Table::new("T3", "demo", &["System", "GFLOP/s"]);
        t.push_row(vec!["A64FX".into(), "38.26 / 36.90 (0.96x)".into()]);
        t.note("shape holds");
        t
    }

    #[test]
    fn identical_table_conforms() {
        let t = demo_table();
        let golden = json::parse(&golden_json(&t)).unwrap();
        assert!(compare_table(&t, &golden).is_empty());
    }

    #[test]
    fn drift_within_band_passes_beyond_band_fails() {
        let t = demo_table();
        let golden = json::parse(&golden_json(&t)).unwrap();
        // 1% drift on a 2% column: fine.
        let mut near = t.clone();
        near.rows[0][1] = "38.26 / 37.25 (0.97x)".into();
        assert!(compare_table(&near, &golden).is_empty());
        // 10% drift: both the value and the derived ratio are flagged,
        // with readable messages.
        let mut far = t.clone();
        far.rows[0][1] = "38.26 / 33.00 (0.86x)".into();
        let diffs = compare_table(&far, &golden);
        assert_eq!(diffs.len(), 2, "{diffs:?}");
        assert!(diffs[0].contains("tolerance band"), "{}", diffs[0]);
        assert!(diffs[0].contains("36.9 -> 33"), "{}", diffs[0]);
    }

    #[test]
    fn label_columns_are_exact() {
        let t = demo_table();
        let golden = json::parse(&golden_json(&t)).unwrap();
        let mut renamed = t.clone();
        renamed.rows[0][0] = "A64FX2".into();
        assert!(!compare_table(&renamed, &golden).is_empty());
    }

    #[test]
    fn structural_changes_are_flagged() {
        let t = demo_table();
        let golden = json::parse(&golden_json(&t)).unwrap();
        let mut extra = t.clone();
        extra.push_row(vec!["X".into(), "1.00 / 1.00 (1.00x)".into()]);
        assert!(compare_table(&extra, &golden)
            .iter()
            .any(|d| d.contains("row count")));
        let mut cell = t.clone();
        cell.rows[0][1] = "36.90".into();
        assert!(compare_table(&cell, &golden)
            .iter()
            .any(|d| d.contains("structure changed")));
        let mut note = t;
        note.notes[0] = "different".into();
        assert!(compare_table(&note, &golden)
            .iter()
            .any(|d| d.contains("notes changed")));
    }

    #[test]
    fn spec_tables_get_exact_bands_metric_tables_get_relative() {
        let mut spec = Table::new("T1", "specs", &["System", "Cores"]);
        spec.push_row(vec!["A64FX".into(), "48".into()]);
        assert_eq!(column_tolerances(&spec), vec![0.0, 0.0]);
        assert_eq!(column_tolerances(&demo_table()), vec![0.0, 0.02]);
    }
}
