//! Attribution conformance: the critical-path analysis layer must be
//! deterministic, internally consistent, and pinned.
//!
//! Four obligations:
//!
//! 1. **Golden pin.** The O1 time-attribution table is diffed against its
//!    golden snapshot with the standard tolerance machinery (label column
//!    exact, metric columns banded) — the paper-style breakdown cannot
//!    drift silently.
//! 2. **Double-run byte-identity.** Rendering O1 twice, and analysing each
//!    pinned (app, system) pair twice, must produce byte-identical output
//!    — attribution is a pure function of the recorded run.
//! 3. **Invariants.** For every pinned pair: the six category totals sum
//!    to the end-to-end time *bitwise* (same additions, same order), the
//!    critical path never exceeds the end-to-end time or the raw span
//!    extent, compute dominates the fault-free runs, and the checkpoint
//!    category is exactly zero without faults (and strictly positive under
//!    the R1 schedule).
//! 4. **Engine opacity.** DES-engine internals must not leak into app
//!    attribution: analysing a DES-validated allreduce recorded on the
//!    serial heap and on the sharded engine at 2 and 4 shards must yield
//!    byte-identical analysis documents.

use std::sync::Arc;

use a64fx_core::experiments::attrib::{analyze_pair, analyze_resilient, PAIRS};
use a64fx_core::Table;
use archsim::{system, InterconnectKind, SystemId};
use netsim::{DesBackend, Network};
use obs::analyze::Category;
use simmpi::desval::allreduce_des_stats;

use crate::golden::{compare_table, goldens_dir};
use crate::json;

struct Checker {
    table: Table,
    failures: Vec<String>,
}

impl Checker {
    fn record(&mut self, check: &str, subject: &str, result: Result<String, String>) {
        let (cell, failed) = match &result {
            Ok(ok) => (format!("pass ({ok})"), false),
            Err(e) => (format!("FAIL: {e}"), true),
        };
        self.table
            .push_row(vec![check.to_string(), subject.to_string(), cell]);
        if failed {
            self.failures
                .push(format!("{check} [{subject}]: {}", result.unwrap_err()));
        }
    }
}

/// Run the attribution suite; returns the report table and failure lines.
pub fn run() -> (Table, Vec<String>) {
    let mut chk = Checker {
        table: Table::new(
            "ATTRIB",
            "Attribution: O1 golden pin, double-run determinism, critical-path \
             invariants, DES-engine opacity",
            &["Check", "Subject", "Result"],
        ),
        failures: Vec::new(),
    };

    // 1 + 2a. The O1 table: pinned, and byte-stable across runs.
    let o1_a = a64fx_core::experiments::attrib::o1();
    let o1_b = a64fx_core::experiments::attrib::o1();
    chk.record(
        "O1 double runs are byte-identical",
        "O1",
        if o1_a.render() == o1_b.render() {
            Ok(format!("{} rows", o1_a.rows.len()))
        } else {
            Err("second O1 run rendered differently".into())
        },
    );
    let path = goldens_dir().join("o1.json");
    match json::parse_file(&path) {
        Err(e) => chk.record(
            "O1 matches golden",
            "O1",
            Err(format!(
                "no readable golden at {}: {e} — run `cargo run -p conform -- --bless`",
                path.display()
            )),
        ),
        Ok(golden) => {
            let diffs = compare_table(&o1_a, &golden);
            chk.record(
                "O1 matches golden",
                "O1",
                if diffs.is_empty() {
                    Ok("within bands".into())
                } else {
                    Err(diffs.join("; "))
                },
            );
        }
    }

    // 2b + 3. Per-pair analysis: determinism and the exact invariants.
    for (app, sys) in PAIRS {
        let subject = format!("{app} on {}", system(sys).name);
        let (a, _) = analyze_pair(app, sys);
        let (b, _) = analyze_pair(app, sys);
        chk.record(
            "analysis double runs are byte-identical",
            &subject,
            if a.to_json(&[]) == b.to_json(&[]) {
                Ok(format!(
                    "{} spans, {} segments",
                    a.spans_considered, a.segments
                ))
            } else {
                Err("second analysis rendered differently".into())
            },
        );
        let sum: f64 = a.totals.iter().sum();
        chk.record(
            "category totals sum to end-to-end bitwise",
            &subject,
            if sum.to_bits() == a.end_to_end_us().to_bits() {
                Ok(format!("{:.1} us", a.end_to_end_us()))
            } else {
                Err(format!("{sum:.17e} vs {:.17e}", a.end_to_end_us()))
            },
        );
        chk.record(
            "critical path bounded by end-to-end and extent",
            &subject,
            if a.path_us() <= a.end_to_end_us()
                && a.path_us() <= a.extent_us() * (1.0 + f64::EPSILON)
            {
                Ok(format!(
                    "path {:.1} us <= extent {:.1} us",
                    a.path_us(),
                    a.extent_us()
                ))
            } else {
                Err(format!(
                    "path {:.17e}, end-to-end {:.17e}, extent {:.17e}",
                    a.path_us(),
                    a.end_to_end_us(),
                    a.extent_us()
                ))
            },
        );
        chk.record(
            "fault-free run: compute dominates, checkpoint zero",
            &subject,
            if a.dominant() == Category::Compute && a.total(Category::Checkpoint) == 0.0 {
                Ok(format!("compute {:.1}%", a.share_pct(Category::Compute)))
            } else {
                Err(format!(
                    "dominant {}, checkpoint {} us",
                    a.dominant().name(),
                    a.total(Category::Checkpoint)
                ))
            },
        );
    }

    // 3b. The resilient row exercises the checkpoint category.
    let (ra, _) = analyze_resilient(SystemId::A64fx);
    let (rb, _) = analyze_resilient(SystemId::A64fx);
    chk.record(
        "resilient analysis is deterministic with checkpoints",
        "hpcg+faults on A64FX",
        if ra.to_json(&[]) != rb.to_json(&[]) {
            Err("second resilient analysis rendered differently".into())
        } else if ra.total(Category::Checkpoint) <= 0.0 {
            Err("R1 schedule produced no checkpoint time".into())
        } else {
            Ok(format!(
                "checkpoint {:.1}%",
                ra.share_pct(Category::Checkpoint)
            ))
        },
    );

    // 4. Engine opacity: DES internals never enter app attribution.
    let nodes = 64usize;
    let placement: Vec<usize> = (0..nodes).collect();
    let net = Network::new(InterconnectKind::TofuD, nodes);
    let mut docs = Vec::new();
    for (label, backend) in [
        ("serial", DesBackend::Serial),
        ("sharded2", DesBackend::Sharded { shards: 2 }),
        ("sharded4", DesBackend::Sharded { shards: 4 }),
    ] {
        let rec = Arc::new(obs::MemRecorder::new());
        obs::with_recorder(rec.clone(), || {
            allreduce_des_stats(&net, &placement, 4096, backend)
        });
        docs.push((label, rec.analyze().to_json(&[])));
    }
    let all_equal = docs.iter().all(|(_, d)| *d == docs[0].1);
    chk.record(
        "analysis is invariant under the DES backend",
        "allreduce, 64 nodes TofuD",
        if all_equal {
            Ok("serial == sharded2 == sharded4".into())
        } else {
            Err("engine internals leaked into the attribution document".into())
        },
    );

    chk.table.note(
        "bitwise sum and path <= end-to-end hold by construction: the category \
         fold performs the same f64 additions in the same order",
    );
    chk.table
        .note("O1 is also covered by the golden suite via the experiment registry");
    (chk.table, chk.failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attrib_suite_is_clean() {
        let (table, failures) = run();
        assert!(failures.is_empty(), "{}", failures.join("\n"));
        assert!(
            table.rows.iter().any(|r| r[0].contains("matches golden")),
            "golden row present"
        );
        assert!(
            table.rows.iter().any(|r| r[0].contains("bitwise")),
            "invariant rows present"
        );
    }
}
