//! Differential validation: analytic collective cost models vs the
//! message-level discrete-event simulation.
//!
//! For every topology family in the paper's systems, across message sizes
//! spanning the recursive-doubling → Rabenseifner crossover and several
//! rank placements of the A64FX node, the closed-form
//! [`simmpi::collectives::allreduce_time_us`] is pitted against
//! [`simmpi::desval::allreduce_hierarchical_des`], which replays the same
//! hierarchical algorithm message by message. The two are independent
//! implementations that share only the link parameters, so bounded
//! relative error is evidence the closed forms price what they claim to.

use a64fx_core::Table;
use archsim::{system, InterconnectKind, SystemId};
use netsim::Network;
use simmpi::collectives::allreduce_time_us;
use simmpi::desval::allreduce_hierarchical_des;
use simmpi::{Placement, PlacementPolicy};

/// Maximum relative error |analytic − DES| / max(analytic, DES) tolerated
/// in any sweep cell.
pub const REL_ERR_BOUND: f64 = 0.25;

/// Nodes in every sweep (spans two recursive-doubling rounds and a
/// non-trivial Rabenseifner schedule).
pub(crate) const SWEEP_NODES: u32 = 8;

/// Message sizes, bytes: latency floor, small, the 16 KiB algorithm
/// crossover itself, bandwidth mid-range, bandwidth-bound.
pub(crate) const SWEEP_BYTES: [u64; 5] = [8, 1024, 16 * 1024, 256 * 1024, 4 * 1024 * 1024];

/// The four topology families the paper's systems use.
pub(crate) const FAMILIES: [InterconnectKind; 4] = [
    InterconnectKind::TofuD,
    InterconnectKind::Aries,
    InterconnectKind::EdrInfiniband,
    InterconnectKind::OmniPath,
];

/// The placements swept: flat one-rank-per-node, the paper's preferred
/// one-rank-per-CMG hybrid (round-robin policy), and a packed
/// four-rank-per-node layout (packed policy) — two distinct
/// [`PlacementPolicy`] values and three ranks-per-node shapes.
pub(crate) fn sweep_placements() -> Vec<(&'static str, Placement)> {
    let node = &system(SystemId::A64fx).node;
    vec![
        (
            "1 rank/node",
            Placement::new(SWEEP_NODES, 1, 1, node, PlacementPolicy::RoundRobinDomain)
                .expect("valid"),
        ),
        (
            "1 rank/CMG, round-robin",
            Placement::one_rank_per_domain(SWEEP_NODES, node),
        ),
        (
            "4 ranks/node, packed",
            Placement::new(SWEEP_NODES * 4, 4, 12, node, PlacementPolicy::Packed).expect("valid"),
        ),
    ]
}

/// One sweep cell.
pub struct Cell {
    /// Topology family name.
    pub family: &'static str,
    /// Placement label.
    pub placement: &'static str,
    /// Message size per rank, bytes.
    pub bytes: u64,
    /// Closed-form prediction, microseconds.
    pub analytic_us: f64,
    /// Discrete-event simulation, microseconds.
    pub des_us: f64,
}

impl Cell {
    /// Relative disagreement of the two models.
    pub fn rel_err(&self) -> f64 {
        let m = self.analytic_us.max(self.des_us);
        if m == 0.0 {
            0.0
        } else {
            (self.analytic_us - self.des_us).abs() / m
        }
    }
}

/// Run the full sweep: every family × placement × size.
pub fn sweep() -> Vec<Cell> {
    let mut cells = Vec::new();
    for kind in FAMILIES {
        for (label, placement) in sweep_placements() {
            let map = placement.node_map();
            for bytes in SWEEP_BYTES {
                let mut net = Network::new(kind, SWEEP_NODES as usize);
                let analytic_us = allreduce_time_us(&net, &map, bytes);
                let des_us = allreduce_hierarchical_des(&mut net, &map, bytes);
                cells.push(Cell {
                    family: kind.name(),
                    placement: label,
                    bytes,
                    analytic_us,
                    des_us,
                });
            }
        }
    }
    cells
}

/// Render the sweep as a report table and collect bound violations.
pub fn run() -> (Table, Vec<String>) {
    let cells = sweep();
    let mut table = Table::new(
        "DIFF",
        "Allreduce: analytic cost model vs message-level DES (8 nodes)",
        &[
            "Topology",
            "Placement",
            "Bytes",
            "Analytic us",
            "DES us",
            "Rel err",
        ],
    );
    let mut failures = Vec::new();
    let mut worst: Option<&Cell> = None;
    for cell in &cells {
        let err = cell.rel_err();
        table.push_row(vec![
            cell.family.to_string(),
            cell.placement.to_string(),
            cell.bytes.to_string(),
            format!("{:.3}", cell.analytic_us),
            format!("{:.3}", cell.des_us),
            format!("{:.1}%", err * 100.0),
        ]);
        if err >= REL_ERR_BOUND {
            failures.push(format!(
                "{} / {} / {} B: analytic {:.3}us vs DES {:.3}us — rel err {:.1}% exceeds {:.0}% bound",
                cell.family,
                cell.placement,
                cell.bytes,
                cell.analytic_us,
                cell.des_us,
                err * 100.0,
                REL_ERR_BOUND * 100.0
            ));
        }
        if worst.is_none_or(|w| err > w.rel_err()) {
            worst = Some(cell);
        }
    }
    if let Some(w) = worst {
        table.note(format!(
            "worst cell: {} / {} / {} B at {:.1}% relative error (bound {:.0}%)",
            w.family,
            w.placement,
            w.bytes,
            w.rel_err() * 100.0,
            REL_ERR_BOUND * 100.0
        ));
    }
    table.note(format!(
        "{} cells: {} topology families x {} placements x {} message sizes",
        cells.len(),
        FAMILIES.len(),
        sweep_placements().len(),
        SWEEP_BYTES.len()
    ));
    (table, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_issue_floor() {
        let cells = sweep();
        let families: std::collections::BTreeSet<_> = cells.iter().map(|c| c.family).collect();
        let placements: std::collections::BTreeSet<_> = cells.iter().map(|c| c.placement).collect();
        let sizes: std::collections::BTreeSet<_> = cells.iter().map(|c| c.bytes).collect();
        assert!(families.len() >= 3, "{families:?}");
        assert!(placements.len() >= 2, "{placements:?}");
        assert!(sizes.len() >= 5, "{sizes:?}");
    }

    #[test]
    fn every_cell_inside_error_bound() {
        let (_, failures) = run();
        assert!(failures.is_empty(), "{}", failures.join("\n"));
    }

    #[test]
    fn both_models_report_positive_times() {
        for cell in sweep() {
            assert!(
                cell.analytic_us > 0.0 && cell.des_us > 0.0,
                "{} / {} / {} B: analytic {} DES {}",
                cell.family,
                cell.placement,
                cell.bytes,
                cell.analytic_us,
                cell.des_us
            );
        }
    }
}
