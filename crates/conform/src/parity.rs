//! Kernel parity at scale: serial vs spawn-per-call vs persistent-pool
//! execution at forced thread counts.
//!
//! The kernel runtime promises that row-partitioned kernels (CSR SpMV,
//! SELL-C-σ SpMV, multicolour SymGS, AXPY) are **bit-identical** to their
//! serial forms at any thread count, and that reductions (dot, fused
//! SpMV+dot, AXPY+norm) are deterministic for a fixed thread count —
//! reassociated relative to serial, but exactly repeatable. This suite
//! pins teams to 2, 4 and 8 configured threads regardless of how many
//! cores the host has and holds the runtime to both promises, checking the
//! pool's dispatch counter to prove the parallel path actually ran.

use a64fx_core::Table;
use sparsela::coloring::{mc_symgs_sweep, Coloring};
use sparsela::ell::SellMatrix;
use sparsela::gen::stencil27;
use sparsela::{cg_solve, CsrMatrix, SpawnTeam, Team};

/// Thread counts exercised — configured counts, not host parallelism.
pub const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// Thread counts for the blocked-kernel parity section: the data-level
/// optimisations must be invisible at the serial fallback (1) and on the
/// pooled paths (2, 4) alike.
pub const BLOCKED_THREAD_COUNTS: [usize; 3] = [1, 2, 4];

const GRID: (usize, usize, usize) = (12, 12, 12);
const CG_MAX_ITER: usize = 500;
const CG_RTOL: f64 = 1e-8;

fn problem() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    let (nx, ny, nz) = GRID;
    let a = stencil27(nx, ny, nz);
    let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.173).sin()).collect();
    let mut b = vec![0.0; a.rows()];
    a.spmv(&x, &mut b); // b = A·(known vector): CG has an exact target
    (a, x, b)
}

struct Checker {
    table: Table,
    failures: Vec<String>,
}

impl Checker {
    fn record(&mut self, check: &str, threads: usize, result: Result<String, String>) {
        let (cell, failed) = match &result {
            Ok(ok) => (format!("pass ({ok})"), false),
            Err(e) => (format!("FAIL: {e}"), true),
        };
        self.table
            .push_row(vec![check.to_string(), threads.to_string(), cell]);
        if failed {
            self.failures.push(format!(
                "{check} @ {threads} threads: {}",
                result.unwrap_err()
            ));
        }
    }
}

fn bitwise_eq(a: &[f64], b: &[f64]) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("length {} vs {}", a.len(), b.len()));
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!("first divergence at [{i}]: {x:e} vs {y:e}"));
        }
    }
    Ok(())
}

/// Run the full parity suite; returns the report table and failures.
pub fn run() -> (Table, Vec<String>) {
    let (a, x, b) = problem();
    let n = a.rows();
    let mut chk = Checker {
        table: Table::new(
            "PARITY",
            "Kernel parity: serial vs SpawnTeam vs pooled Team at configured thread counts",
            &["Check", "Threads", "Result"],
        ),
        failures: Vec::new(),
    };

    // Serial baselines.
    let mut y_serial = vec![0.0; n];
    a.spmv(&x, &mut y_serial);
    let sell = SellMatrix::from_csr(&a, 8, 32);
    let mut y_sell_serial = vec![0.0; n];
    sell.spmv(&x, &mut y_sell_serial);
    let coloring = Coloring::stencil8(GRID.0, GRID.1, GRID.2);
    let mut gs_serial = vec![0.0; n];
    mc_symgs_sweep(&a, &coloring, &b, &mut gs_serial);
    let serial_cg = {
        let mut xs = vec![0.0; n];
        cg_solve(&a, &b, &mut xs, CG_MAX_ITER, CG_RTOL)
    };

    for t in THREAD_COUNTS {
        // Cutover disabled: the suite's fixture sits below the default
        // small-kernel serial cutover, and the promises under test are the
        // pooled paths' — which serial fallback would vacuously satisfy.
        let team = Team::with_serial_cutover(t, 0);
        let spawn = SpawnTeam::new(t);
        if !team.would_parallelize(n) {
            chk.record(
                "problem size takes the parallel path",
                t,
                Err(format!("{n} rows would run serially")),
            );
            continue;
        }

        // CSR SpMV: both parallel paths bit-identical to serial.
        let mut y = vec![0.0; n];
        let before = team.pool().dispatches();
        team.spmv(&a, &x, &mut y);
        chk.record(
            "CSR SpMV pooled == serial (bitwise)",
            t,
            bitwise_eq(&y_serial, &y).map(|()| "bit-identical".into()),
        );
        let mut y2 = vec![0.0; n];
        spawn.spmv(&a, &x, &mut y2);
        chk.record(
            "CSR SpMV spawn-per-call == serial (bitwise)",
            t,
            bitwise_eq(&y_serial, &y2).map(|()| "bit-identical".into()),
        );

        // SELL-C-sigma SpMV bit-identical to its serial kernel.
        let mut ys = vec![0.0; n];
        team.sell_spmv(&sell, &x, &mut ys);
        chk.record(
            "SELL-C-sigma SpMV pooled == serial (bitwise)",
            t,
            bitwise_eq(&y_sell_serial, &ys).map(|()| "bit-identical".into()),
        );

        // Multicolour SymGS bit-identical to the serial sweep.
        let mut gs = vec![0.0; n];
        team.mc_symgs_sweep(&a, &coloring, &b, &mut gs);
        chk.record(
            "MC-SymGS pooled == serial (bitwise)",
            t,
            bitwise_eq(&gs_serial, &gs).map(|()| "bit-identical".into()),
        );

        // Fused kernels agree with their unfused counterparts bitwise on
        // the vector output, and reductions repeat exactly.
        let mut yf = vec![0.0; n];
        let (pap1, _) = team.spmv_dot(&a, &x, &mut yf);
        chk.record(
            "fused SpMV+dot vector == plain SpMV (bitwise)",
            t,
            bitwise_eq(&y_serial, &yf).map(|()| "bit-identical".into()),
        );
        let mut yf2 = vec![0.0; n];
        let (pap2, _) = team.spmv_dot(&a, &x, &mut yf2);
        chk.record(
            "fused SpMV+dot reduction repeats exactly",
            t,
            if pap1.to_bits() == pap2.to_bits() {
                Ok(format!("{pap1:.6e} both runs"))
            } else {
                Err(format!("{pap1:e} vs {pap2:e}"))
            },
        );
        let mut ax_serial = b.clone();
        for (o, v) in ax_serial.iter_mut().zip(&x) {
            *o += 2.5 * v;
        }
        let mut ax = b.clone();
        team.axpy(2.5, &x, &mut ax);
        chk.record(
            "AXPY pooled == serial (bitwise)",
            t,
            bitwise_eq(&ax_serial, &ax).map(|()| "bit-identical".into()),
        );
        let (d1, _) = team.dot(&x, &b);
        let (d2, _) = team.dot(&x, &b);
        chk.record(
            "dot reduction repeats exactly",
            t,
            if d1.to_bits() == d2.to_bits() {
                Ok(format!("{d1:.6e} both runs"))
            } else {
                Err(format!("{d1:e} vs {d2:e}"))
            },
        );

        // The pooled path genuinely ran: the dispatch counter advanced.
        let after = team.pool().dispatches();
        chk.record(
            "pool dispatch counter advanced",
            t,
            if after > before {
                Ok(format!("{} dispatches", after - before))
            } else {
                Err(format!("counter stuck at {after}"))
            },
        );

        // Pooled CG: converges like serial and repeats bit-identically.
        let mut x1 = vec![0.0; n];
        let (it1, rel1, _) = team.cg_solve(&a, &b, &mut x1, CG_MAX_ITER, CG_RTOL);
        let mut x2 = vec![0.0; n];
        let (it2, rel2, _) = team.cg_solve(&a, &b, &mut x2, CG_MAX_ITER, CG_RTOL);
        chk.record(
            "pooled CG repeat run bit-identical",
            t,
            if it1 == it2 && rel1.to_bits() == rel2.to_bits() {
                bitwise_eq(&x1, &x2).map(|()| format!("{it1} iters, rel {rel1:.2e}"))
            } else {
                Err(format!("iters {it1} vs {it2}, rel {rel1:e} vs {rel2:e}"))
            },
        );
        chk.record(
            "pooled CG converges like serial",
            t,
            if rel1 <= CG_RTOL && it1.abs_diff(serial_cg.iterations) <= 3 {
                Ok(format!("{it1} iters vs serial {}", serial_cg.iterations))
            } else {
                Err(format!(
                    "rel {rel1:e}, {it1} iters vs serial {} ({})",
                    serial_cg.iterations, serial_cg.rel_residual
                ))
            },
        );
        let mut x3 = vec![0.0; n];
        let (it3, rel3, _) = spawn.cg_solve(&a, &b, &mut x3, CG_MAX_ITER, CG_RTOL);
        chk.record(
            "spawn-per-call CG converges like serial",
            t,
            if rel3 <= CG_RTOL && it3.abs_diff(serial_cg.iterations) <= 3 {
                Ok(format!("{it3} iters"))
            } else {
                Err(format!("rel {rel3:e}, {it3} iters"))
            },
        );
    }

    blocked_section(&mut chk, &a, &x, &b, &coloring, &sell, &y_sell_serial);

    chk.table.note(format!(
        "{}x{}x{} 27-point stencil ({n} rows); serial CG: {} iterations to rel {:.2e}",
        GRID.0, GRID.1, GRID.2, serial_cg.iterations, serial_cg.rel_residual
    ));
    chk.table
        .note("thread counts are configured on the team, not taken from the host's core count");
    chk.table.note(
        "blocked section: every data-level-optimised kernel vs its naive reference \
         (bitwise, or the documented ulp bound for chunked reductions) at 1/2/4 threads",
    );
    (chk.table, chk.failures)
}

/// The blocked-kernel parity section: every data-level-optimised kernel
/// (register-tiled GEMM, the packed Nekbone batch, tiled tensor
/// contractions, chunked SELL SpMV, the cache-blocked MC-SymGS sweep, the
/// tile-gathered 3-D FFT, and the chunk-aligned elementwise Team kernels)
/// against its naive reference. Elementwise and reordering-free kernels
/// must be bit-identical; the chunked reductions must sit inside their
/// documented ulp bound. Thread-dependent paths run at every
/// [`BLOCKED_THREAD_COUNTS`] entry, including the serial fallback.
#[allow(clippy::too_many_arguments)]
fn blocked_section(
    chk: &mut Checker,
    a: &CsrMatrix,
    x: &[f64],
    b: &[f64],
    coloring: &Coloring,
    sell: &SellMatrix,
    y_sell_serial: &[f64],
) {
    let n = a.rows();

    // Serial-only blocked kernels: thread-independent, checked once across
    // several tile shapes (recorded under "1 thread").
    {
        use densela::gemm;
        let (m, nn, k) = (17, 9, 13);
        let am: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.31).sin()).collect();
        let bm: Vec<f64> = (0..k * nn).map(|i| (i as f64 * 0.07).cos()).collect();
        let mut ok = Ok("bit-identical across tiles {1,3,8,16}".to_string());
        for (mr, nr) in [(1, 1), (3, 3), (8, 4), (16, 16)] {
            let mut c_ref: Vec<f64> = (0..m * nn).map(|i| i as f64 * 0.5 - 3.0).collect();
            let mut c_blk = c_ref.clone();
            gemm::gemm(m, nn, k, 1.3, &am, &bm, -0.7, &mut c_ref);
            gemm::gemm_blocked_with(m, nn, k, 1.3, &am, &bm, -0.7, &mut c_blk, mr, nr);
            if let Err(e) = bitwise_eq(&c_ref, &c_blk) {
                ok = Err(format!("tile {mr}x{nr}: {e}"));
            }
        }
        chk.record("blocked GEMM == naive (bitwise)", 1, ok);

        const P: usize = 9;
        const NEL: usize = 7;
        let ab: Vec<f64> = (0..P * P).map(|i| (i as f64 * 0.11).sin()).collect();
        let bb: Vec<f64> = (0..NEL * P * P).map(|i| (i as f64 * 0.05).cos()).collect();
        let mut c_ref = vec![0.25; NEL * P * P];
        let mut c_blk = c_ref.clone();
        gemm::small_gemm_batch_ref(P, P, P, 2.0, &ab, &bb, 0.5, &mut c_ref);
        gemm::small_gemm_batch(P, P, P, 2.0, &ab, &bb, 0.5, &mut c_blk);
        chk.record(
            "packed GEMM batch == per-element naive (bitwise)",
            1,
            bitwise_eq(&c_ref, &c_blk).map(|()| "bit-identical".into()),
        );
    }
    {
        use densela::tensor;
        const P: usize = 9;
        let d = densela::DMatrix::from_fn(P, P, |r, c| ((r * P + c) as f64 * 0.023).sin());
        let u: Vec<f64> = (0..P * P * P).map(|i| (i as f64 * 0.017).cos()).collect();
        let mut o_ref = vec![0.0; P * P * P];
        let mut o_blk = vec![0.0; P * P * P];
        let mut ok = Ok("3 axes x tiles {1,3,8,16}".to_string());
        type Naive = fn(&densela::DMatrix, usize, &[f64], &mut [f64]) -> densela::Work;
        type Tiled = fn(&densela::DMatrix, usize, &[f64], &mut [f64], usize) -> densela::Work;
        for (axis, naive, tiled) in [
            (
                0,
                tensor::apply_dim0 as Naive,
                tensor::apply_dim0_with as Tiled,
            ),
            (
                1,
                tensor::apply_dim1 as Naive,
                tensor::apply_dim1_with as Tiled,
            ),
            (
                2,
                tensor::apply_dim2 as Naive,
                tensor::apply_dim2_with as Tiled,
            ),
        ] {
            naive(&d, P, &u, &mut o_ref);
            for tile in [1usize, 3, 8, 16] {
                tiled(&d, P, &u, &mut o_blk, tile);
                if let Err(e) = bitwise_eq(&o_ref, &o_blk) {
                    ok = Err(format!("axis {axis} tile {tile}: {e}"));
                }
            }
        }
        chk.record("tiled tensor contractions == naive (bitwise)", 1, ok);
    }
    {
        const NF: usize = 8;
        let mk = || -> Vec<fftsim::Complex64> {
            (0..NF * NF * NF)
                .map(|i| fftsim::Complex64::new((i as f64 * 0.13).sin(), (i as f64 * 0.29).cos()))
                .collect()
        };
        let mut d_ref = mk();
        let mut d_blk = mk();
        fftsim::fft3_inplace(NF, &mut d_ref);
        fftsim::fft3d::fft3_inplace_blocked(NF, &mut d_blk);
        let cmp = |p: &[fftsim::Complex64], q: &[fftsim::Complex64]| -> Result<(), String> {
            for (i, (u, v)) in p.iter().zip(q).enumerate() {
                if u.re.to_bits() != v.re.to_bits() || u.im.to_bits() != v.im.to_bits() {
                    return Err(format!("first divergence at [{i}]"));
                }
            }
            Ok(())
        };
        let fwd = cmp(&d_ref, &d_blk);
        fftsim::fft3d::ifft3_inplace(NF, &mut d_ref);
        fftsim::fft3d::ifft3_inplace_blocked(NF, &mut d_blk);
        chk.record(
            "blocked 3-D FFT == naive (bitwise, fwd+inv)",
            1,
            fwd.and_then(|()| cmp(&d_ref, &d_blk))
                .map(|()| "bit-identical".into()),
        );
    }
    {
        // Chunked reductions: inside the documented ulp bound, and exactly
        // repeatable.
        let (d_ref, _) = densela::vecops::dot(x, b);
        let (d_chk, _) = densela::vecops::dot_chunked(x, b);
        let mag: f64 = x.iter().zip(b).map(|(p, q)| (p * q).abs()).sum();
        chk.record(
            "chunked dot within documented ulp bound",
            1,
            if (d_ref - d_chk).abs() <= 1e-12 * (1.0 + mag) {
                Ok(format!("|delta| = {:.2e}", (d_ref - d_chk).abs()))
            } else {
                Err(format!("{d_ref:e} vs {d_chk:e}"))
            },
        );
    }

    // Thread-dependent blocked paths: serial fallback and pooled lanes
    // must all reproduce the naive serial kernels.
    let mut gs_ref = vec![0.0; n];
    mc_symgs_sweep(a, coloring, b, &mut gs_ref);
    for t in BLOCKED_THREAD_COUNTS {
        let team = Team::with_serial_cutover(t, 0);

        let mut ys = vec![0.0; n];
        team.sell_spmv(sell, x, &mut ys);
        chk.record(
            "chunked SELL SpMV == naive SELL (bitwise)",
            t,
            bitwise_eq(y_sell_serial, &ys).map(|()| "bit-identical".into()),
        );

        let mut gs = vec![0.0; n];
        team.mc_symgs_sweep(a, coloring, b, &mut gs);
        chk.record(
            "blocked MC-SymGS == naive sweep (bitwise)",
            t,
            bitwise_eq(&gs_ref, &gs).map(|()| "bit-identical".into()),
        );

        let mut ax_ref = b.to_vec();
        for (o, v) in ax_ref.iter_mut().zip(x) {
            *o += -1.75 * v;
        }
        let mut ax = b.to_vec();
        team.axpy(-1.75, x, &mut ax);
        chk.record(
            "chunk-aligned AXPY == scalar (bitwise)",
            t,
            bitwise_eq(&ax_ref, &ax).map(|()| "bit-identical".into()),
        );

        let mut p_ref = b.to_vec();
        for (pv, rv) in p_ref.iter_mut().zip(x) {
            *pv = rv + 0.6 * *pv;
        }
        let mut p = b.to_vec();
        team.xpby(x, 0.6, &mut p);
        chk.record(
            "chunk-aligned XPBY == scalar (bitwise)",
            t,
            bitwise_eq(&p_ref, &p).map(|()| "bit-identical".into()),
        );
    }

    // The serial-vs-blocked sweep itself (no team): tiles of several sizes.
    {
        let mut ok = Ok("tiles {1,3,8,16,512}".to_string());
        for tile in [1usize, 3, 8, 16, 512] {
            let mut gs = vec![0.0; n];
            sparsela::coloring::mc_symgs_sweep_blocked_with(a, coloring, b, &mut gs, tile);
            if let Err(e) = bitwise_eq(&gs_ref, &gs) {
                ok = Err(format!("tile {tile}: {e}"));
            }
        }
        chk.record(
            "cache-blocked MC-SymGS == naive across tiles (bitwise)",
            1,
            ok,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_suite_is_clean() {
        let (table, failures) = run();
        assert!(failures.is_empty(), "{}", failures.join("\n"));
        // Every thread count contributed rows.
        for t in THREAD_COUNTS {
            assert!(
                table.rows.iter().any(|r| r[1] == t.to_string()),
                "no rows for {t} threads"
            );
        }
    }
}
