//! Fault-off parity: the resilience layer must cost nothing when idle.
//!
//! PR 3's additivity contract: with the fault layer compiled in but
//! disabled — an empty [`FaultSchedule`] and a disabled
//! [`CheckpointModel`] — [`run_resilient`] must price **bit-identical**
//! runtimes to the plain [`Executor::run`] path, for every paper app that
//! carries a checkpoint spec, on every system the paper ran it on. The
//! suite also pins the schedule generator's seeding contract: a schedule
//! is a pure function of `(seed, system, nranks)` — regenerating with the
//! same key reproduces it exactly, and changing the seed moves it.

use a64fx_apps::trace::Trace;
use a64fx_apps::{hpcg, minikab, nekbone};
use a64fx_core::costmodel::{Executor, JobLayout};
use a64fx_core::resilience::run_resilient;
use a64fx_core::tracecache;
use a64fx_core::Table;
use archsim::{paper_toolchain, system, SystemId};
use faultsim::{CheckpointModel, FaultConfig, FaultSchedule, RetryPolicy};

/// Systems the parity sweep covers (the three the paper centres on).
pub const SYSTEMS: [SystemId; 3] = [SystemId::A64fx, SystemId::Ngio, SystemId::Fulhame];

/// Nodes per parity job.
const NODES: u32 = 2;

/// Seed for the determinism checks (same as the R1 experiment's).
const SEED: u64 = 0xA64F;

struct Checker {
    table: Table,
    failures: Vec<String>,
}

impl Checker {
    fn record(&mut self, check: &str, subject: &str, result: Result<String, String>) {
        let (cell, failed) = match &result {
            Ok(ok) => (format!("pass ({ok})"), false),
            Err(e) => (format!("FAIL: {e}"), true),
        };
        self.table
            .push_row(vec![check.to_string(), subject.to_string(), cell]);
        if failed {
            self.failures
                .push(format!("{check} [{subject}]: {}", result.unwrap_err()));
        }
    }
}

fn app_trace(app: &str, ranks: u32) -> std::sync::Arc<Trace> {
    match app {
        "hpcg" => tracecache::hpcg(hpcg::HpcgConfig::paper(), ranks),
        "nekbone" => tracecache::nekbone(nekbone::NekboneConfig::paper(), ranks),
        "minikab" => tracecache::minikab(minikab::MinikabConfig::paper(), ranks),
        other => unreachable!("unknown parity app {other}"),
    }
}

/// Run the fault-off parity and schedule-determinism suite; returns the
/// report table and failure lines.
pub fn run() -> (Table, Vec<String>) {
    let mut chk = Checker {
        table: Table::new(
            "RESILIENCE",
            "Fault-off parity: disabled fault layer is bit-identical; schedules are pure functions of (seed, system, nranks)",
            &["Check", "Subject", "Result"],
        ),
        failures: Vec::new(),
    };

    // 1. Bit-identity of the disabled fault path, app x system.
    for sys in SYSTEMS {
        let spec = system(sys);
        let layout = JobLayout::mpi_full(NODES, &spec);
        for app in ["hpcg", "nekbone", "minikab"] {
            let Some(tc) = paper_toolchain(sys, app) else {
                continue; // the paper did not run this pair
            };
            let subject = format!("{app} on {}", spec.name);
            let trace = app_trace(app, layout.ranks);
            let ex = Executor::new(&spec, &tc);
            let plain = ex.run(&trace, layout);
            let sched = FaultSchedule::none(sys, layout.ranks, layout.nodes() as usize);
            let r = run_resilient(
                &ex,
                &trace,
                layout,
                &sched,
                RetryPolicy::default_policy(),
                &CheckpointModel::disabled(),
            );
            chk.record(
                "fault-off runtime bit-identical to plain run",
                &subject,
                if r.runtime_s.to_bits() == plain.runtime_s.to_bits() {
                    Ok(format!("{:.3} s both paths", r.runtime_s))
                } else {
                    Err(format!(
                        "{:.17e} (resilient) vs {:.17e} (plain)",
                        r.runtime_s, plain.runtime_s
                    ))
                },
            );
            chk.record(
                "fault-off run injects nothing",
                &subject,
                if r.checkpoints == 0
                    && r.recoveries == 0
                    && r.msg_retries == 0
                    && r.ranks_lost == 0
                {
                    Ok("0 checkpoints/recoveries/retries".into())
                } else {
                    Err(format!(
                        "{} ckpt, {} recoveries, {} retries, {} ranks lost",
                        r.checkpoints, r.recoveries, r.msg_retries, r.ranks_lost
                    ))
                },
            );
        }
    }

    // 2. Schedule determinism: same (seed, system, nranks) key, same
    //    schedule — regenerated from scratch; a different seed moves it.
    for sys in SYSTEMS {
        let spec = system(sys);
        let layout = JobLayout::mpi_full(NODES, &spec);
        let nodes = layout.nodes() as usize;
        let cfg = FaultConfig::early_access(SEED, 120.0, 600.0);
        let a = FaultSchedule::generate(&cfg, sys, layout.ranks, nodes);
        let b = FaultSchedule::generate(&cfg, sys, layout.ranks, nodes);
        chk.record(
            "same key regenerates the identical schedule",
            &spec.name,
            if a == b {
                Ok(a.summary())
            } else {
                Err(format!("'{}' vs '{}'", a.summary(), b.summary()))
            },
        );
        let other_cfg = FaultConfig::early_access(SEED ^ 1, 120.0, 600.0);
        let c = FaultSchedule::generate(&other_cfg, sys, layout.ranks, nodes);
        chk.record(
            "a different seed moves the schedule",
            &spec.name,
            if a.straggler_mult != c.straggler_mult || a.events != c.events {
                Ok("stragglers/events differ".into())
            } else {
                Err("seed had no effect on the draw".into())
            },
        );
        let none = FaultSchedule::none(sys, layout.ranks, nodes);
        chk.record(
            "the empty schedule is empty",
            &spec.name,
            if none.is_empty() {
                Ok("no events, unit multipliers".into())
            } else {
                Err(none.summary())
            },
        );
    }

    chk.table.note(format!(
        "parity jobs: {NODES} nodes, full-node MPI; determinism key seed {SEED:#x}"
    ));
    chk.table.note(
        "bit-identity means f64::to_bits equality — the disabled fault layer may not \
         perturb a single ulp",
    );
    (chk.table, chk.failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilience_suite_is_clean() {
        let (table, failures) = run();
        assert!(failures.is_empty(), "{}", failures.join("\n"));
        assert!(
            table.rows.iter().any(|r| r[0].contains("bit-identical")),
            "parity rows present"
        );
        assert!(
            table.rows.iter().any(|r| r[0].contains("same key")),
            "determinism rows present"
        );
    }
}
