//! Campaign robustness conformance: crash-safety as a pinned contract.
//!
//! PR 8's supervision layer makes three promises the rest of the harness
//! now leans on, and this suite holds each one:
//!
//! 1. **Durable journal, valid prefix.** Every appended record survives
//!    round-trip exactly; a journal torn at an arbitrary byte or with a
//!    flipped bit loads as the longest valid prefix — never a misread
//!    record.
//! 2. **Resume is invisible.** A campaign killed after any number of
//!    durable records and then resumed produces output byte-identical
//!    to an uninterrupted run — both the rendered blocks and the merged
//!    experiment JSON. Retried-then-successful experiments render
//!    byte-identically to first-try successes.
//! 3. **Bounded caches are bit-transparent.** A trace cache capped down
//!    to thrash (LRU eviction on every fetch) serves traces equal to the
//!    uncapped build, and the chaos self-test — which additionally
//!    injects panics, hangs and disk corruption — passes with
//!    byte-identical output across double runs at a fixed seed.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use a64fx_apps::nekbone::NekboneConfig;
use a64fx_core::campaign::{self, CampaignConfig, CampaignEnd, Journal, RetryPolicy};
use a64fx_core::report::Table;
use a64fx_core::{chaos, tracecache};

/// Fixed chaos seed pinned by this suite (and re-used by CI's double-run
/// diff).
pub const CHAOS_SEED: u64 = 42;

struct Checker {
    table: Table,
    failures: Vec<String>,
}

impl Checker {
    fn record(&mut self, check: &str, subject: &str, result: Result<String, String>) {
        let (cell, failed) = match &result {
            Ok(ok) => (format!("pass ({ok})"), false),
            Err(e) => (format!("FAIL: {e}"), true),
        };
        self.table
            .push_row(vec![check.to_string(), subject.to_string(), cell]);
        if failed {
            self.failures
                .push(format!("{check} [{subject}]: {}", result.unwrap_err()));
        }
    }
}

fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "a64fx-conform-campaign-{name}-{}",
        std::process::id()
    ))
}

fn demo_table(id: &str) -> Table {
    let mut t = Table::new(&id.to_ascii_uppercase(), "campaign probe", &["k", "v"]);
    t.push_row(vec![id.to_string(), format!("{id}-value")]);
    t.note("synthetic campaign experiment");
    t
}

fn demo_body() -> Arc<dyn Fn(&str) -> Table + Send + Sync> {
    Arc::new(|id: &str| demo_table(id))
}

const IDS: [&str; 4] = ["p1", "p2", "p3", "p4"];

/// Run the campaign robustness suite; returns the report table and
/// failure lines.
pub fn run() -> (Table, Vec<String>) {
    let mut chk = Checker {
        table: Table::new(
            "CAMPAIGN",
            "Crash-safe campaigns: durable journal prefix, byte-identical resume, bit-transparent bounded caches",
            &["Check", "Subject", "Result"],
        ),
        failures: Vec::new(),
    };
    let cfg = CampaignConfig::new(1, Duration::from_secs(60));

    // 1. Journal records survive round-trip exactly.
    {
        let path = scratch("roundtrip");
        let write = || -> Result<String, String> {
            let mut j = Journal::create(&path, &IDS).map_err(|e| e.to_string())?;
            for id in IDS {
                let t = demo_table(id);
                j.append(id, 1, true, &t.render(), Some(&t.to_json(&[])))
                    .map_err(|e| e.to_string())?;
            }
            let loaded =
                campaign::load_journal(&path, &IDS).ok_or("written journal failed to load")?;
            if loaded.records.len() != IDS.len() {
                return Err(format!(
                    "loaded {} of {} records",
                    loaded.records.len(),
                    IDS.len()
                ));
            }
            for (i, r) in loaded.records.iter().enumerate() {
                let t = demo_table(IDS[i]);
                if r.render != t.render() || r.json.as_deref() != Some(t.to_json(&[]).as_str()) {
                    return Err(format!("record {i} did not round-trip byte-exactly"));
                }
            }
            Ok(format!("{} records byte-exact", IDS.len()))
        };
        chk.record(
            "journal round-trips byte-exactly",
            "synthetic 4-exp campaign",
            write(),
        );
        let _ = std::fs::remove_file(&path);
    }

    // 2. Torn and bit-flipped journals load as the longest valid prefix.
    {
        let path = scratch("damage");
        let damage = |mutate: &dyn Fn(&mut Vec<u8>), expect_max: usize| -> Result<String, String> {
            let mut j = Journal::create(&path, &IDS).map_err(|e| e.to_string())?;
            for id in IDS {
                let t = demo_table(id);
                j.append(id, 1, true, &t.render(), Some(&t.to_json(&[])))
                    .map_err(|e| e.to_string())?;
            }
            drop(j);
            let mut bytes = std::fs::read(&path).map_err(|e| e.to_string())?;
            mutate(&mut bytes);
            std::fs::write(&path, &bytes).map_err(|e| e.to_string())?;
            let loaded =
                campaign::load_journal(&path, &IDS).ok_or("damaged journal lost its header")?;
            if loaded.records.len() > expect_max {
                return Err(format!(
                    "kept {} records, damage allowed at most {expect_max}",
                    loaded.records.len()
                ));
            }
            for (i, r) in loaded.records.iter().enumerate() {
                if r.render != demo_table(IDS[i]).render() {
                    return Err(format!("record {i} replayed damaged bytes"));
                }
            }
            Ok(format!(
                "prefix of {} clean record(s)",
                loaded.records.len()
            ))
        };
        chk.record(
            "torn tail drops only incomplete records",
            "truncate mid-record",
            damage(&|b: &mut Vec<u8>| b.truncate(b.len() - 20), IDS.len() - 1),
        );
        chk.record(
            "flipped bit voids its record and the tail",
            "xor one byte in record 2",
            damage(
                &|b: &mut Vec<u8>| {
                    // Find the start of the third record line (header + 2
                    // records precede it) and flip a byte inside it.
                    let pos = b
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c == b'\n')
                        .map(|(i, _)| i)
                        .nth(2)
                        .unwrap()
                        + 10;
                    b[pos] ^= 0x04;
                },
                2,
            ),
        );
        let _ = std::fs::remove_file(&path);
    }

    // 3. Kill-and-resume is byte-identical to an uninterrupted campaign.
    {
        let clean_path = scratch("clean");
        let killed_path = scratch("killed");
        let check = || -> Result<String, String> {
            let clean =
                campaign::run_campaign_with(&IDS, demo_body(), &cfg, Some(&clean_path), false)
                    .map_err(|e| e.to_string())?;
            let clean_merged = campaign::merged_json(&clean.outcomes);
            let kill_cfg = CampaignConfig {
                stop_after_records: Some(2),
                ..cfg
            };
            let killed = campaign::run_campaign_with(
                &IDS,
                demo_body(),
                &kill_cfg,
                Some(&killed_path),
                false,
            )
            .map_err(|e| e.to_string())?;
            if killed.end != CampaignEnd::Killed {
                return Err("kill hook did not fire".into());
            }
            let resumed =
                campaign::run_campaign_with(&IDS, demo_body(), &cfg, Some(&killed_path), true)
                    .map_err(|e| e.to_string())?;
            let replayed = resumed.outcomes.iter().filter(|o| o.from_journal).count();
            if replayed != 2 {
                return Err(format!("expected 2 replayed outcomes, got {replayed}"));
            }
            if campaign::merged_json(&resumed.outcomes) != clean_merged {
                return Err("merged JSON differs between clean and resumed runs".into());
            }
            let renders_match = clean
                .outcomes
                .iter()
                .zip(&resumed.outcomes)
                .all(|(a, b)| a.render == b.render);
            if !renders_match {
                return Err("rendered blocks differ between clean and resumed runs".into());
            }
            Ok("killed at 2/4, resume byte-identical".into())
        };
        chk.record(
            "kill-and-resume byte-identical",
            "synthetic 4-exp campaign",
            check(),
        );
        let _ = std::fs::remove_file(&clean_path);
        let _ = std::fs::remove_file(&killed_path);
    }

    // 4. Retried-then-successful output is byte-identical to first-try.
    {
        let check = || -> Result<String, String> {
            let calls = Arc::new(AtomicU32::new(0));
            let c = Arc::clone(&calls);
            let flaky: Arc<dyn Fn(&str) -> Table + Send + Sync> = Arc::new(move |id: &str| {
                if id == "p2" && c.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("conform: injected transient failure");
                }
                demo_table(id)
            });
            let retry_cfg = CampaignConfig {
                retry: RetryPolicy::with_retries(1, Duration::ZERO),
                ..cfg
            };
            let flaky_run = campaign::run_campaign_with(&IDS, flaky, &retry_cfg, None, false)
                .map_err(|e| e.to_string())?;
            let clean_run = campaign::run_campaign_with(&IDS, demo_body(), &cfg, None, false)
                .map_err(|e| e.to_string())?;
            if flaky_run.failed() != 0 {
                return Err("retry did not absorb the injected failure".into());
            }
            let p2 = flaky_run.outcomes.iter().find(|o| o.id == "p2").unwrap();
            if p2.attempts != 2 {
                return Err(format!("expected 2 attempts, got {}", p2.attempts));
            }
            for (a, b) in flaky_run.outcomes.iter().zip(&clean_run.outcomes) {
                if a.render != b.render || a.json != b.json {
                    return Err(format!("outcome {} differs after retry", a.id));
                }
            }
            Ok("1 panic absorbed; output byte-identical".into())
        };
        chk.record(
            "retry leaves no mark on output",
            "injected panic on p2",
            check(),
        );
    }

    // 5. A thrashing LRU trace cache is bit-transparent.
    {
        let check = || -> Result<String, String> {
            let _g = tracecache::override_lock();
            tracecache::set_enabled(true);
            let configs: Vec<NekboneConfig> = (0..4)
                .map(|i| NekboneConfig {
                    elements_per_rank: 53 + 2 * i,
                    poly: 5,
                    iterations: 2,
                })
                .collect();
            let ranks = 3;
            // Uncapped references, built directly (no cache involved).
            let reference: Vec<_> = configs
                .iter()
                .map(|c| a64fx_apps::nekbone::trace(*c, ranks))
                .collect();
            // Cap to roughly one trace: every fetch cycle evicts.
            let one = reference[0].approx_bytes() + 16;
            tracecache::set_capacity(Some(one));
            tracecache::clear();
            let before = tracecache::stats();
            let mut mismatches = 0;
            for round in 0..3 {
                for (i, c) in configs.iter().enumerate() {
                    let got = tracecache::nekbone(*c, ranks);
                    if *got != reference[i] {
                        mismatches += 1;
                    }
                    let _ = round;
                }
            }
            let after = tracecache::stats();
            tracecache::set_capacity(None);
            tracecache::clear_override();
            if mismatches > 0 {
                return Err(format!("{mismatches} evicted fetch(es) served wrong bytes"));
            }
            if after.evictions <= before.evictions {
                return Err("capacity bound never evicted — check not exercised".into());
            }
            Ok(format!(
                "{} evictions, all fetches bit-equal to direct builds",
                after.evictions - before.evictions
            ))
        };
        chk.record(
            "LRU eviction is bit-transparent",
            "nekbone x4 under 1-trace cap",
            check(),
        );
    }

    // 6. The chaos self-test passes and double runs are byte-identical.
    {
        let check = || -> Result<String, String> {
            let (t1, f1) = chaos::run_chaos(CHAOS_SEED);
            if !f1.is_empty() {
                return Err(format!("chaos scenarios failed: {}", f1.join("; ")));
            }
            let (t2, f2) = chaos::run_chaos(CHAOS_SEED);
            if !f2.is_empty() {
                return Err(format!("chaos re-run failed: {}", f2.join("; ")));
            }
            if t1.render() != t2.render() {
                return Err("chaos output drifted between same-seed runs".into());
            }
            Ok(format!(
                "{} scenarios, double run byte-identical",
                t1.rows.len()
            ))
        };
        chk.record(
            "chaos self-test passes deterministically",
            &format!("seed {CHAOS_SEED}"),
            check(),
        );
    }

    (chk.table, chk.failures)
}
