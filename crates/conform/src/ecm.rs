//! ECM-pricing conformance: the hierarchy-aware backend must refine the
//! flat roofline, never contradict it.
//!
//! Three obligations, all pinned here (the E1 *values* themselves are
//! pinned by the golden suite, `goldens/e1.json`):
//!
//! 1. **Differential sweep.** For every system, every access pattern's
//!    representative kernel class, and forced 1/2/4 threads, the ECM price
//!    of a memory-bound kernel must (a) never exceed the flat price — the
//!    calibrated roofline is the model's upper envelope — (b) agree with
//!    flat within a small tolerance once the working set dwarfs the last
//!    cache level, and (c) diverge in the predicted direction — ECM
//!    strictly cheaper — while the working set is L1-resident.
//! 2. **Determinism.** E1 rendered twice must be byte-identical.
//! 3. **Default-invariance.** E1 is built from explicit backends, so
//!    flipping the installed process default (`--pricing` /
//!    `A64FX_PRICING`) must not move a byte of it — the guarantee that
//!    keeps every pre-existing golden stable under the flat default.

use a64fx_apps::KernelClass;
use a64fx_core::costmodel::{
    default_pricing, set_default_pricing, Executor, JobLayout, PricingBackend,
};
use a64fx_core::experiments::ecm::e1;
use a64fx_core::Table;
use archsim::{paper_toolchain, system, SystemId};
use densela::Work;

/// Thread counts the differential sweep forces per rank.
pub const FORCED_THREADS: [u32; 3] = [1, 2, 4];

/// L1-resident working set (bytes): the divergence regime.
pub const SMALL_WS: u64 = 32 * 1024;

/// Memory-resident working set (bytes): the convergence regime.
pub const LARGE_WS: u64 = 512 * 1024 * 1024;

/// Maximum allowed ECM/flat ratio at [`SMALL_WS`] — ECM must undercut
/// flat by at least this margin while the kernel lives in L1.
pub const DIVERGENCE_MAX: f64 = 0.9;

/// Maximum allowed |1 − ECM/flat| at [`LARGE_WS`].
pub const CONVERGENCE_TOL: f64 = 0.05;

/// The sweep's synthetic kernel: one traversal of the working set with no
/// flops at all, so the flat-vs-ECM differential isolates the *memory*
/// term — the only part the two backends price differently. (E1's
/// published kernel carries flops; some classes' calibrated flop ceilings
/// would mask the memory gap at L1-resident sizes.)
pub fn sweep_kernel(ws_bytes: u64) -> Work {
    Work::new(0, ws_bytes, 0)
}

/// One representative kernel class per access pattern: gather, strided,
/// streaming.
pub const SWEEP_CLASSES: [KernelClass; 3] = [
    KernelClass::SpMV,
    KernelClass::StencilFD,
    KernelClass::VectorOp,
];

/// Run the ECM suite: the flat-vs-ECM differential sweep, then the E1
/// determinism and default-invariance checks. Returns the report table
/// and any failures.
pub fn run() -> (Table, Vec<String>) {
    let mut table = Table::new(
        "ECM",
        "ECM pricing: flat-vs-ECM differential sweep at forced 1/2/4 \
         threads, then E1 determinism and pricing-default invariance",
        &["Check", "Case", "Cells", "Verdict"],
    );
    let mut failures = Vec::new();

    // 1. Differential sweep: envelope, convergence, divergence.
    let mut cells = 0usize;
    let mut bad = 0usize;
    for sys in SystemId::all() {
        let spec = system(sys);
        let tc = paper_toolchain(sys, "hpcg").unwrap();
        let flat = Executor::with_pricing(&spec, &tc, PricingBackend::Flat);
        let ecm = Executor::with_pricing(&spec, &tc, PricingBackend::Ecm);
        for threads in FORCED_THREADS {
            let layout = JobLayout {
                ranks: 1,
                ranks_per_node: 1,
                threads_per_rank: threads,
            };
            for class in SWEEP_CLASSES {
                for ws in [SMALL_WS, LARGE_WS] {
                    cells += 1;
                    let work = sweep_kernel(ws);
                    let t_flat = flat.kernel_time_us(layout, class, work, ws);
                    let t_ecm = ecm.kernel_time_us(layout, class, work, ws);
                    let ratio = t_ecm / t_flat;
                    let mut complain = |why: &str| {
                        bad += 1;
                        failures.push(format!(
                            "{} / {class:?} / {threads} threads / ws {ws}: {why} \
                             (flat {t_flat:.3}us, ecm {t_ecm:.3}us, ratio {ratio:.3})",
                            spec.name
                        ));
                    };
                    if !(t_ecm.is_finite() && t_flat.is_finite() && t_flat > 0.0) {
                        complain("non-finite price");
                        continue;
                    }
                    if ratio > 1.0 + 1e-12 {
                        complain("ECM exceeds the flat envelope");
                    }
                    if ws == LARGE_WS && (1.0 - ratio).abs() > CONVERGENCE_TOL {
                        complain("ECM must converge to flat at memory-resident ws");
                    }
                    if ws == SMALL_WS && ratio >= DIVERGENCE_MAX {
                        complain("ECM must undercut flat at L1-resident ws");
                    }
                }
            }
        }
    }
    table.push_row(vec![
        "differential".to_string(),
        format!(
            "{} systems x {} classes x {} thread counts x 2 working sets",
            SystemId::all().len(),
            SWEEP_CLASSES.len(),
            FORCED_THREADS.len()
        ),
        cells.to_string(),
        if bad == 0 {
            "within bands".to_string()
        } else {
            format!("{bad} VIOLATIONS")
        },
    ]);

    // 2. E1 double-run determinism.
    let first = e1().render();
    let second = e1().render();
    let deterministic = first == second;
    if !deterministic {
        failures.push("E1 double run drifted: renders differ".to_string());
    }
    table.push_row(vec![
        "determinism".to_string(),
        "E1 rendered twice".to_string(),
        "2".to_string(),
        if deterministic {
            "byte-identical".to_string()
        } else {
            "DRIFTED".to_string()
        },
    ]);

    // 3. Default-invariance: flipping the installed pricing default must
    // not move a byte of E1 (it is built from explicit backends).
    let prev = default_pricing();
    set_default_pricing(PricingBackend::Ecm);
    let under_ecm = e1().render();
    set_default_pricing(PricingBackend::Flat);
    let under_flat = e1().render();
    set_default_pricing(prev);
    let invariant = under_ecm == first && under_flat == first;
    if !invariant {
        failures.push(
            "E1 changed under the installed pricing default — explicit \
             backends must shield it"
                .to_string(),
        );
    }
    table.push_row(vec![
        "default-invariance".to_string(),
        "E1 under installed flat/ecm defaults".to_string(),
        "2".to_string(),
        if invariant {
            "byte-identical".to_string()
        } else {
            "LEAKED".to_string()
        },
    ]);

    table.note(
        "The flat backend is the reference: ECM may only refine prices \
         downward, collapsing onto flat once the working set spills the \
         hierarchy. E1's values are pinned by the golden suite.",
    );
    (table, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecm_suite_passes() {
        let (table, failures) = run();
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(table.rows.len(), 3);
        assert_eq!(table.rows[0][3], "within bands", "{:?}", table.rows[0]);
        assert_eq!(table.rows[1][3], "byte-identical");
        assert_eq!(table.rows[2][3], "byte-identical");
    }

    #[test]
    fn sweep_classes_cover_every_access_pattern() {
        let patterns: Vec<_> = SWEEP_CLASSES.iter().map(|c| c.access_pattern()).collect();
        for p in archsim::AccessPattern::all() {
            assert!(patterns.contains(&p), "{p:?} not covered by the sweep");
        }
    }
}
