//! The conformance suites as ordinary integration tests, so
//! `cargo test -p conform` (and tier-1 `cargo test`) holds the simulation
//! to its goldens, its DES, its kernel-parity promises, the fault layer's
//! strict-additivity contract, and the tracing/metrics layer's
//! determinism and purity contracts on every run.

#[test]
fn golden_tables_conform() {
    let r = conform::golden_suite(false);
    assert!(r.passed(), "golden drift:\n{}", r.failures.join("\n"));
}

#[test]
fn des_vs_analytic_within_bound() {
    let r = conform::differential_suite();
    assert!(
        r.passed(),
        "differential sweep out of bound:\n{}\n\n{}",
        r.failures.join("\n"),
        r.report
    );
}

#[test]
fn kernel_parity_holds_at_scale() {
    let r = conform::parity_suite();
    assert!(
        r.passed(),
        "parity violations:\n{}\n\n{}",
        r.failures.join("\n"),
        r.report
    );
}

#[test]
fn fault_layer_is_strictly_additive() {
    let r = conform::resilience_suite();
    assert!(
        r.passed(),
        "resilience parity violations:\n{}\n\n{}",
        r.failures.join("\n"),
        r.report
    );
}

#[test]
fn observability_is_deterministic_and_pure() {
    let r = conform::obs_suite(false);
    assert!(
        r.passed(),
        "observability violations:\n{}\n\n{}",
        r.failures.join("\n"),
        r.report
    );
}

#[test]
fn campaigns_are_crash_safe() {
    let r = conform::campaign_suite();
    assert!(
        r.passed(),
        "campaign robustness violations:\n{}\n\n{}",
        r.failures.join("\n"),
        r.report
    );
}
