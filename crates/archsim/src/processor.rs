//! Processor (socket/package) models.

use serde::{Deserialize, Serialize};

use crate::vector::VectorUnit;

/// Simultaneous multithreading capability (Table I "Threads per core").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SmtMode {
    /// One hardware thread per core (A64FX).
    Off,
    /// Up to two threads per core (Intel HyperThreading).
    Smt2,
    /// Up to four threads per core (ThunderX2).
    Smt4,
}

impl SmtMode {
    /// Maximum hardware threads per core.
    pub fn max_threads(&self) -> u32 {
        match self {
            SmtMode::Off => 1,
            SmtMode::Smt2 => 2,
            SmtMode::Smt4 => 4,
        }
    }
}

/// A processor package: cores, clock, vector capability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    /// Marketing / model name, e.g. "Fujitsu A64FX".
    pub name: String,
    /// Microarchitecture, e.g. "SVE", "Ivy Bridge".
    pub microarch: String,
    /// Nominal core clock in GHz (Table I).
    pub clock_ghz: f64,
    /// User-visible cores per package (the A64FX 13th assistant core per CMG
    /// is reserved for the OS and excluded, as in the paper).
    pub cores: u32,
    /// SMT capability.
    pub smt: SmtMode,
    /// Vector unit description.
    pub vector: VectorUnit,
    /// Out-of-order instruction window size class, used by the cost model to
    /// derate irregular/instruction-fetch-bound kernels (the A64FX has a
    /// comparatively narrow front end, which the paper's OpenSBLI profiling
    /// observed as instruction fetch waits).
    pub ooo_window: u32,
}

impl Processor {
    /// Peak double-precision GFLOP/s of the whole package.
    pub fn peak_dp_gflops(&self) -> f64 {
        f64::from(self.cores) * self.vector.dp_gflops_per_core()
    }

    /// Peak double-precision GFLOP/s of one core.
    pub fn peak_dp_gflops_per_core(&self) -> f64 {
        self.vector.dp_gflops_per_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a64fx_package_peak() {
        let p = Processor {
            name: "Fujitsu A64FX".into(),
            microarch: "SVE".into(),
            clock_ghz: 2.2,
            cores: 48,
            smt: SmtMode::Off,
            vector: VectorUnit::sve_512(2.2),
            ooo_window: 128,
        };
        assert!((p.peak_dp_gflops() - 3379.2).abs() < 1e-9);
        assert_eq!(p.smt.max_threads(), 1);
    }

    #[test]
    fn smt_thread_counts() {
        assert_eq!(SmtMode::Off.max_threads(), 1);
        assert_eq!(SmtMode::Smt2.max_threads(), 2);
        assert_eq!(SmtMode::Smt4.max_threads(), 4);
    }
}
