//! Compiler toolchain models (Table II of the paper).
//!
//! The paper compiles each benchmark with the system vendor's toolchain
//! (Fujitsu, Intel, Cray, GCC, Arm Clang) and observes two first-order
//! effects that we carry in the model:
//!
//! 1. **Vectorisation efficiency** — how much of the core's SIMD peak the
//!    compiler extracts for a given kernel shape. The Fujitsu compiler with
//!    `-KSVE` vectorises the regular kernels well; GCC on NEON less so.
//! 2. **Fast-math** (`-Kfast` / `-ffast-math`) — re-association and FMA
//!    contraction. The paper's Nekbone runs show a dramatic ×1.8 speed-up on
//!    the A64FX from `-Kfast` and little effect elsewhere (Table VI), because
//!    only on the A64FX does the extra instruction-level parallelism convert
//!    into flops not already blocked on memory.

use serde::{Deserialize, Serialize};

/// Compiler family used on a system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ToolchainFamily {
    /// Fujitsu compiler (A64FX), `-Kfast -KSVE ...`.
    Fujitsu,
    /// Intel classic compilers (ARCHER, Cirrus, EPCC NGIO).
    Intel,
    /// GNU GCC/GFortran (ARCHER GCC builds, Fulhame).
    Gnu,
    /// Arm Clang / Arm Fortran (Fulhame minikab/OpenSBLI builds).
    ArmClang,
    /// Cray CCE (ARCHER OpenSBLI build).
    Cray,
}

impl ToolchainFamily {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ToolchainFamily::Fujitsu => "Fujitsu",
            ToolchainFamily::Intel => "Intel",
            ToolchainFamily::Gnu => "GNU",
            ToolchainFamily::ArmClang => "Arm Clang",
            ToolchainFamily::Cray => "Cray CCE",
        }
    }
}

/// The modelled effect of a compiler flag set on kernel throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlagEffect {
    /// Multiplier on achievable flop rate for compute-bound vectorisable
    /// kernels when fast-math-style flags are enabled (e.g. `-Kfast`).
    pub fastmath_flop_gain: f64,
    /// Fraction of SIMD peak the compiler typically reaches on clean,
    /// unit-stride vectorisable loops.
    pub vector_efficiency: f64,
    /// Fraction of scalar issue rate reached on irregular, branchy code.
    pub scalar_efficiency: f64,
}

/// A toolchain as configured for one benchmark on one system: family,
/// version string and flags (verbatim from Table II), plus the modelled
/// throughput effects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Toolchain {
    /// Compiler family.
    pub family: ToolchainFamily,
    /// Version string as reported in Table II, e.g. "Fujitsu 1.2.24".
    pub version: String,
    /// Compile flags, verbatim from Table II.
    pub flags: String,
    /// Libraries used (MPI, BLAS/LAPACK, FFT), verbatim from Table II.
    pub libraries: String,
    /// Whether fast-math-style flags (`-Kfast`, `-ffast-math`) are active.
    pub fastmath: bool,
    /// Modelled flag effects.
    pub effect: FlagEffect,
}

impl Toolchain {
    /// Construct the default toolchain used for compute kernels on a given
    /// family, with the paper's flags attached.
    pub fn for_family(
        family: ToolchainFamily,
        version: &str,
        flags: &str,
        libraries: &str,
    ) -> Self {
        let fastmath = flags.contains("-Kfast")
            || flags.contains("-ffast-math")
            || flags.contains("fp-contract=fast");
        let effect = match family {
            // The Fujitsu compiler with -Kfast unlocks software pipelining and
            // SVE FMA contraction; without it SVE utilisation is mediocre.
            ToolchainFamily::Fujitsu => FlagEffect {
                fastmath_flop_gain: 1.78,
                vector_efficiency: 0.80,
                scalar_efficiency: 0.55,
            },
            ToolchainFamily::Intel => FlagEffect {
                fastmath_flop_gain: 1.05,
                vector_efficiency: 0.85,
                scalar_efficiency: 0.75,
            },
            ToolchainFamily::Gnu => FlagEffect {
                fastmath_flop_gain: 1.09,
                vector_efficiency: 0.70,
                scalar_efficiency: 0.70,
            },
            ToolchainFamily::ArmClang => FlagEffect {
                fastmath_flop_gain: 1.08,
                vector_efficiency: 0.75,
                scalar_efficiency: 0.72,
            },
            ToolchainFamily::Cray => FlagEffect {
                fastmath_flop_gain: 1.06,
                vector_efficiency: 0.80,
                scalar_efficiency: 0.72,
            },
        };
        Toolchain {
            family,
            version: version.to_string(),
            flags: flags.to_string(),
            libraries: libraries.to_string(),
            fastmath,
            effect,
        }
    }

    /// Effective multiplier on compute-bound throughput from the flag set.
    pub fn flop_multiplier(&self) -> f64 {
        if self.fastmath {
            self.effect.fastmath_flop_gain
        } else {
            1.0
        }
    }

    /// Return a copy of this toolchain with fast-math toggled, used by the
    /// Nekbone fast-math ablation (Table VI).
    pub fn with_fastmath(&self, on: bool) -> Self {
        let mut t = self.clone();
        t.fastmath = on;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastmath_detected_from_flags() {
        let t = Toolchain::for_family(
            ToolchainFamily::Fujitsu,
            "1.2.24",
            "-O3 -Kfast",
            "Fujitsu MPI",
        );
        assert!(t.fastmath);
        assert!(t.flop_multiplier() > 1.5);
        let t2 = Toolchain::for_family(ToolchainFamily::Intel, "19", "-O3", "Intel MPI");
        assert!(!t2.fastmath);
        assert_eq!(t2.flop_multiplier(), 1.0);
    }

    #[test]
    fn fastmath_gain_is_large_only_on_fujitsu() {
        // Table VI: -Kfast gives ~1.78x on A64FX; -ffast-math moves others <10%.
        let fj = Toolchain::for_family(ToolchainFamily::Fujitsu, "1.2.24", "-Kfast", "");
        let gnu = Toolchain::for_family(ToolchainFamily::Gnu, "8.2", "-ffast-math", "");
        assert!(fj.flop_multiplier() > 1.7);
        assert!(gnu.flop_multiplier() < 1.15);
    }

    #[test]
    fn with_fastmath_toggles() {
        let t = Toolchain::for_family(ToolchainFamily::Fujitsu, "1.2.24", "-O3", "");
        assert!(!t.fastmath);
        assert!(t.with_fastmath(true).fastmath);
        assert!((t.with_fastmath(true).flop_multiplier() - 1.78).abs() < 1e-12);
    }
}
