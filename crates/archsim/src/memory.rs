//! Memory system models: capacity, NUMA/CMG domains, sustained bandwidth,
//! and the cache hierarchy.
//!
//! The A64FX is the interesting case: it has four Core Memory Groups (CMGs),
//! each with 12 user cores, an 8 MiB slice of L2, and 8 GiB of directly
//! attached HBM2 delivering 256 GB/s — about 1 TB/s peak for the package.
//! The x86 and ThunderX2 systems are conventional dual-socket NUMA nodes with
//! DDR3/DDR4 channels.
//!
//! Sustained (STREAM-triad-like) bandwidth is carried separately from peak:
//! the cost model always uses sustained numbers, because that is what bounds
//! the memory-bound kernels that dominate the paper's benchmarks.

use serde::{Deserialize, Serialize};

/// The memory technology attached to a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// High Bandwidth Memory, 2nd generation (A64FX).
    Hbm2,
    /// DDR3 SDRAM (ARCHER / Cray XC30).
    Ddr3,
    /// DDR4 SDRAM (Cirrus, EPCC NGIO, Fulhame).
    Ddr4,
}

impl MemoryKind {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            MemoryKind::Hbm2 => "HBM2",
            MemoryKind::Ddr3 => "DDR3",
            MemoryKind::Ddr4 => "DDR4",
        }
    }
}

/// One level of the on-chip cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Cache level (1, 2, 3).
    pub level: u8,
    /// Capacity in KiB. For shared caches this is the capacity of the shared
    /// slice (e.g. 8 MiB per A64FX CMG).
    pub capacity_kib: u64,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Number of cores sharing this cache instance.
    pub shared_by_cores: u32,
}

impl CacheLevel {
    /// Capacity of one cache instance in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_kib * 1024
    }

    /// Capacity available to one core in bytes: private caches give a core
    /// the whole instance, shared caches an even slice.
    pub fn capacity_bytes_per_core(&self) -> u64 {
        self.capacity_bytes() / u64::from(self.shared_by_cores.max(1))
    }

    /// Sustained per-core transfer bandwidth of this level in bytes/cycle.
    ///
    /// Derived from the level and line size rather than stored per system:
    /// the 256 B-line levels are the A64FX's (Snippet 1/3: L1 streams two
    /// 512-bit SVE loads per cycle = 128 B/cy, L2 sustains ~42 B/cy per
    /// core), while 64 B-line levels get conventional x86/Arm figures
    /// (one-to-two cache lines per cycle at L1, roughly half that at L2,
    /// and a ring/mesh-limited L3).
    pub fn sustained_bytes_per_cycle_per_core(&self) -> f64 {
        match (self.level, self.line_bytes) {
            (1, 256) => 128.0,
            (1, _) => 64.0,
            (2, 256) => 42.0,
            (2, _) => 32.0,
            _ => 16.0,
        }
    }

    /// Load-use latency of this level in core cycles (Snippet 1/3 for the
    /// 256 B-line A64FX hierarchy; typical published figures elsewhere).
    pub fn latency_cycles(&self) -> f64 {
        match (self.level, self.line_bytes) {
            (1, 256) => 5.0,
            (1, _) => 4.0,
            (2, 256) => 40.0,
            (2, _) => 14.0,
            _ => 40.0,
        }
    }
}

/// A memory locality domain: a NUMA node on x86/ThunderX2 or a CMG on the
/// A64FX. Bandwidth is *per domain*; a node's total sustained bandwidth is
/// the sum over its domains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryDomain {
    /// Memory technology backing the domain.
    pub kind: MemoryKind,
    /// Capacity of this domain in GiB.
    pub capacity_gib: f64,
    /// Peak (spec-sheet) bandwidth in GB/s.
    pub peak_bw_gbs: f64,
    /// Sustained STREAM-triad bandwidth in GB/s, as measurable by a full
    /// complement of cores in the domain.
    pub sustained_bw_gbs: f64,
    /// Idle-load latency to this domain in nanoseconds.
    pub latency_ns: f64,
    /// Number of cores whose first-touch allocations land here.
    pub cores: u32,
}

/// The full per-node memory system: a set of identical locality domains plus
/// the cache hierarchy description of the constituent processor(s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySystem {
    /// Identical locality domains (4 CMGs on A64FX, 2 sockets elsewhere).
    pub domains: Vec<MemoryDomain>,
    /// Cache hierarchy, innermost first.
    pub caches: Vec<CacheLevel>,
}

impl MemorySystem {
    /// Build a memory system of `n` identical domains.
    pub fn uniform(domain: MemoryDomain, n: usize, caches: Vec<CacheLevel>) -> Self {
        MemorySystem {
            domains: vec![domain; n],
            caches,
        }
    }

    /// Total node capacity in GiB.
    pub fn total_capacity_gib(&self) -> f64 {
        self.domains.iter().map(|d| d.capacity_gib).sum()
    }

    /// Total node capacity in bytes.
    pub fn total_capacity_bytes(&self) -> u64 {
        (self.total_capacity_gib() * 1024.0 * 1024.0 * 1024.0) as u64
    }

    /// Total sustained node bandwidth in GB/s (all domains driven together).
    pub fn sustained_bw_gbs(&self) -> f64 {
        self.domains.iter().map(|d| d.sustained_bw_gbs).sum()
    }

    /// Total peak node bandwidth in GB/s.
    pub fn peak_bw_gbs(&self) -> f64 {
        self.domains.iter().map(|d| d.peak_bw_gbs).sum()
    }

    /// Number of locality domains.
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// Total cores covered by the domains.
    pub fn total_cores(&self) -> u32 {
        self.domains.iter().map(|d| d.cores).sum()
    }

    /// Sustained bandwidth available to a single process that is pinned to
    /// one domain and uses `cores_used` of its cores. A single core cannot
    /// saturate a domain; saturation is modelled as linear up to
    /// `saturation_cores` and flat beyond.
    ///
    /// `saturation_cores` is the number of cores needed to reach the domain's
    /// sustained bandwidth — about 4 for DDR sockets and 8–10 for an HBM CMG.
    pub fn domain_bw_for_cores(
        &self,
        domain: usize,
        cores_used: u32,
        saturation_cores: u32,
    ) -> f64 {
        let d = &self.domains[domain.min(self.domains.len() - 1)];
        let frac = f64::from(cores_used.min(saturation_cores)) / f64::from(saturation_cores.max(1));
        d.sustained_bw_gbs * frac.min(1.0)
    }

    /// The bandwidth share seen by each of `ranks` processes spread evenly
    /// across all domains with all cores active (the fully-populated node
    /// case used for the paper's per-node benchmarks).
    pub fn bw_share_fully_populated(&self, ranks: u32) -> f64 {
        if ranks == 0 {
            return 0.0;
        }
        self.sustained_bw_gbs() / f64::from(ranks)
    }

    /// Capacity of the last-level cache summed across the node, in bytes.
    pub fn llc_total_bytes(&self) -> u64 {
        self.caches
            .iter()
            .max_by_key(|c| c.level)
            .map(|c| {
                let instances =
                    (f64::from(self.total_cores()) / f64::from(c.shared_by_cores)).ceil() as u64;
                c.capacity_kib * 1024 * instances
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a64fx_like() -> MemorySystem {
        MemorySystem::uniform(
            MemoryDomain {
                kind: MemoryKind::Hbm2,
                capacity_gib: 8.0,
                peak_bw_gbs: 256.0,
                sustained_bw_gbs: 210.0,
                latency_ns: 120.0,
                cores: 12,
            },
            4,
            vec![
                CacheLevel {
                    level: 1,
                    capacity_kib: 64,
                    line_bytes: 256,
                    shared_by_cores: 1,
                },
                CacheLevel {
                    level: 2,
                    capacity_kib: 8 * 1024,
                    line_bytes: 256,
                    shared_by_cores: 12,
                },
            ],
        )
    }

    #[test]
    fn a64fx_capacity_and_bandwidth_sum_over_cmgs() {
        let m = a64fx_like();
        assert!((m.total_capacity_gib() - 32.0).abs() < 1e-12);
        assert!((m.peak_bw_gbs() - 1024.0).abs() < 1e-12);
        assert!((m.sustained_bw_gbs() - 840.0).abs() < 1e-12);
        assert_eq!(m.total_cores(), 48);
        assert_eq!(m.num_domains(), 4);
    }

    #[test]
    fn llc_counts_all_cmg_slices() {
        let m = a64fx_like();
        // 4 CMGs x 8 MiB = 32 MiB.
        assert_eq!(m.llc_total_bytes(), 32 * 1024 * 1024);
    }

    #[test]
    fn single_core_cannot_saturate_domain() {
        let m = a64fx_like();
        let one = m.domain_bw_for_cores(0, 1, 10);
        let full = m.domain_bw_for_cores(0, 12, 10);
        assert!(one < full);
        assert!((full - 210.0).abs() < 1e-12);
        assert!((one - 21.0).abs() < 1e-12);
    }

    #[test]
    fn per_level_throughput_matches_a64fx_snippets() {
        let m = a64fx_like();
        let l1 = &m.caches[0];
        let l2 = &m.caches[1];
        // Snippet 3: L1 128 B/cy @ ~5 cy, L2 ~42 B/cy @ ~40 cy.
        assert_eq!(l1.sustained_bytes_per_cycle_per_core(), 128.0);
        assert_eq!(l1.latency_cycles(), 5.0);
        assert_eq!(l2.sustained_bytes_per_cycle_per_core(), 42.0);
        assert_eq!(l2.latency_cycles(), 40.0);
        // Private L1: whole 64 KiB; shared L2: an even 1/12 slice per core.
        assert_eq!(l1.capacity_bytes_per_core(), 64 * 1024);
        assert_eq!(l2.capacity_bytes_per_core(), 8 * 1024 * 1024 / 12);
    }

    #[test]
    fn bw_share_divides_evenly() {
        let m = a64fx_like();
        assert!((m.bw_share_fully_populated(48) - 840.0 / 48.0).abs() < 1e-12);
        assert_eq!(m.bw_share_fully_populated(0), 0.0);
    }
}
