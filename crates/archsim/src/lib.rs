//! # archsim — hardware architecture models
//!
//! Models of the five HPC systems evaluated in *Investigating Applications on
//! the A64FX* (Jackson et al., IEEE CLUSTER 2020):
//!
//! * **A64FX** — Fujitsu A64FX, 48 cores @ 2.2 GHz, 512-bit SVE, 32 GB HBM2,
//!   TofuD interconnect.
//! * **ARCHER** — Cray XC30, 2× Intel Xeon E5-2697 v2 (Ivy Bridge, 12 cores
//!   @ 2.7 GHz, 256-bit AVX), 64 GB DDR3, Aries dragonfly.
//! * **Cirrus** — SGI ICE XA, 2× Intel Xeon E5-2695 (Broadwell, 18 cores
//!   @ 2.1 GHz, 256-bit AVX2+FMA), 256 GB DDR4, FDR InfiniBand.
//! * **EPCC NGIO** — Fujitsu-built, 2× Intel Xeon Platinum 8260M (Cascade
//!   Lake, 24 cores @ 2.4 GHz, 512-bit AVX-512), 192 GB DDR4, OmniPath.
//! * **Fulhame** — HPE Apollo 70, 2× Marvell ThunderX2 (Armv8, 32 cores
//!   @ 2.2 GHz, 128-bit NEON), 256 GB DDR4, EDR InfiniBand fat tree.
//!
//! The models carry exactly the parameters that drive comparative performance
//! in the paper: core counts, clock speeds, vector width and FMA issue rate
//! (peak FLOP/s), memory capacity and sustained bandwidth (HBM2 vs DDR), the
//! NUMA/CMG layout, and the interconnect class. They feed the roofline cost
//! model in `a64fx-core` and the network simulator in `netsim`.
//!
//! All specifications are encoded from Table I and Table II of the paper plus
//! publicly documented STREAM measurements; see `systems` for the sources.

#![warn(missing_docs)]

pub mod ecm;
pub mod interconnect;
pub mod memory;
pub mod node;
pub mod processor;
pub mod roofline;
pub mod systems;
pub mod toolchain;
pub mod vector;

pub use ecm::{AccessPattern, EcmLevel, EcmModel};
pub use interconnect::{InterconnectKind, LinkParams};
pub use memory::{CacheLevel, MemoryDomain, MemoryKind, MemorySystem};
pub use node::Node;
pub use processor::{Processor, SmtMode};
pub use roofline::{Roofline, RooflinePoint};
pub use systems::{paper_toolchain, system, system_names, SystemId, SystemSpec};
pub use toolchain::{FlagEffect, Toolchain, ToolchainFamily};
pub use vector::VectorUnit;
