//! Roofline model primitives.
//!
//! `time(flops, bytes) = max(flops / F, bytes / B)` where `F` is the
//! achievable flop rate and `B` the achievable memory bandwidth for the
//! executing resource set. The crossover arithmetic intensity `F / B`
//! separates memory-bound from compute-bound kernels. The A64FX's HBM2 pushes
//! its crossover far to the left of the x86 systems', which is the core
//! mechanism behind the paper's HPCG/Nekbone results.

use serde::{Deserialize, Serialize};

/// An achievable-performance envelope: flop ceiling + bandwidth ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Achievable flop rate in GFLOP/s for the resource set.
    pub gflops: f64,
    /// Achievable memory bandwidth in GB/s for the resource set.
    pub bw_gbs: f64,
}

/// A point on (or under) the roofline: a kernel with measured work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes moved to/from memory.
    pub bytes: f64,
}

impl RooflinePoint {
    /// Arithmetic intensity in flops/byte. Returns `f64::INFINITY` for a
    /// kernel that moves no data.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }
}

impl Roofline {
    /// Construct a roofline envelope.
    pub fn new(gflops: f64, bw_gbs: f64) -> Self {
        assert!(
            gflops > 0.0 && bw_gbs > 0.0,
            "roofline ceilings must be positive"
        );
        Roofline { gflops, bw_gbs }
    }

    /// The arithmetic intensity (flops/byte) at which the kernel transitions
    /// from memory-bound to compute-bound.
    pub fn ridge_intensity(&self) -> f64 {
        self.gflops / self.bw_gbs
    }

    /// Execution time in seconds for a kernel performing `point.flops` flops
    /// and moving `point.bytes` bytes: the max of the flop-bound and
    /// bandwidth-bound times (no overlap slack — both resources are assumed
    /// perfectly overlapped, which is the classic roofline assumption).
    pub fn time_s(&self, point: RooflinePoint) -> f64 {
        let t_flop = point.flops / (self.gflops * 1e9);
        let t_mem = point.bytes / (self.bw_gbs * 1e9);
        t_flop.max(t_mem)
    }

    /// Achieved GFLOP/s for the kernel under this envelope.
    pub fn achieved_gflops(&self, point: RooflinePoint) -> f64 {
        let t = self.time_s(point);
        if t == 0.0 {
            0.0
        } else {
            point.flops / t / 1e9
        }
    }

    /// Whether the kernel is memory-bound under this envelope.
    pub fn memory_bound(&self, point: RooflinePoint) -> bool {
        point.arithmetic_intensity() < self.ridge_intensity()
    }

    /// Scale both ceilings, e.g. to derive a per-rank share of a node.
    pub fn scaled(&self, flop_factor: f64, bw_factor: f64) -> Self {
        Roofline::new(self.gflops * flop_factor, self.bw_gbs * bw_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_kernel_time_set_by_bandwidth() {
        let r = Roofline::new(1000.0, 100.0); // ridge at 10 flops/byte
        let p = RooflinePoint {
            flops: 1e9,
            bytes: 4e9,
        }; // AI = 0.25
        assert!(r.memory_bound(p));
        assert!((r.time_s(p) - 4e9 / 100e9).abs() < 1e-12);
        // Achieved flops = AI * BW = 0.25 * 100 = 25 GFLOP/s.
        assert!((r.achieved_gflops(p) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_kernel_time_set_by_flops() {
        let r = Roofline::new(1000.0, 100.0);
        let p = RooflinePoint {
            flops: 100e9,
            bytes: 1e9,
        }; // AI = 100
        assert!(!r.memory_bound(p));
        assert!((r.time_s(p) - 0.1).abs() < 1e-12);
        assert!((r.achieved_gflops(p) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_is_ratio() {
        let r = Roofline::new(3379.2, 840.0);
        assert!((r.ridge_intensity() - 3379.2 / 840.0).abs() < 1e-12);
    }

    #[test]
    fn zero_byte_kernel_is_compute_bound() {
        let r = Roofline::new(10.0, 10.0);
        let p = RooflinePoint {
            flops: 1e9,
            bytes: 0.0,
        };
        assert_eq!(p.arithmetic_intensity(), f64::INFINITY);
        assert!(!r.memory_bound(p));
    }

    #[test]
    #[should_panic]
    fn non_positive_ceilings_rejected() {
        let _ = Roofline::new(0.0, 1.0);
    }

    #[test]
    fn scaled_shares_resources() {
        let r = Roofline::new(100.0, 50.0).scaled(0.5, 0.25);
        assert!((r.gflops - 50.0).abs() < 1e-12);
        assert!((r.bw_gbs - 12.5).abs() < 1e-12);
    }
}
