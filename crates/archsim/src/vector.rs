//! Vector (SIMD) unit models.
//!
//! Peak double-precision throughput per core is
//! `lanes_f64 × flops_per_lane_per_cycle × pipes`, where `flops_per_lane` is 2
//! for fused multiply-add capable units and 1 otherwise. This reproduces the
//! "Maximum node DP GFLOP/s" row of Table I in the paper.

use serde::{Deserialize, Serialize};

/// A per-core SIMD/vector execution unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VectorUnit {
    /// Vector register width in bits (Table I "Vector width").
    pub width_bits: u32,
    /// Number of vector pipelines that can issue per cycle.
    pub pipes: u32,
    /// Whether the unit supports fused multiply-add (2 flops/lane/cycle).
    pub fma: bool,
    /// Whether this is the Arm Scalable Vector Extension (SVE).
    pub sve: bool,
    /// Frequency in GHz at which the vector unit actually runs. On AVX-512
    /// parts this is lower than the nominal core clock (downclocking); on the
    /// A64FX and ThunderX2 it equals the core clock.
    pub vector_clock_ghz: f64,
}

impl VectorUnit {
    /// 512-bit SVE as implemented by the A64FX: two FMA pipes, no
    /// downclocking. 32 DP flops/cycle/core.
    pub fn sve_512(clock_ghz: f64) -> Self {
        VectorUnit {
            width_bits: 512,
            pipes: 2,
            fma: true,
            sve: true,
            vector_clock_ghz: clock_ghz,
        }
    }

    /// 256-bit AVX without FMA (Ivy Bridge): separate multiply and add pipes
    /// give 8 DP flops/cycle/core.
    pub fn avx_256_no_fma(clock_ghz: f64) -> Self {
        VectorUnit {
            width_bits: 256,
            pipes: 2,
            fma: false,
            sve: false,
            vector_clock_ghz: clock_ghz,
        }
    }

    /// 256-bit AVX2 with FMA (Broadwell): two FMA pipes, 16 DP
    /// flops/cycle/core.
    pub fn avx2_256(clock_ghz: f64) -> Self {
        VectorUnit {
            width_bits: 256,
            pipes: 2,
            fma: true,
            sve: false,
            vector_clock_ghz: clock_ghz,
        }
    }

    /// 512-bit AVX-512 with two FMA units (Cascade Lake), running at the
    /// (lower) AVX-512 turbo clock. 32 DP flops/cycle/core at `avx_clock`.
    pub fn avx512(avx_clock_ghz: f64) -> Self {
        VectorUnit {
            width_bits: 512,
            pipes: 2,
            fma: true,
            sve: false,
            vector_clock_ghz: avx_clock_ghz,
        }
    }

    /// 128-bit NEON with two FMA pipes (ThunderX2): 8 DP flops/cycle/core.
    pub fn neon_128(clock_ghz: f64) -> Self {
        VectorUnit {
            width_bits: 128,
            pipes: 2,
            fma: true,
            sve: false,
            vector_clock_ghz: clock_ghz,
        }
    }

    /// Number of double-precision (64-bit) lanes per vector register.
    pub fn lanes_f64(&self) -> u32 {
        self.width_bits / 64
    }

    /// Peak double-precision flops per cycle for one core.
    pub fn dp_flops_per_cycle(&self) -> u32 {
        let per_lane = if self.fma { 2 } else { 1 };
        self.lanes_f64() * per_lane * self.pipes
    }

    /// Peak double-precision GFLOP/s for one core.
    pub fn dp_gflops_per_core(&self) -> f64 {
        f64::from(self.dp_flops_per_cycle()) * self.vector_clock_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a64fx_core_peak_is_70_4_gflops() {
        let v = VectorUnit::sve_512(2.2);
        assert_eq!(v.lanes_f64(), 8);
        assert_eq!(v.dp_flops_per_cycle(), 32);
        assert!((v.dp_gflops_per_core() - 70.4).abs() < 1e-9);
    }

    #[test]
    fn ivy_bridge_core_peak_is_21_6_gflops() {
        // ARCHER: 24 cores x 21.6 = 518.4 GFLOP/s/node (Table I).
        let v = VectorUnit::avx_256_no_fma(2.7);
        assert_eq!(v.dp_flops_per_cycle(), 8);
        assert!((v.dp_gflops_per_core() - 21.6).abs() < 1e-9);
    }

    #[test]
    fn broadwell_core_peak_is_33_6_gflops() {
        // Cirrus: 36 cores x 33.6 = 1209.6 GFLOP/s/node (Table I).
        let v = VectorUnit::avx2_256(2.1);
        assert_eq!(v.dp_flops_per_cycle(), 16);
        assert!((v.dp_gflops_per_core() - 33.6).abs() < 1e-9);
    }

    #[test]
    fn thunderx2_core_peak_is_17_6_gflops() {
        // Fulhame: 64 cores x 17.6 = 1126.4 GFLOP/s/node (Table I).
        let v = VectorUnit::neon_128(2.2);
        assert_eq!(v.dp_flops_per_cycle(), 8);
        assert!((v.dp_gflops_per_core() - 17.6).abs() < 1e-9);
    }

    #[test]
    fn cascade_lake_avx512_downclock_matches_table1() {
        // Table I gives 2662.4 GFLOP/s for the 48-core node, which implies a
        // 1.7333.. GHz AVX-512 clock rather than the 2.4 GHz base clock.
        let v = VectorUnit::avx512(2662.4 / (48.0 * 32.0));
        assert_eq!(v.dp_flops_per_cycle(), 32);
        assert!((48.0 * v.dp_gflops_per_core() - 2662.4).abs() < 1e-6);
    }
}
