//! ECM-style memory-hierarchy kernel pricing.
//!
//! The flat roofline prices a kernel from one number — sustained memory
//! bandwidth times a per-(system, kernel-class) efficiency factor. That
//! reproduces the paper's tables but cannot explain *why* SpMV or SymGS
//! prices change with working-set size. This module prices the memory side
//! of a kernel from the hierarchy instead, in the style of the
//! Execution-Cache-Memory model (Alappat et al., "ECM modeling and
//! performance tuning of SpMV and Lattice QCD on A64FX", PAPERS.md):
//!
//! 1. The working set determines which levels the kernel's traffic streams
//!    through: a boundary below a cache that holds the whole working set
//!    carries (almost) nothing; a boundary below a cache far smaller than
//!    the working set carries the full volume.
//! 2. Each boundary moves its volume at the serving level's sustained
//!    per-core throughput ([`CacheLevel::sustained_bytes_per_cycle_per_core`],
//!    Snippet-1/3 A64FX figures: 256 B lines, 128 B/cy L1, ~42 B/cy L2),
//!    plus a latency term for the fraction of line fetches the hardware
//!    prefetcher fails to hide — which depends on the access pattern
//!    (Snippet 3: sequential streams prefetch nearly perfectly, gathers
//!    barely at all).
//! 3. The *memory* boundary is priced with the same calibrated sustained
//!    bandwidth the flat roofline uses, and the flat price is an explicit
//!    upper envelope ([`EcmModel::mem_time_us`]), so in the memory-bound
//!    limit (working set far beyond the last-level cache) the two backends
//!    agree — the ECM model converges to the flat model from below.
//!
//! The kernel's memory time is the slowest boundary (full overlap between
//! levels — the optimistic ECM variant, which matches the A64FX's combined
//! load/store pipelines better than the serial-sum variant). The compute
//! side is unchanged: `core::costmodel` takes `max(t_flop, t_mem)` exactly
//! as the flat backend does.

use serde::{Deserialize, Serialize};

use crate::memory::{CacheLevel, MemorySystem};

/// How a kernel walks its working set — decides how well the hardware
/// prefetcher hides line-fetch latency (Snippet 3's pattern sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Contiguous unit-stride streams (vector ops, dot products, axpy).
    Streaming,
    /// Constant non-unit strides (stencil sweeps, FFT butterflies and
    /// transposes).
    Strided,
    /// Data-dependent indirection (SpMV column gathers, SymGS).
    Gather,
}

impl AccessPattern {
    /// Fraction of line-fetch latency the hardware prefetcher hides for
    /// this pattern, in `[0, 1]`. Snippet 3's benchmark shape: sequential
    /// reads prefetch almost perfectly, fixed strides are tracked but
    /// with imperfect distance, indexed gathers defeat the stream
    /// detector almost entirely.
    pub fn prefetch_effectiveness(self) -> f64 {
        match self {
            AccessPattern::Streaming => 0.95,
            AccessPattern::Strided => 0.60,
            AccessPattern::Gather => 0.15,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AccessPattern::Streaming => "streaming",
            AccessPattern::Strided => "strided",
            AccessPattern::Gather => "gather",
        }
    }

    /// All patterns, for sweeps.
    pub fn all() -> [AccessPattern; 3] {
        [
            AccessPattern::Streaming,
            AccessPattern::Strided,
            AccessPattern::Gather,
        ]
    }
}

/// One level of the ECM hierarchy: a cache with per-core capacity and
/// sustained throughput, and the latency a prefetch miss into it costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcmLevel {
    /// Display name ("L1", "L2", ...).
    pub name: String,
    /// Capacity available to one core, in bytes.
    pub capacity_bytes_per_core: u64,
    /// Sustained transfer throughput per core, bytes per cycle.
    pub bytes_per_cycle_per_core: f64,
    /// Load-use latency in core cycles.
    pub latency_cycles: f64,
    /// Line (transfer granule) size in bytes.
    pub line_bytes: u32,
}

/// The per-system ECM hierarchy: cache levels innermost first, plus the
/// core clock that converts cycles to time. The main-memory boundary is
/// *not* a level here — its bandwidth is supplied by the caller (the
/// calibrated roofline bandwidth), which is what makes the model collapse
/// onto the flat backend in the memory-bound limit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcmModel {
    /// Cache levels, innermost first.
    pub levels: Vec<EcmLevel>,
    /// Core clock in GHz.
    pub clock_ghz: f64,
}

impl EcmModel {
    /// Derive the ECM hierarchy from a node's memory system description.
    pub fn for_system(mem: &MemorySystem, clock_ghz: f64) -> Self {
        let levels = mem
            .caches
            .iter()
            .map(|c: &CacheLevel| EcmLevel {
                name: format!("L{}", c.level),
                capacity_bytes_per_core: c.capacity_bytes_per_core(),
                bytes_per_cycle_per_core: c.sustained_bytes_per_cycle_per_core(),
                latency_cycles: c.latency_cycles(),
                line_bytes: c.line_bytes,
            })
            .collect();
        EcmModel { levels, clock_ghz }
    }

    /// Fraction of a rank's traffic that misses cache level `i` (0-based),
    /// for a per-rank working set of `ws_bytes` spread over `threads`
    /// cores. An unknown working set (0) is treated as unbounded — all
    /// traffic streams from below, which reproduces the flat model.
    ///
    /// The capacity model is the simple inclusive one: a cache of
    /// aggregate capacity `C` holding a working set `ws` serves `C/ws` of
    /// the traffic and misses the rest.
    fn miss_fraction(&self, level: usize, ws_bytes: u64, threads: u32) -> f64 {
        if ws_bytes == 0 {
            return 1.0;
        }
        let cap = self.levels[level].capacity_bytes_per_core as f64 * f64::from(threads.max(1));
        (1.0 - cap / ws_bytes as f64).clamp(0.0, 1.0)
    }

    /// Bytes crossing each hierarchy boundary for a kernel moving `bytes`
    /// with per-rank working set `ws_bytes` on `threads` cores.
    ///
    /// The result has `levels.len() + 1` entries: entry 0 is the
    /// core ↔ L1 boundary (always the full volume), entry `i` is the
    /// traffic missing cache level `i` (served by the level below), and
    /// the last entry is the main-memory boundary.
    pub fn transfer_volumes(&self, bytes: f64, ws_bytes: u64, threads: u32) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.levels.len() + 1);
        v.push(bytes);
        for i in 0..self.levels.len() {
            v.push(bytes * self.miss_fraction(i, ws_bytes, threads));
        }
        v
    }

    /// Bytes *served* by each level (caches innermost first, then main
    /// memory): the difference between what a level receives and what it
    /// passes down. Non-negative, and sums to `bytes`.
    pub fn level_served_bytes(&self, bytes: f64, ws_bytes: u64, threads: u32) -> Vec<f64> {
        let v = self.transfer_volumes(bytes, ws_bytes, threads);
        let mut served: Vec<f64> = v.windows(2).map(|w| (w[0] - w[1]).max(0.0)).collect();
        served.push(*v.last().unwrap());
        served
    }

    /// Time in µs to move the *cache* boundary volumes (every entry of
    /// [`Self::transfer_volumes`] except the last) on `threads` cores:
    /// each boundary's volume at its serving level's sustained throughput,
    /// plus the latency of the line fetches the prefetcher fails to hide.
    /// Full overlap between boundaries — the slowest one is the cost.
    pub fn cache_time_us(
        &self,
        bytes: f64,
        ws_bytes: u64,
        pattern: AccessPattern,
        threads: u32,
    ) -> f64 {
        let volumes = self.transfer_volumes(bytes, ws_bytes, threads);
        let unhidden = 1.0 - pattern.prefetch_effectiveness();
        let cycles_to_us = 1.0 / (f64::from(threads.max(1)) * self.clock_ghz * 1e3);
        let mut worst: f64 = 0.0;
        for (lvl, &v) in self.levels.iter().zip(&volumes) {
            let stream_cy = v / lvl.bytes_per_cycle_per_core;
            let lines = v / f64::from(lvl.line_bytes);
            let latency_cy = unhidden * lvl.latency_cycles * lines;
            worst = worst.max((stream_cy + latency_cy) * cycles_to_us);
        }
        worst
    }

    /// Memory-side kernel time in µs: the slowest of the cache boundaries
    /// and the main-memory boundary, capped at the flat roofline price.
    /// `mem_bw_gbs` is the rank's calibrated sustained memory bandwidth —
    /// the same figure the flat roofline divides by, so when the working
    /// set dwarfs every cache (all volumes → `bytes`) this returns
    /// (asymptotically) the flat answer.
    ///
    /// The flat price `bytes / mem_bw_gbs` is an explicit *upper envelope*:
    /// the calibration behind `mem_bw_gbs` was fitted against kernels whose
    /// latency and pattern costs are already folded into the sustained
    /// figure, so the hierarchy refines the price only downward — cache
    /// residency can make a kernel cheaper than its memory-streaming
    /// price, never dearer. Without the cap, a gather's unhidden in-cache
    /// latency could overshoot the calibrated bandwidth price on
    /// low-clocked cache levels and break convergence from below.
    pub fn mem_time_us(
        &self,
        bytes: f64,
        ws_bytes: u64,
        pattern: AccessPattern,
        threads: u32,
        mem_bw_gbs: f64,
    ) -> f64 {
        let t_flat = bytes / (mem_bw_gbs * 1e3);
        let v_mem = *self
            .transfer_volumes(bytes, ws_bytes, threads)
            .last()
            .unwrap();
        let t_mem = v_mem / (mem_bw_gbs * 1e3);
        self.cache_time_us(bytes, ws_bytes, pattern, threads)
            .max(t_mem)
            .min(t_flat)
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::systems::{system, SystemId};
    use proptest::prelude::*;

    fn model() -> EcmModel {
        let spec = system(SystemId::A64fx);
        EcmModel::for_system(&spec.node.memory, spec.node.processor.clock_ghz)
    }

    proptest! {
        #[test]
        fn time_monotone_in_working_set(
            bytes in 1.0f64..1e9,
            ws_lo in 1u64..(1 << 30),
            ws_hi in 1u64..(1 << 30),
            threads in 1u32..48,
        ) {
            let (lo, hi) = (ws_lo.min(ws_hi), ws_lo.max(ws_hi));
            let m = model();
            let t_lo = m.mem_time_us(bytes, lo, AccessPattern::Gather, threads, 5.4);
            let t_hi = m.mem_time_us(bytes, hi, AccessPattern::Gather, threads, 5.4);
            prop_assert!(t_hi >= t_lo, "ws {lo}->{hi}: {t_lo} -> {t_hi}");
        }

        #[test]
        fn time_monotone_in_bytes(
            b_lo in 1.0f64..1e9,
            b_hi in 1.0f64..1e9,
            ws in 1u64..(1 << 30),
        ) {
            let (lo, hi) = (b_lo.min(b_hi), b_lo.max(b_hi));
            let m = model();
            let t_lo = m.mem_time_us(lo, ws, AccessPattern::Strided, 4, 17.5);
            let t_hi = m.mem_time_us(hi, ws, AccessPattern::Strided, 4, 17.5);
            prop_assert!(t_hi >= t_lo);
        }

        #[test]
        fn collapses_to_flat_when_levels_run_at_memory_bandwidth(
            bytes in 1.0f64..1e9,
            ws in 0u64..(1 << 30),
            threads in 1u32..48,
            bw in 1.0f64..1000.0,
        ) {
            // Give every cache level exactly the memory bandwidth and no
            // latency: the hierarchy becomes invisible and the model must
            // return the flat roofline time bytes / bw.
            let mut m = model();
            for lvl in &mut m.levels {
                lvl.bytes_per_cycle_per_core = bw / (m.clock_ghz * f64::from(threads));
                lvl.latency_cycles = 0.0;
            }
            let flat = bytes / (bw * 1e3);
            for pattern in AccessPattern::all() {
                let ecm = m.mem_time_us(bytes, ws, pattern, threads, bw);
                prop_assert!((ecm - flat).abs() <= 1e-9 * flat.max(1.0),
                    "{pattern:?}: ecm {ecm} flat {flat}");
            }
        }

        #[test]
        fn served_volumes_sum_to_traffic(
            bytes in 0.0f64..1e9,
            ws in 0u64..(1 << 34),
            threads in 1u32..48,
        ) {
            let m = model();
            let served = m.level_served_bytes(bytes, ws, threads);
            prop_assert_eq!(served.len(), m.levels.len() + 1);
            prop_assert!(served.iter().all(|&s| s >= 0.0));
            let sum: f64 = served.iter().sum();
            prop_assert!((sum - bytes).abs() <= 1e-9 * bytes.max(1.0));
        }

        #[test]
        fn volumes_never_grow_downward(
            bytes in 0.0f64..1e9,
            ws in 0u64..(1 << 34),
            threads in 1u32..48,
        ) {
            let m = model();
            let v = m.transfer_volumes(bytes, ws, threads);
            for w in v.windows(2) {
                prop_assert!(w[1] <= w[0] + 1e-9, "{v:?}");
            }
        }
    }

    #[test]
    fn prefetch_effectiveness_in_unit_interval() {
        for p in AccessPattern::all() {
            let e = p.prefetch_effectiveness();
            assert!((0.0..=1.0).contains(&e), "{p:?}: {e}");
        }
        // Ordering is the model's content: streams prefetch best, gathers worst.
        assert!(
            AccessPattern::Streaming.prefetch_effectiveness()
                > AccessPattern::Strided.prefetch_effectiveness()
        );
        assert!(
            AccessPattern::Strided.prefetch_effectiveness()
                > AccessPattern::Gather.prefetch_effectiveness()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::{system, SystemId};

    fn a64fx_model() -> EcmModel {
        let spec = system(SystemId::A64fx);
        EcmModel::for_system(&spec.node.memory, spec.node.processor.clock_ghz)
    }

    #[test]
    fn a64fx_hierarchy_derives_from_tables() {
        let m = a64fx_model();
        assert_eq!(m.levels.len(), 2);
        assert_eq!(m.levels[0].name, "L1");
        assert_eq!(m.levels[0].capacity_bytes_per_core, 64 * 1024);
        assert_eq!(m.levels[0].bytes_per_cycle_per_core, 128.0);
        assert_eq!(m.levels[1].bytes_per_cycle_per_core, 42.0);
        assert_eq!(m.levels[1].line_bytes, 256);
        assert!((m.clock_ghz - 2.2).abs() < 1e-12);
    }

    #[test]
    fn volumes_shrink_inside_cache() {
        let m = a64fx_model();
        let bytes = 1e6;
        // Working set inside L1: nothing reaches L2 or memory.
        let v = m.transfer_volumes(bytes, 32 * 1024, 1);
        assert_eq!(v[0], bytes);
        assert_eq!(v[1], 0.0);
        assert_eq!(v[2], 0.0);
        // Working set far beyond L2: everything streams from memory.
        let v = m.transfer_volumes(bytes, 1 << 30, 1);
        assert!(v[2] / bytes > 0.99, "{v:?}");
        // Unknown working set behaves like the flat model.
        let v = m.transfer_volumes(bytes, 0, 1);
        assert_eq!(v[2], bytes);
    }

    #[test]
    fn served_bytes_sum_to_total() {
        let m = a64fx_model();
        for ws in [0u64, 16 * 1024, 512 * 1024, 4 << 20, 1 << 28] {
            let served = m.level_served_bytes(1e7, ws, 4);
            assert_eq!(served.len(), 3);
            let sum: f64 = served.iter().sum();
            assert!((sum - 1e7).abs() < 1e-3, "ws={ws}: {served:?}");
            assert!(served.iter().all(|&s| s >= 0.0), "ws={ws}: {served:?}");
        }
    }

    #[test]
    fn ecm_converges_to_flat_in_memory_bound_limit() {
        let m = a64fx_model();
        let bytes = 1e9;
        let bw = 5.4; // calibrated per-rank SpMV bandwidth, GB/s
        let flat = bytes / (bw * 1e3);
        let ecm = m.mem_time_us(bytes, 1 << 32, AccessPattern::Gather, 1, bw);
        assert!((ecm - flat).abs() / flat < 0.01, "ecm {ecm} flat {flat}");
    }

    #[test]
    fn ecm_is_cheaper_inside_cache() {
        let m = a64fx_model();
        let bytes = 1e6;
        let bw = 5.4;
        let flat = bytes / (bw * 1e3);
        let ecm = m.mem_time_us(bytes, 32 * 1024, AccessPattern::Streaming, 1, bw);
        assert!(ecm < 0.5 * flat, "ecm {ecm} should beat flat {flat} in L1");
    }

    #[test]
    fn gather_pays_more_latency_than_streaming() {
        let m = a64fx_model();
        let bytes = 1e7;
        let ws = 4 << 20; // L2-resident: latency terms are live
        let g = m.cache_time_us(bytes, ws, AccessPattern::Gather, 1);
        let s = m.cache_time_us(bytes, ws, AccessPattern::Streaming, 1);
        assert!(g > s, "gather {g} vs streaming {s}");
    }

    #[test]
    fn flat_price_is_an_upper_envelope_on_every_system() {
        // The convergence-from-below guarantee: no working set, pattern or
        // thread count may price above the calibrated flat roofline.
        let bw = 10.0;
        for sys in SystemId::all() {
            let spec = system(sys);
            let m = EcmModel::for_system(&spec.node.memory, spec.node.processor.clock_ghz);
            let bytes = 1e8;
            let flat = bytes / (bw * 1e3);
            for pattern in AccessPattern::all() {
                for ws in [0u64, 1 << 15, 1 << 21, 1 << 24, 1 << 30] {
                    for threads in [1u32, 4, 12] {
                        let t = m.mem_time_us(bytes, ws, pattern, threads, bw);
                        assert!(
                            t <= flat * (1.0 + 1e-12),
                            "{sys:?} {pattern:?} ws={ws} threads={threads}: {t} > {flat}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_system_yields_a_model() {
        for sys in SystemId::all() {
            let spec = system(sys);
            let m = EcmModel::for_system(&spec.node.memory, spec.node.processor.clock_ghz);
            assert!(!m.levels.is_empty(), "{sys:?}");
            assert!(m.levels.iter().all(|l| l.bytes_per_cycle_per_core > 0.0));
        }
    }
}
