//! The five benchmarked systems, encoded from Table I / Table II of the
//! paper plus published sustained-bandwidth measurements.
//!
//! Sustained STREAM-triad bandwidths (GB/s/node) and their sources:
//!
//! * **A64FX**: ~840 (Fujitsu/RIKEN measurements of HBM2 across 4 CMGs,
//!   ~210 GB/s per CMG out of the 256 GB/s peak).
//! * **ARCHER**: ~90 (Cray XC30, 2× 4-channel DDR3-1866; measured triad on
//!   E5-2697v2 nodes is ~45 GB/s per socket).
//! * **Cirrus**: ~120 (Broadwell 2× 4-channel DDR4-2400).
//! * **EPCC NGIO**: ~205 (Cascade Lake 2× 6-channel DDR4-2933).
//! * **Fulhame**: ~244 (ThunderX2 2× 8-channel DDR4-2666; the paper itself
//!   quotes "in excess of 240 GB/s per dual-socket node").

use serde::{Deserialize, Serialize};

use crate::interconnect::InterconnectKind;
use crate::memory::{CacheLevel, MemoryDomain, MemoryKind, MemorySystem};
use crate::node::Node;
use crate::processor::{Processor, SmtMode};
use crate::toolchain::{Toolchain, ToolchainFamily};
use crate::vector::VectorUnit;

/// Identifier for one of the five benchmarked systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SystemId {
    /// The Fujitsu A64FX early-access system (48 nodes, TofuD).
    A64fx,
    /// ARCHER, the Cray XC30 UK national service.
    Archer,
    /// Cirrus, the SGI ICE XA UK Tier-2 service.
    Cirrus,
    /// EPCC NGIO, the Fujitsu-built Cascade Lake system.
    Ngio,
    /// Fulhame, the HPE Apollo 70 ThunderX2 Catalyst system.
    Fulhame,
}

impl SystemId {
    /// All five systems in the paper's presentation order.
    pub fn all() -> [SystemId; 5] {
        [
            SystemId::A64fx,
            SystemId::Archer,
            SystemId::Cirrus,
            SystemId::Ngio,
            SystemId::Fulhame,
        ]
    }

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            SystemId::A64fx => "A64FX",
            SystemId::Archer => "ARCHER",
            SystemId::Cirrus => "Cirrus",
            SystemId::Ngio => "EPCC NGIO",
            SystemId::Fulhame => "Fulhame",
        }
    }
}

/// A complete system description: node architecture, interconnect and size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Which system this is.
    pub id: SystemId,
    /// Display name.
    pub name: String,
    /// Node architecture.
    pub node: Node,
    /// Interconnect family.
    pub interconnect: InterconnectKind,
    /// Number of compute nodes available in the benchmarked installation
    /// (the A64FX test system had 48; the others are larger — we cap at what
    /// the paper used).
    pub total_nodes: u32,
    /// Cores required to saturate one memory domain's sustained bandwidth.
    pub bw_saturation_cores: u32,
    /// Typical node power under HPC load, watts (processor TDP + memory +
    /// node overheads). Used by the power-efficiency extension study; the
    /// paper's introduction cites the A64FX's Green500 lead.
    pub node_power_watts: f64,
}

impl SystemSpec {
    /// Interconnect link parameters for this system.
    pub fn link(&self) -> crate::interconnect::LinkParams {
        self.interconnect.default_link()
    }
}

/// Names of all systems, in paper order.
pub fn system_names() -> Vec<&'static str> {
    SystemId::all().iter().map(|s| s.name()).collect()
}

/// Build the specification of one of the five systems.
pub fn system(id: SystemId) -> SystemSpec {
    match id {
        SystemId::A64fx => a64fx(),
        SystemId::Archer => archer(),
        SystemId::Cirrus => cirrus(),
        SystemId::Ngio => ngio(),
        SystemId::Fulhame => fulhame(),
    }
}

fn a64fx() -> SystemSpec {
    let proc = Processor {
        name: "Fujitsu A64FX".into(),
        microarch: "SVE".into(),
        clock_ghz: 2.2,
        cores: 48,
        smt: SmtMode::Off,
        vector: VectorUnit::sve_512(2.2),
        // Narrow OoO window relative to big x86 cores; the paper's OpenSBLI
        // profiling saw instruction fetch waits and L2 pressure.
        ooo_window: 128,
    };
    let memory = MemorySystem::uniform(
        MemoryDomain {
            kind: MemoryKind::Hbm2,
            capacity_gib: 8.0,
            peak_bw_gbs: 256.0,
            sustained_bw_gbs: 210.0,
            latency_ns: 121.0,
            cores: 12,
        },
        4,
        vec![
            CacheLevel {
                level: 1,
                capacity_kib: 64,
                line_bytes: 256,
                shared_by_cores: 1,
            },
            CacheLevel {
                level: 2,
                capacity_kib: 8 * 1024,
                line_bytes: 256,
                shared_by_cores: 12,
            },
        ],
    );
    SystemSpec {
        id: SystemId::A64fx,
        name: "A64FX".into(),
        node: Node {
            sockets: 1,
            processor: proc,
            memory,
        },
        interconnect: InterconnectKind::TofuD,
        total_nodes: 48,
        bw_saturation_cores: 9,
        node_power_watts: 170.0,
    }
}

fn archer() -> SystemSpec {
    let proc = Processor {
        name: "Intel Xeon E5-2697 v2".into(),
        microarch: "Ivy Bridge".into(),
        clock_ghz: 2.7,
        cores: 12,
        smt: SmtMode::Smt2,
        vector: VectorUnit::avx_256_no_fma(2.7),
        ooo_window: 168,
    };
    let memory = MemorySystem::uniform(
        MemoryDomain {
            kind: MemoryKind::Ddr3,
            capacity_gib: 32.0,
            peak_bw_gbs: 59.7,
            sustained_bw_gbs: 45.0,
            latency_ns: 85.0,
            cores: 12,
        },
        2,
        vec![
            CacheLevel {
                level: 1,
                capacity_kib: 32,
                line_bytes: 64,
                shared_by_cores: 1,
            },
            CacheLevel {
                level: 2,
                capacity_kib: 256,
                line_bytes: 64,
                shared_by_cores: 1,
            },
            CacheLevel {
                level: 3,
                capacity_kib: 30 * 1024,
                line_bytes: 64,
                shared_by_cores: 12,
            },
        ],
    );
    SystemSpec {
        id: SystemId::Archer,
        name: "ARCHER".into(),
        node: Node {
            sockets: 2,
            processor: proc,
            memory,
        },
        interconnect: InterconnectKind::Aries,
        total_nodes: 4920,
        bw_saturation_cores: 5,
        node_power_watts: 305.0,
    }
}

fn cirrus() -> SystemSpec {
    let proc = Processor {
        name: "Intel Xeon E5-2695".into(),
        microarch: "Broadwell".into(),
        clock_ghz: 2.1,
        cores: 18,
        smt: SmtMode::Smt2,
        vector: VectorUnit::avx2_256(2.1),
        ooo_window: 192,
    };
    let memory = MemorySystem::uniform(
        MemoryDomain {
            kind: MemoryKind::Ddr4,
            capacity_gib: 128.0,
            peak_bw_gbs: 76.8,
            sustained_bw_gbs: 60.0,
            latency_ns: 88.0,
            cores: 18,
        },
        2,
        vec![
            CacheLevel {
                level: 1,
                capacity_kib: 32,
                line_bytes: 64,
                shared_by_cores: 1,
            },
            CacheLevel {
                level: 2,
                capacity_kib: 256,
                line_bytes: 64,
                shared_by_cores: 1,
            },
            CacheLevel {
                level: 3,
                capacity_kib: 45 * 1024,
                line_bytes: 64,
                shared_by_cores: 18,
            },
        ],
    );
    SystemSpec {
        id: SystemId::Cirrus,
        name: "Cirrus".into(),
        node: Node {
            sockets: 2,
            processor: proc,
            memory,
        },
        interconnect: InterconnectKind::FdrInfiniband,
        total_nodes: 280,
        bw_saturation_cores: 6,
        node_power_watts: 310.0,
    }
}

fn ngio() -> SystemSpec {
    // Table I gives 2662.4 GFLOP/s for the node, implying a 1.733 GHz
    // AVX-512 all-core clock on the 8260M (base 2.4 GHz).
    let avx_clock = 2662.4 / (48.0 * 32.0);
    let proc = Processor {
        name: "Intel Xeon Platinum 8260M".into(),
        microarch: "Cascade Lake".into(),
        clock_ghz: 2.4,
        cores: 24,
        smt: SmtMode::Smt2,
        vector: VectorUnit::avx512(avx_clock),
        ooo_window: 224,
    };
    let memory = MemorySystem::uniform(
        MemoryDomain {
            kind: MemoryKind::Ddr4,
            capacity_gib: 96.0,
            peak_bw_gbs: 140.8,
            sustained_bw_gbs: 102.0,
            latency_ns: 81.0,
            cores: 24,
        },
        2,
        vec![
            CacheLevel {
                level: 1,
                capacity_kib: 32,
                line_bytes: 64,
                shared_by_cores: 1,
            },
            CacheLevel {
                level: 2,
                capacity_kib: 1024,
                line_bytes: 64,
                shared_by_cores: 1,
            },
            CacheLevel {
                level: 3,
                capacity_kib: 36 * 1024,
                line_bytes: 64,
                shared_by_cores: 24,
            },
        ],
    );
    SystemSpec {
        id: SystemId::Ngio,
        name: "EPCC NGIO".into(),
        node: Node {
            sockets: 2,
            processor: proc,
            memory,
        },
        interconnect: InterconnectKind::OmniPath,
        total_nodes: 64,
        bw_saturation_cores: 10,
        node_power_watts: 385.0,
    }
}

fn fulhame() -> SystemSpec {
    let proc = Processor {
        name: "Marvell ThunderX2".into(),
        microarch: "ARMv8".into(),
        clock_ghz: 2.2,
        cores: 32,
        smt: SmtMode::Smt4,
        vector: VectorUnit::neon_128(2.2),
        ooo_window: 180,
    };
    let memory = MemorySystem::uniform(
        MemoryDomain {
            kind: MemoryKind::Ddr4,
            capacity_gib: 128.0,
            peak_bw_gbs: 170.6,
            sustained_bw_gbs: 122.0,
            latency_ns: 92.0,
            cores: 32,
        },
        2,
        vec![
            CacheLevel {
                level: 1,
                capacity_kib: 32,
                line_bytes: 64,
                shared_by_cores: 1,
            },
            CacheLevel {
                level: 2,
                capacity_kib: 256,
                line_bytes: 64,
                shared_by_cores: 1,
            },
            CacheLevel {
                level: 3,
                capacity_kib: 32 * 1024,
                line_bytes: 64,
                shared_by_cores: 32,
            },
        ],
    );
    SystemSpec {
        id: SystemId::Fulhame,
        name: "Fulhame".into(),
        node: Node {
            sockets: 2,
            processor: proc,
            memory,
        },
        interconnect: InterconnectKind::EdrInfiniband,
        total_nodes: 64,
        // The ThunderX2's single-core memory bandwidth is weak (~7 GB/s of
        // the socket's 122): many cores are needed to saturate DDR4.
        bw_saturation_cores: 18,
        node_power_watts: 400.0,
    }
}

/// The toolchain the paper used for a given (system, application) pair,
/// transcribed from Table II. `app` is one of `"hpcg"`, `"minikab"`,
/// `"nekbone"`, `"castep"`, `"cosa"`, `"opensbli"`. Returns `None` where the
/// paper did not run that combination (e.g. OpenSBLI on the A64FX used the
/// system OPS stack but Table II lists no entry; HPCG was not run on some
/// systems' optimised variants).
pub fn paper_toolchain(sys: SystemId, app: &str) -> Option<Toolchain> {
    use SystemId::*;
    use ToolchainFamily::*;
    let t = |fam, ver: &str, flags: &str, libs: &str| {
        Some(Toolchain::for_family(fam, ver, flags, libs))
    };
    match (sys, app) {
        (A64fx, "hpcg") => t(Fujitsu, "Fujitsu 1.2.24", "-Nnoclang -O3 -Kfast", "Fujitsu MPI"),
        (Archer, "hpcg") => t(Intel, "Intel 17", "-O3", "Cray MPI"),
        (Cirrus, "hpcg") => t(Intel, "Intel 17", "-O3 -cxx=icpc -qopt-zmm-usage=high", "HPE MPI"),
        (Ngio, "hpcg") => t(Intel, "Intel 19", "-O3 -cxx=icpc -xCore-AVX512 -qopt-zmm-usage=high", "Intel MPI"),
        (Fulhame, "hpcg") => t(Gnu, "GCC 8.2", "-O3 -ffast-math -funroll-loops -std=c++11 -ffp-contract=fast -mcpu=native", "OpenMPI"),

        (A64fx, "minikab") => t(
            Fujitsu,
            "Fujitsu 1.2.25",
            "-O3 -Kopenmp -Kfast -KA64FX -KSVE -KARMV8_3_A -Kassume=noshortloop -Kassume=memory_bandwidth",
            "Fujitsu MPI",
        ),
        (Ngio, "minikab") => t(Intel, "Intel 19", "-O3 -warn all", "Intel MPI library"),
        (Fulhame, "minikab") => t(ArmClang, "Arm Clang 20", "-O3 -armpl -mcpu=native -fopenmp", "OpenMPI + ArmPL"),

        (A64fx, "nekbone") => t(
            Fujitsu,
            "Fujitsu 1.2.24",
            "-CcdRR8 -Cpp -Fixed -O3 -Kfast -KA64FX -KSVE -KARMV8_3_A",
            "Fujitsu MPI",
        ),
        (Archer, "nekbone") => t(Gnu, "GCC 6.3", "-fdefault-real-8 -O3", "Cray MPICH2 7.5.5"),
        (Ngio, "nekbone") => t(Intel, "Intel 19.03", "-fdefault-real-8 -O3", "Intel MPI 19.3"),
        (Fulhame, "nekbone") => t(Gnu, "GNU 8.2", "-fdefault-real-8 -O3", "OpenMPI 4.0.2"),

        (A64fx, "castep") => t(Fujitsu, "Fujitsu 1.2.24", "-O3", "Fujitsu MPI + SSL2 + FFTW 3.3.3"),
        (Archer, "castep") => t(Gnu, "GCC 6.2", "-fconvert=big-endian -O3 -funroll-loops", "Cray MPICH2 + MKL + FFTW"),
        (Cirrus, "castep") => t(Intel, "Intel 17", "-O3 -xHost", "SGI MPT 2.16 + MKL + FFTW 3.3.5"),
        (Ngio, "castep") => t(Intel, "Intel 17", "-O3 -xHost", "Intel MPI 17.4 + MKL + FFTW 3.3.3"),
        (Fulhame, "castep") => t(Gnu, "GCC 8.2", "-fconvert=big-endian -O3 -funroll-loops", "HPE MPT 2.20 + ArmPL 19 + FFTW 3.3.8"),

        (A64fx, "cosa") => t(Fujitsu, "Fujitsu 1.2.24", "-X9 -O3 -Kfast -KA64FX -KSVE", "Fujitsu MPI + SSL2 + FFTW 3.3.3"),
        (Archer, "cosa") => t(Gnu, "GNU 7.2", "-O3 -ftree-vectorize -fdefault-real-8", "Cray MPI 7.5.5 + LibSci"),
        (Cirrus, "cosa") => t(Gnu, "GNU 8.2", "-O3 -ftree-vectorize -fdefault-real-8", "SGI MPT 2.16 + MKL"),
        (Ngio, "cosa") => t(Intel, "Intel 18", "-O3 -ftree-vectorize -fdefault-real-8", "Intel MPI + MKL 18"),
        (Fulhame, "cosa") => t(Gnu, "GNU 8.2", "-O3 -ftree-vectorize -fdefault-real-8", "HPE MPT 2.20 + ArmPL 19"),

        // Table II lists OpenSBLI builds for four systems; the A64FX entry is
        // absent from the table but the system ran with the Fujitsu stack.
        (A64fx, "opensbli") => t(Fujitsu, "Fujitsu 1.2.24", "-O3", "Fujitsu MPI + HDF5"),
        (Archer, "opensbli") => t(Cray, "Cray CCE 8.5.8", "-O3 -hgnu", "Cray MPICH2 7.5.2 + HDF5 1.10.0.1"),
        (Cirrus, "opensbli") => t(Intel, "Intel 17.0.2", "-O3 -ipo -restrict -fno-alias", "SGI MPT 2.16 + HDF5 1.10.1"),
        (Ngio, "opensbli") => t(Intel, "Intel 17.4", "-O3 -ipo -restrict -fno-alias", "Intel MPI 17.4 + HDF5 1.10.1"),
        (Fulhame, "opensbli") => t(ArmClang, "Arm Clang 19.0.0", "-O3 -std=c99 -fPIC -Wall", "OpenMPI 4.0.0 + HDF5 1.10.4"),

        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_systems_build() {
        for id in SystemId::all() {
            let s = system(id);
            assert_eq!(s.id, id);
            assert!(s.node.cores() > 0);
            assert!(s.node.peak_dp_gflops() > 0.0);
            assert!(s.node.sustained_bw_gbs() > 0.0);
            assert!(s.total_nodes >= 16, "paper scales to 16 nodes on {id:?}");
        }
    }

    #[test]
    fn paper_interconnects() {
        assert_eq!(
            system(SystemId::A64fx).interconnect,
            InterconnectKind::TofuD
        );
        assert_eq!(
            system(SystemId::Archer).interconnect,
            InterconnectKind::Aries
        );
        assert_eq!(
            system(SystemId::Cirrus).interconnect,
            InterconnectKind::FdrInfiniband
        );
        assert_eq!(
            system(SystemId::Ngio).interconnect,
            InterconnectKind::OmniPath
        );
        assert_eq!(
            system(SystemId::Fulhame).interconnect,
            InterconnectKind::EdrInfiniband
        );
    }

    #[test]
    fn a64fx_is_single_socket_four_cmg() {
        let s = system(SystemId::A64fx);
        assert_eq!(s.node.sockets, 1);
        assert_eq!(s.node.memory.num_domains(), 4);
        assert_eq!(s.node.cores_per_domain(), 12);
    }

    #[test]
    fn fulhame_bandwidth_exceeds_240() {
        // The paper: "measured STREAM triad memory bandwidth in excess of
        // 240 GB/s per dual-socket node".
        assert!(system(SystemId::Fulhame).node.sustained_bw_gbs() > 240.0);
    }

    #[test]
    fn toolchains_cover_paper_table2() {
        // Every (system, app) pair the paper benchmarked has a toolchain.
        let runs = [
            (
                "hpcg",
                vec![
                    SystemId::A64fx,
                    SystemId::Archer,
                    SystemId::Cirrus,
                    SystemId::Ngio,
                    SystemId::Fulhame,
                ],
            ),
            (
                "minikab",
                vec![SystemId::A64fx, SystemId::Ngio, SystemId::Fulhame],
            ),
            (
                "nekbone",
                vec![
                    SystemId::A64fx,
                    SystemId::Archer,
                    SystemId::Ngio,
                    SystemId::Fulhame,
                ],
            ),
            (
                "castep",
                vec![
                    SystemId::A64fx,
                    SystemId::Archer,
                    SystemId::Cirrus,
                    SystemId::Ngio,
                    SystemId::Fulhame,
                ],
            ),
            (
                "cosa",
                vec![
                    SystemId::A64fx,
                    SystemId::Archer,
                    SystemId::Cirrus,
                    SystemId::Ngio,
                    SystemId::Fulhame,
                ],
            ),
            (
                "opensbli",
                vec![
                    SystemId::A64fx,
                    SystemId::Archer,
                    SystemId::Cirrus,
                    SystemId::Ngio,
                    SystemId::Fulhame,
                ],
            ),
        ];
        for (app, systems) in runs {
            for sys in systems {
                assert!(
                    paper_toolchain(sys, app).is_some(),
                    "missing toolchain for {sys:?}/{app}"
                );
            }
        }
        assert!(paper_toolchain(SystemId::Archer, "minikab").is_none());
    }

    #[test]
    fn a64fx_toolchains_use_fastmath_where_paper_did() {
        assert!(
            paper_toolchain(SystemId::A64fx, "nekbone")
                .unwrap()
                .fastmath
        );
        assert!(paper_toolchain(SystemId::A64fx, "hpcg").unwrap().fastmath);
        assert!(!paper_toolchain(SystemId::A64fx, "castep").unwrap().fastmath);
        assert!(!paper_toolchain(SystemId::Ngio, "nekbone").unwrap().fastmath);
    }

    #[test]
    fn spec_clone_equality() {
        let s = system(SystemId::A64fx);
        assert_eq!(s, s.clone());
    }
}
