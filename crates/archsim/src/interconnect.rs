//! Interconnect classes and their link-level parameters.
//!
//! These parameters seed the `netsim` topology builders. Values are taken
//! from vendor documentation and the published TofuD paper (Ajima et al.,
//! CLUSTER 2018): TofuD provides 6.8 GB/s per link with six simultaneously
//! usable ports; Aries injects ~10 GB/s per node; FDR InfiniBand is 56 Gb/s
//! and EDR 100 Gb/s per port; OmniPath is 100 Gb/s.

use serde::{Deserialize, Serialize};

/// The interconnect family of a system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterconnectKind {
    /// Fujitsu TofuD: 6-D mesh/torus (A64FX system, as in Fugaku).
    TofuD,
    /// Cray Aries dragonfly (ARCHER, Cray XC30).
    Aries,
    /// Mellanox FDR InfiniBand fat tree (Cirrus).
    FdrInfiniband,
    /// Mellanox EDR InfiniBand non-blocking fat tree (Fulhame).
    EdrInfiniband,
    /// Intel OmniPath (EPCC NGIO).
    OmniPath,
}

impl InterconnectKind {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            InterconnectKind::TofuD => "TofuD",
            InterconnectKind::Aries => "Cray Aries",
            InterconnectKind::FdrInfiniband => "FDR InfiniBand",
            InterconnectKind::EdrInfiniband => "EDR InfiniBand",
            InterconnectKind::OmniPath => "Intel OmniPath",
        }
    }

    /// Default link parameters for the family.
    pub fn default_link(&self) -> LinkParams {
        match self {
            // TofuD: 6.8 GB/s/link, up to 4 links usable concurrently per
            // direction pair in practice; sub-microsecond put latency.
            InterconnectKind::TofuD => LinkParams {
                bandwidth_gbs: 6.8,
                latency_us: 0.49,
                injection_links: 4,
                per_hop_us: 0.08,
                rendezvous_cutover_bytes: 32 * 1024,
            },
            InterconnectKind::Aries => LinkParams {
                bandwidth_gbs: 10.5,
                latency_us: 1.3,
                injection_links: 1,
                per_hop_us: 0.10,
                rendezvous_cutover_bytes: 8 * 1024,
            },
            InterconnectKind::FdrInfiniband => LinkParams {
                bandwidth_gbs: 6.8,
                latency_us: 1.1,
                injection_links: 1,
                per_hop_us: 0.10,
                rendezvous_cutover_bytes: 16 * 1024,
            },
            InterconnectKind::EdrInfiniband => LinkParams {
                bandwidth_gbs: 12.1,
                latency_us: 0.9,
                injection_links: 1,
                per_hop_us: 0.10,
                rendezvous_cutover_bytes: 16 * 1024,
            },
            InterconnectKind::OmniPath => LinkParams {
                bandwidth_gbs: 12.3,
                latency_us: 1.0,
                injection_links: 1,
                per_hop_us: 0.11,
                rendezvous_cutover_bytes: 8 * 1024,
            },
        }
    }
}

/// LogGP-style link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Per-link unidirectional bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// End-to-end small-message latency in microseconds (one hop, including
    /// software overhead on both ends).
    pub latency_us: f64,
    /// Number of links a single node can drive concurrently when injecting
    /// one large message (TofuD can stripe across multiple TNIs).
    pub injection_links: u32,
    /// Additional latency per switch/router hop in microseconds.
    pub per_hop_us: f64,
    /// Message size at which the MPI implementation switches from eager to
    /// rendezvous protocol (adds a round-trip).
    pub rendezvous_cutover_bytes: u64,
}

impl LinkParams {
    /// Effective injection bandwidth for one large message from one node.
    pub fn injection_bw_gbs(&self) -> f64 {
        self.bandwidth_gbs * f64::from(self.injection_links)
    }

    /// Point-to-point message time in microseconds for `bytes` over `hops`
    /// switch hops, using the eager/rendezvous protocol model.
    pub fn p2p_time_us(&self, bytes: u64, hops: u32) -> f64 {
        let base = self.latency_us + f64::from(hops) * self.per_hop_us;
        let wire = bytes as f64 / (self.injection_bw_gbs() * 1e3); // GB/s -> bytes/us
        if bytes >= self.rendezvous_cutover_bytes {
            // Rendezvous: extra handshake round trip.
            2.0 * base + wire
        } else {
            base + wire
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tofud_stripes_injection() {
        let l = InterconnectKind::TofuD.default_link();
        assert!((l.injection_bw_gbs() - 27.2).abs() < 1e-9);
    }

    #[test]
    fn p2p_time_monotone_in_size_and_hops() {
        for kind in [
            InterconnectKind::TofuD,
            InterconnectKind::Aries,
            InterconnectKind::FdrInfiniband,
            InterconnectKind::EdrInfiniband,
            InterconnectKind::OmniPath,
        ] {
            let l = kind.default_link();
            let mut prev = 0.0;
            for sz in [0u64, 8, 1024, 64 * 1024, 1 << 20, 8 << 20] {
                let t = l.p2p_time_us(sz, 2);
                assert!(t >= prev, "{kind:?} not monotone at {sz}");
                prev = t;
            }
            assert!(l.p2p_time_us(1024, 5) > l.p2p_time_us(1024, 1));
        }
    }

    #[test]
    fn rendezvous_adds_handshake() {
        let l = InterconnectKind::EdrInfiniband.default_link();
        let small = l.p2p_time_us(l.rendezvous_cutover_bytes - 1, 1);
        let big = l.p2p_time_us(l.rendezvous_cutover_bytes, 1);
        assert!(big > small);
    }

    #[test]
    fn large_message_time_approaches_bandwidth_bound() {
        let l = InterconnectKind::Aries.default_link();
        let bytes = 100u64 << 20; // 100 MiB
        let t = l.p2p_time_us(bytes, 3);
        let wire_only = bytes as f64 / (l.injection_bw_gbs() * 1e3);
        assert!(t / wire_only < 1.01);
    }
}
