//! Compute node models: one or two processor packages plus a memory system.

use serde::{Deserialize, Serialize};

use crate::memory::MemorySystem;
use crate::processor::Processor;

/// A compute node: `sockets` identical processor packages sharing a
/// `MemorySystem`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Number of processor packages (1 on the A64FX system, 2 elsewhere).
    pub sockets: u32,
    /// The processor in each socket.
    pub processor: Processor,
    /// Node memory system (domains cover all sockets).
    pub memory: MemorySystem,
}

impl Node {
    /// User-visible cores per node (Table I "Cores per node").
    pub fn cores(&self) -> u32 {
        self.sockets * self.processor.cores
    }

    /// Peak node double-precision GFLOP/s (Table I "Maximum node DP GFLOP/s").
    pub fn peak_dp_gflops(&self) -> f64 {
        f64::from(self.sockets) * self.processor.peak_dp_gflops()
    }

    /// Memory per node in GiB (Table I "Memory per node").
    pub fn memory_gib(&self) -> f64 {
        self.memory.total_capacity_gib()
    }

    /// Memory per core in GiB (Table I "Memory per core").
    pub fn memory_per_core_gib(&self) -> f64 {
        self.memory_gib() / f64::from(self.cores())
    }

    /// Sustained node memory bandwidth in GB/s.
    pub fn sustained_bw_gbs(&self) -> f64 {
        self.memory.sustained_bw_gbs()
    }

    /// Machine balance in bytes/flop at peak: sustained bandwidth over peak
    /// flops. Higher means memory-bound kernels run closer to peak.
    pub fn balance_bytes_per_flop(&self) -> f64 {
        self.sustained_bw_gbs() / self.peak_dp_gflops()
    }

    /// Whether a per-node working set of `bytes` fits in node memory, after
    /// reserving `reserve_frac` (OS, MPI buffers, page tables).
    pub fn fits_in_memory(&self, bytes: u64, reserve_frac: f64) -> bool {
        let usable = self.memory.total_capacity_bytes() as f64 * (1.0 - reserve_frac);
        (bytes as f64) <= usable
    }

    /// Cores per memory locality domain.
    pub fn cores_per_domain(&self) -> u32 {
        self.cores() / self.memory.num_domains() as u32
    }
}

#[cfg(test)]
mod tests {
    use crate::systems::{system, SystemId};

    #[test]
    fn table1_cores_per_node() {
        assert_eq!(system(SystemId::A64fx).node.cores(), 48);
        assert_eq!(system(SystemId::Archer).node.cores(), 24);
        assert_eq!(system(SystemId::Cirrus).node.cores(), 36);
        assert_eq!(system(SystemId::Ngio).node.cores(), 48);
        assert_eq!(system(SystemId::Fulhame).node.cores(), 64);
    }

    #[test]
    fn table1_peak_gflops() {
        let cases = [
            (SystemId::A64fx, 3379.2),
            (SystemId::Archer, 518.4),
            (SystemId::Cirrus, 1209.6),
            (SystemId::Ngio, 2662.4),
            (SystemId::Fulhame, 1126.4),
        ];
        for (id, want) in cases {
            let got = system(id).node.peak_dp_gflops();
            assert!(
                (got - want).abs() / want < 5e-3,
                "{id:?}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn table1_memory_per_node_and_core() {
        let a = system(SystemId::A64fx).node;
        assert!((a.memory_gib() - 32.0).abs() < 1e-9);
        assert!((a.memory_per_core_gib() - 0.666).abs() < 1e-2);
        let f = system(SystemId::Fulhame).node;
        assert!((f.memory_gib() - 256.0).abs() < 1e-9);
        assert!((f.memory_per_core_gib() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn a64fx_has_best_machine_balance() {
        // The paper's central observation: HBM2 gives the A64FX by far the
        // best bandwidth, which is why memory-bound codes win there.
        let a64fx = system(SystemId::A64fx).node.balance_bytes_per_flop();
        for id in [
            SystemId::Archer,
            SystemId::Cirrus,
            SystemId::Ngio,
            SystemId::Fulhame,
        ] {
            let other = system(id).node;
            assert!(
                system(SystemId::A64fx).node.sustained_bw_gbs() > 2.0 * other.sustained_bw_gbs(),
                "A64FX should have >2x the sustained bandwidth of {id:?}"
            );
            let _ = a64fx;
        }
    }

    #[test]
    fn memory_fit_check_reserves_headroom() {
        let a = system(SystemId::A64fx).node;
        let gib = 1024u64 * 1024 * 1024;
        assert!(a.fits_in_memory(20 * gib, 0.1));
        assert!(!a.fits_in_memory(31 * gib, 0.1));
    }
}
