//! # fftsim — fast Fourier transform substrate
//!
//! CASTEP is built on 3-D FFTs (the paper used Fujitsu's early FFTW3 port on
//! the A64FX, MKL/FFTW elsewhere). This crate implements the transform from
//! scratch:
//!
//! * [`complex`] — a minimal `Complex64` (kept dependency-free).
//! * [`fft1d`] — iterative radix-2 Cooley–Tukey, forward and inverse.
//! * [`fft3d`] — 3-D transforms applied axis by axis, plus the slab
//!   decomposition model that determines the MPI alltoall traffic of a
//!   distributed transform.
//! * [`real`] — real-to-complex transforms (half the work; the charge-
//!   density path in plane-wave DFT).
//!
//! All kernels return [`densela::Work`] so the cost model can charge them as
//! the `Fft` kernel class (5 n log₂ n flops per 1-D transform).

#![warn(missing_docs)]

pub mod complex;
pub mod fft1d;
pub mod fft3d;
pub mod real;

pub use complex::Complex64;
pub use fft1d::{fft, ifft};
pub use fft3d::{fft3_inplace, Fft3Plan};
