//! 3-D FFTs and the slab-decomposition model for distributed transforms.
//!
//! A serial 3-D transform applies 1-D FFTs along each axis. A distributed
//! (slab-decomposed) transform, as CASTEP performs many times per SCF
//! cycle, does two local axes, a global transpose (MPI alltoall), the third
//! axis, and a transpose back. [`Fft3Plan`] carries both the real local
//! kernel and the communication volumes the simulated run needs.

use crate::complex::Complex64;
use crate::fft1d::{fft, fft_work, ifft};
use densela::block::FFT_TILE;
use densela::Work;

/// In-place 3-D forward FFT on an `n × n × n` cube stored x-fastest.
/// Returns the work performed (3 n² length-n transforms).
///
/// # Panics
/// Panics if `data.len() != n³` or `n` is not a power of two.
pub fn fft3_inplace(n: usize, data: &mut [Complex64]) -> Work {
    assert_eq!(data.len(), n * n * n, "need an n^3 buffer");
    let mut work = Work::ZERO;
    let mut line = vec![Complex64::ZERO; n];
    // Axis 0 (contiguous).
    for chunk in data.chunks_mut(n) {
        work += fft(chunk);
    }
    // Axis 1.
    for z in 0..n {
        for x in 0..n {
            for y in 0..n {
                line[y] = data[(z * n + y) * n + x];
            }
            work += fft(&mut line);
            for y in 0..n {
                data[(z * n + y) * n + x] = line[y];
            }
        }
    }
    // Axis 2.
    for y in 0..n {
        for x in 0..n {
            for z in 0..n {
                line[z] = data[(z * n + y) * n + x];
            }
            work += fft(&mut line);
            for z in 0..n {
                data[(z * n + y) * n + x] = line[z];
            }
        }
    }
    work
}

/// In-place 3-D inverse FFT (normalised).
pub fn ifft3_inplace(n: usize, data: &mut [Complex64]) -> Work {
    assert_eq!(data.len(), n * n * n, "need an n^3 buffer");
    let mut work = Work::ZERO;
    let mut line = vec![Complex64::ZERO; n];
    for chunk in data.chunks_mut(n) {
        work += ifft(chunk);
    }
    for z in 0..n {
        for x in 0..n {
            for y in 0..n {
                line[y] = data[(z * n + y) * n + x];
            }
            work += ifft(&mut line);
            for y in 0..n {
                data[(z * n + y) * n + x] = line[y];
            }
        }
    }
    for y in 0..n {
        for x in 0..n {
            for z in 0..n {
                line[z] = data[(z * n + y) * n + x];
            }
            work += ifft(&mut line);
            for z in 0..n {
                data[(z * n + y) * n + x] = line[z];
            }
        }
    }
    work
}

/// Closed-form work of a serial n³ 3-D FFT.
pub fn fft3_work(n: usize) -> Work {
    fft_work(n) * (3 * n * n) as u64
}

/// Blocked 3-D transform core shared by the forward and inverse paths.
///
/// The naive strided passes (axes 1 and 2) gather one pencil at a time:
/// every load of `data[(z*n+y)*n + x]` touches a different cache line and
/// uses 16 of its 256 bytes (Snippet-1 A64FX line size). The blocked
/// transpose gathers `tile` adjacent pencils per pass, so each strided line
/// read yields `tile` useful elements. Each pencil still receives exactly
/// the same 1-D transform on the same values — pencils are disjoint and
/// order-independent — so the blocked transform is bit-identical to the
/// naive one.
fn fft3_blocked_impl(
    n: usize,
    data: &mut [Complex64],
    tile: usize,
    tf: fn(&mut [Complex64]) -> Work,
) -> Work {
    assert_eq!(data.len(), n * n * n, "need an n^3 buffer");
    assert!(tile > 0, "tile width must be positive");
    let mut work = Work::ZERO;
    // Axis 0 (contiguous) — identical to the naive pass.
    for chunk in data.chunks_mut(n) {
        work += tf(chunk);
    }
    let mut buf = vec![Complex64::ZERO; tile * n];
    // Axis 1: per z-plane, gather tiles of `tile` adjacent x-pencils.
    for z in 0..n {
        let mut x0 = 0;
        while x0 < n {
            let tb = tile.min(n - x0);
            for y in 0..n {
                let src = &data[(z * n + y) * n + x0..(z * n + y) * n + x0 + tb];
                for (dx, v) in src.iter().enumerate() {
                    buf[dx * n + y] = *v;
                }
            }
            for dx in 0..tb {
                work += tf(&mut buf[dx * n..dx * n + n]);
            }
            for y in 0..n {
                let dst = &mut data[(z * n + y) * n + x0..(z * n + y) * n + x0 + tb];
                for (dx, v) in dst.iter_mut().enumerate() {
                    *v = buf[dx * n + y];
                }
            }
            x0 += tb;
        }
    }
    // Axis 2: per y-row, gather tiles of adjacent x-pencils over z.
    for y in 0..n {
        let mut x0 = 0;
        while x0 < n {
            let tb = tile.min(n - x0);
            for z in 0..n {
                let src = &data[(z * n + y) * n + x0..(z * n + y) * n + x0 + tb];
                for (dx, v) in src.iter().enumerate() {
                    buf[dx * n + z] = *v;
                }
            }
            for dx in 0..tb {
                work += tf(&mut buf[dx * n..dx * n + n]);
            }
            for z in 0..n {
                let dst = &mut data[(z * n + y) * n + x0..(z * n + y) * n + x0 + tb];
                for (dx, v) in dst.iter_mut().enumerate() {
                    *v = buf[dx * n + z];
                }
            }
            x0 += tb;
        }
    }
    work
}

/// Blocked forward 3-D FFT with caller-chosen transpose tile width (parity
/// tests sweep {1, 3, 8, 16}); bit-identical to [`fft3_inplace`].
pub fn fft3_inplace_blocked_with(n: usize, data: &mut [Complex64], tile: usize) -> Work {
    fft3_blocked_impl(n, data, tile, fft)
}

/// Blocked forward 3-D FFT at the default [`FFT_TILE`]; bit-identical to
/// [`fft3_inplace`].
pub fn fft3_inplace_blocked(n: usize, data: &mut [Complex64]) -> Work {
    fft3_blocked_impl(n, data, FFT_TILE, fft)
}

/// Blocked inverse 3-D FFT with caller-chosen tile width; bit-identical to
/// [`ifft3_inplace`].
pub fn ifft3_inplace_blocked_with(n: usize, data: &mut [Complex64], tile: usize) -> Work {
    fft3_blocked_impl(n, data, tile, ifft)
}

/// Blocked inverse 3-D FFT at the default [`FFT_TILE`]; bit-identical to
/// [`ifft3_inplace`].
pub fn ifft3_inplace_blocked(n: usize, data: &mut [Complex64]) -> Work {
    fft3_blocked_impl(n, data, FFT_TILE, ifft)
}

/// A slab-decomposed distributed 3-D FFT plan over `p` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fft3Plan {
    /// Cube edge length (power of two).
    pub n: usize,
    /// Ranks sharing the transform.
    pub p: usize,
}

impl Fft3Plan {
    /// Create a plan; `p` must not exceed `n` (slab granularity).
    pub fn new(n: usize, p: usize) -> Self {
        assert!(n.is_power_of_two(), "grid must be a power of two");
        assert!(p >= 1 && p <= n, "slab decomposition needs p <= n");
        Fft3Plan { n, p }
    }

    /// Per-rank compute work of one forward transform: each rank owns n/p
    /// planes and performs its share of the three transform passes.
    pub fn local_work(&self) -> Work {
        let lines_per_rank = (3 * self.n * self.n).div_ceil(self.p) as u64;
        fft_work(self.n) * lines_per_rank
    }

    /// Bytes each rank sends to each other rank in the transpose alltoall.
    pub fn alltoall_bytes_per_pair(&self) -> u64 {
        // Each rank holds n^3/p points and must scatter them evenly.
        let per_rank_points = (self.n * self.n * self.n / self.p) as u64;
        (per_rank_points / self.p as u64) * 16
    }

    /// Number of alltoall transposes per forward transform (slab: 1; plus 1
    /// to return to the original layout when required).
    pub fn transposes(&self) -> u32 {
        if self.p == 1 {
            0
        } else {
            2
        }
    }

    /// Per-rank working set of one transform in bytes: the slab of
    /// `elem_bytes`-sized points a rank owns (`n³/p`), which both the local
    /// transform passes and the transpose pack/unpack sweep repeatedly.
    /// This is what the ECM pricing backend uses to place CASTEP's FFT
    /// traffic in the cache hierarchy.
    pub fn slab_ws_bytes(&self, elem_bytes: u64) -> u64 {
        (self.n * self.n * self.n / self.p) as u64 * elem_bytes
    }
}

/// A 2-D pencil-decomposed distributed 3-D FFT plan: ranks form a
/// `p1 × p2` grid, each holding an `n × (n/p1) × (n/p2)` pencil. Unlike the
/// slab plan, the rank count can scale to `n²` — the layout production FFT
/// stacks (and CASTEP at large core counts) switch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PencilPlan {
    /// Cube edge (power of two).
    pub n: usize,
    /// Process-grid rows.
    pub p1: usize,
    /// Process-grid columns.
    pub p2: usize,
}

impl PencilPlan {
    /// Build a pencil plan for `p` ranks: factor `p` into the squarest
    /// `p1 × p2` grid with both factors ≤ `n`.
    ///
    /// # Panics
    /// Panics if `p > n²` (no legal pencil) or `n` is not a power of two.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(n.is_power_of_two(), "grid must be a power of two");
        assert!(p >= 1 && p <= n * n, "pencil decomposition needs p <= n^2");
        let mut best = (1usize, p);
        let mut best_score = usize::MAX;
        for p1 in 1..=p {
            if !p.is_multiple_of(p1) {
                continue;
            }
            let p2 = p / p1;
            if p1 > n || p2 > n {
                continue;
            }
            let score = p1.abs_diff(p2);
            if score < best_score {
                best_score = score;
                best = (p1, p2);
            }
        }
        assert!(
            best.0 <= n && best.1 <= n,
            "no legal pencil factorisation for p={p}, n={n}"
        );
        PencilPlan {
            n,
            p1: best.0,
            p2: best.1,
        }
    }

    /// Ranks in the plan.
    pub fn ranks(&self) -> usize {
        self.p1 * self.p2
    }

    /// Per-rank compute work of one forward transform.
    pub fn local_work(&self) -> Work {
        let lines_per_rank = (3 * self.n * self.n).div_ceil(self.ranks()) as u64;
        fft_work(self.n) * lines_per_rank
    }

    /// Transposes per forward transform: two (x→y pencils, y→z pencils),
    /// each an alltoall within a process-grid row or column of size p1/p2.
    pub fn transposes(&self) -> u32 {
        u32::from(self.p1 > 1) + u32::from(self.p2 > 1)
    }

    /// Bytes per (src, dst) pair in the row-wise transpose alltoall (the
    /// communicator has `p1` members and redistributes each rank's pencil).
    pub fn alltoall_bytes_per_pair_row(&self) -> u64 {
        if self.p1 <= 1 {
            return 0;
        }
        let per_rank_points = (self.n * self.n * self.n / self.ranks()) as u64;
        (per_rank_points / self.p1 as u64) * 16
    }

    /// Bytes per pair in the column-wise transpose.
    pub fn alltoall_bytes_per_pair_col(&self) -> u64 {
        if self.p2 <= 1 {
            return 0;
        }
        let per_rank_points = (self.n * self.n * self.n / self.ranks()) as u64;
        (per_rank_points / self.p2 as u64) * 16
    }
}

#[cfg(test)]
mod pencil_tests {
    use super::*;

    #[test]
    fn pencil_scales_past_slab_limit() {
        // Slab caps at p = n; pencil reaches n^2.
        let n = 64;
        assert!(std::panic::catch_unwind(|| Fft3Plan::new(n, 128)).is_err());
        let plan = PencilPlan::new(n, 128);
        assert_eq!(plan.ranks(), 128);
        assert!(plan.p1 <= n && plan.p2 <= n);
    }

    #[test]
    fn pencil_prefers_square_grids() {
        let plan = PencilPlan::new(64, 64);
        assert_eq!((plan.p1, plan.p2), (8, 8));
        assert_eq!(plan.transposes(), 2);
    }

    #[test]
    fn single_rank_pencil_needs_no_transpose() {
        let plan = PencilPlan::new(32, 1);
        assert_eq!(plan.transposes(), 0);
        assert_eq!(plan.alltoall_bytes_per_pair_row(), 0);
    }

    #[test]
    fn pencil_work_sums_to_serial_work() {
        let n = 64;
        for p in [1usize, 4, 16, 64, 256] {
            let plan = PencilPlan::new(n, p);
            let total = plan.local_work() * p as u64;
            assert!(total.flops >= fft3_work(n).flops, "p={p}");
            assert!(total.flops <= fft3_work(n).flops + p as u64 * fft_work(n).flops);
        }
    }

    #[test]
    fn pencil_transpose_volume_bounded_by_grid() {
        let plan = PencilPlan::new(64, 64);
        let grid_bytes = 64u64.pow(3) * 16;
        let row_total =
            plan.alltoall_bytes_per_pair_row() * (plan.p1 * (plan.p1 - 1)) as u64 * plan.p2 as u64;
        assert!(row_total <= grid_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(n: usize) -> Vec<Complex64> {
        (0..n * n * n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect()
    }

    #[test]
    fn fft3_round_trip() {
        let n = 8;
        let x = cube(n);
        let mut y = x.clone();
        fft3_inplace(n, &mut y);
        ifft3_inplace(n, &mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn fft3_of_constant_is_delta() {
        let n = 4;
        let mut x = vec![Complex64::ONE; n * n * n];
        fft3_inplace(n, &mut x);
        assert!((x[0].re - (n * n * n) as f64).abs() < 1e-9);
        for v in &x[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn fft3_separable_plane_wave() {
        // e^{2πi(k·r)/n} concentrates at bin (kx, ky, kz).
        let n = 8;
        let (kx, ky, kz) = (1usize, 2, 3);
        let mut x = vec![Complex64::ZERO; n * n * n];
        for z in 0..n {
            for y in 0..n {
                for xx in 0..n {
                    let phase =
                        2.0 * std::f64::consts::PI * (kx * xx + ky * y + kz * z) as f64 / n as f64;
                    x[(z * n + y) * n + xx] = Complex64::cis(phase);
                }
            }
        }
        fft3_inplace(n, &mut x);
        let peak = (kz * n + ky) * n + kx;
        assert!((x[peak].abs() - (n * n * n) as f64).abs() < 1e-6);
        let total: f64 = x.iter().map(|v| v.norm_sq()).sum();
        assert!(
            (x[peak].norm_sq() / total - 1.0).abs() < 1e-9,
            "all energy in one bin"
        );
    }

    #[test]
    fn blocked_fft3_is_bit_identical_to_naive() {
        for n in [2usize, 4, 8, 16] {
            for tile in [1usize, 3, 8, 16] {
                let x = cube(n);
                let mut y_ref = x.clone();
                let mut y_blk = x.clone();
                let w1 = fft3_inplace(n, &mut y_ref);
                let w2 = fft3_inplace_blocked_with(n, &mut y_blk, tile);
                assert_eq!(w1, w2);
                for (a, b) in y_ref.iter().zip(&y_blk) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "n={n} tile={tile}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "n={n} tile={tile}");
                }
                let w3 = ifft3_inplace(n, &mut y_ref);
                let w4 = ifft3_inplace_blocked_with(n, &mut y_blk, tile);
                assert_eq!(w3, w4);
                for (a, b) in y_ref.iter().zip(&y_blk) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "inverse n={n} tile={tile}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "inverse n={n} tile={tile}");
                }
            }
        }
    }

    #[test]
    fn fft3_work_matches_model() {
        let n = 8;
        let mut x = cube(n);
        let w = fft3_inplace(n, &mut x);
        assert_eq!(w, fft3_work(n));
    }

    #[test]
    fn plan_work_sums_to_serial_work() {
        let n = 64;
        for p in [1usize, 2, 4, 8] {
            let plan = Fft3Plan::new(n, p);
            let total = plan.local_work() * p as u64;
            // Per-rank share x p >= serial work (ceiling effects only).
            assert!(total.flops >= fft3_work(n).flops);
            assert!(total.flops <= fft3_work(n).flops + p as u64 * fft_work(n).flops);
        }
    }

    #[test]
    fn slab_working_set_shrinks_with_ranks() {
        let full = Fft3Plan::new(64, 1).slab_ws_bytes(16);
        assert_eq!(full, 64 * 64 * 64 * 16);
        let shared = Fft3Plan::new(64, 8).slab_ws_bytes(16);
        assert_eq!(shared, full / 8);
    }

    #[test]
    fn alltoall_volume_conserves_grid() {
        let plan = Fft3Plan::new(64, 8);
        // Every rank sends (p-1)/p of its slab: total on the wire is close
        // to the full grid (16 bytes per point), once per transpose.
        let per_pair = plan.alltoall_bytes_per_pair();
        let total_sent = per_pair * (plan.p * (plan.p - 1)) as u64;
        let grid_bytes = (64u64 * 64 * 64) * 16;
        assert!(total_sent <= grid_bytes);
        assert!(total_sent >= grid_bytes / 2);
    }

    #[test]
    fn single_rank_plan_needs_no_transpose() {
        assert_eq!(Fft3Plan::new(32, 1).transposes(), 0);
        assert_eq!(Fft3Plan::new(32, 4).transposes(), 2);
    }
}
