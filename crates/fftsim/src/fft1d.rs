//! Iterative radix-2 Cooley–Tukey FFT.

use crate::complex::Complex64;
use densela::Work;

const C64B: u64 = 16;

/// In-place forward FFT of a power-of-two-length buffer. Returns the work
/// performed (the conventional 5 n log₂ n flop count).
///
/// # Panics
/// Panics if the length is not a power of two (or is zero).
pub fn fft(data: &mut [Complex64]) -> Work {
    transform(data, false)
}

/// In-place inverse FFT (normalised by 1/n).
pub fn ifft(data: &mut [Complex64]) -> Work {
    let w = transform(data, true);
    let n = data.len() as f64;
    let inv = 1.0 / n;
    for v in data.iter_mut() {
        *v = v.scale(inv);
    }
    w + Work::new(
        2 * data.len() as u64,
        data.len() as u64 * C64B,
        data.len() as u64 * C64B,
    )
}

fn transform(data: &mut [Complex64], inverse: bool) -> Work {
    let n = data.len();
    assert!(
        n.is_power_of_two() && n > 0,
        "FFT length must be a power of two, got {n}"
    );
    if n == 1 {
        // A length-1 transform is the identity (and the bit-reversal shift
        // below would overflow).
        return fft_work(1);
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    fft_work(n)
}

/// Closed-form work of one length-`n` FFT: 5 n log₂ n flops, log₂ n sweeps
/// of the buffer.
pub fn fft_work(n: usize) -> Work {
    let logn = n.trailing_zeros() as u64;
    let nf = n as u64;
    Work::new(5 * nf * logn, nf * C64B * logn, nf * C64B * logn)
}

/// Naive O(n²) DFT used as the test oracle.
pub fn dft_reference(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc += x * Complex64::cis(ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.9).sin(), (i as f64 * 0.4).cos() * 0.5))
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        for n in [2usize, 4, 8, 16, 64] {
            let x = signal(n);
            let want = dft_reference(&x);
            let mut got = x.clone();
            fft(&mut got);
            for (g, w) in got.iter().zip(&want) {
                assert!((*g - *w).abs() < 1e-9 * n as f64, "n={n}");
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let x = signal(128);
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let x = signal(64);
        let e_time: f64 = x.iter().map(|v| v.norm_sq()).sum();
        let mut y = x.clone();
        fft(&mut y);
        let e_freq: f64 = y.iter().map(|v| v.norm_sq()).sum::<f64>() / 64.0;
        assert!((e_time - e_freq).abs() < 1e-9 * e_time);
    }

    #[test]
    fn delta_transforms_to_constant() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        fft(&mut x);
        for v in &x {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 32;
        let k0 = 5;
        let mut x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64))
            .collect();
        fft(&mut x);
        for (k, v) in x.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leakage at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut x = vec![Complex64::ZERO; 12];
        fft(&mut x);
    }

    #[test]
    fn work_is_5nlogn() {
        assert_eq!(fft_work(1024).flops, 5 * 1024 * 10);
        let x = &mut signal(64)[..];
        let w = fft(x);
        assert_eq!(w, fft_work(64));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn fft_is_linear(
            log_n in 1u32..8,
            alpha in -4.0f64..4.0,
            seed in 0u64..1000,
        ) {
            let n = 1usize << log_n;
            let x: Vec<Complex64> = (0..n)
                .map(|i| {
                    let h = (i as u64 + seed).wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
                    Complex64::new(((h % 1000) as f64) / 500.0 - 1.0, ((h >> 32) % 1000) as f64 / 500.0 - 1.0)
                })
                .collect();
            let mut fx = x.clone();
            fft(&mut fx);
            let mut fax: Vec<Complex64> = x.iter().map(|v| v.scale(alpha)).collect();
            fft(&mut fax);
            for (a, b) in fax.iter().zip(&fx) {
                prop_assert!((*a - b.scale(alpha)).abs() < 1e-9 * (1.0 + b.abs()));
            }
        }

        #[test]
        fn round_trip_any_signal(log_n in 1u32..9, seed in 0u64..1000) {
            let n = 1usize << log_n;
            let x: Vec<Complex64> = (0..n)
                .map(|i| {
                    let h = ((i as u64).wrapping_add(seed)).wrapping_mul(0xBF58476D1CE4E5B9);
                    Complex64::new((h % 97) as f64 - 48.0, ((h >> 13) % 89) as f64 - 44.0)
                })
                .collect();
            let mut y = x.clone();
            fft(&mut y);
            ifft(&mut y);
            for (a, b) in x.iter().zip(&y) {
                prop_assert!((*a - *b).abs() < 1e-7 * (1.0 + a.abs()));
            }
        }
    }
}

#[cfg(test)]
mod length_one {
    use super::*;

    #[test]
    fn length_one_fft_is_identity() {
        // Regression: the bit-reversal shift used to overflow for n = 1
        // (debug builds only), which rfft of a length-2 signal exercises.
        let mut x = vec![Complex64::new(3.0, -4.0)];
        fft(&mut x);
        assert_eq!(x[0], Complex64::new(3.0, -4.0));
        ifft(&mut x);
        assert_eq!(x[0], Complex64::new(3.0, -4.0));
        let (spec, _) = crate::real::rfft(&[5.0, -1.0]);
        assert!((spec[0].re - 4.0).abs() < 1e-15);
        assert!((spec[1].re - 6.0).abs() < 1e-15);
    }
}
