//! Real-to-complex transforms (CASTEP's charge-density path).
//!
//! A length-`n` real signal's spectrum is Hermitian-symmetric, so only
//! `n/2 + 1` bins are independent. `rfft` computes them through a single
//! complex FFT of half length using the classic even/odd packing, and
//! `irfft` inverts it — half the flops and half the traffic of a full
//! complex transform, which is why FFT libraries (and CASTEP) use r2c for
//! densities.

use crate::complex::Complex64;
use crate::fft1d::{fft, fft_work, ifft};
use densela::Work;

/// Forward real-to-complex FFT: `n` real samples → `n/2 + 1` spectrum bins.
///
/// # Panics
/// Panics unless `n` is a power of two and at least 2.
pub fn rfft(input: &[f64]) -> (Vec<Complex64>, Work) {
    let n = input.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "rfft length must be a power of two >= 2"
    );
    let half = n / 2;
    // Pack even samples into re, odd into im, of a half-length signal.
    let mut packed: Vec<Complex64> = (0..half)
        .map(|i| Complex64::new(input[2 * i], input[2 * i + 1]))
        .collect();
    let mut work = fft(&mut packed);

    // Unpack: X[k] = E[k] + e^{-2πik/n} O[k], with E/O recovered from the
    // Hermitian split of the packed transform.
    let mut out = vec![Complex64::ZERO; half + 1];
    for k in 0..=half {
        let (zk, znk) = if k == 0 || k == half {
            (packed[0], packed[0])
        } else {
            (packed[k], packed[half - k])
        };
        let e = (zk + znk.conj()).scale(0.5);
        let o_times_i = (zk - znk.conj()).scale(0.5);
        // O[k] = -i * o_times_i
        let o = Complex64::new(o_times_i.im, -o_times_i.re);
        let tw = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64);
        out[k] = if k == half {
            // Nyquist bin: E[0] - O[0] with the k=half twiddle = -1... use
            // the direct formula with wrapped index 0.
            e + tw * o
        } else {
            e + tw * o
        };
    }
    work += Work::new(
        10 * (half as u64 + 1),
        (half as u64 + 1) * 32,
        (half as u64 + 1) * 16,
    );
    (out, work)
}

/// Inverse complex-to-real FFT: `n/2 + 1` bins → `n` real samples
/// (normalised, so `irfft(rfft(x)) == x`).
pub fn irfft(spectrum: &[Complex64], n: usize) -> (Vec<f64>, Work) {
    assert!(
        n.is_power_of_two() && n >= 2,
        "irfft length must be a power of two >= 2"
    );
    assert_eq!(spectrum.len(), n / 2 + 1, "spectrum must hold n/2+1 bins");
    let half = n / 2;
    // Repack the full-length Hermitian spectrum into a half-length complex
    // spectrum (inverse of the rfft unpacking).
    let mut packed = vec![Complex64::ZERO; half];
    for k in 0..half {
        let xk = spectrum[k];
        let xnk = spectrum[half - k].conj();
        let e = (xk + xnk).scale(0.5);
        let tw = Complex64::cis(2.0 * std::f64::consts::PI * k as f64 / n as f64);
        let o = (xk - xnk).scale(0.5) * tw;
        // Z[k] = E[k] + i O[k]
        packed[k] = e + Complex64::new(-o.im, o.re);
    }
    let mut work = ifft(&mut packed);
    let mut out = vec![0.0; n];
    for i in 0..half {
        out[2 * i] = packed[i].re;
        out[2 * i + 1] = packed[i].im;
    }
    work += Work::new(10 * half as u64, half as u64 * 32, n as u64 * 8);
    (out, work)
}

/// Work model of one r2c transform: roughly half a complex FFT.
pub fn rfft_work(n: usize) -> Work {
    fft_work(n / 2)
        + Work::new(
            10 * (n as u64 / 2 + 1),
            (n as u64 / 2 + 1) * 32,
            (n as u64 / 2 + 1) * 16,
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft1d::dft_reference;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.7).sin() + 0.3 * (i as f64 * 1.9).cos())
            .collect()
    }

    #[test]
    fn rfft_matches_complex_dft() {
        for n in [4usize, 8, 16, 64] {
            let x = signal(n);
            let cx: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
            let want = dft_reference(&cx);
            let (got, _) = rfft(&x);
            for k in 0..=n / 2 {
                assert!(
                    (got[k] - want[k]).abs() < 1e-9,
                    "n={n}, bin {k}: {:?} vs {:?}",
                    got[k],
                    want[k]
                );
            }
        }
    }

    #[test]
    fn irfft_inverts_rfft() {
        for n in [4usize, 8, 32, 128] {
            let x = signal(n);
            let (spec, _) = rfft(&x);
            let (back, _) = irfft(&spec, n);
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn real_signal_spectrum_is_hermitian_consistent() {
        // DC and Nyquist bins of a real signal must be purely real.
        let x = signal(32);
        let (spec, _) = rfft(&x);
        assert!(spec[0].im.abs() < 1e-12, "DC must be real");
        assert!(spec[16].im.abs() < 1e-12, "Nyquist must be real");
    }

    #[test]
    fn rfft_costs_about_half_a_complex_fft() {
        let full = fft_work(1024).flops;
        let half = rfft_work(1024).flops;
        assert!(half < full * 2 / 3, "r2c {half} vs c2c {full}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_length_rejected() {
        let _ = rfft(&[1.0, 2.0, 3.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn round_trip_random_real_signals(log_n in 1u32..9, seed in 0u64..500) {
            let n = 1usize << log_n;
            let x: Vec<f64> = (0..n)
                .map(|i| {
                    let h = (i as u64).wrapping_add(seed).wrapping_mul(0x9E3779B97F4A7C15);
                    ((h >> 33) % 2000) as f64 / 1000.0 - 1.0
                })
                .collect();
            let (spec, _) = rfft(&x);
            let (back, _) = irfft(&spec, n);
            for (a, b) in x.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn parseval_for_real_transform(log_n in 2u32..8) {
            let n = 1usize << log_n;
            let x: Vec<f64> = (0..n).map(|i| ((i * i) % 17) as f64 - 8.0).collect();
            let (spec, _) = rfft(&x);
            let e_time: f64 = x.iter().map(|v| v * v).sum();
            // Hermitian symmetry: interior bins count twice.
            let mut e_freq = spec[0].norm_sq() + spec[n / 2].norm_sq();
            for s in &spec[1..n / 2] {
                e_freq += 2.0 * s.norm_sq();
            }
            e_freq /= n as f64;
            prop_assert!((e_time - e_freq).abs() < 1e-6 * (1.0 + e_time));
        }
    }
}
