//! A minimal double-precision complex number (dependency-free).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

    /// Construct from parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, o: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, o: Complex64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, o: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, o: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b - b, a);
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!((a * b).conj(), a.conj() * b.conj());
        assert_eq!(-a + a, Complex64::ZERO);
    }

    #[test]
    fn cis_on_unit_circle() {
        for k in 0..8 {
            let t = k as f64 * std::f64::consts::FRAC_PI_4;
            assert!((Complex64::cis(t).abs() - 1.0).abs() < 1e-15);
        }
        let i = Complex64::cis(std::f64::consts::FRAC_PI_2);
        assert!((i.re).abs() < 1e-15 && (i.im - 1.0).abs() < 1e-15);
    }

    #[test]
    fn multiplication_matches_polar() {
        let a = Complex64::cis(0.3).scale(2.0);
        let b = Complex64::cis(0.4).scale(3.0);
        let p = a * b;
        assert!((p.abs() - 6.0).abs() < 1e-12);
        let want = Complex64::cis(0.7).scale(6.0);
        assert!((p - want).abs() < 1e-12);
    }
}
