//! Multi-colour Gauss–Seidel — the vectorisable smoother of the optimised
//! HPCG variants.
//!
//! Plain symmetric Gauss–Seidel carries a serial dependency row to row,
//! which is why the reference HPCG achieves so little of peak (the paper's
//! Table III: 1–3%). The vendor-optimised variants recolour the grid so
//! rows of one colour have no couplings to each other and can be relaxed
//! in parallel / with vectors. For the 27-point stencil an 8-colouring by
//! coordinate parity `(x%2, y%2, z%2)` is exact; for general matrices a
//! greedy colouring is provided.

use crate::csr::CsrMatrix;
use densela::block::SYMGS_TILE;
use densela::Work;

const F64B: u64 = 8;
const IDXB: u64 = 4;

/// A colouring of the rows of a matrix: rows of equal colour are mutually
/// independent (no non-zero couples two rows of one colour).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// `color[r]` in `0..num_colors`.
    pub color: Vec<u32>,
    /// Number of colours used.
    pub num_colors: u32,
}

impl Coloring {
    /// The exact 8-colouring of a `nx × ny × nz` grid's 27-point stencil:
    /// colour = parity bits of (x, y, z).
    pub fn stencil8(nx: usize, ny: usize, nz: usize) -> Self {
        let mut color = Vec::with_capacity(nx * ny * nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    color.push(((x % 2) + 2 * (y % 2) + 4 * (z % 2)) as u32);
                }
            }
        }
        Coloring {
            color,
            num_colors: 8,
        }
    }

    /// Greedy first-fit colouring of an arbitrary symmetric sparsity
    /// pattern.
    pub fn greedy(a: &CsrMatrix) -> Self {
        let n = a.rows();
        let mut color = vec![u32::MAX; n];
        let mut max_color = 0u32;
        let mut forbidden: Vec<u32> = Vec::new();
        for r in 0..n {
            forbidden.clear();
            for (c, _) in a.row(r) {
                if c != r && color[c] != u32::MAX {
                    forbidden.push(color[c]);
                }
            }
            let mut pick = 0u32;
            while forbidden.contains(&pick) {
                pick += 1;
            }
            color[r] = pick;
            max_color = max_color.max(pick);
        }
        Coloring {
            color,
            num_colors: max_color + 1,
        }
    }

    /// Validate against a matrix: no two coupled rows share a colour.
    pub fn is_valid_for(&self, a: &CsrMatrix) -> bool {
        for r in 0..a.rows() {
            for (c, v) in a.row(r) {
                if c != r && v != 0.0 && self.color[c] == self.color[r] {
                    return false;
                }
            }
        }
        true
    }

    /// Rows grouped by colour (ascending colour order).
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut g = vec![Vec::new(); self.num_colors as usize];
        for (r, &c) in self.color.iter().enumerate() {
            g[c as usize].push(r);
        }
        g
    }
}

/// One symmetric multi-colour Gauss–Seidel sweep: forward over colours
/// 0..k, backward over k..0. Rows inside a colour are independent, so each
/// colour's loop is embarrassingly parallel — the optimised-HPCG property.
///
/// Reference kernel for [`mc_symgs_sweep_blocked`] — pinned to library
/// codegen so blocked-vs-naive comparisons measure the shipped kernel.
#[inline(never)]
pub fn mc_symgs_sweep(a: &CsrMatrix, coloring: &Coloring, b: &[f64], x: &mut [f64]) -> Work {
    assert_eq!(a.rows(), a.cols());
    assert_eq!(b.len(), a.rows());
    assert_eq!(x.len(), a.rows());
    debug_assert!(coloring.is_valid_for(a), "invalid colouring");
    let groups = coloring.groups();
    let relax = |rows: &[usize], x: &mut [f64]| {
        for &r in rows {
            let d = a.diag(r);
            if d == 0.0 {
                continue;
            }
            let mut acc = b[r];
            for (c, v) in a.row(r) {
                if c != r {
                    acc -= v * x[c];
                }
            }
            x[r] = acc / d;
        }
    };
    for g in &groups {
        relax(g, x);
    }
    for g in groups.iter().rev() {
        relax(g, x);
    }
    mc_symgs_work(a)
}

/// Cache-blocked symmetric multi-colour sweep with caller-chosen tile
/// height; [`mc_symgs_sweep_blocked`] uses the default
/// [`SYMGS_TILE`]. Bit-identical to [`mc_symgs_sweep`] for every tile size
/// (parity tests sweep {1, 3, 8, 16} plus the default).
///
/// Three data-level changes over the naive sweep, none touching the
/// arithmetic:
/// * each row is walked once — the diagonal is captured during the
///   off-diagonal accumulation instead of a separate diag-finding scan
///   before the relax loop;
/// * rows relax through [`CsrMatrix::row_parts`] slices — one bounds check
///   per row, not per non-zero;
/// * each colour's rows are processed in tiles of `tile` rows so the
///   touched band of `a` and `x` stays L2-resident across the tile.
pub fn mc_symgs_sweep_blocked_with(
    a: &CsrMatrix,
    coloring: &Coloring,
    b: &[f64],
    x: &mut [f64],
    tile: usize,
) -> Work {
    assert!(tile > 0, "tile height must be positive");
    assert_eq!(a.rows(), a.cols());
    assert_eq!(b.len(), a.rows());
    assert_eq!(x.len(), a.rows());
    debug_assert!(coloring.is_valid_for(a), "invalid colouring");
    let groups = coloring.groups();
    let relax = |rows: &[usize], x: &mut [f64]| {
        for trows in rows.chunks(tile) {
            for &r in trows {
                // Single pass per row: the diagonal is captured while the
                // off-diagonal terms accumulate (CSR rows carry unique
                // column indices), where the naive sweep walks each row
                // twice — a diag-finding scan, then the relax loop. The
                // off-diagonal accumulation order is identical, so results
                // stay bit-identical.
                let (cols, vals) = a.row_parts(r);
                let mut acc = b[r];
                let mut d = 0.0;
                for (cc, v) in cols.iter().zip(vals) {
                    let c = *cc as usize;
                    if c == r {
                        d = *v;
                    } else {
                        acc -= v * x[c];
                    }
                }
                if d == 0.0 {
                    continue;
                }
                // Division kept (not multiply-by-reciprocal): bit-identity
                // with the naive sweep requires the same operation.
                x[r] = acc / d;
            }
        }
    };
    for g in &groups {
        relax(g, x);
    }
    for g in groups.iter().rev() {
        relax(g, x);
    }
    mc_symgs_work(a)
}

/// Cache-blocked sweep at the default [`SYMGS_TILE`]; bit-identical to
/// [`mc_symgs_sweep`].
pub fn mc_symgs_sweep_blocked(
    a: &CsrMatrix,
    coloring: &Coloring,
    b: &[f64],
    x: &mut [f64],
) -> Work {
    mc_symgs_sweep_blocked_with(a, coloring, b, x, SYMGS_TILE)
}

/// Work of one symmetric multi-colour sweep over `a` (shared by the serial
/// sweep above and the pooled `sparsela::parallel::Team::mc_symgs_sweep`,
/// which performs the identical arithmetic).
pub fn mc_symgs_work(a: &CsrMatrix) -> Work {
    let nnz = a.nnz() as u64;
    let n = a.rows() as u64;
    Work::new(
        4 * nnz + 2 * n,
        2 * (nnz * (F64B + IDXB) + 2 * n * F64B),
        2 * n * F64B,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{poisson7, stencil27, structural3d};
    use crate::symgs::residual_norm;

    #[test]
    fn stencil8_is_valid_for_the_27_point_operator() {
        for dims in [(4usize, 4usize, 4usize), (5, 3, 2), (6, 6, 6)] {
            let a = stencil27(dims.0, dims.1, dims.2);
            let c = Coloring::stencil8(dims.0, dims.1, dims.2);
            assert!(c.is_valid_for(&a), "{dims:?}");
            assert_eq!(c.num_colors, 8);
        }
    }

    #[test]
    fn greedy_coloring_is_valid_on_everything() {
        for a in [poisson7(4, 3, 2), stencil27(4, 4, 4), structural3d(2, 2, 2)] {
            let c = Coloring::greedy(&a);
            assert!(c.is_valid_for(&a));
            assert!(c.num_colors >= 2);
        }
    }

    #[test]
    fn greedy_poisson_uses_two_colors() {
        // The 7-point Laplacian is bipartite (red-black).
        let a = poisson7(4, 4, 4);
        let c = Coloring::greedy(&a);
        assert_eq!(c.num_colors, 2, "red-black suffices for 7-point");
    }

    #[test]
    fn mc_sweep_reduces_residual_like_plain_symgs() {
        let a = stencil27(6, 6, 6);
        let coloring = Coloring::stencil8(6, 6, 6);
        let b = vec![1.0; a.rows()];
        let mut x = vec![0.0; a.rows()];
        let r0 = residual_norm(&a, &b, &x);
        mc_symgs_sweep(&a, &coloring, &b, &mut x);
        let r1 = residual_norm(&a, &b, &x);
        assert!(r1 < r0, "{r1} vs {r0}");
        mc_symgs_sweep(&a, &coloring, &b, &mut x);
        assert!(residual_norm(&a, &b, &x) < r1);
    }

    #[test]
    fn mc_sweep_converges_to_the_solution() {
        let a = stencil27(4, 4, 4);
        let coloring = Coloring::stencil8(4, 4, 4);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| ((i % 6) as f64) - 2.5).collect();
        let mut b = vec![0.0; a.rows()];
        a.spmv(&x_true, &mut b);
        let mut x = vec![0.0; a.rows()];
        for _ in 0..200 {
            mc_symgs_sweep(&a, &coloring, &b, &mut x);
        }
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn blocked_sweep_is_bit_identical_to_naive() {
        for (a, coloring) in [
            (stencil27(6, 5, 4), Coloring::stencil8(6, 5, 4)),
            (poisson7(4, 4, 4), Coloring::greedy(&poisson7(4, 4, 4))),
            (
                structural3d(2, 2, 3),
                Coloring::greedy(&structural3d(2, 2, 3)),
            ),
        ] {
            let b: Vec<f64> = (0..a.rows())
                .map(|i| ((i * 13) % 29) as f64 / 7.0 - 2.0)
                .collect();
            for tile in [1usize, 3, 8, 16, SYMGS_TILE] {
                let mut x_ref: Vec<f64> = (0..a.rows()).map(|i| (i % 5) as f64 * 0.1).collect();
                let mut x_blk = x_ref.clone();
                let w1 = mc_symgs_sweep(&a, &coloring, &b, &mut x_ref);
                let w2 = mc_symgs_sweep_blocked_with(&a, &coloring, &b, &mut x_blk, tile);
                assert_eq!(w1, w2);
                for (u, v) in x_ref.iter().zip(&x_blk) {
                    assert_eq!(u.to_bits(), v.to_bits(), "tile={tile}");
                }
            }
        }
    }

    #[test]
    fn groups_partition_all_rows() {
        let c = Coloring::stencil8(3, 3, 3);
        let total: usize = c.groups().iter().map(|g| g.len()).sum();
        assert_eq!(total, 27);
    }

    #[test]
    fn colors_within_group_are_truly_independent() {
        // No entry of the matrix couples two rows of one colour group, so
        // relaxing a group in any order gives the same result.
        let a = stencil27(4, 4, 4);
        let coloring = Coloring::stencil8(4, 4, 4);
        let b: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.31).cos()).collect();
        let mut x_fwd = vec![0.0; a.rows()];
        mc_symgs_sweep(&a, &coloring, &b, &mut x_fwd);
        // Reverse the row order inside every group and sweep again.
        let mut rev = coloring.clone();
        let _ = &mut rev; // same colouring; order inside mc_symgs_sweep's
                          // groups is ascending — emulate reversal manually:
        let groups: Vec<Vec<usize>> = coloring
            .groups()
            .iter()
            .map(|g| {
                let mut r = g.clone();
                r.reverse();
                r
            })
            .collect();
        let mut x_rev = vec![0.0; a.rows()];
        {
            let relax = |rows: &[usize], x: &mut Vec<f64>| {
                for &r in rows {
                    let d = a.diag(r);
                    let mut acc = b[r];
                    for (c, v) in a.row(r) {
                        if c != r {
                            acc -= v * x[c];
                        }
                    }
                    x[r] = acc / d;
                }
            };
            for g in &groups {
                relax(g, &mut x_rev);
            }
            for g in groups.iter().rev() {
                relax(g, &mut x_rev);
            }
        }
        for (u, v) in x_fwd.iter().zip(&x_rev) {
            assert!(
                (u - v).abs() < 1e-14,
                "order inside a colour must not matter"
            );
        }
    }
}
