//! Symmetric Gauss–Seidel sweeps — HPCG's smoother and preconditioner core.
//!
//! One symmetric sweep is a forward substitution pass followed by a backward
//! pass. Its data dependencies make it hard to vectorise, which is one of
//! the reasons HPCG achieves so little of peak everywhere (1–3% in the
//! paper's Table III); the cost model charges it as the `SymGS` kernel
//! class.

use crate::csr::CsrMatrix;
use densela::Work;

const F64B: u64 = 8;
const IDXB: u64 = 4;

/// One symmetric Gauss–Seidel sweep on `A x = b`, updating `x` in place.
/// Rows with a zero diagonal are skipped (they cannot be relaxed).
pub fn symgs_sweep(a: &CsrMatrix, b: &[f64], x: &mut [f64]) -> Work {
    assert_eq!(a.rows(), a.cols(), "symgs needs a square matrix");
    assert_eq!(b.len(), a.rows());
    assert_eq!(x.len(), a.rows());
    let n = a.rows();
    // Forward sweep.
    for r in 0..n {
        let d = a.diag(r);
        if d == 0.0 {
            continue;
        }
        let mut acc = b[r];
        for (c, v) in a.row(r) {
            if c != r {
                acc -= v * x[c];
            }
        }
        x[r] = acc / d;
    }
    // Backward sweep.
    for r in (0..n).rev() {
        let d = a.diag(r);
        if d == 0.0 {
            continue;
        }
        let mut acc = b[r];
        for (c, v) in a.row(r) {
            if c != r {
                acc -= v * x[c];
            }
        }
        x[r] = acc / d;
    }
    symgs_work(a)
}

/// Closed-form work of one symmetric sweep: both directions touch every
/// non-zero once (2 flops each) plus the vectors.
pub fn symgs_work(a: &CsrMatrix) -> Work {
    let nnz = a.nnz() as u64;
    let n = a.rows() as u64;
    Work::new(
        4 * nnz + 2 * n,
        2 * (nnz * (F64B + IDXB) + 2 * n * F64B),
        2 * n * F64B,
    )
}

/// Residual `b - A x` 2-norm (test helper).
pub fn residual_norm(a: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    let mut ax = vec![0.0; a.rows()];
    a.spmv(x, &mut ax);
    b.iter()
        .zip(&ax)
        .map(|(bi, ai)| (bi - ai) * (bi - ai))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{poisson7, stencil27};

    #[test]
    fn sweep_reduces_residual() {
        let a = stencil27(6, 6, 6);
        let b = vec![1.0; a.rows()];
        let mut x = vec![0.0; a.rows()];
        let r0 = residual_norm(&a, &b, &x);
        symgs_sweep(&a, &b, &mut x);
        let r1 = residual_norm(&a, &b, &x);
        assert!(r1 < r0, "one sweep must reduce the residual: {r1} vs {r0}");
        symgs_sweep(&a, &b, &mut x);
        let r2 = residual_norm(&a, &b, &x);
        assert!(r2 < r1);
    }

    #[test]
    fn repeated_sweeps_converge_on_dominant_system() {
        let a = poisson7(4, 4, 4);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut b = vec![0.0; a.rows()];
        a.spmv(&x_true, &mut b);
        let mut x = vec![0.0; a.rows()];
        for _ in 0..300 {
            symgs_sweep(&a, &b, &mut x);
        }
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn exact_solution_is_fixed_point() {
        let a = poisson7(3, 3, 3);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| i as f64 * 0.1).collect();
        let mut b = vec![0.0; a.rows()];
        a.spmv(&x_true, &mut b);
        let mut x = x_true.clone();
        symgs_sweep(&a, &b, &mut x);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn work_model_is_4_flops_per_nnz() {
        let a = stencil27(4, 4, 4);
        let w = symgs_work(&a);
        assert_eq!(w.flops, 4 * a.nnz() as u64 + 2 * a.rows() as u64);
        // SymGS AI is ~0.16: memory-bound like SpMV but unvectorisable.
        assert!(w.arithmetic_intensity() < 0.25);
    }
}
