//! Compressed sparse row matrices and SpMV.

use densela::Work;
use serde::{Deserialize, Serialize};

const F64B: u64 = 8;
const IDXB: u64 = 4;

/// A square-or-rectangular sparse matrix in CSR format with `u32` column
/// indices (the index width matters: SpMV traffic is 12 bytes/nnz, which is
/// what the roofline model charges).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (wrong lengths, out-of-range or
    /// unsorted column indices).
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length must be rows+1");
        assert_eq!(col_idx.len(), values.len(), "col_idx and values must align");
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "row_ptr must end at nnz"
        );
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        for r in 0..rows {
            assert!(
                row_ptr[r] <= row_ptr[r + 1],
                "row_ptr must be non-decreasing"
            );
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in row.windows(2) {
                assert!(
                    w[0] < w[1],
                    "columns within a row must be strictly increasing"
                );
            }
            if let Some(&last) = row.last() {
                assert!((last as usize) < cols, "column index out of range");
            }
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Build from (row, col, value) triplets; duplicates are summed.
    pub fn from_coo(rows: usize, cols: usize, mut entries: Vec<(usize, usize, f64)>) -> Self {
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            assert!(r < rows && c < cols, "entry ({r},{c}) out of bounds");
            // If the last pushed entry is this same (r, c), accumulate into
            // it; row_ptr[r+1] equals the nnz count only while row r is the
            // one currently being filled.
            if !col_idx.is_empty()
                && row_ptr[r + 1] == col_idx.len()
                && *col_idx.last().unwrap() as usize == c
            {
                *values.last_mut().unwrap() += v;
            } else {
                col_idx.push(c as u32);
                values.push(v);
                row_ptr[r + 1] = col_idx.len();
            }
        }
        // Rows with no entries inherit the previous row's end pointer.
        for r in 0..rows {
            if row_ptr[r + 1] == 0 {
                row_ptr[r + 1] = row_ptr[r];
            }
        }
        CsrMatrix::from_raw(rows, cols, row_ptr, col_idx, values)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate over `(col, value)` of one row.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .map(|&c| c as usize)
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Raw column-index and value slices of one row. The slice form lets
    /// blocked kernels run the inner loop without per-element bounds checks
    /// or iterator adapters (same data the [`CsrMatrix::row`] iterator
    /// yields, in the same order).
    pub fn row_parts(&self, r: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// The diagonal entry of row `r` (0 if absent).
    pub fn diag(&self, r: usize) -> f64 {
        self.row(r)
            .find(|&(c, _)| c == r)
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Sparse matrix–vector product `y = A x`. Returns the work performed:
    /// 2 flops per nnz; traffic of values (8 B) + indices (4 B) per nnz plus
    /// the streamed x and y vectors.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) -> Work {
        assert_eq!(x.len(), self.cols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.rows, "spmv: y length mismatch");
        for r in 0..self.rows {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut acc = 0.0;
            for i in lo..hi {
                acc += self.values[i] * x[self.col_idx[i] as usize];
            }
            y[r] = acc;
        }
        self.spmv_work()
    }

    /// Closed-form SpMV work model (validated against `spmv` in tests).
    pub fn spmv_work(&self) -> Work {
        let nnz = self.nnz() as u64;
        let rows = self.rows as u64;
        let cols = self.cols as u64;
        Work::new(
            2 * nnz,
            nnz * (F64B + IDXB) + cols * F64B + rows * F64B,
            rows * F64B,
        )
    }

    /// Frobenius norm of the matrix.
    pub fn fro_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Whether the sparsity pattern and values are numerically symmetric
    /// (only sensible for square matrices; O(nnz log nnz)).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        use std::collections::HashMap;
        let mut map: HashMap<(usize, usize), f64> = HashMap::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                map.insert((r, c), v);
            }
        }
        for (&(r, c), &v) in &map {
            let vt = map.get(&(c, r)).copied().unwrap_or(0.0);
            if (v - vt).abs() > tol {
                return false;
            }
        }
        true
    }

    /// Memory footprint of the CSR structure in bytes (values + indices +
    /// row pointers), used by the apps' per-rank memory models.
    pub fn memory_bytes(&self) -> u64 {
        self.nnz() as u64 * (F64B + IDXB) + (self.rows as u64 + 1) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [[2, 0, 1], [0, 3, 0], [1, 0, 4]]
        CsrMatrix::from_coo(
            3,
            3,
            vec![
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, 1.0),
                (2, 2, 4.0),
            ],
        )
    }

    #[test]
    fn spmv_matches_manual() {
        let a = small();
        let mut y = vec![0.0; 3];
        a.spmv(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![5.0, 6.0, 13.0]);
    }

    #[test]
    fn coo_duplicates_sum() {
        let a = CsrMatrix::from_coo(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 1.0)]);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.diag(0), 3.0);
    }

    #[test]
    fn empty_rows_are_legal() {
        let a = CsrMatrix::from_coo(3, 3, vec![(0, 0, 1.0), (2, 2, 1.0)]);
        assert_eq!(a.nnz(), 2);
        let mut y = vec![9.0; 3];
        a.spmv(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn symmetry_check() {
        assert!(small().is_symmetric(1e-12));
        let asym = CsrMatrix::from_coo(2, 2, vec![(0, 1, 1.0), (1, 1, 1.0)]);
        assert!(!asym.is_symmetric(1e-12));
    }

    #[test]
    fn work_counts_nnz() {
        let a = small();
        let mut y = vec![0.0; 3];
        let w = a.spmv(&[1.0; 3], &mut y);
        assert_eq!(w.flops, 2 * 5);
        assert_eq!(w, a.spmv_work());
        // SpMV AI is ~0.16 flops/byte: firmly memory-bound on every system.
        assert!(w.arithmetic_intensity() < 0.25);
    }

    #[test]
    fn memory_footprint() {
        let a = small();
        assert_eq!(a.memory_bytes(), 5 * 12 + 4 * 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_entry_panics() {
        let _ = CsrMatrix::from_coo(2, 2, vec![(0, 5, 1.0)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
        (2usize..20).prop_flat_map(|n| {
            proptest::collection::vec((0..n, 0..n, -5.0f64..5.0), 1..n * 3)
                .prop_map(move |entries| CsrMatrix::from_coo(n, n, entries))
        })
    }

    proptest! {
        #[test]
        fn spmv_is_linear(a in arb_matrix(), alpha in -3.0f64..3.0) {
            let n = a.cols();
            let x: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.0).collect();
            let xs: Vec<f64> = x.iter().map(|v| alpha * v).collect();
            let mut y1 = vec![0.0; a.rows()];
            let mut y2 = vec![0.0; a.rows()];
            a.spmv(&x, &mut y1);
            a.spmv(&xs, &mut y2);
            for (u, v) in y1.iter().zip(&y2) {
                prop_assert!((v - alpha * u).abs() < 1e-9 * (1.0 + u.abs()));
            }
        }

        #[test]
        fn coo_round_trip_preserves_row_sums(a in arb_matrix()) {
            // Rebuild via COO triplets and compare SpMV against ones.
            let n = a.cols();
            let mut triplets = Vec::new();
            for r in 0..a.rows() {
                for (c, v) in a.row(r) {
                    triplets.push((r, c, v));
                }
            }
            let b = CsrMatrix::from_coo(a.rows(), n, triplets);
            let ones = vec![1.0; n];
            let mut ya = vec![0.0; a.rows()];
            let mut yb = vec![0.0; a.rows()];
            a.spmv(&ones, &mut ya);
            b.spmv(&ones, &mut yb);
            prop_assert_eq!(ya, yb);
        }
    }
}
