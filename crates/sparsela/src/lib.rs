//! # sparsela — sparse linear algebra substrate
//!
//! Real, executing sparse kernels for the paper's solver-shaped benchmarks:
//!
//! * [`csr`] — compressed sparse row matrices and SpMV (the dominant kernel
//!   of HPCG and minikab).
//! * [`gen`] — matrix generators: the HPCG 27-point stencil operator, a
//!   synthetic block-banded structural-FEM matrix with the shape of
//!   minikab's proprietary `Benchmark1` (9,573,984 DoF / 696,096,138 nnz at
//!   full scale), and simple Poisson operators for tests.
//! * [`symgs`] — symmetric Gauss–Seidel sweeps (HPCG's smoother).
//! * [`ell`] — SELL-C-σ / ELLPACK storage with vector-friendly SpMV, and
//! * [`coloring`] — multi-colour Gauss–Seidel: together, the actual kernel
//!   rewrites behind the paper's vendor-optimised HPCG variants.
//! * [`cg`] — conjugate gradient and preconditioned CG with work accounting
//!   and per-iteration callbacks.
//! * [`mg`] — the HPCG-style geometric multigrid V-cycle preconditioner
//!   (coarsening by 2 in each dimension, SymGS smoothing).
//! * [`parallel`] — shared-memory thread-team kernels on the persistent
//!   [`densela::pool::KernelPool`]: the OpenMP half of the paper's
//!   MPI+OpenMP configurations, including parallel multicolour SymGS,
//!   slice-parallel SELL-C-σ SpMV, and fused CG kernels.
//! * [`partition`] — domain decomposition: 3-D block partitions with halo
//!   accounting (HPCG, OpenSBLI) and 1-D row partitions (minikab).

#![warn(missing_docs)]
// Kernels index several arrays with one loop counter; iterator rewrites
// obscure the stride arithmetic the Work models are written against.
#![allow(clippy::needless_range_loop)]

pub mod cg;
pub mod coloring;
pub mod csr;
pub mod ell;
pub mod gen;
pub mod mg;
pub mod parallel;
pub mod partition;
pub mod symgs;

pub use cg::{cg_solve, pcg_solve, CgResult};
pub use csr::CsrMatrix;
pub use densela::pool::{KernelPool, SharedSlice};
pub use parallel::{SpawnTeam, Team};
pub use partition::{Block3d, Partition3d, RowPartition};
