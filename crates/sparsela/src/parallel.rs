//! Shared-memory parallel kernels (the "OpenMP" half of the paper's
//! MPI+OpenMP configurations), built on `crossbeam` scoped threads.
//!
//! The paper's hybrid minikab runs give each MPI rank a team of threads
//! that cooperate on the rank's rows. These kernels are that team: a row
//! partition per thread, no locks on the hot path (each thread owns a
//! disjoint output slice), and a final reduction for dot products.

use crate::csr::CsrMatrix;
use crate::partition::RowPartition;
use densela::Work;

/// A thread team for shared-memory kernels.
#[derive(Debug, Clone, Copy)]
pub struct Team {
    threads: usize,
}

impl Team {
    /// A team of `threads` workers (1 = serial fallback).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a team needs at least one thread");
        Team { threads }
    }

    /// Workers in the team.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Parallel SpMV `y = A x`: rows are block-partitioned over the team;
    /// every thread writes only its own slice of `y`.
    pub fn spmv(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> Work {
        assert_eq!(x.len(), a.cols(), "spmv: x length mismatch");
        assert_eq!(y.len(), a.rows(), "spmv: y length mismatch");
        if self.threads == 1 || a.rows() < 2 * self.threads {
            return a.spmv(x, y);
        }
        let part = RowPartition::new(a.rows(), self.threads);
        // Split y into disjoint per-thread slices.
        let mut slices: Vec<&mut [f64]> = Vec::with_capacity(self.threads);
        let mut rest = y;
        for t in 0..self.threads {
            let (lo, hi) = part.range(t);
            let (head, tail) = rest.split_at_mut(hi - lo);
            slices.push(head);
            rest = tail;
        }
        crossbeam::thread::scope(|scope| {
            for (t, slice) in slices.into_iter().enumerate() {
                let (lo, _hi) = part.range(t);
                scope.spawn(move |_| {
                    for (i, out) in slice.iter_mut().enumerate() {
                        let r = lo + i;
                        let mut acc = 0.0;
                        for (c, v) in a.row(r) {
                            acc += v * x[c];
                        }
                        *out = acc;
                    }
                });
            }
        })
        .expect("spmv worker panicked");
        a.spmv_work()
    }

    /// Parallel dot product with a per-thread partial reduction.
    pub fn dot(&self, x: &[f64], y: &[f64]) -> (f64, Work) {
        assert_eq!(x.len(), y.len(), "dot: length mismatch");
        if self.threads == 1 || x.len() < 2 * self.threads {
            return densela::vecops::dot(x, y);
        }
        let part = RowPartition::new(x.len(), self.threads);
        let mut partials = vec![0.0f64; self.threads];
        crossbeam::thread::scope(|scope| {
            for (t, p) in partials.iter_mut().enumerate() {
                let (lo, hi) = part.range(t);
                scope.spawn(move |_| {
                    let mut acc = 0.0;
                    for i in lo..hi {
                        acc += x[i] * y[i];
                    }
                    *p = acc;
                });
            }
        })
        .expect("dot worker panicked");
        let n = x.len() as u64;
        (partials.iter().sum(), Work::new(2 * n, 16 * n, 0))
    }

    /// Parallel AXPY `y += alpha x`.
    pub fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) -> Work {
        assert_eq!(x.len(), y.len(), "axpy: length mismatch");
        if self.threads == 1 || x.len() < 2 * self.threads {
            return densela::vecops::axpy(alpha, x, y);
        }
        let part = RowPartition::new(x.len(), self.threads);
        let mut slices: Vec<&mut [f64]> = Vec::with_capacity(self.threads);
        let mut rest = y;
        for t in 0..self.threads {
            let (lo, hi) = part.range(t);
            let (head, tail) = rest.split_at_mut(hi - lo);
            slices.push(head);
            rest = tail;
        }
        crossbeam::thread::scope(|scope| {
            for (t, slice) in slices.into_iter().enumerate() {
                let (lo, _) = part.range(t);
                scope.spawn(move |_| {
                    for (i, out) in slice.iter_mut().enumerate() {
                        *out += alpha * x[lo + i];
                    }
                });
            }
        })
        .expect("axpy worker panicked");
        let n = x.len() as u64;
        Work::new(2 * n, 16 * n, 8 * n)
    }

    /// Parallel CG on an SPD matrix; identical mathematics to
    /// [`crate::cg::cg_solve`] but with team-parallel kernels. Returns
    /// (iterations, relative residual, work).
    pub fn cg_solve(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        max_iter: usize,
        rtol: f64,
    ) -> (usize, f64, Work) {
        let n = b.len();
        assert_eq!(x.len(), n);
        let mut work = Work::ZERO;
        let (bnorm_sq, w) = self.dot(b, b);
        work += w;
        let bnorm = bnorm_sq.sqrt();
        if bnorm == 0.0 {
            x.fill(0.0);
            return (0, 0.0, work);
        }
        let mut r = vec![0.0; n];
        work += self.spmv(a, x, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let mut p = r.clone();
        let (mut rr, w) = self.dot(&r, &r);
        work += w;
        let mut ap = vec![0.0; n];
        let mut iters = 0;
        let mut rel = (rr.sqrt()) / bnorm;
        while iters < max_iter && rel > rtol {
            iters += 1;
            work += self.spmv(a, &p, &mut ap);
            let (pap, w) = self.dot(&p, &ap);
            work += w;
            if pap <= 0.0 {
                break;
            }
            let alpha = rr / pap;
            work += self.axpy(alpha, &p, x);
            work += self.axpy(-alpha, &ap, &mut r);
            let (rr_new, w) = self.dot(&r, &r);
            work += w;
            let beta = rr_new / rr;
            rr = rr_new;
            rel = rr.sqrt() / bnorm;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            work += Work::new(2 * n as u64, 16 * n as u64, 8 * n as u64);
        }
        (iters, rel, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{poisson7, stencil27, structural3d};

    #[test]
    fn parallel_spmv_matches_serial() {
        let a = stencil27(10, 9, 8);
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut y_serial = vec![0.0; a.rows()];
        a.spmv(&x, &mut y_serial);
        for threads in [2usize, 3, 4, 7] {
            let team = Team::new(threads);
            let mut y_par = vec![0.0; a.rows()];
            team.spmv(&a, &x, &mut y_par);
            assert_eq!(y_serial, y_par, "{threads} threads");
        }
    }

    #[test]
    fn parallel_dot_matches_serial_to_roundoff() {
        let x: Vec<f64> = (0..10_001).map(|i| (i as f64 * 0.01).cos()).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 1.5 - 0.25).collect();
        let (serial, _) = densela::vecops::dot(&x, &y);
        for threads in [2usize, 5, 8] {
            let (par, _) = Team::new(threads).dot(&x, &y);
            assert!((par - serial).abs() < 1e-9 * (1.0 + serial.abs()), "{threads} threads");
        }
    }

    #[test]
    fn parallel_axpy_matches_serial() {
        let x: Vec<f64> = (0..5_000).map(|i| i as f64).collect();
        let mut y1: Vec<f64> = x.iter().map(|v| -v).collect();
        let mut y2 = y1.clone();
        densela::vecops::axpy(0.5, &x, &mut y1);
        Team::new(4).axpy(0.5, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn parallel_cg_converges_like_serial() {
        let a = poisson7(6, 6, 6);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| ((i % 9) as f64) - 4.0).collect();
        let mut b = vec![0.0; a.rows()];
        a.spmv(&x_true, &mut b);
        for threads in [1usize, 4] {
            let mut x = vec![0.0; a.rows()];
            let (iters, rel, work) = Team::new(threads).cg_solve(&a, &b, &mut x, 400, 1e-10);
            assert!(rel <= 1e-10, "{threads} threads: rel {rel} after {iters} iters");
            assert!(work.flops > 0);
            for (got, want) in x.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn parallel_cg_on_structural_matrix() {
        // The minikab shape: structural matrix, hybrid rank = a Team.
        let a = structural3d(3, 3, 3);
        let b: Vec<f64> = (0..a.rows()).map(|i| ((i * 3) % 7) as f64 - 3.0).collect();
        let mut x = vec![0.0; a.rows()];
        let (_, rel, _) = Team::new(4).cg_solve(&a, &b, &mut x, 600, 1e-9);
        assert!(rel <= 1e-9, "rel {rel}");
    }

    #[test]
    fn tiny_inputs_fall_back_to_serial() {
        let a = poisson7(2, 1, 1);
        let x = vec![1.0, 2.0];
        let mut y = vec![0.0; 2];
        Team::new(8).spmv(&a, &x, &mut y);
        let mut y2 = vec![0.0; 2];
        a.spmv(&x, &mut y2);
        assert_eq!(y, y2);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = Team::new(0);
    }
}
