//! Shared-memory parallel kernels (the "OpenMP" half of the paper's
//! MPI+OpenMP configurations), built on the persistent
//! [`KernelPool`](densela::pool::KernelPool).
//!
//! The paper's hybrid minikab runs give each MPI rank a team of threads
//! that cooperate on the rank's rows. [`Team`] is that team: its pool is
//! spawned once (like an OpenMP thread team pinned for the lifetime of the
//! rank), every kernel is one generation-counted dispatch, each lane owns a
//! disjoint output range, and reductions combine per-lane partials *in lane
//! order* on the calling thread — deterministic for a fixed thread count.
//!
//! On top of the plain kernels the team carries the three rewrites the
//! optimised-HPCG story needs (paper Table III): multicolour symmetric
//! Gauss–Seidel fanned colour-by-colour across the pool, slice-parallel
//! SELL-C-σ SpMV, and fused CG kernels ([`Team::spmv_dot`],
//! [`Team::axpy_dot`], [`Team::xpby`]) that cut a full vector re-read per
//! CG iteration each.
//!
//! [`SpawnTeam`] preserves the old spawn-a-scope-per-call implementation so
//! the benchmarks can quantify exactly what amortising the spawn overhead
//! buys; it is not used by any solver.

use crate::cg::residual_sub_work;
use crate::coloring::{self, Coloring};
use crate::csr::CsrMatrix;
use crate::ell::SellMatrix;
use crate::partition::RowPartition;
use densela::pool::{KernelPool, SharedSlice};
use densela::Work;
use std::sync::Arc;

const F64B: u64 = 8;

/// Default serial cutover, in kernel inner-loop operations (vector
/// elements for the streaming kernels, stored nonzeros for the SpMV
/// family). Below this a pool dispatch costs more than it buys: the
/// `BENCH_kernels.json` small-kernel rows (48³ dot/axpy, the 16³ CG)
/// ran 0.81–0.83x *slower* pooled than serial before the cutover, and
/// the crossover sits near 2.5e5 ops on the benched host. Kernels at or
/// above the cutover keep the pooled path and its amortised-spawn win.
pub const DEFAULT_SERIAL_CUTOVER_OPS: usize = 262_144;

/// A persistent thread team for shared-memory kernels.
///
/// Cloning is cheap and shares the same pool (ranks hand the team to
/// helpers without respawning threads). `threads == 1` is the serial
/// fallback: no OS threads exist and every kernel runs inline. Kernels
/// smaller than the team's serial cutover (see
/// [`DEFAULT_SERIAL_CUTOVER_OPS`]) also run inline — identical results,
/// no dispatch overhead.
#[derive(Debug, Clone)]
pub struct Team {
    pool: Arc<KernelPool>,
    serial_cutover_ops: usize,
}

impl Team {
    /// A team of `threads` workers (1 = serial fallback) with the default
    /// small-kernel serial cutover. Spawns the worker threads immediately;
    /// they live until the last clone drops.
    pub fn new(threads: usize) -> Self {
        Self::with_serial_cutover(threads, DEFAULT_SERIAL_CUTOVER_OPS)
    }

    /// A team with an explicit serial cutover in kernel ops; `0` disables
    /// the cutover so every large-enough-to-partition kernel takes the
    /// pooled path (what the parity suite and pool-behaviour tests use to
    /// exercise the dispatch machinery on small fixtures).
    pub fn with_serial_cutover(threads: usize, serial_cutover_ops: usize) -> Self {
        assert!(threads >= 1, "a team needs at least one thread");
        Team {
            pool: Arc::new(KernelPool::new(threads)),
            serial_cutover_ops,
        }
    }

    /// A team sized to the machine (`available_parallelism`).
    pub fn with_available_parallelism() -> Self {
        Self::new(densela::pool::available_parallelism())
    }

    /// Workers in the team.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The team's serial cutover, in kernel ops (0 = disabled).
    pub fn serial_cutover_ops(&self) -> usize {
        self.serial_cutover_ops
    }

    /// The underlying pool (for callers composing their own jobs).
    pub fn pool(&self) -> &KernelPool {
        &self.pool
    }

    /// Whether a kernel of `ops` inner-loop operations should run
    /// serially: one thread, too little work to partition, or below the
    /// team's serial cutover.
    fn serial(&self, ops: usize) -> bool {
        self.threads() == 1 || ops < 2 * self.threads() || ops < self.serial_cutover_ops
    }

    /// Whether a vector kernel over `n` elements takes the pooled parallel
    /// path (as opposed to the inline serial fallback — one thread, too few
    /// elements, or below the serial cutover). A test seam: parity suites
    /// size their inputs (or disable the cutover) so this holds, then check
    /// the pool's dispatch counter actually advanced.
    pub fn would_parallelize(&self, n: usize) -> bool {
        !self.serial(n)
    }

    /// Row partition for a pooled kernel over `n` rows, reporting each
    /// lane's share to the ambient recorder — the per-dispatch imbalance
    /// histogram, in rows (the team's simulated work unit).
    fn partition(&self, n: usize) -> RowPartition {
        let part = RowPartition::new(n, self.threads());
        if obs::enabled() {
            for lane in 0..self.threads() {
                obs::observe("pool.lane_rows", part.count(lane) as f64);
            }
        }
        part
    }

    /// Chunk-aligned lane partition for the elementwise streaming kernels:
    /// interior boundaries land on [`densela::block::CHUNK`] multiples, so
    /// every lane's fixed-width inner loop sees whole chunks and the only
    /// scalar tail is the global one at `n`. Elementwise outputs depend on
    /// one index each, so shifting a boundary never changes a bit. Lanes
    /// past the returned ranges (possible when `n` has fewer chunks than
    /// lanes) simply idle. Reports lane shares like [`Team::partition`].
    fn aligned_partition(&self, n: usize) -> Vec<(usize, usize)> {
        let ranges = densela::block::aligned_ranges(n, self.threads(), densela::block::CHUNK);
        if obs::enabled() {
            for lane in 0..self.threads() {
                let rows = ranges.get(lane).map(|&(lo, hi)| hi - lo).unwrap_or(0);
                obs::observe("pool.lane_rows", rows as f64);
            }
        }
        ranges
    }

    /// Parallel SpMV `y = A x`: rows are block-partitioned over the team;
    /// every lane writes only its own range of `y`. Row results are
    /// bit-identical to [`CsrMatrix::spmv`].
    pub fn spmv(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> Work {
        assert_eq!(x.len(), a.cols(), "spmv: x length mismatch");
        assert_eq!(y.len(), a.rows(), "spmv: y length mismatch");
        if self.serial(a.nnz()) {
            return a.spmv(x, y);
        }
        let part = self.partition(a.rows());
        let out = SharedSlice::new(y);
        self.pool.run(|lane| {
            let (lo, hi) = part.range(lane);
            // SAFETY: lanes own disjoint row ranges of `y`.
            let ys = unsafe { out.range_mut(lo, hi) };
            for (i, yr) in ys.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (c, v) in a.row(lo + i) {
                    acc += v * x[c];
                }
                *yr = acc;
            }
        });
        a.spmv_work()
    }

    /// Fused SpMV + dot: `y = A p`, returning `p · y` as well. Saves the
    /// separate reduction pass over both vectors (the `p·Ap` step of CG).
    /// The extra work over a plain SpMV is 2n flops and no extra traffic —
    /// `p[r]` and `y[r]` are already in registers when the row finishes.
    pub fn spmv_dot(&self, a: &CsrMatrix, p: &[f64], y: &mut [f64]) -> (f64, Work) {
        assert_eq!(p.len(), a.cols(), "spmv_dot: p length mismatch");
        assert_eq!(y.len(), a.rows(), "spmv_dot: y length mismatch");
        assert_eq!(a.rows(), a.cols(), "spmv_dot needs a square matrix");
        let n = a.rows();
        let extra = Work::new(2 * n as u64, 0, 0);
        if self.serial(a.nnz()) {
            let w = a.spmv(p, y);
            let mut acc = 0.0;
            for r in 0..n {
                acc += p[r] * y[r];
            }
            return (acc, w + extra);
        }
        let t = self.threads();
        let part = self.partition(n);
        let mut partials = vec![0.0f64; t];
        let parts = SharedSlice::new(&mut partials);
        let out = SharedSlice::new(y);
        self.pool.run(|lane| {
            let (lo, hi) = part.range(lane);
            // SAFETY: lanes own disjoint row ranges of `y` and lane-private
            // partial slots.
            let ys = unsafe { out.range_mut(lo, hi) };
            let mut dot = 0.0;
            for (i, yr) in ys.iter_mut().enumerate() {
                let r = lo + i;
                let mut acc = 0.0;
                for (c, v) in a.row(r) {
                    acc += v * p[c];
                }
                *yr = acc;
                dot += p[r] * acc;
            }
            unsafe { parts.set(lane, dot) };
        });
        (partials.iter().sum(), a.spmv_work() + extra)
    }

    /// Parallel dot product. Per-lane partials are combined in lane order
    /// on the calling thread, so the result is deterministic for a fixed
    /// thread count (and equals the serial sum up to reassociation).
    pub fn dot(&self, x: &[f64], y: &[f64]) -> (f64, Work) {
        assert_eq!(x.len(), y.len(), "dot: length mismatch");
        if self.serial(x.len()) {
            return densela::vecops::dot(x, y);
        }
        let t = self.threads();
        let part = self.partition(x.len());
        let mut partials = vec![0.0f64; t];
        let parts = SharedSlice::new(&mut partials);
        self.pool.run(|lane| {
            let (lo, hi) = part.range(lane);
            let mut acc = 0.0;
            for i in lo..hi {
                acc += x[i] * y[i];
            }
            // SAFETY: lane-private slot.
            unsafe { parts.set(lane, acc) };
        });
        let n = x.len() as u64;
        (partials.iter().sum(), Work::new(2 * n, 16 * n, 0))
    }

    /// Parallel squared 2-norm (one-operand dot, streamed once).
    pub fn norm2_sq(&self, x: &[f64]) -> (f64, Work) {
        if self.serial(x.len()) {
            return densela::vecops::norm2_sq(x);
        }
        let t = self.threads();
        let part = self.partition(x.len());
        let mut partials = vec![0.0f64; t];
        let parts = SharedSlice::new(&mut partials);
        self.pool.run(|lane| {
            let (lo, hi) = part.range(lane);
            let mut acc = 0.0;
            for i in lo..hi {
                acc += x[i] * x[i];
            }
            // SAFETY: lane-private slot.
            unsafe { parts.set(lane, acc) };
        });
        let n = x.len() as u64;
        (partials.iter().sum(), Work::new(2 * n, 8 * n, 0))
    }

    /// Parallel AXPY `y += alpha x`. Bit-identical to the serial kernel.
    /// Lane ranges are chunk-aligned and each lane runs the fixed-width
    /// chunked kernel, so only the global tail falls back to scalar code.
    pub fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) -> Work {
        assert_eq!(x.len(), y.len(), "axpy: length mismatch");
        if self.serial(x.len()) {
            return densela::vecops::axpy_chunked(alpha, x, y);
        }
        let ranges = self.aligned_partition(x.len());
        let out = SharedSlice::new(y);
        self.pool.run(|lane| {
            let Some(&(lo, hi)) = ranges.get(lane) else {
                return;
            };
            // SAFETY: lanes own disjoint ranges of `y`.
            let ys = unsafe { out.range_mut(lo, hi) };
            densela::vecops::axpy_chunked(alpha, &x[lo..hi], ys);
        });
        let n = x.len() as u64;
        Work::new(2 * n, 16 * n, 8 * n)
    }

    /// Fused AXPY + squared norm: `y += alpha x`, returning `y · y` of the
    /// updated vector (the `r -= alpha Ap; rr = r·r` step of CG in one
    /// pass). Saves re-reading `y` for the reduction: 4n flops on 16n read
    /// + 8n written, versus 24n read for the unfused pair.
    pub fn axpy_dot(&self, alpha: f64, x: &[f64], y: &mut [f64]) -> (f64, Work) {
        assert_eq!(x.len(), y.len(), "axpy_dot: length mismatch");
        let n = x.len() as u64;
        let work = Work::new(4 * n, 16 * n, 8 * n);
        if self.serial(x.len()) {
            let mut acc = 0.0;
            for (a, b) in x.iter().zip(y.iter_mut()) {
                *b += alpha * a;
                acc += *b * *b;
            }
            return (acc, work);
        }
        let t = self.threads();
        let part = self.partition(x.len());
        let mut partials = vec![0.0f64; t];
        let parts = SharedSlice::new(&mut partials);
        let out = SharedSlice::new(y);
        self.pool.run(|lane| {
            let (lo, hi) = part.range(lane);
            // SAFETY: disjoint ranges of `y`; lane-private partial slots.
            let ys = unsafe { out.range_mut(lo, hi) };
            let mut acc = 0.0;
            for (i, yv) in ys.iter_mut().enumerate() {
                *yv += alpha * x[lo + i];
                acc += *yv * *yv;
            }
            unsafe { parts.set(lane, acc) };
        });
        (partials.iter().sum(), work)
    }

    /// Parallel `p = r + beta p` (the CG search-direction update).
    /// Chunk-aligned lane ranges + the fixed-width chunked kernel per
    /// lane, like [`Team::axpy`]; bit-identical to the scalar loop.
    pub fn xpby(&self, r: &[f64], beta: f64, p: &mut [f64]) -> Work {
        assert_eq!(r.len(), p.len(), "xpby: length mismatch");
        if self.serial(r.len()) {
            return densela::vecops::xpby_chunked(r, beta, p);
        }
        let ranges = self.aligned_partition(r.len());
        let out = SharedSlice::new(p);
        self.pool.run(|lane| {
            let Some(&(lo, hi)) = ranges.get(lane) else {
                return;
            };
            // SAFETY: lanes own disjoint ranges of `p`.
            let ps = unsafe { out.range_mut(lo, hi) };
            densela::vecops::xpby_chunked(&r[lo..hi], beta, ps);
        });
        let n = r.len() as u64;
        Work::new(2 * n, 16 * n, 8 * n)
    }

    /// Parallel multicolour symmetric Gauss–Seidel sweep: each colour
    /// group's rows are mutually independent, so one group is one pool
    /// dispatch; the forward-then-backward colour order of the serial
    /// [`coloring::mc_symgs_sweep`] is preserved and the result is
    /// bit-identical to it (row results depend only on rows of *other*
    /// colours, which no lane is writing).
    pub fn mc_symgs_sweep(
        &self,
        a: &CsrMatrix,
        coloring: &Coloring,
        b: &[f64],
        x: &mut [f64],
    ) -> Work {
        assert_eq!(a.rows(), a.cols());
        assert_eq!(b.len(), a.rows());
        assert_eq!(x.len(), a.rows());
        if self.threads() == 1 {
            // The cache-blocked serial sweep is bit-identical to the naive
            // one and faster (diagonal gathered once, slice row access).
            return coloring::mc_symgs_sweep_blocked(a, coloring, b, x);
        }
        debug_assert!(coloring.is_valid_for(a), "invalid colouring");
        let t = self.threads();
        let groups = coloring.groups();
        // Gather the diagonal once per sweep instead of re-scanning every
        // row's entries in both directions (same value, so bit-identity
        // with the serial sweep is preserved).
        let diag: Vec<f64> = (0..a.rows()).map(|r| a.diag(r)).collect();
        let xs = SharedSlice::new(x);
        // SAFETY (both closures): within one colour group, each row is
        // written by exactly one lane, and off-diagonal reads only touch
        // rows of other colours — which nothing writes during this group.
        let relax_row = |r: usize| {
            let d = diag[r];
            if d == 0.0 {
                return;
            }
            let mut acc = b[r];
            let (cols, vals) = a.row_parts(r);
            for (cc, v) in cols.iter().zip(vals) {
                let c = *cc as usize;
                if c != r {
                    acc -= v * unsafe { xs.get(c) };
                }
            }
            unsafe { xs.set(r, acc / d) };
        };
        // Gate each colour group on its share of the matrix's nonzeros —
        // a group's relaxation cost scales with nnz, not row count.
        let nnz_per_row = a.nnz() / a.rows().max(1);
        let relax_group = |rows: &[usize]| {
            if rows.len() < 2 * t || self.serial(rows.len().saturating_mul(nnz_per_row.max(1))) {
                for &r in rows {
                    relax_row(r);
                }
            } else {
                let part = self.partition(rows.len());
                self.pool.run(|lane| {
                    let (lo, hi) = part.range(lane);
                    for &r in &rows[lo..hi] {
                        relax_row(r);
                    }
                });
            }
        };
        for g in &groups {
            relax_group(g);
        }
        for g in groups.iter().rev() {
            relax_group(g);
        }
        coloring::mc_symgs_work(a)
    }

    /// Slice-parallel SELL-C-σ SpMV: slices (groups of C rows) are
    /// block-partitioned over the team at slice granularity. Each slice
    /// writes a disjoint set of output rows (through the σ-permutation),
    /// and per-row arithmetic is identical to [`SellMatrix::spmv`], so the
    /// result is bit-identical.
    ///
    /// The serial cutover gates on *slice row-ops* — [`SellMatrix::stored`]
    /// counts padded entries too, which cost vector-unit work just like
    /// real non-zeros — and both the serial fallback and the pooled lanes
    /// run the unrolled chunked kernel
    /// ([`SellMatrix::spmv_slices_chunked`]), so SELL never pays the
    /// dispatch machinery for work the padding already made cheap.
    pub fn sell_spmv(&self, m: &SellMatrix, x: &[f64], y: &mut [f64]) -> Work {
        assert_eq!(x.len(), m.cols(), "sell_spmv: x length mismatch");
        assert_eq!(y.len(), m.rows(), "sell_spmv: y length mismatch");
        let ns = m.num_slices();
        if self.serial(m.stored()) || ns < self.threads() {
            return m.spmv_chunked(x, y);
        }
        let part = self.partition(ns);
        let out = SharedSlice::new(y);
        self.pool.run(|lane| {
            let (lo, hi) = part.range(lane);
            // SAFETY: slices own disjoint row sets; `spmv_slices_chunked`
            // writes only rows of slices `lo..hi`.
            unsafe { m.spmv_slices_chunked(lo, hi, x, &out) };
        });
        m.spmv_work()
    }

    /// Parallel CG on an SPD matrix; identical mathematics to
    /// [`crate::cg::cg_solve`] but running on the persistent pool with the
    /// fused kernels (one SpMV+dot, one AXPY, one AXPY+norm and one
    /// search-direction update per iteration — threads are spawned once for
    /// the whole solve, not per kernel call). Returns (iterations, relative
    /// residual, work).
    ///
    /// Work accounting: the prologue is counted exactly like the serial
    /// solver (including the `r = b - A x` subtraction pass the old team
    /// solver forgot); per-iteration work is counted for the *fused*
    /// kernels, which genuinely move fewer bytes than the serial sequence.
    pub fn cg_solve(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        max_iter: usize,
        rtol: f64,
    ) -> (usize, f64, Work) {
        let n = b.len();
        assert_eq!(x.len(), n);
        let mut work = Work::ZERO;
        let (bnorm_sq, w) = self.norm2_sq(b);
        work += w;
        let bnorm = bnorm_sq.sqrt();
        if bnorm == 0.0 {
            x.fill(0.0);
            return (0, 0.0, work);
        }
        let mut r = vec![0.0; n];
        work += self.spmv(a, x, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        work += residual_sub_work(n);
        let p_vec = r.clone();
        work += Work::new(0, n as u64 * F64B, n as u64 * F64B); // the p = r copy
        let mut p = p_vec;
        let (mut rr, w) = self.dot(&r, &r);
        work += w;
        let mut ap = vec![0.0; n];
        let mut iters = 0;
        let mut rel = rr.sqrt() / bnorm;
        while iters < max_iter && rel > rtol {
            iters += 1;
            let (pap, w) = self.spmv_dot(a, &p, &mut ap);
            work += w;
            if pap <= 0.0 {
                break;
            }
            let alpha = rr / pap;
            work += self.axpy(alpha, &p, x);
            let (rr_new, w) = self.axpy_dot(-alpha, &ap, &mut r);
            work += w;
            let beta = rr_new / rr;
            rr = rr_new;
            rel = rr.sqrt() / bnorm;
            work += self.xpby(&r, beta, &mut p);
        }
        (iters, rel, work)
    }
}

/// The pre-pool implementation: a fresh scoped thread team on **every**
/// kernel call, exactly what `Team` used to do (with `std::thread::scope`
/// in place of the removed crossbeam dependency). Kept so the benchmarks
/// can measure what the persistent pool amortises away — a CG solve on a
/// `SpawnTeam` pays 4 spawn/join cycles per iteration. Not used by any
/// solver or app.
#[derive(Debug, Clone, Copy)]
pub struct SpawnTeam {
    threads: usize,
}

impl SpawnTeam {
    /// A spawn-per-call team of `threads` workers.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a team needs at least one thread");
        SpawnTeam { threads }
    }

    /// Workers in the team.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// SpMV with a thread scope spawned for this one call.
    pub fn spmv(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> Work {
        assert_eq!(x.len(), a.cols(), "spmv: x length mismatch");
        assert_eq!(y.len(), a.rows(), "spmv: y length mismatch");
        if self.threads == 1 || a.rows() < 2 * self.threads {
            return a.spmv(x, y);
        }
        let part = RowPartition::new(a.rows(), self.threads);
        let mut slices: Vec<&mut [f64]> = Vec::with_capacity(self.threads);
        let mut rest = y;
        for t in 0..self.threads {
            let (lo, hi) = part.range(t);
            let (head, tail) = rest.split_at_mut(hi - lo);
            slices.push(head);
            rest = tail;
        }
        std::thread::scope(|scope| {
            for (t, slice) in slices.into_iter().enumerate() {
                let (lo, _hi) = part.range(t);
                scope.spawn(move || {
                    for (i, out) in slice.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for (c, v) in a.row(lo + i) {
                            acc += v * x[c];
                        }
                        *out = acc;
                    }
                });
            }
        });
        a.spmv_work()
    }

    /// Dot product with a thread scope spawned for this one call.
    pub fn dot(&self, x: &[f64], y: &[f64]) -> (f64, Work) {
        assert_eq!(x.len(), y.len(), "dot: length mismatch");
        if self.threads == 1 || x.len() < 2 * self.threads {
            return densela::vecops::dot(x, y);
        }
        let part = RowPartition::new(x.len(), self.threads);
        let mut partials = vec![0.0f64; self.threads];
        std::thread::scope(|scope| {
            for (t, p) in partials.iter_mut().enumerate() {
                let (lo, hi) = part.range(t);
                scope.spawn(move || {
                    let mut acc = 0.0;
                    for i in lo..hi {
                        acc += x[i] * y[i];
                    }
                    *p = acc;
                });
            }
        });
        let n = x.len() as u64;
        (partials.iter().sum(), Work::new(2 * n, 16 * n, 0))
    }

    /// AXPY with a thread scope spawned for this one call.
    pub fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) -> Work {
        assert_eq!(x.len(), y.len(), "axpy: length mismatch");
        if self.threads == 1 || x.len() < 2 * self.threads {
            return densela::vecops::axpy(alpha, x, y);
        }
        let part = RowPartition::new(x.len(), self.threads);
        let mut slices: Vec<&mut [f64]> = Vec::with_capacity(self.threads);
        let mut rest = y;
        for t in 0..self.threads {
            let (lo, hi) = part.range(t);
            let (head, tail) = rest.split_at_mut(hi - lo);
            slices.push(head);
            rest = tail;
        }
        std::thread::scope(|scope| {
            for (t, slice) in slices.into_iter().enumerate() {
                let (lo, _) = part.range(t);
                scope.spawn(move || {
                    for (i, out) in slice.iter_mut().enumerate() {
                        *out += alpha * x[lo + i];
                    }
                });
            }
        });
        let n = x.len() as u64;
        Work::new(2 * n, 16 * n, 8 * n)
    }

    /// The old team CG: unfused kernels, a thread scope per kernel call —
    /// 4 spawn/join cycles per iteration. Benchmark baseline only.
    pub fn cg_solve(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        max_iter: usize,
        rtol: f64,
    ) -> (usize, f64, Work) {
        let n = b.len();
        assert_eq!(x.len(), n);
        let mut work = Work::ZERO;
        let (bnorm_sq, w) = self.dot(b, b);
        work += w;
        let bnorm = bnorm_sq.sqrt();
        if bnorm == 0.0 {
            x.fill(0.0);
            return (0, 0.0, work);
        }
        let mut r = vec![0.0; n];
        work += self.spmv(a, x, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        work += residual_sub_work(n);
        let mut p = r.clone();
        let (mut rr, w) = self.dot(&r, &r);
        work += w;
        let mut ap = vec![0.0; n];
        let mut iters = 0;
        let mut rel = rr.sqrt() / bnorm;
        while iters < max_iter && rel > rtol {
            iters += 1;
            work += self.spmv(a, &p, &mut ap);
            let (pap, w) = self.dot(&p, &ap);
            work += w;
            if pap <= 0.0 {
                break;
            }
            let alpha = rr / pap;
            work += self.axpy(alpha, &p, x);
            work += self.axpy(-alpha, &ap, &mut r);
            let (rr_new, w) = self.dot(&r, &r);
            work += w;
            let beta = rr_new / rr;
            rr = rr_new;
            rel = rr.sqrt() / bnorm;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            work += Work::new(2 * n as u64, 16 * n as u64, 8 * n as u64);
        }
        (iters, rel, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{poisson7, stencil27, structural3d};

    /// A team with the serial cutover disabled: these tests exercise the
    /// pool dispatch machinery on fixtures far below the default cutover.
    fn pooled(threads: usize) -> Team {
        Team::with_serial_cutover(threads, 0)
    }

    #[test]
    fn parallel_spmv_matches_serial() {
        let a = stencil27(10, 9, 8);
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut y_serial = vec![0.0; a.rows()];
        a.spmv(&x, &mut y_serial);
        for threads in [2usize, 3, 4, 7] {
            let team = pooled(threads);
            let mut y_par = vec![0.0; a.rows()];
            team.spmv(&a, &x, &mut y_par);
            assert_eq!(y_serial, y_par, "{threads} threads");
        }
    }

    #[test]
    fn pooled_kernels_record_lane_imbalance_histogram() {
        let rec = std::sync::Arc::new(obs::MemRecorder::new());
        obs::with_recorder(rec.clone(), || {
            // 10 rows over 4 lanes: 3/3/2/2.
            let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
            pooled(4).dot(&x, &x);
        });
        let h = rec.histogram("pool.lane_rows").unwrap();
        assert_eq!(h.count, 4, "one observation per lane");
        assert_eq!(h.sum, 10.0, "lane shares cover every row");
        assert_eq!(rec.counter("pool.dispatches"), Some(1));
    }

    #[test]
    fn parallel_dot_matches_serial_to_roundoff() {
        let x: Vec<f64> = (0..10_001).map(|i| (i as f64 * 0.01).cos()).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 1.5 - 0.25).collect();
        let (serial, _) = densela::vecops::dot(&x, &y);
        for threads in [2usize, 5, 8] {
            let (par, _) = pooled(threads).dot(&x, &y);
            assert!(
                (par - serial).abs() < 1e-9 * (1.0 + serial.abs()),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn parallel_axpy_matches_serial() {
        let x: Vec<f64> = (0..5_000).map(|i| i as f64).collect();
        let mut y1: Vec<f64> = x.iter().map(|v| -v).collect();
        let mut y2 = y1.clone();
        densela::vecops::axpy(0.5, &x, &mut y1);
        pooled(4).axpy(0.5, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn one_team_runs_many_kernels_without_respawning() {
        // The point of the pool: a long kernel sequence on one team. This
        // also exercises dispatch-after-dispatch reuse of the job slot.
        let team = pooled(4);
        let a = stencil27(8, 8, 8);
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.05).sin()).collect();
        let mut y = vec![0.0; a.rows()];
        let mut acc = vec![0.0; a.rows()];
        for _ in 0..50 {
            team.spmv(&a, &x, &mut y);
            team.axpy(0.01, &y, &mut acc);
            let (d, _) = team.dot(&acc, &y);
            assert!(d.is_finite());
        }
    }

    #[test]
    fn fused_axpy_dot_matches_unfused() {
        let x: Vec<f64> = (0..4_001).map(|i| (i as f64 * 0.13).sin()).collect();
        let y0: Vec<f64> = x.iter().map(|v| 0.7 - v).collect();
        for threads in [1usize, 4] {
            let team = pooled(threads);
            let mut y_fused = y0.clone();
            let (rr_fused, _) = team.axpy_dot(-0.3, &x, &mut y_fused);
            let mut y_ref = y0.clone();
            densela::vecops::axpy(-0.3, &x, &mut y_ref);
            assert_eq!(
                y_ref, y_fused,
                "{threads} threads: updated vector must be bit-equal"
            );
            let (rr_ref, _) = team.norm2_sq(&y_ref);
            assert_eq!(rr_ref.to_bits(), rr_fused.to_bits(), "{threads} threads");
        }
    }

    #[test]
    fn fused_spmv_dot_matches_unfused() {
        let a = stencil27(7, 6, 5);
        let p: Vec<f64> = (0..a.cols())
            .map(|i| ((i * 13) % 17) as f64 - 8.0)
            .collect();
        for threads in [1usize, 4] {
            let team = pooled(threads);
            let mut ap_fused = vec![0.0; a.rows()];
            let (pap_fused, _) = team.spmv_dot(&a, &p, &mut ap_fused);
            let mut ap_ref = vec![0.0; a.rows()];
            a.spmv(&p, &mut ap_ref);
            assert_eq!(ap_ref, ap_fused, "{threads} threads");
            let (pap_ref, _) = team.dot(&p, &ap_ref);
            assert!(
                (pap_ref - pap_fused).abs() <= 1e-9 * (1.0 + pap_ref.abs()),
                "{threads} threads: {pap_ref} vs {pap_fused}"
            );
        }
    }

    #[test]
    fn pooled_mc_symgs_is_bit_identical_to_serial() {
        let a = stencil27(6, 6, 6);
        let coloring = Coloring::stencil8(6, 6, 6);
        let b: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.31).cos()).collect();
        let mut x_serial = vec![0.0; a.rows()];
        let mut w_serial = Work::ZERO;
        for _ in 0..3 {
            w_serial += coloring::mc_symgs_sweep(&a, &coloring, &b, &mut x_serial);
        }
        for threads in [2usize, 4, 7] {
            let team = pooled(threads);
            let mut x_par = vec![0.0; a.rows()];
            let mut w_par = Work::ZERO;
            for _ in 0..3 {
                w_par += team.mc_symgs_sweep(&a, &coloring, &b, &mut x_par);
            }
            assert_eq!(x_serial, x_par, "{threads} threads");
            assert_eq!(w_serial, w_par, "{threads} threads: work models must agree");
        }
    }

    #[test]
    fn pooled_sell_spmv_is_bit_identical_to_serial() {
        for (a, c, sigma) in [
            (stencil27(8, 7, 6), 8, 32),
            (poisson7(6, 6, 6), 4, 16),
            (structural3d(3, 3, 3), 8, 8),
        ] {
            let sell = SellMatrix::from_csr(&a, c, sigma);
            let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.21).sin()).collect();
            let mut y_serial = vec![0.0; a.rows()];
            sell.spmv(&x, &mut y_serial);
            for threads in [2usize, 3, 5] {
                let team = pooled(threads);
                let mut y_par = vec![0.0; a.rows()];
                let w = team.sell_spmv(&sell, &x, &mut y_par);
                assert_eq!(y_serial, y_par, "{threads} threads (c={c}, sigma={sigma})");
                assert_eq!(w, sell.spmv_work());
            }
        }
    }

    #[test]
    fn parallel_cg_converges_like_serial() {
        let a = poisson7(6, 6, 6);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| ((i % 9) as f64) - 4.0).collect();
        let mut b = vec![0.0; a.rows()];
        a.spmv(&x_true, &mut b);
        for threads in [1usize, 4] {
            let mut x = vec![0.0; a.rows()];
            let (iters, rel, work) = pooled(threads).cg_solve(&a, &b, &mut x, 400, 1e-10);
            assert!(
                rel <= 1e-10,
                "{threads} threads: rel {rel} after {iters} iters"
            );
            assert!(work.flops > 0);
            for (got, want) in x.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn parallel_cg_on_structural_matrix() {
        // The minikab shape: structural matrix, hybrid rank = a Team.
        let a = structural3d(3, 3, 3);
        let b: Vec<f64> = (0..a.rows()).map(|i| ((i * 3) % 7) as f64 - 3.0).collect();
        let mut x = vec![0.0; a.rows()];
        let (_, rel, _) = pooled(4).cg_solve(&a, &b, &mut x, 600, 1e-9);
        assert!(rel <= 1e-9, "rel {rel}");
    }

    #[test]
    fn pooled_cg_is_deterministic_across_runs() {
        // In-order partial reductions: two runs on the same team width
        // produce bit-identical iterates.
        let a = structural3d(3, 3, 3);
        let b: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.37).sin()).collect();
        let solve = || {
            let mut x = vec![0.0; a.rows()];
            let (iters, rel, work) = pooled(4).cg_solve(&a, &b, &mut x, 200, 1e-10);
            (x, iters, rel, work)
        };
        let (x1, i1, rel1, w1) = solve();
        let (x2, i2, rel2, w2) = solve();
        assert_eq!(i1, i2);
        assert_eq!(rel1.to_bits(), rel2.to_bits());
        assert_eq!(w1, w2);
        for (u, v) in x1.iter().zip(&x2) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn spawn_team_still_matches_serial_mathematics() {
        // The legacy baseline must stay correct to be a fair benchmark.
        let a = poisson7(5, 5, 5);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut b = vec![0.0; a.rows()];
        a.spmv(&x_true, &mut b);
        let mut x = vec![0.0; a.rows()];
        let (_, rel, _) = SpawnTeam::new(4).cg_solve(&a, &b, &mut x, 400, 1e-10);
        assert!(rel <= 1e-10, "rel {rel}");
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn tiny_inputs_fall_back_to_serial() {
        let a = poisson7(2, 1, 1);
        let x = vec![1.0, 2.0];
        let mut y = vec![0.0; 2];
        Team::new(8).spmv(&a, &x, &mut y);
        let mut y2 = vec![0.0; 2];
        a.spmv(&x, &mut y2);
        assert_eq!(y, y2);
    }

    #[test]
    fn default_cutover_serialises_small_kernels_without_changing_results() {
        // The BENCH_kernels regression fix: a 48³-sized dot (1.1e5 elements,
        // below the 2.6e5-op cutover) must not pay a pool dispatch on a
        // default team, while a cutover-disabled team still dispatches.
        let n = 110_592;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let default_team = Team::new(4);
        assert_eq!(
            default_team.serial_cutover_ops(),
            DEFAULT_SERIAL_CUTOVER_OPS
        );
        assert!(!default_team.would_parallelize(n));
        let before = default_team.pool().dispatches();
        let (d_serial, _) = default_team.dot(&x, &x);
        assert_eq!(default_team.pool().dispatches(), before, "no dispatch");
        let bench_team = pooled(4);
        assert!(bench_team.would_parallelize(n));
        let before = bench_team.pool().dispatches();
        let (d_pooled, _) = bench_team.dot(&x, &x);
        assert_eq!(bench_team.pool().dispatches(), before + 1);
        // Lane-ordered reduction vs serial: equal to roundoff.
        assert!((d_serial - d_pooled).abs() <= 1e-9 * (1.0 + d_serial.abs()));
        // Above the cutover the default team parallelises again.
        assert!(default_team.would_parallelize(DEFAULT_SERIAL_CUTOVER_OPS));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = Team::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::gen::poisson7;
    use proptest::prelude::*;

    fn pooled(threads: usize) -> Team {
        Team::with_serial_cutover(threads, 0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn pooled_spmv_bit_identical_across_sizes_and_widths(
            nx in 1usize..7, ny in 1usize..7, nz in 1usize..7,
            threads in 1usize..7,
            seed in 0u64..1000,
        ) {
            let a = poisson7(nx, ny, nz);
            let x: Vec<f64> = (0..a.cols())
                .map(|i| ((i as u64).wrapping_mul(seed + 1) % 1000) as f64 * 0.001 - 0.5)
                .collect();
            let mut y_serial = vec![0.0; a.rows()];
            a.spmv(&x, &mut y_serial);
            let mut y_par = vec![0.0; a.rows()];
            pooled(threads).spmv(&a, &x, &mut y_par);
            prop_assert_eq!(y_serial, y_par);
        }

        #[test]
        fn pooled_axpy_bit_identical(
            n in 1usize..3000,
            threads in 1usize..7,
            alpha in -4.0f64..4.0,
        ) {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
            let mut y1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).cos()).collect();
            let mut y2 = y1.clone();
            densela::vecops::axpy(alpha, &x, &mut y1);
            pooled(threads).axpy(alpha, &x, &mut y2);
            prop_assert_eq!(y1, y2);
        }

        #[test]
        fn pooled_dot_deterministic_and_close_to_serial(
            n in 1usize..4000,
            threads in 1usize..7,
        ) {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).sin()).collect();
            let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.029).cos()).collect();
            let team = pooled(threads);
            let (d1, _) = team.dot(&x, &y);
            let (d2, _) = team.dot(&x, &y);
            // Deterministic: identical dispatches give identical bits.
            prop_assert_eq!(d1.to_bits(), d2.to_bits());
            let (serial, _) = densela::vecops::dot(&x, &y);
            prop_assert!((d1 - serial).abs() <= 1e-10 * (1.0 + serial.abs()),
                "{} vs {}", d1, serial);
        }

        #[test]
        fn pooled_mc_symgs_bit_identical(
            nx in 2usize..6, ny in 2usize..6, nz in 2usize..6,
            threads in 1usize..7,
        ) {
            let a = poisson7(nx, ny, nz);
            let coloring = Coloring::greedy(&a);
            let b: Vec<f64> = (0..a.rows()).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
            let mut x_serial = vec![0.0; a.rows()];
            coloring::mc_symgs_sweep(&a, &coloring, &b, &mut x_serial);
            let mut x_par = vec![0.0; a.rows()];
            pooled(threads).mc_symgs_sweep(&a, &coloring, &b, &mut x_par);
            prop_assert_eq!(x_serial, x_par);
        }

        #[test]
        fn pooled_sell_spmv_bit_identical(
            nx in 1usize..6, ny in 1usize..6, nz in 1usize..6,
            threads in 1usize..7,
            c_pick in 0usize..3,
        ) {
            let a = poisson7(nx, ny, nz);
            let c = [1usize, 4, 8][c_pick];
            let sell = SellMatrix::from_csr(&a, c, c * 4);
            let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.3).sin()).collect();
            let mut y_serial = vec![0.0; a.rows()];
            sell.spmv(&x, &mut y_serial);
            let mut y_par = vec![0.0; a.rows()];
            pooled(threads).sell_spmv(&sell, &x, &mut y_par);
            prop_assert_eq!(y_serial, y_par);
        }
    }
}
