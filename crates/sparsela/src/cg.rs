//! Conjugate gradient solvers with work accounting.
//!
//! Plain CG is minikab's default solver; preconditioned CG with a multigrid
//! V-cycle is HPCG; CG with a diagonal preconditioner and a matrix-free
//! operator is Nekbone. All three reuse this module (Nekbone through the
//! [`cg_matfree`] entry point).

use crate::csr::CsrMatrix;
use densela::vecops;
use densela::Work;

/// Work of the elementwise subtraction pass that finishes forming the
/// initial residual `r = b - A x` (one flop per row; reads `b` and the
/// freshly computed `A x`, writes `r`). The SpMV itself is accounted
/// separately by the operator. Shared by every CG front end — serial,
/// matrix-free, and the pooled `sparsela::parallel::Team::cg_solve` — so
/// their prologue accounting cannot drift apart.
pub fn residual_sub_work(n: usize) -> Work {
    Work::new(n as u64, 2 * n as u64 * 8, n as u64 * 8)
}

/// Outcome of a CG solve.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual norm ‖r‖/‖b‖.
    pub rel_residual: f64,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
    /// Total numerical work performed (flops/bytes).
    pub work: Work,
    /// Residual-norm history, one entry per iteration (‖r_k‖).
    pub history: Vec<f64>,
}

/// Plain conjugate gradient on `A x = b` starting from `x` (usually zeros).
pub fn cg_solve(a: &CsrMatrix, b: &[f64], x: &mut [f64], max_iter: usize, rtol: f64) -> CgResult {
    cg_matfree(
        |p, out| a.spmv(p, out),
        b,
        x,
        max_iter,
        rtol,
        None::<fn(&[f64], &mut [f64]) -> Work>,
    )
}

/// Preconditioned CG: `precond(r, z)` must apply `z ≈ M⁻¹ r` and report its
/// work (HPCG passes the multigrid V-cycle here).
pub fn pcg_solve(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    max_iter: usize,
    rtol: f64,
    precond: impl FnMut(&[f64], &mut [f64]) -> Work,
) -> CgResult {
    cg_matfree(|p, out| a.spmv(p, out), b, x, max_iter, rtol, Some(precond))
}

/// Matrix-free (P)CG: `apply_a(p, out)` computes `out = A p` and reports its
/// work. This is the Nekbone structure, where `A` is applied element by
/// element and never assembled.
pub fn cg_matfree(
    mut apply_a: impl FnMut(&[f64], &mut [f64]) -> Work,
    b: &[f64],
    x: &mut [f64],
    max_iter: usize,
    rtol: f64,
    mut precond: Option<impl FnMut(&[f64], &mut [f64]) -> Work>,
) -> CgResult {
    let n = b.len();
    assert_eq!(x.len(), n, "x/b length mismatch");
    let mut work = Work::ZERO;
    let mut history = Vec::new();

    let (bnorm_sq, w) = vecops::norm2_sq(b);
    work += w;
    let bnorm = bnorm_sq.sqrt();
    if bnorm == 0.0 {
        x.fill(0.0);
        return CgResult {
            iterations: 0,
            rel_residual: 0.0,
            converged: true,
            work,
            history,
        };
    }

    // r = b - A x
    let mut r = vec![0.0; n];
    work += apply_a(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    work += residual_sub_work(n);

    fn apply_m<M: FnMut(&[f64], &mut [f64]) -> Work>(
        r: &[f64],
        z: &mut [f64],
        precond: &mut Option<M>,
    ) -> Work {
        match precond {
            Some(m) => m(r, z),
            None => vecops::copy(r, z),
        }
    }
    let mut z = vec![0.0; n];
    work += apply_m(&r, &mut z, &mut precond);

    let mut p = z.clone();
    let (mut rz, w) = vecops::dot(&r, &z);
    work += w;
    let mut ap = vec![0.0; n];
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..max_iter {
        iterations += 1;
        work += apply_a(&p, &mut ap);
        let (pap, w) = vecops::dot(&p, &ap);
        work += w;
        if pap <= 0.0 {
            // Operator is not SPD along p (or breakdown): stop honestly.
            break;
        }
        let alpha = rz / pap;
        work += vecops::axpy(alpha, &p, x);
        work += vecops::axpy(-alpha, &ap, &mut r);
        let (rnorm_sq, w) = vecops::norm2_sq(&r);
        work += w;
        let rnorm = rnorm_sq.sqrt();
        history.push(rnorm);
        if rnorm <= rtol * bnorm {
            converged = true;
            break;
        }
        work += apply_m(&r, &mut z, &mut precond);
        let (rz_new, w) = vecops::dot(&r, &z);
        work += w;
        let beta = rz_new / rz;
        rz = rz_new;
        // p = z + beta p
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        work += Work::new(2 * n as u64, 2 * n as u64 * 8, n as u64 * 8);
    }

    let rel = history.last().copied().unwrap_or(0.0) / bnorm;
    CgResult {
        iterations,
        rel_residual: rel,
        converged,
        work,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{poisson7, stencil27, structural3d};
    use crate::symgs::{residual_norm, symgs_sweep};

    #[test]
    fn cg_solves_poisson_exactly_within_n_iterations() {
        let a = poisson7(4, 4, 4);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let mut b = vec![0.0; a.rows()];
        a.spmv(&x_true, &mut b);
        let mut x = vec![0.0; a.rows()];
        let res = cg_solve(&a, &b, &mut x, a.rows(), 1e-12);
        assert!(res.converged, "CG must converge on SPD: {res:?}");
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn cg_converges_on_hpcg_operator() {
        let a = stencil27(8, 8, 8);
        let b = vec![1.0; a.rows()];
        let mut x = vec![0.0; a.rows()];
        let res = cg_solve(&a, &b, &mut x, 200, 1e-9);
        assert!(res.converged);
        assert!(residual_norm(&a, &b, &x) < 1e-6);
    }

    #[test]
    fn cg_converges_on_structural_matrix() {
        let a = structural3d(3, 3, 3);
        let b: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut x = vec![0.0; a.rows()];
        let res = cg_solve(&a, &b, &mut x, 500, 1e-10);
        assert!(
            res.converged,
            "structural CG: {} iters, rel {}",
            res.iterations, res.rel_residual
        );
    }

    #[test]
    fn symgs_preconditioner_cuts_iterations() {
        let a = stencil27(8, 8, 8);
        let b = vec![1.0; a.rows()];
        let mut x_plain = vec![0.0; a.rows()];
        let plain = cg_solve(&a, &b, &mut x_plain, 500, 1e-9);
        let mut x_pre = vec![0.0; a.rows()];
        let pre = pcg_solve(&a, &b, &mut x_pre, 500, 1e-9, |r, z| {
            z.fill(0.0);
            symgs_sweep(&a, r, z)
        });
        assert!(pre.converged && plain.converged);
        assert!(
            pre.iterations < plain.iterations,
            "SymGS-PCG ({}) should beat CG ({})",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn residual_history_is_recorded() {
        let a = poisson7(3, 3, 3);
        let b = vec![1.0; a.rows()];
        let mut x = vec![0.0; a.rows()];
        let res = cg_solve(&a, &b, &mut x, 100, 1e-10);
        assert_eq!(res.history.len(), res.iterations);
        assert!(res.history.last().unwrap() < res.history.first().unwrap());
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let a = poisson7(3, 3, 3);
        let b = vec![0.0; a.rows()];
        let mut x = vec![5.0; a.rows()];
        let res = cg_solve(&a, &b, &mut x, 10, 1e-10);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn work_accumulates_spmv_per_iteration() {
        let a = stencil27(5, 5, 5);
        let b = vec![1.0; a.rows()];
        let mut x = vec![0.0; a.rows()];
        let res = cg_solve(&a, &b, &mut x, 30, 1e-9);
        // At least iterations x spmv flops.
        let spmv_flops = a.spmv_work().flops;
        assert!(res.work.flops >= res.iterations as u64 * spmv_flops);
    }

    #[test]
    fn non_spd_operator_stops_without_panicking() {
        // -I is symmetric negative definite: p^T A p < 0 on iteration 1.
        let a = CsrMatrix::from_coo(4, 4, (0..4).map(|i| (i, i, -1.0)).collect());
        let b = vec![1.0; 4];
        let mut x = vec![0.0; 4];
        let res = cg_solve(&a, &b, &mut x, 10, 1e-10);
        assert!(!res.converged);
        assert_eq!(res.iterations, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::gen::poisson7;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn cg_residuals_eventually_decrease(
            nx in 2usize..5, ny in 2usize..5, nz in 2usize..5,
            seed in 0u64..100,
        ) {
            let a = poisson7(nx, ny, nz);
            let b: Vec<f64> = (0..a.rows())
                .map(|i| (((i as u64 + seed) * 2654435761) % 19) as f64 - 9.0)
                .collect();
            if b.iter().all(|&v| v == 0.0) {
                return Ok(());
            }
            let mut x = vec![0.0; a.rows()];
            let res = cg_solve(&a, &b, &mut x, a.rows() * 2, 1e-10);
            prop_assert!(res.converged);
            // Final residual below the first (CG is not monotone in the
            // 2-norm per step, but must end lower).
            if res.history.len() >= 2 {
                prop_assert!(res.history.last().unwrap() <= res.history.first().unwrap());
            }
        }
    }
}
