//! Sparse matrix generators for the paper's workloads.
//!
//! * [`stencil27`] — the HPCG operator: a 27-point stencil on an
//!   nx×ny×nz grid, diagonal 26, off-diagonals −1 (symmetric positive
//!   definite). The paper runs HPCG with a local grid of 80×80×80 per
//!   process (`--nx=80 --ny=80 --nz=80`).
//! * [`poisson7`] — a 7-point Laplacian, used as a lighter test operator.
//! * [`structural3d`] — a synthetic substitute for minikab's proprietary
//!   `Benchmark1` structural matrix: nodes on a 3-D grid, 3 degrees of
//!   freedom per node, 27-node coupling, SPD by diagonal dominance. At
//!   the paper's scale (`benchmark1_shape`) the real matrix has 9,573,984
//!   DoF and 696,096,138 non-zeros (≈72.7 nnz/row); our generator's density
//!   (≈81 nnz/row interior) matches it closely, and CG on either is
//!   bandwidth-bound in exactly the same way.

use crate::csr::CsrMatrix;

/// DoF count and non-zero count of minikab's `Benchmark1` matrix, from the
/// paper (§VI.A): a large structural problem.
pub const BENCHMARK1_DOF: u64 = 9_573_984;
/// Non-zeros of `Benchmark1`.
pub const BENCHMARK1_NNZ: u64 = 696_096_138;

/// HPCG's 27-point stencil operator on an `nx × ny × nz` grid: row diagonal
/// 26.0, all existing neighbours −1.0. SPD and weakly diagonally dominant,
/// exactly as the reference HPCG `GenerateProblem`.
pub fn stencil27(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    assert!(nx > 0 && ny > 0 && nz > 0);
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx: Vec<u32> = Vec::with_capacity(n * 27);
    let mut values: Vec<f64> = Vec::with_capacity(n * 27);
    row_ptr.push(0);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let me = idx(x, y, z);
                for dz in -1i64..=1 {
                    let zz = z as i64 + dz;
                    if zz < 0 || zz >= nz as i64 {
                        continue;
                    }
                    for dy in -1i64..=1 {
                        let yy = y as i64 + dy;
                        if yy < 0 || yy >= ny as i64 {
                            continue;
                        }
                        for dx in -1i64..=1 {
                            let xx = x as i64 + dx;
                            if xx < 0 || xx >= nx as i64 {
                                continue;
                            }
                            let j = idx(xx as usize, yy as usize, zz as usize);
                            col_idx.push(j as u32);
                            values.push(if j == me { 26.0 } else { -1.0 });
                        }
                    }
                }
                row_ptr.push(col_idx.len());
            }
        }
    }
    CsrMatrix::from_raw(n, n, row_ptr, col_idx, values)
}

/// A 7-point Laplacian (diagonal 6, face neighbours −1) on an
/// `nx × ny × nz` grid.
pub fn poisson7(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut entries = Vec::with_capacity(n * 7);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let me = idx(x, y, z);
                entries.push((me, me, 6.0));
                let mut nb = |cond: bool, j: usize| {
                    if cond {
                        entries.push((me, j, -1.0));
                    }
                };
                nb(x > 0, me.wrapping_sub(1));
                nb(x + 1 < nx, me + 1);
                nb(y > 0, me.wrapping_sub(nx));
                nb(y + 1 < ny, me + nx);
                nb(z > 0, me.wrapping_sub(nx * ny));
                nb(z + 1 < nz, me + nx * ny);
            }
        }
    }
    CsrMatrix::from_coo(n, n, entries)
}

/// Synthetic structural-FEM matrix with the `Benchmark1` shape: nodes on an
/// `nx × ny × nz` grid, `DOF_PER_NODE = 3` displacement components per node,
/// full 3×3 coupling blocks to each of the 27 neighbouring nodes. Entries
/// are deterministic pseudo-random but symmetric, and the diagonal is lifted
/// to make the matrix strictly diagonally dominant (hence SPD).
pub fn structural3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    const DOF: usize = 3;
    let nodes = nx * ny * nz;
    let n = nodes * DOF;
    let node_idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    // Deterministic symmetric coupling weight for an (node a, node b) pair.
    let coupling = |a: usize, b: usize, da: usize, db: usize| -> f64 {
        let (lo, hi) = if (a, da) <= (b, db) {
            ((a, da), (b, db))
        } else {
            ((b, db), (a, da))
        };
        let h = (lo.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(hi.0 as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add((lo.1 * 3 + hi.1) as u64 + 1);
        let r = ((h >> 11) % 1000) as f64 / 1000.0; // [0, 1)
        -(0.2 + 0.8 * r) // negative off-diagonal couplings
    };
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let a = node_idx(x, y, z);
                for dz in -1i64..=1 {
                    let zz = z as i64 + dz;
                    if zz < 0 || zz >= nz as i64 {
                        continue;
                    }
                    for dy in -1i64..=1 {
                        let yy = y as i64 + dy;
                        if yy < 0 || yy >= ny as i64 {
                            continue;
                        }
                        for dx in -1i64..=1 {
                            let xx = x as i64 + dx;
                            if xx < 0 || xx >= nx as i64 {
                                continue;
                            }
                            let b = node_idx(xx as usize, yy as usize, zz as usize);
                            for da in 0..DOF {
                                for db in 0..DOF {
                                    if a == b && da == db {
                                        continue; // diagonal handled below
                                    }
                                    entries.push((
                                        a * DOF + da,
                                        b * DOF + db,
                                        coupling(a, b, da, db),
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    // Strict diagonal dominance: diag = 1 + sum |off-diagonals in row|.
    let mut rowsum = vec![0.0f64; n];
    for &(r, _, v) in &entries {
        rowsum[r] += v.abs();
    }
    for (r, s) in rowsum.iter().enumerate() {
        entries.push((r, r, 1.0 + s));
    }
    CsrMatrix::from_coo(n, n, entries)
}

/// Average non-zeros per row of the `structural3d` family at large scale
/// (interior nodes: 27 neighbour nodes × 3 DoF couplings per DoF = 81).
pub fn structural3d_nnz_per_row_interior() -> f64 {
    81.0
}

/// A grid shape whose `structural3d` matrix approximates `Benchmark1`'s DoF
/// count: 147×147×147 nodes × 3 DoF = 9,529,569 ≈ 9,573,984.
pub fn benchmark1_equivalent_grid() -> (usize, usize, usize) {
    (147, 147, 147)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil27_interior_row_has_27_entries() {
        let a = stencil27(5, 5, 5);
        assert_eq!(a.rows(), 125);
        // Centre point (2,2,2) = index 62.
        let nnz_row: usize = a.row(62).count();
        assert_eq!(nnz_row, 27);
        assert_eq!(a.diag(62), 26.0);
        // Corner has 8 entries.
        assert_eq!(a.row(0).count(), 8);
    }

    #[test]
    fn stencil27_is_symmetric_and_weakly_dominant() {
        let a = stencil27(4, 3, 2);
        assert!(a.is_symmetric(1e-15));
        for r in 0..a.rows() {
            let off: f64 = a
                .row(r)
                .filter(|&(c, _)| c != r)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.diag(r) >= off, "row {r} not diagonally dominant");
        }
    }

    #[test]
    fn stencil27_row_sums_are_nonnegative() {
        // Interior row sum is 26 - 26 = 0; boundary rows are positive.
        let a = stencil27(3, 3, 3);
        for r in 0..a.rows() {
            let s: f64 = a.row(r).map(|(_, v)| v).sum();
            assert!(s >= -1e-12);
        }
    }

    #[test]
    fn poisson7_matches_expectations() {
        let a = poisson7(3, 3, 3);
        assert_eq!(a.rows(), 27);
        assert!(a.is_symmetric(1e-15));
        assert_eq!(a.row(13).count(), 7); // centre
        assert_eq!(a.diag(13), 6.0);
    }

    #[test]
    fn structural3d_is_spd_shaped() {
        let a = structural3d(3, 3, 3);
        assert_eq!(a.rows(), 81);
        assert!(a.is_symmetric(1e-12), "structural matrix must be symmetric");
        for r in 0..a.rows() {
            let off: f64 = a
                .row(r)
                .filter(|&(c, _)| c != r)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.diag(r) > off, "row {r} must be strictly dominant");
        }
    }

    #[test]
    fn structural3d_interior_density_matches_benchmark1() {
        let a = structural3d(5, 5, 5);
        // Interior node (2,2,2): 27 nodes x 3 dof = 81 per row.
        let node = (2 * 5 + 2) * 5 + 2;
        assert_eq!(a.row(node * 3).count(), 81);
        // Paper's Benchmark1 averages 72.7 nnz/row (boundary nodes bring the
        // interior 81 down); same order.
        let avg = BENCHMARK1_NNZ as f64 / BENCHMARK1_DOF as f64;
        assert!((avg - 72.71).abs() < 0.1);
    }

    #[test]
    fn benchmark1_grid_dof_close_to_paper() {
        let (x, y, z) = benchmark1_equivalent_grid();
        let dof = (x * y * z * 3) as f64;
        let rel = (dof - BENCHMARK1_DOF as f64).abs() / BENCHMARK1_DOF as f64;
        assert!(rel < 0.01, "grid within 1% of Benchmark1 DoF: {rel}");
    }
}
