//! The HPCG geometric multigrid V-cycle preconditioner.
//!
//! HPCG coarsens the 27-point stencil grid by a factor of two in each
//! dimension for (up to) four levels. Each V-cycle level does one symmetric
//! Gauss–Seidel pre-smooth, computes the residual, restricts by injection,
//! recurses, prolongs by injection-add and post-smooths. This module
//! reproduces that structure faithfully (see `ComputeMG` in the HPCG
//! reference code).

use crate::csr::CsrMatrix;
use crate::gen::stencil27;
use crate::symgs::symgs_sweep;
use densela::Work;

/// One multigrid level: operator, grid shape and fine-to-coarse injection.
#[derive(Debug, Clone)]
pub struct MgLevel {
    /// The level's 27-point operator.
    pub a: CsrMatrix,
    /// Grid shape at this level.
    pub dims: (usize, usize, usize),
    /// `f2c[coarse_index] = fine_index` injection map (empty at the
    /// coarsest level).
    pub f2c: Vec<usize>,
}

/// A geometric multigrid hierarchy on an `nx × ny × nz` grid.
#[derive(Debug, Clone)]
pub struct MgHierarchy {
    levels: Vec<MgLevel>,
}

impl MgHierarchy {
    /// Build a hierarchy of `num_levels` levels (HPCG uses 4). Every
    /// dimension must be divisible by `2^(num_levels-1)`.
    ///
    /// # Panics
    /// Panics if the grid cannot be coarsened `num_levels - 1` times.
    pub fn new(nx: usize, ny: usize, nz: usize, num_levels: usize) -> Self {
        assert!(num_levels >= 1);
        let div = 1 << (num_levels - 1);
        assert!(
            nx.is_multiple_of(div) && ny.is_multiple_of(div) && nz.is_multiple_of(div),
            "grid {nx}x{ny}x{nz} not coarsenable {num_levels} levels"
        );
        let mut levels = Vec::with_capacity(num_levels);
        let (mut cx, mut cy, mut cz) = (nx, ny, nz);
        for l in 0..num_levels {
            let a = stencil27(cx, cy, cz);
            let f2c = if l + 1 < num_levels {
                // Coarse point (i,j,k) injects from fine (2i, 2j, 2k).
                let (fx, fy) = (cx, cy);
                let (gx, gy, gz) = (cx / 2, cy / 2, cz / 2);
                let mut map = Vec::with_capacity(gx * gy * gz);
                for k in 0..gz {
                    for j in 0..gy {
                        for i in 0..gx {
                            map.push((2 * k * fy + 2 * j) * fx + 2 * i);
                        }
                    }
                }
                map
            } else {
                Vec::new()
            };
            levels.push(MgLevel {
                a,
                dims: (cx, cy, cz),
                f2c,
            });
            cx /= 2;
            cy /= 2;
            cz /= 2;
        }
        MgHierarchy { levels }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Access a level (0 = finest).
    pub fn level(&self, l: usize) -> &MgLevel {
        &self.levels[l]
    }

    /// The finest-level operator.
    pub fn fine_operator(&self) -> &CsrMatrix {
        &self.levels[0].a
    }

    /// Apply one V-cycle: `z ≈ A⁻¹ r` on the finest level. `z` is
    /// overwritten. Returns the work performed.
    pub fn vcycle(&self, r: &[f64], z: &mut [f64]) -> Work {
        self.vcycle_level(0, r, z)
    }

    fn vcycle_level(&self, l: usize, r: &[f64], z: &mut [f64]) -> Work {
        let level = &self.levels[l];
        let a = &level.a;
        let n = a.rows();
        debug_assert_eq!(r.len(), n);
        debug_assert_eq!(z.len(), n);
        let mut work = Work::ZERO;

        // Pre-smooth from zero initial guess.
        z.fill(0.0);
        work += symgs_sweep(a, r, z);

        if l + 1 < self.levels.len() {
            // Residual on this level: rf = r - A z.
            let mut ax = vec![0.0; n];
            work += a.spmv(z, &mut ax);
            let rf: Vec<f64> = r.iter().zip(&ax).map(|(ri, ai)| ri - ai).collect();
            work += Work::new(n as u64, 2 * n as u64 * 8, n as u64 * 8);

            // Restrict by injection.
            let nc = self.levels[l + 1].a.rows();
            let mut rc = vec![0.0; nc];
            for (ci, &fi) in level.f2c.iter().enumerate() {
                rc[ci] = rf[fi];
            }
            work += Work::new(0, nc as u64 * 8, nc as u64 * 8);

            // Recurse.
            let mut zc = vec![0.0; nc];
            work += self.vcycle_level(l + 1, &rc, &mut zc);

            // Prolong by injection-add.
            for (ci, &fi) in level.f2c.iter().enumerate() {
                z[fi] += zc[ci];
            }
            work += Work::new(nc as u64, 2 * nc as u64 * 8, nc as u64 * 8);

            // Post-smooth.
            work += symgs_sweep(a, r, z);
        }
        work
    }

    /// Closed-form work of one V-cycle (validated against the instrumented
    /// implementation in tests): used by the paper-scale HPCG work model.
    pub fn vcycle_work(&self) -> Work {
        let mut w = Work::ZERO;
        for (l, level) in self.levels.iter().enumerate() {
            let n = level.a.rows() as u64;
            let sym = crate::symgs::symgs_work(&level.a);
            if l + 1 < self.levels.len() {
                let nc = self.levels[l + 1].a.rows() as u64;
                w += sym * 2; // pre + post smooth
                w += level.a.spmv_work();
                w += Work::new(n, 2 * n * 8, n * 8); // residual
                w += Work::new(0, nc * 8, nc * 8); // restrict
                w += Work::new(nc, 2 * nc * 8, nc * 8); // prolong
            } else {
                w += sym;
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{cg_solve, pcg_solve};

    #[test]
    fn hierarchy_shapes_halve() {
        let mg = MgHierarchy::new(16, 16, 16, 4);
        assert_eq!(mg.num_levels(), 4);
        assert_eq!(mg.level(0).dims, (16, 16, 16));
        assert_eq!(mg.level(3).dims, (2, 2, 2));
        assert_eq!(mg.level(0).f2c.len(), 8 * 8 * 8);
        assert!(mg.level(3).f2c.is_empty());
    }

    #[test]
    #[should_panic(expected = "not coarsenable")]
    fn odd_grid_rejected() {
        let _ = MgHierarchy::new(10, 10, 10, 3);
    }

    #[test]
    fn f2c_indices_in_range() {
        let mg = MgHierarchy::new(8, 8, 8, 3);
        for l in 0..mg.num_levels() - 1 {
            let fine_n = mg.level(l).a.rows();
            let coarse_n = mg.level(l + 1).a.rows();
            assert_eq!(mg.level(l).f2c.len(), coarse_n);
            assert!(mg.level(l).f2c.iter().all(|&f| f < fine_n));
        }
    }

    #[test]
    fn vcycle_is_a_useful_preconditioner() {
        let mg = MgHierarchy::new(16, 16, 16, 4);
        let a = mg.fine_operator().clone();
        let b = vec![1.0; a.rows()];
        let mut x_plain = vec![0.0; a.rows()];
        let plain = cg_solve(&a, &b, &mut x_plain, 300, 1e-9);
        let mut x_mg = vec![0.0; a.rows()];
        let pre = pcg_solve(&a, &b, &mut x_mg, 300, 1e-9, |r, z| mg.vcycle(r, z));
        assert!(plain.converged && pre.converged);
        // The 27-point operator is strongly diagonally dominant, so plain CG
        // is already fast; MG must still cut the count meaningfully.
        assert!(
            (pre.iterations as f64) < 0.7 * plain.iterations as f64,
            "MG-PCG ({}) should need fewer iterations than CG ({})",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn vcycle_reduces_error_directly() {
        let mg = MgHierarchy::new(8, 8, 8, 3);
        let a = mg.fine_operator();
        let x_true: Vec<f64> = (0..a.rows()).map(|i| ((i * 13) % 7) as f64).collect();
        let mut b = vec![0.0; a.rows()];
        a.spmv(&x_true, &mut b);
        let mut z = vec![0.0; a.rows()];
        mg.vcycle(&b, &mut z);
        // z should be a better approximation to x_true than zero is.
        let err0: f64 = x_true.iter().map(|v| v * v).sum::<f64>().sqrt();
        let err1: f64 = x_true
            .iter()
            .zip(&z)
            .map(|(t, g)| (t - g) * (t - g))
            .sum::<f64>()
            .sqrt();
        assert!(err1 < 0.5 * err0, "V-cycle error {err1} vs initial {err0}");
    }

    #[test]
    fn vcycle_work_model_matches_instrumented_run() {
        let mg = MgHierarchy::new(8, 8, 8, 3);
        let n = mg.fine_operator().rows();
        let r = vec![1.0; n];
        let mut z = vec![0.0; n];
        let measured = mg.vcycle(&r, &mut z);
        assert_eq!(measured, mg.vcycle_work());
    }
}
