//! SELL-C-σ / ELLPACK sparse formats — the storage the vendor-optimised
//! HPCG variants use.
//!
//! The paper's Table III shows Intel's and Arm's optimised HPCG gaining
//! ~43% over the reference code. Much of that gain is exactly this: CSR's
//! row-by-row gather defeats wide vector units, while ELLPACK-style slices
//! (rows padded to equal length, stored column-major within a slice) let
//! SVE/AVX-512 process C rows per instruction. [`SellMatrix`] implements
//! SELL-C-σ (slice height C, sorting window σ) with a CSR round-trip and an
//! SpMV whose results match CSR bit-for-bit reorderings aside.

use crate::csr::CsrMatrix;
use densela::block::CHUNK;
use densela::pool::SharedSlice;
use densela::Work;

const F64B: u64 = 8;
const IDXB: u64 = 4;

/// A SELL-C-σ matrix: rows grouped into slices of height `c`; within each
/// slice rows are padded to the slice's maximum length and stored
/// column-major (so lane `l` of a vector unit walks row `slice*c + l`).
#[derive(Debug, Clone, PartialEq)]
pub struct SellMatrix {
    rows: usize,
    cols: usize,
    c: usize,
    /// Row permutation applied before slicing (σ-sorting): `perm[new] = old`.
    perm: Vec<usize>,
    /// Per-slice width (padded row length).
    slice_width: Vec<usize>,
    /// Per-slice offset into `col_idx`/`values`.
    slice_ptr: Vec<usize>,
    /// Column indices, slice-by-slice, column-major inside a slice;
    /// padding entries repeat the row's own index with value 0.
    col_idx: Vec<u32>,
    values: Vec<f64>,
    nnz: usize,
    /// The σ-sorting window the matrix was built with.
    sigma: usize,
}

impl SellMatrix {
    /// Convert from CSR with slice height `c` and sorting window `sigma`
    /// (a multiple of `c`; `sigma == c` disables sorting, plain ELLPACK
    /// slices; larger σ sorts rows by length inside each window to cut
    /// padding).
    pub fn from_csr(a: &CsrMatrix, c: usize, sigma: usize) -> Self {
        assert!(c >= 1, "slice height must be at least 1");
        assert!(
            sigma >= c && sigma.is_multiple_of(c),
            "sigma must be a multiple of c"
        );
        let rows = a.rows();
        let row_len = |r: usize| a.row(r).count();

        // σ-sort: within each window of `sigma` rows, order by descending
        // row length to homogenise slices.
        let mut perm: Vec<usize> = (0..rows).collect();
        for window in perm.chunks_mut(sigma) {
            window.sort_by_key(|&r| std::cmp::Reverse(row_len(r)));
        }

        let num_slices = rows.div_ceil(c);
        let mut slice_width = Vec::with_capacity(num_slices);
        let mut slice_ptr = Vec::with_capacity(num_slices + 1);
        slice_ptr.push(0);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for s in 0..num_slices {
            let lo = s * c;
            let hi = ((s + 1) * c).min(rows);
            let width = (lo..hi).map(|i| row_len(perm[i])).max().unwrap_or(0);
            slice_width.push(width);
            // Column-major within the slice: entry j of each of the c rows.
            for j in 0..width {
                for lane in 0..c {
                    let i = lo + lane;
                    if i < hi {
                        let old = perm[i];
                        if let Some((col, val)) = a.row(old).nth(j) {
                            col_idx.push(col as u32);
                            values.push(val);
                        } else {
                            // Padding: self-referential zero keeps SpMV branch-free.
                            col_idx.push(old as u32);
                            values.push(0.0);
                        }
                    } else {
                        col_idx.push(0);
                        values.push(0.0);
                    }
                }
            }
            slice_ptr.push(col_idx.len());
        }
        SellMatrix {
            rows,
            cols: a.cols(),
            c,
            perm,
            slice_width,
            slice_ptr,
            col_idx,
            values,
            nnz: a.nnz(),
            sigma,
        }
    }

    /// Convert from CSR with slice height `c`, picking the σ-sorting window
    /// from the row-length variance so callers don't have to guess:
    ///
    /// * near-regular matrices (coefficient of variation < 5%, e.g. interior
    ///   stencils) skip sorting entirely (σ = c — sorting buys nothing and
    ///   perturbs row order);
    /// * mildly ragged matrices (CV < 50%) sort within 4c windows;
    /// * heavily ragged matrices sort within 8c windows.
    ///
    /// The decision is a pure function of the row-length histogram, so the
    /// chosen window (see [`SellMatrix::sigma`]) is deterministic.
    pub fn from_csr_auto(a: &CsrMatrix, c: usize) -> Self {
        let rows = a.rows();
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        for r in 0..rows {
            let len = a.row(r).count() as f64;
            // Welford's running mean/variance.
            let delta = len - mean;
            mean += delta / (r + 1) as f64;
            m2 += delta * (len - mean);
        }
        let var = if rows > 0 { m2 / rows as f64 } else { 0.0 };
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        let sigma = if cv < 0.05 {
            c
        } else if cv < 0.5 {
            4 * c
        } else {
            8 * c
        };
        Self::from_csr(a, c, sigma)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of slices (each covering up to `c` rows). Slices own disjoint
    /// sets of output rows, which is what makes slice-parallel SpMV safe.
    pub fn num_slices(&self) -> usize {
        self.slice_width.len()
    }

    /// Stored entries including padding.
    pub fn stored(&self) -> usize {
        self.values.len()
    }

    /// True non-zeros (excluding padding).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Padding overhead: stored / nnz (1.0 = no padding).
    pub fn padding_factor(&self) -> f64 {
        self.stored() as f64 / self.nnz as f64
    }

    /// Fraction of stored entries that are true non-zeros: nnz / stored in
    /// (0, 1]. 1.0 means zero padding; low values explain SELL losses to
    /// CSR in the bench output.
    pub fn fill_ratio(&self) -> f64 {
        if self.stored() == 0 {
            1.0
        } else {
            self.nnz as f64 / self.stored() as f64
        }
    }

    /// Slice height C.
    pub fn c(&self) -> usize {
        self.c
    }

    /// The σ-sorting window this matrix was built with (equals `c` when
    /// sorting was disabled; see [`SellMatrix::from_csr_auto`]).
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// SpMV `y = A x` in SELL order. The output is in *original* row order
    /// (the permutation is applied on the way out).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) -> Work {
        assert_eq!(x.len(), self.cols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.rows, "spmv: y length mismatch");
        let out = SharedSlice::new(y);
        // SAFETY: single caller covers every slice exactly once.
        unsafe { self.spmv_slices(0, self.num_slices(), x, &out) };
        self.spmv_work()
    }

    /// The SpMV kernel over slices `s_lo..s_hi`, writing through a shared
    /// view. This one code path serves both the serial [`SellMatrix::spmv`]
    /// and the slice-parallel `Team::sell_spmv`, so their per-row results
    /// are bit-identical by construction.
    ///
    /// # Safety
    /// No other thread may concurrently touch the output rows of slices
    /// `s_lo..s_hi` (i.e. `perm[s_lo * c .. min(s_hi * c, rows)]`).
    pub(crate) unsafe fn spmv_slices(
        &self,
        s_lo: usize,
        s_hi: usize,
        x: &[f64],
        y: &SharedSlice<f64>,
    ) {
        let c = self.c;
        let mut acc = vec![0.0f64; c];
        for s in s_lo..s_hi {
            let lo = s * c;
            let hi = ((s + 1) * c).min(self.rows);
            let lanes = hi - lo;
            acc[..lanes].fill(0.0);
            let width = self.slice_width[s];
            let base = self.slice_ptr[s];
            for j in 0..width {
                let off = base + j * c;
                // The lane loop is the vectorisable inner loop.
                for lane in 0..lanes {
                    let idx = off + lane;
                    acc[lane] += self.values[idx] * x[self.col_idx[idx] as usize];
                }
            }
            for lane in 0..lanes {
                y.set(self.perm[lo + lane], acc[lane]);
            }
        }
    }

    /// Chunked SpMV `y = A x`: the unrolled SELL kernel (fixed-width lane
    /// chunks, no per-element bounds checks). Bit-identical to the naive
    /// [`SellMatrix::spmv`] — each lane's accumulation order over `j` is
    /// unchanged; only the lane loop is restructured.
    pub fn spmv_chunked(&self, x: &[f64], y: &mut [f64]) -> Work {
        assert_eq!(x.len(), self.cols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.rows, "spmv: y length mismatch");
        let out = SharedSlice::new(y);
        // SAFETY: single caller covers every slice exactly once.
        unsafe { self.spmv_slices_chunked(0, self.num_slices(), x, &out) };
        self.spmv_work()
    }

    /// The unrolled SpMV kernel over slices `s_lo..s_hi`. Full slices of
    /// height [`CHUNK`] run through a fixed-size accumulator array whose
    /// lane loop the compiler can keep in one vector register; other slice
    /// heights take a sliced (still bounds-check-free) generic path.
    /// Serves `Team::sell_spmv` lanes and the serial
    /// [`SellMatrix::spmv_chunked`] — one code path, bit-identical results.
    ///
    /// # Safety
    /// Same contract as [`SellMatrix::spmv_slices`]: no other thread may
    /// concurrently touch the output rows of slices `s_lo..s_hi`.
    pub(crate) unsafe fn spmv_slices_chunked(
        &self,
        s_lo: usize,
        s_hi: usize,
        x: &[f64],
        y: &SharedSlice<f64>,
    ) {
        let c = self.c;
        let mut accbuf = vec![0.0f64; c];
        for s in s_lo..s_hi {
            let lo = s * c;
            let hi = ((s + 1) * c).min(self.rows);
            let lanes = hi - lo;
            let width = self.slice_width[s];
            let base = self.slice_ptr[s];
            if lanes == CHUNK {
                // Fixed-width fast path: CHUNK accumulators live in
                // registers across the whole width loop.
                let mut acc = [0.0f64; CHUNK];
                for j in 0..width {
                    let off = base + j * c;
                    let vals: &[f64; CHUNK] = self.values[off..off + CHUNK].try_into().unwrap();
                    let cols: &[u32; CHUNK] = self.col_idx[off..off + CHUNK].try_into().unwrap();
                    for lane in 0..CHUNK {
                        acc[lane] += vals[lane] * x[cols[lane] as usize];
                    }
                }
                for lane in 0..CHUNK {
                    y.set(self.perm[lo + lane], acc[lane]);
                }
            } else {
                // Remainder slice / non-CHUNK heights: same arithmetic
                // through subslices (one bounds check per row of the slice,
                // not per element).
                let acc = &mut accbuf[..lanes];
                acc.fill(0.0);
                for j in 0..width {
                    let off = base + j * c;
                    let vals = &self.values[off..off + lanes];
                    let cols = &self.col_idx[off..off + lanes];
                    for lane in 0..lanes {
                        acc[lane] += vals[lane] * x[cols[lane] as usize];
                    }
                }
                for lane in 0..lanes {
                    y.set(self.perm[lo + lane], acc[lane]);
                }
            }
        }
    }

    /// Work model: padded entries still move through the vector unit.
    pub fn spmv_work(&self) -> Work {
        let stored = self.stored() as u64;
        let n = self.rows as u64;
        Work::new(2 * stored, stored * (F64B + IDXB) + 2 * n * F64B, n * F64B)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{poisson7, stencil27, structural3d};

    fn spmv_matches(a: &CsrMatrix, c: usize, sigma: usize) {
        let sell = SellMatrix::from_csr(a, c, sigma);
        let x: Vec<f64> = (0..a.cols()).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut y_csr = vec![0.0; a.rows()];
        let mut y_sell = vec![0.0; a.rows()];
        a.spmv(&x, &mut y_csr);
        sell.spmv(&x, &mut y_sell);
        for (i, (u, v)) in y_csr.iter().zip(&y_sell).enumerate() {
            assert!(
                (u - v).abs() < 1e-12,
                "row {i}: {u} vs {v} (c={c}, sigma={sigma})"
            );
        }
    }

    #[test]
    fn sell_spmv_matches_csr_on_stencil() {
        let a = stencil27(5, 4, 3);
        for (c, sigma) in [(1, 1), (4, 4), (8, 8), (8, 32), (16, 64)] {
            spmv_matches(&a, c, sigma);
        }
    }

    #[test]
    fn sell_spmv_matches_csr_on_irregular_matrices() {
        spmv_matches(&poisson7(4, 3, 2), 8, 16);
        spmv_matches(&structural3d(2, 2, 3), 8, 32);
        // A deliberately ragged matrix.
        let ragged = CsrMatrix::from_coo(
            7,
            7,
            vec![
                (0, 0, 1.0),
                (1, 0, 2.0),
                (1, 1, 3.0),
                (1, 6, 4.0),
                (3, 2, 5.0),
                (6, 0, 6.0),
                (6, 1, 7.0),
                (6, 2, 8.0),
                (6, 3, 9.0),
                (6, 6, 10.0),
            ],
        );
        spmv_matches(&ragged, 4, 8);
    }

    #[test]
    fn sigma_sorting_reduces_padding() {
        // Ragged rows: sorting within a window should cut padding.
        let mut entries = Vec::new();
        for r in 0..64usize {
            let len = if r % 8 == 0 { 20 } else { 2 };
            for j in 0..len {
                entries.push((r, (r + j) % 64, 1.0));
            }
        }
        let a = CsrMatrix::from_coo(64, 64, entries);
        let unsorted = SellMatrix::from_csr(&a, 8, 8);
        let sorted = SellMatrix::from_csr(&a, 8, 64);
        assert!(
            sorted.padding_factor() < unsorted.padding_factor(),
            "sigma sorting must reduce padding: {} vs {}",
            sorted.padding_factor(),
            unsorted.padding_factor()
        );
        assert_eq!(sorted.nnz(), a.nnz());
    }

    #[test]
    fn stencil_matrix_has_low_padding() {
        // The HPCG operator is nearly regular: padding should be small.
        let a = stencil27(8, 8, 8);
        let sell = SellMatrix::from_csr(&a, 8, 32);
        assert!(
            sell.padding_factor() < 1.3,
            "padding {}",
            sell.padding_factor()
        );
    }

    #[test]
    fn chunked_spmv_is_bit_identical_to_naive() {
        // Slice heights {1, 3, 8, 16} hit the fixed-width fast path, the
        // generic path, and ragged trailing slices.
        for (nx, ny, nz) in [(5, 4, 3), (3, 3, 3), (4, 4, 5)] {
            let a = stencil27(nx, ny, nz);
            for (c, sigma) in [(1, 1), (3, 6), (8, 8), (8, 32), (16, 64)] {
                let sell = SellMatrix::from_csr(&a, c, sigma);
                let x: Vec<f64> = (0..a.cols())
                    .map(|i| ((i * 11) % 17) as f64 / 3.0 - 2.0)
                    .collect();
                let mut y_ref = vec![0.0; a.rows()];
                let mut y_chk = vec![0.0; a.rows()];
                let w1 = sell.spmv(&x, &mut y_ref);
                let w2 = sell.spmv_chunked(&x, &mut y_chk);
                assert_eq!(w1, w2);
                for (u, v) in y_ref.iter().zip(&y_chk) {
                    assert_eq!(u.to_bits(), v.to_bits(), "c={c} sigma={sigma}");
                }
            }
        }
    }

    #[test]
    fn auto_sigma_follows_row_length_variance() {
        // Perfectly regular: every row has the same length → CV = 0, no
        // sorting.
        let mut band = Vec::new();
        for r in 0..64usize {
            for j in 0..3 {
                band.push((r, (r + j) % 64, 1.0));
            }
        }
        let regular = CsrMatrix::from_coo(64, 64, band);
        let s = SellMatrix::from_csr_auto(&regular, 8);
        assert_eq!(s.sigma(), 8, "regular matrix should skip sorting");
        // The HPCG stencil's boundary rows give mild raggedness → 4c — the
        // same σ=32 the benchmarks hand-picked for c=8.
        let stencil = stencil27(8, 8, 8);
        let s = SellMatrix::from_csr_auto(&stencil, 8);
        assert_eq!(s.sigma(), 32, "stencil should sort in 4c windows");
        // Heavily ragged: 1-vs-20 row lengths → 8c window.
        let mut entries = Vec::new();
        for r in 0..64usize {
            let len = if r % 8 == 0 { 20 } else { 1 };
            for j in 0..len {
                entries.push((r, (r + j) % 64, 1.0));
            }
        }
        let ragged = CsrMatrix::from_coo(64, 64, entries);
        let s = SellMatrix::from_csr_auto(&ragged, 8);
        assert_eq!(s.sigma(), 64, "ragged matrix should sort in 8c windows");
        // The auto pick should not pad worse than the unsorted layout.
        let unsorted = SellMatrix::from_csr(&ragged, 8, 8);
        assert!(s.padding_factor() <= unsorted.padding_factor());
    }

    #[test]
    fn fill_ratio_is_inverse_padding() {
        let a = stencil27(4, 4, 4);
        let sell = SellMatrix::from_csr(&a, 8, 8);
        assert!((sell.fill_ratio() * sell.padding_factor() - 1.0).abs() < 1e-12);
        assert!(sell.fill_ratio() > 0.0 && sell.fill_ratio() <= 1.0);
        assert_eq!(sell.c(), 8);
    }

    #[test]
    fn work_model_counts_padding() {
        let a = stencil27(4, 4, 4);
        let sell = SellMatrix::from_csr(&a, 8, 8);
        assert_eq!(sell.spmv_work().flops, 2 * sell.stored() as u64);
        assert!(sell.stored() >= a.nnz());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn sell_csr_equivalence(
            n in 2usize..24,
            entries in proptest::collection::vec((0usize..24, 0usize..24, -4.0f64..4.0), 1..80),
            c_pick in 0usize..3,
            sigma_mult in 1usize..4,
        ) {
            let entries: Vec<_> = entries
                .into_iter()
                .map(|(r, col, v)| (r % n, col % n, v))
                .collect();
            let a = CsrMatrix::from_coo(n, n, entries);
            let c = [1usize, 4, 8][c_pick];
            let sell = SellMatrix::from_csr(&a, c, c * sigma_mult);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
            let mut y1 = vec![0.0; n];
            let mut y2 = vec![0.0; n];
            a.spmv(&x, &mut y1);
            sell.spmv(&x, &mut y2);
            for (u, v) in y1.iter().zip(&y2) {
                prop_assert!((u - v).abs() < 1e-10);
            }
        }
    }
}
