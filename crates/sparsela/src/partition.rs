//! Domain decomposition helpers.
//!
//! * [`Partition3d`] — HPCG/OpenSBLI-style 3-D block decomposition: factor
//!   the rank count into a px×py×pz grid, give each rank a sub-box, and
//!   account face-neighbour halo traffic.
//! * [`RowPartition`] — minikab-style contiguous row partition of a sparse
//!   matrix with halo volume derived from the matrix's actual coupling
//!   pattern.
//! * [`BlockPartition`] — COSA-style distribution of `b` grid blocks over
//!   `p` ranks: block `i` goes to rank `i % p` (round-robin), giving the
//!   paper's exact load-imbalance arithmetic (800 blocks on 768 ranks ⇒ 32
//!   ranks carry 2 blocks).

use serde::{Deserialize, Serialize};

/// Factor `p` into three factors (px, py, pz) as close to a cube as
/// possible, preferring px ≥ py ≥ pz (the HPCG `GenerateGeometry` approach).
pub fn factor3(p: usize) -> (usize, usize, usize) {
    assert!(p > 0);
    let mut best = (p, 1, 1);
    let mut best_score = usize::MAX;
    for pz in 1..=p {
        if !p.is_multiple_of(pz) {
            continue;
        }
        let rem = p / pz;
        for py in 1..=rem {
            if !rem.is_multiple_of(py) {
                continue;
            }
            let px = rem / py;
            let score = px.max(py).max(pz) - px.min(py).min(pz);
            if score < best_score {
                best_score = score;
                best = (px, py, pz);
            }
        }
    }
    best
}

/// One rank's sub-box in a 3-D decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block3d {
    /// Rank coordinates in the process grid.
    pub coords: (usize, usize, usize),
    /// Local box dimensions (cells).
    pub dims: (usize, usize, usize),
}

impl Block3d {
    /// Cells in the block.
    pub fn cells(&self) -> usize {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// Areas of the six faces, in cells: (x-, x+, y-, y+, z-, z+ are pairs).
    pub fn face_areas(&self) -> [usize; 3] {
        [
            self.dims.1 * self.dims.2,
            self.dims.0 * self.dims.2,
            self.dims.0 * self.dims.1,
        ]
    }
}

/// A 3-D block decomposition of a global `nx × ny × nz` grid over `p` ranks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition3d {
    /// Process-grid shape.
    pub pgrid: (usize, usize, usize),
    /// Global grid shape.
    pub global: (usize, usize, usize),
    ranks: usize,
}

impl Partition3d {
    /// Decompose a global grid over `p` ranks. Dimensions need not divide
    /// exactly; leftover cells go to the low-coordinate ranks.
    pub fn new(global: (usize, usize, usize), p: usize) -> Self {
        let pgrid = factor3(p);
        Partition3d {
            pgrid,
            global,
            ranks: p,
        }
    }

    /// HPCG-style weak partition: every rank owns exactly `local` cells and
    /// the global grid is `local × pgrid`.
    pub fn weak(local: (usize, usize, usize), p: usize) -> Self {
        let pgrid = factor3(p);
        Partition3d {
            pgrid,
            global: (local.0 * pgrid.0, local.1 * pgrid.1, local.2 * pgrid.2),
            ranks: p,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Rank coordinates in the process grid.
    pub fn coords_of(&self, rank: usize) -> (usize, usize, usize) {
        let (px, py, _) = self.pgrid;
        (rank % px, (rank / px) % py, rank / (px * py))
    }

    /// Rank id of process-grid coordinates.
    pub fn rank_of(&self, c: (usize, usize, usize)) -> usize {
        let (px, py, _) = self.pgrid;
        (c.2 * py + c.1) * px + c.0
    }

    fn split(n: usize, parts: usize, idx: usize) -> usize {
        // First (n % parts) parts get one extra cell.
        n / parts + usize::from(idx < n % parts)
    }

    /// The sub-box of `rank`.
    pub fn block(&self, rank: usize) -> Block3d {
        let c = self.coords_of(rank);
        Block3d {
            coords: c,
            dims: (
                Self::split(self.global.0, self.pgrid.0, c.0),
                Self::split(self.global.1, self.pgrid.1, c.1),
                Self::split(self.global.2, self.pgrid.2, c.2),
            ),
        }
    }

    /// Face-neighbour ranks of `rank` (up to 6).
    pub fn face_neighbours(&self, rank: usize) -> Vec<usize> {
        let (cx, cy, cz) = self.coords_of(rank);
        let (px, py, pz) = self.pgrid;
        let mut out = Vec::with_capacity(6);
        if cx > 0 {
            out.push(self.rank_of((cx - 1, cy, cz)));
        }
        if cx + 1 < px {
            out.push(self.rank_of((cx + 1, cy, cz)));
        }
        if cy > 0 {
            out.push(self.rank_of((cx, cy - 1, cz)));
        }
        if cy + 1 < py {
            out.push(self.rank_of((cx, cy + 1, cz)));
        }
        if cz > 0 {
            out.push(self.rank_of((cx, cy, cz - 1)));
        }
        if cz + 1 < pz {
            out.push(self.rank_of((cx, cy, cz + 1)));
        }
        out
    }

    /// Halo exchange pairs `(a, b, bytes)` for one ghost layer of width
    /// `halo_width` cells with `bytes_per_cell` payload. Each unordered
    /// neighbour pair appears once (symmetric exchange).
    pub fn halo_pairs(&self, halo_width: usize, bytes_per_cell: u64) -> Vec<(u32, u32, u64)> {
        let mut pairs = Vec::new();
        for r in 0..self.ranks {
            let blk = self.block(r);
            let (cx, cy, cz) = blk.coords;
            let areas = blk.face_areas();
            let mut push = |other: (usize, usize, usize), area: usize| {
                let o = self.rank_of(other);
                pairs.push((
                    r as u32,
                    o as u32,
                    (area * halo_width) as u64 * bytes_per_cell,
                ));
            };
            // Only the +x/+y/+z directions so each pair appears once.
            if cx + 1 < self.pgrid.0 {
                push((cx + 1, cy, cz), areas[0]);
            }
            if cy + 1 < self.pgrid.1 {
                push((cx, cy + 1, cz), areas[1]);
            }
            if cz + 1 < self.pgrid.2 {
                push((cx, cy, cz + 1), areas[2]);
            }
        }
        pairs
    }

    /// Maximum cells owned by any rank (load-balance metric).
    pub fn max_cells(&self) -> usize {
        (0..self.ranks)
            .map(|r| self.block(r).cells())
            .max()
            .unwrap_or(0)
    }

    /// Mean cells per rank.
    pub fn mean_cells(&self) -> f64 {
        (self.global.0 * self.global.1 * self.global.2) as f64 / self.ranks as f64
    }
}

/// Contiguous row partition of an `n`-row matrix over `p` ranks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowPartition {
    n: usize,
    p: usize,
}

impl RowPartition {
    /// Partition `n` rows over `p` ranks (first `n % p` ranks get one more).
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p > 0 && n > 0);
        RowPartition { n, p }
    }

    /// Row range `[lo, hi)` of `rank`.
    pub fn range(&self, rank: usize) -> (usize, usize) {
        let base = self.n / self.p;
        let extra = self.n % self.p;
        let lo = rank * base + rank.min(extra);
        let hi = lo + base + usize::from(rank < extra);
        (lo, hi)
    }

    /// Rows owned by `rank`.
    pub fn count(&self, rank: usize) -> usize {
        let (lo, hi) = self.range(rank);
        hi - lo
    }

    /// Owner of row `r`.
    pub fn owner(&self, r: usize) -> usize {
        // Invert the `range` arithmetic.
        let base = self.n / self.p;
        let extra = self.n % self.p;
        let cut = extra * (base + 1);
        if r < cut {
            r / (base + 1)
        } else {
            extra + (r - cut) / base.max(1)
        }
    }
}

/// Round-robin distribution of `blocks` equally sized grid blocks over `p`
/// ranks — COSA's decomposition. Exposes the exact imbalance the paper
/// discusses for 800 blocks on 768 or 1024 ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockPartition {
    /// Total number of blocks in the simulation.
    pub blocks: usize,
    /// MPI ranks available.
    pub ranks: usize,
}

impl BlockPartition {
    /// Create a distribution.
    pub fn new(blocks: usize, ranks: usize) -> Self {
        assert!(blocks > 0 && ranks > 0);
        BlockPartition { blocks, ranks }
    }

    /// Blocks assigned to `rank`.
    pub fn blocks_of(&self, rank: usize) -> usize {
        let base = self.blocks / self.ranks;
        let extra = self.blocks % self.ranks;
        base + usize::from(rank < extra)
    }

    /// Number of ranks that receive at least one block ("active" ranks —
    /// on Fulhame at 16 nodes the paper notes only 800 of 1024 ranks work).
    pub fn active_ranks(&self) -> usize {
        self.ranks.min(self.blocks)
    }

    /// Maximum blocks on any rank.
    pub fn max_blocks(&self) -> usize {
        self.blocks_of(0)
    }

    /// Load imbalance factor: max blocks / mean blocks (≥ 1).
    pub fn imbalance(&self) -> f64 {
        self.max_blocks() as f64 * self.ranks as f64 / self.blocks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor3_prefers_cubes() {
        assert_eq!(factor3(8), (2, 2, 2));
        assert_eq!(factor3(27), (3, 3, 3));
        let (a, b, c) = factor3(48);
        assert_eq!(a * b * c, 48);
        assert!(
            a.max(b).max(c) <= 4,
            "48 should factor as 4x4x3: got {a}x{b}x{c}"
        );
    }

    #[test]
    fn partition_covers_grid_exactly() {
        let p = Partition3d::new((80, 80, 80), 48);
        let total: usize = (0..48).map(|r| p.block(r).cells()).sum();
        assert_eq!(total, 80 * 80 * 80);
    }

    #[test]
    fn weak_partition_gives_uniform_blocks() {
        let p = Partition3d::weak((80, 80, 80), 16);
        for r in 0..16 {
            assert_eq!(p.block(r).cells(), 80 * 80 * 80);
        }
        assert_eq!(p.max_cells() as f64, p.mean_cells());
    }

    #[test]
    fn rank_coords_round_trip() {
        let p = Partition3d::new((64, 64, 64), 24);
        for r in 0..24 {
            assert_eq!(p.rank_of(p.coords_of(r)), r);
        }
    }

    #[test]
    fn face_neighbours_are_mutual() {
        let p = Partition3d::new((32, 32, 32), 12);
        for r in 0..12 {
            for n in p.face_neighbours(r) {
                assert!(p.face_neighbours(n).contains(&r), "{r} <-> {n}");
            }
        }
    }

    #[test]
    fn halo_pairs_unique_and_positive() {
        let p = Partition3d::weak((16, 16, 16), 8);
        let pairs = p.halo_pairs(1, 8);
        // 2x2x2 process grid: 12 internal faces.
        assert_eq!(pairs.len(), 12);
        for &(a, b, bytes) in &pairs {
            assert_ne!(a, b);
            assert_eq!(bytes, 16 * 16 * 8);
        }
    }

    #[test]
    fn row_partition_covers_all_rows() {
        let rp = RowPartition::new(103, 7);
        let total: usize = (0..7).map(|r| rp.count(r)).sum();
        assert_eq!(total, 103);
        for r in 0..103 {
            let o = rp.owner(r);
            let (lo, hi) = rp.range(o);
            assert!(lo <= r && r < hi, "row {r} owner {o} range {lo}..{hi}");
        }
    }

    #[test]
    fn cosa_800_blocks_on_768_ranks_matches_paper() {
        // Paper §VII.A: "800 blocks to be distributed amongst 768 processes,
        // leaving 32 processes with 2 blocks and the rest with 1 block".
        let bp = BlockPartition::new(800, 768);
        let with_two = (0..768).filter(|&r| bp.blocks_of(r) == 2).count();
        let with_one = (0..768).filter(|&r| bp.blocks_of(r) == 1).count();
        assert_eq!(with_two, 32);
        assert_eq!(with_one, 736);
        assert_eq!(bp.max_blocks(), 2);
        assert!((bp.imbalance() - 2.0 * 768.0 / 800.0).abs() < 1e-12);
    }

    #[test]
    fn cosa_1024_ranks_leaves_idle_ranks() {
        // Paper: on Fulhame at 16 nodes, 1024 ranks but only 800 blocks.
        let bp = BlockPartition::new(800, 1024);
        assert_eq!(bp.active_ranks(), 800);
        assert_eq!((0..1024).filter(|&r| bp.blocks_of(r) == 0).count(), 224);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn factor3_always_multiplies_back(p in 1usize..2000) {
            let (a, b, c) = factor3(p);
            prop_assert_eq!(a * b * c, p);
        }

        #[test]
        fn partition_cell_conservation(
            nx in 4usize..40, ny in 4usize..40, nz in 4usize..40, p in 1usize..64,
        ) {
            let part = Partition3d::new((nx, ny, nz), p);
            let total: usize = (0..p).map(|r| part.block(r).cells()).sum();
            prop_assert_eq!(total, nx * ny * nz);
            prop_assert!(part.max_cells() as f64 >= part.mean_cells());
        }

        #[test]
        fn row_partition_owner_consistent(n in 1usize..500, p in 1usize..32) {
            if n == 0 { return Ok(()); }
            let rp = RowPartition::new(n, p);
            let mut covered = 0;
            for rank in 0..p {
                covered += rp.count(rank);
            }
            prop_assert_eq!(covered, n);
            for r in (0..n).step_by((n / 17).max(1)) {
                let o = rp.owner(r);
                prop_assert!(o < p);
                let (lo, hi) = rp.range(o);
                prop_assert!(lo <= r && r < hi);
            }
        }

        #[test]
        fn block_partition_conserves_blocks(blocks in 1usize..2000, ranks in 1usize..1200) {
            let bp = BlockPartition::new(blocks, ranks);
            let total: usize = (0..ranks).map(|r| bp.blocks_of(r)).sum();
            prop_assert_eq!(total, blocks);
            prop_assert!(bp.imbalance() >= 1.0 - 1e-12);
        }
    }
}
