//! minikab — the Mini Krylov ASiMoV Benchmark (paper §VI.A).
//!
//! minikab is a plain parallel CG solver. The paper runs it on
//! `Benchmark1`, a structural matrix with 9,573,984 DoF and 696,096,138
//! non-zeros, in plain-MPI and MPI+OpenMP configurations, and observes:
//!
//! * single-core: A64FX 1182 s, NGIO 1269 s, Fulhame 2415 s (Table V);
//! * on 2 A64FX nodes the best configuration is 1 rank per CMG × 12
//!   threads, and the largest plain-MPI job that fits in memory is 48 ranks
//!   (Figure 1);
//! * strong scaling on A64FX (2–8 nodes) vs Fulhame (1–6 nodes) (Figure 2).
//!
//! `Benchmark1` itself is proprietary (an ASiMoV project matrix), so
//! [`run_real`] solves our synthetic `structural3d` equivalent (same DoF/nnz
//! shape at full scale, same block-banded structure), and the work model
//! uses the paper's exact DoF/nnz numbers.

use crate::trace::{CheckpointSpec, KernelClass, Phase, Trace, WorkDist};
use densela::Work;
use sparsela::cg::{cg_solve, CgResult};
use sparsela::gen::{structural3d, BENCHMARK1_DOF, BENCHMARK1_NNZ};
use sparsela::parallel::Team;
use sparsela::partition::RowPartition;

const F64B: u64 = 8;
const IDXB: u64 = 4;

/// minikab configuration at paper scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinikabConfig {
    /// Degrees of freedom of the matrix.
    pub dof: u64,
    /// Non-zeros of the matrix.
    pub nnz: u64,
    /// Node-grid edge of the equivalent `structural3d` problem (used to
    /// derive interface areas for the halo model).
    pub grid: (usize, usize, usize),
    /// CG iterations the benchmark runs (the paper's solve is a fixed-work
    /// solve; we use a representative fixed count).
    pub iterations: u32,
}

impl MinikabConfig {
    /// The paper's `Benchmark1` shape.
    pub fn paper() -> Self {
        MinikabConfig {
            dof: BENCHMARK1_DOF,
            nnz: BENCHMARK1_NNZ,
            grid: (147, 147, 147),
            iterations: 1000,
        }
    }
}

/// Per-rank solver overhead (MPI buffers, partitioning tables, solver
/// workspace) in bytes. Calibrated so that — as the paper reports — 48 MPI
/// ranks is the largest plain-MPI configuration that fits on two A64FX
/// nodes, while the hybrid 8×12 layout fits easily.
pub const PER_RANK_OVERHEAD_BYTES: u64 = 550 * 1024 * 1024;

/// Assembly peak factor: during setup the COO staging buffers coexist with
/// the assembled CSR matrix, tripling the matrix footprint transiently.
pub const ASSEMBLY_PEAK_FACTOR: f64 = 3.0;

/// Matrix memory in bytes (CSR: 12 B per non-zero plus row pointers).
pub fn matrix_bytes(cfg: MinikabConfig) -> u64 {
    cfg.nnz * (F64B + IDXB) + (cfg.dof + 1) * 8
}

/// Peak per-job memory during setup+solve with `ranks` ranks, bytes.
pub fn peak_job_bytes(cfg: MinikabConfig, ranks: u32) -> u64 {
    let mat = matrix_bytes(cfg);
    let assembly_peak = (mat as f64 * ASSEMBLY_PEAK_FACTOR) as u64;
    let vectors = 6 * cfg.dof * F64B;
    assembly_peak + vectors + u64::from(ranks) * PER_RANK_OVERHEAD_BYTES
}

/// Whether a job with `ranks` ranks over `nodes` nodes of `node_mem_gib`
/// fits in memory (reserving 10% for the OS and MPI runtime).
pub fn fits_in_memory(cfg: MinikabConfig, ranks: u32, nodes: u32, node_mem_gib: f64) -> bool {
    let usable = (f64::from(nodes) * node_mem_gib * 0.9 * (1u64 << 30) as f64) as u64;
    peak_job_bytes(cfg, ranks) <= usable
}

/// Execute a real CG solve on the synthetic structural matrix with a node
/// grid of `n³` (tests use small `n`; `n = 147` reproduces Benchmark1's DoF).
pub fn run_real(n: usize, max_iter: usize, rtol: f64) -> CgResult {
    let a = structural3d(n, n, n);
    let b: Vec<f64> = (0..a.rows()).map(|i| ((i as f64) * 0.37).sin()).collect();
    let mut x = vec![0.0; a.rows()];
    cg_solve(&a, &b, &mut x, max_iter, rtol)
}

/// Execute a real *hybrid* solve: one rank's share of the problem handled
/// by a `threads`-wide persistent kernel-pool [`Team`] — the shared-memory
/// half of the paper's MPI+OpenMP configurations (Figure 1's 8×12 setup).
/// The team's threads are spawned once for the whole solve and every CG
/// iteration runs fused pooled kernels. Returns (iterations, relative
/// residual).
pub fn run_real_hybrid(n: usize, threads: usize, max_iter: usize, rtol: f64) -> (usize, f64) {
    let a = structural3d(n, n, n);
    let b: Vec<f64> = (0..a.rows()).map(|i| ((i as f64) * 0.37).sin()).collect();
    let mut x = vec![0.0; a.rows()];
    let (iters, rel, _) = Team::new(threads).cg_solve(&a, &b, &mut x, max_iter, rtol);
    (iters, rel)
}

/// Build the minikab execution trace: `ranks` MPI ranks (each owning
/// `threads` cores — threading affects the cost model's per-rank resources,
/// not the trace structure), 1-D row partition of the matrix.
pub fn trace(cfg: MinikabConfig, ranks: u32) -> Trace {
    let p = ranks as usize;
    let rp = RowPartition::new(cfg.dof as usize, p);
    let nnz_per_rank = cfg.nnz / u64::from(ranks);
    let rows_max = rp.count(0) as u64;

    // SpMV work per rank (balanced: the row partition is even to ±1 row).
    let spmv = Work::new(
        2 * nnz_per_rank,
        nnz_per_rank * (F64B + IDXB) + 2 * rows_max * F64B,
        rows_max * F64B,
    );

    // Interface: a 1-D slab partition of the node grid exposes two
    // nx×ny node faces per interior rank; each node has 3 DoF, each
    // neighbouring slab needs one layer of them.
    let face_dofs = (cfg.grid.0 * cfg.grid.1 * 3) as u64;
    let halo_bytes = face_dofs * F64B;
    let mut pairs = Vec::with_capacity(p.saturating_sub(1));
    for r in 0..p.saturating_sub(1) {
        pairs.push((r as u32, (r + 1) as u32, halo_bytes));
    }

    let vec_bytes = rows_max * F64B;
    let body = vec![
        // Halo then SpMV.
        Phase::Halo { pairs },
        Phase::Compute {
            class: KernelClass::SpMV,
            work: WorkDist::Uniform(spmv),
            // Per-rank CSR slice (values + column indices + row pointers)
            // plus the operand/result vectors.
            ws_bytes: nnz_per_rank * (F64B + IDXB) + (rows_max + 1) * 8 + 2 * vec_bytes,
        },
        // dot(p, Ap) + allreduce.
        Phase::Compute {
            class: KernelClass::Dot,
            work: WorkDist::Uniform(Work::new(2 * rows_max, 2 * vec_bytes, 0)),
            ws_bytes: 2 * vec_bytes,
        },
        Phase::Allreduce { bytes: 8 },
        // x and r updates (2 axpy).
        Phase::Compute {
            class: KernelClass::VectorOp,
            work: WorkDist::Uniform(Work::new(4 * rows_max, 4 * vec_bytes, 2 * vec_bytes)),
            ws_bytes: 4 * vec_bytes,
        },
        // dot(r, r) + allreduce + p update.
        Phase::Compute {
            class: KernelClass::Dot,
            work: WorkDist::Uniform(Work::new(2 * rows_max, vec_bytes, 0)),
            ws_bytes: vec_bytes,
        },
        Phase::Allreduce { bytes: 8 },
        Phase::Compute {
            class: KernelClass::VectorOp,
            work: WorkDist::Uniform(Work::new(2 * rows_max, 2 * vec_bytes, vec_bytes)),
            ws_bytes: 2 * vec_bytes,
        },
    ];

    Trace {
        ranks,
        prologue: Vec::new(),
        body,
        iterations: cfg.iterations,
        fom_flops: 0.0,
        // CG on the assembled structural matrix: x, r, p, Ap per rank.
        checkpoint: Some(CheckpointSpec {
            bytes_per_rank: 4 * vec_bytes,
            suggested_interval_iters: cfg.iterations.div_ceil(10).max(1),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_solve_converges_on_structural_matrix() {
        let res = run_real(4, 400, 1e-8);
        assert!(
            res.converged,
            "CG on structural3d: {} iters",
            res.iterations
        );
    }

    #[test]
    fn hybrid_solve_matches_serial_solution_quality() {
        let serial = run_real(4, 400, 1e-8);
        let (iters, rel) = run_real_hybrid(4, 4, 400, 1e-8);
        assert!(rel <= 1e-8, "hybrid CG must converge: {rel}");
        // Same operator, same rhs: iteration counts agree to within
        // round-off-induced wobble.
        assert!(
            (iters as i64 - serial.iterations as i64).abs() <= 2,
            "{iters} vs {}",
            serial.iterations
        );
    }

    #[test]
    fn paper_shape_constants() {
        let cfg = MinikabConfig::paper();
        // Matrix alone is ~8.4 GB.
        let gb = matrix_bytes(cfg) as f64 / 1e9;
        assert!(gb > 8.0 && gb < 9.0, "matrix {gb} GB");
    }

    #[test]
    fn memory_model_reproduces_figure1_constraint() {
        let cfg = MinikabConfig::paper();
        // Paper: on 2 A64FX nodes (32 GB each) the largest plain-MPI
        // configuration is 48 ranks; full population (96) does not fit.
        assert!(
            fits_in_memory(cfg, 48, 2, 32.0),
            "48 ranks on 2 nodes must fit"
        );
        assert!(
            !fits_in_memory(cfg, 96, 2, 32.0),
            "96 ranks on 2 nodes must not fit"
        );
        // The hybrid setup (8 ranks x 12 threads) fits comfortably.
        assert!(fits_in_memory(cfg, 8, 2, 32.0));
        // Single core on one A64FX node fits (Table V ran there).
        assert!(
            fits_in_memory(cfg, 1, 1, 32.0),
            "single-core run must fit on one node"
        );
        // Fulhame (256 GB nodes) can fully populate.
        assert!(fits_in_memory(cfg, 64, 1, 256.0));
        assert!(fits_in_memory(cfg, 384, 6, 256.0));
    }

    #[test]
    fn trace_is_balanced_and_has_two_allreduces() {
        let t = trace(MinikabConfig::paper(), 48);
        let allreduces = t
            .body
            .iter()
            .filter(|p| matches!(p, Phase::Allreduce { .. }))
            .count();
        assert_eq!(allreduces, 2, "CG has two reductions per iteration");
        assert_eq!(t.iterations, 1000);
        // Total flops ~ iterations * (2nnz + ~10n).
        let per_iter = t.total_work().flops / u64::from(t.iterations);
        let expect = 2 * BENCHMARK1_NNZ + 10 * BENCHMARK1_DOF;
        let rel = (per_iter as f64 - expect as f64).abs() / expect as f64;
        assert!(rel < 0.05, "per-iteration flops {per_iter} vs {expect}");
    }

    #[test]
    fn halo_is_1d_chain() {
        let t = trace(MinikabConfig::paper(), 8);
        if let Phase::Halo { pairs } = &t.body[0] {
            assert_eq!(pairs.len(), 7);
            for (i, &(a, b, bytes)) in pairs.iter().enumerate() {
                assert_eq!((a, b), (i as u32, i as u32 + 1));
                assert_eq!(bytes, 147 * 147 * 3 * 8);
            }
        } else {
            panic!("first phase must be the halo");
        }
    }

    #[test]
    fn spmv_work_splits_evenly() {
        let t1 = trace(MinikabConfig::paper(), 1);
        let t8 = trace(MinikabConfig::paper(), 8);
        let f1 = t1.total_work().flops;
        let f8 = t8.total_work().flops;
        let rel = (f1 as f64 - f8 as f64).abs() / f1 as f64;
        assert!(
            rel < 0.01,
            "strong scaling conserves total work: {f1} vs {f8}"
        );
    }
}
