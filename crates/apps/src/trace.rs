//! Execution traces: the interface between applications and the cost model.
//!
//! An application, given a problem size and an MPI placement, emits a
//! [`Trace`]: the phases of one (representative) iteration plus how many
//! iterations the benchmark runs. The `a64fx-core` executor replays the
//! phases onto a `simmpi::World`, pricing every compute phase with the
//! per-system roofline for its [`KernelClass`].

use archsim::AccessPattern;
use densela::Work;
use serde::{Deserialize, Serialize};

/// The kernel taxonomy used by the cost model. Each class carries its own
/// per-architecture efficiency calibration, because the paper's core finding
/// is precisely that different kernel shapes land very differently on the
/// A64FX (HPCG/Nekbone excel; OpenSBLI's small stencil sweeps suffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// Sparse matrix–vector products (HPCG, minikab). Memory-bound,
    /// indirect addressing, vectorises moderately.
    SpMV,
    /// Symmetric Gauss–Seidel sweeps (HPCG smoother). Memory-bound and
    /// dependency-chained: barely vectorises anywhere.
    SymGS,
    /// Generated finite-difference stencil sweeps (OpenSBLI/OPS): many
    /// small loop bodies; front-end/L2-sensitive on the A64FX.
    StencilFD,
    /// Hand-written finite-volume CFD flux sweeps (COSA): long vectorisable
    /// Fortran loops, bandwidth-bound, where the A64FX's HBM shines.
    CfdFlux,
    /// Batched small dense tensor contractions (Nekbone `ax`). Mostly
    /// cache-resident: compute-bound where the compiler pipelines well.
    SmallGemm,
    /// Large dense BLAS3 (CASTEP subspace rotation via vendor libraries).
    Blas3,
    /// Fast Fourier transforms (CASTEP).
    Fft,
    /// Long-vector streaming ops: AXPY/WAXPBY/copies.
    VectorOp,
    /// Local part of dot products / reductions (paired with allreduces).
    Dot,
}

impl KernelClass {
    /// All classes (used by calibration tables and ablations).
    pub fn all() -> [KernelClass; 9] {
        [
            KernelClass::SpMV,
            KernelClass::SymGS,
            KernelClass::StencilFD,
            KernelClass::CfdFlux,
            KernelClass::SmallGemm,
            KernelClass::Blas3,
            KernelClass::Fft,
            KernelClass::VectorOp,
            KernelClass::Dot,
        ]
    }

    /// How kernels of this class walk memory — drives the ECM backend's
    /// hardware-prefetch effectiveness. Sparse solvers gather through
    /// column indices, stencils and FFT butterflies stride, everything
    /// else streams.
    pub fn access_pattern(&self) -> AccessPattern {
        match self {
            KernelClass::SpMV | KernelClass::SymGS => AccessPattern::Gather,
            KernelClass::StencilFD | KernelClass::Fft => AccessPattern::Strided,
            KernelClass::CfdFlux
            | KernelClass::SmallGemm
            | KernelClass::Blas3
            | KernelClass::VectorOp
            | KernelClass::Dot => AccessPattern::Streaming,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelClass::SpMV => "SpMV",
            KernelClass::SymGS => "SymGS",
            KernelClass::StencilFD => "StencilFD",
            KernelClass::CfdFlux => "CfdFlux",
            KernelClass::SmallGemm => "SmallGemm",
            KernelClass::Blas3 => "BLAS3",
            KernelClass::Fft => "FFT",
            KernelClass::VectorOp => "VectorOp",
            KernelClass::Dot => "Dot",
        }
    }
}

/// Per-rank distribution of a compute phase's work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkDist {
    /// Every rank performs the same work (weak scaling, balanced strong
    /// scaling).
    Uniform(Work),
    /// Explicit per-rank work (COSA's uneven block distribution).
    PerRank(Vec<Work>),
}

impl WorkDist {
    /// Work of a given rank.
    pub fn of_rank(&self, rank: usize) -> Work {
        match self {
            WorkDist::Uniform(w) => *w,
            WorkDist::PerRank(v) => v[rank],
        }
    }

    /// Total across `ranks` ranks.
    pub fn total(&self, ranks: usize) -> Work {
        match self {
            WorkDist::Uniform(w) => *w * ranks as u64,
            WorkDist::PerRank(v) => {
                assert_eq!(v.len(), ranks);
                v.iter().fold(Work::ZERO, |acc, w| acc + *w)
            }
        }
    }
}

/// One phase of an iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// A compute phase of the given kernel class.
    Compute {
        /// Kernel class for roofline calibration.
        class: KernelClass,
        /// Work per rank.
        work: WorkDist,
        /// Per-rank working-set size in bytes — the data the kernel
        /// revisits across its sweep, which decides what cache level it
        /// runs from under the ECM pricing backend. Zero means unknown:
        /// the ECM backend then streams everything from memory, matching
        /// the flat roofline. The flat backend ignores this field.
        ws_bytes: u64,
    },
    /// An `MPI_Allreduce` of `bytes` per rank.
    Allreduce {
        /// Payload bytes.
        bytes: u64,
    },
    /// A symmetric point-to-point halo exchange; each `(a, b, bytes)` pair
    /// exchanges `bytes` in both directions.
    Halo {
        /// Neighbour pairs with payload sizes.
        pairs: Vec<(u32, u32, u64)>,
    },
    /// An `MPI_Alltoall` with `bytes` per (src, dst) pair.
    Alltoall {
        /// Per-pair payload bytes.
        bytes_per_pair: u64,
    },
    /// An `MPI_Allgather` with `bytes` contributed per rank.
    Allgather {
        /// Per-rank contribution bytes.
        bytes: u64,
    },
    /// An explicit barrier.
    Barrier,
    /// Fixed per-rank runtime overhead (kernel-launch and MPI-progression
    /// costs of frameworks like OPS), microseconds.
    Overhead {
        /// Overhead in microseconds, charged to every rank.
        us: f64,
    },
}

impl Phase {
    /// Human-readable label, e.g. `compute:SymGS (52.4 Mflop)` or
    /// `allreduce(8B)`. Compute phases report rank 0's work — the same
    /// rank-0 view the timeline and trace spans present. The timeline
    /// renderer and the executor's span instrumentation share this label,
    /// which is what lets the conformance tests equate the two views.
    pub fn label(&self) -> String {
        match self {
            Phase::Compute { class, work, .. } => {
                let w = work.of_rank(0);
                format!(
                    "compute:{} ({:.1} Mflop)",
                    class.name(),
                    w.flops as f64 / 1e6
                )
            }
            Phase::Allreduce { bytes } => format!("allreduce({bytes}B)"),
            Phase::Halo { pairs } => format!("halo({} pairs)", pairs.len()),
            Phase::Alltoall { bytes_per_pair } => format!("alltoall({bytes_per_pair}B/pair)"),
            Phase::Allgather { bytes } => format!("allgather({bytes}B)"),
            Phase::Barrier => "barrier".to_string(),
            Phase::Overhead { us } => format!("runtime overhead ({us}us)"),
        }
    }

    /// The phase kind as a stable machine token — the `phase` attribute on
    /// `app.phase` spans, which the `obs::analyze` attribution keys on
    /// (compute/overhead vs. the communication kinds) without parsing the
    /// human label.
    pub fn kind(&self) -> &'static str {
        match self {
            Phase::Compute { .. } => "compute",
            Phase::Allreduce { .. } => "allreduce",
            Phase::Halo { .. } => "halo",
            Phase::Alltoall { .. } => "alltoall",
            Phase::Allgather { .. } => "allgather",
            Phase::Barrier => "barrier",
            Phase::Overhead { .. } => "overhead",
        }
    }
}

/// What a coordinated checkpoint of this application must persist, and how
/// often the app's iteration structure naturally allows one. Apps that
/// cannot meaningfully checkpoint (or whose solver state we do not model)
/// leave [`Trace::checkpoint`] as `None`; the resilient executor then falls
/// back to restarting the job from the top on failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointSpec {
    /// Bytes each rank writes to stable storage per checkpoint (the
    /// solver's live vectors — for a CG solve: x, r, p and the scratch
    /// operand).
    pub bytes_per_rank: u64,
    /// The interval, in body iterations, the app suggests between
    /// checkpoints (always `>= 1`). Callers may override it, e.g. with
    /// Young's optimum for a given MTBF.
    pub suggested_interval_iters: u32,
}

/// The execution trace of a benchmark: a prologue (run once), a body (run
/// `iterations` times) and the flops that the benchmark's own figure of
/// merit counts (HPCG and Nekbone report GFLOP/s over *counted* flops, not
/// all flops executed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Number of MPI ranks the trace is built for.
    pub ranks: u32,
    /// Phases run once at the start (setup, first residual, ...).
    pub prologue: Vec<Phase>,
    /// Phases of one iteration of the main loop.
    pub body: Vec<Phase>,
    /// Times the body executes.
    pub iterations: u32,
    /// Total flops the benchmark's figure of merit counts (across all ranks
    /// and all iterations). Zero if the benchmark reports runtime only.
    pub fom_flops: f64,
    /// Checkpointable solver state, if the app supports it.
    pub checkpoint: Option<CheckpointSpec>,
}

impl Trace {
    /// Total compute work across all ranks, prologue + all iterations.
    pub fn total_work(&self) -> Work {
        let ranks = self.ranks as usize;
        let sum = |phases: &[Phase]| -> Work {
            phases.iter().fold(Work::ZERO, |acc, p| match p {
                Phase::Compute { work, .. } => acc + work.total(ranks),
                _ => acc,
            })
        };
        sum(&self.prologue) + sum(&self.body) * u64::from(self.iterations)
    }

    /// Total bytes exchanged point-to-point per iteration of the body.
    pub fn body_halo_bytes(&self) -> u64 {
        self.body
            .iter()
            .map(|p| match p {
                Phase::Halo { pairs } => 2 * pairs.iter().map(|&(_, _, b)| b).sum::<u64>(),
                _ => 0,
            })
            .sum()
    }

    /// Approximate heap footprint of this trace in bytes — the cost the
    /// bounded trace cache charges against its capacity. Counts the
    /// variable-length payloads (per-rank work vectors, halo pair lists)
    /// at their in-memory size plus a fixed per-phase overhead; exactness
    /// doesn't matter, monotonicity with actual footprint does.
    pub fn approx_bytes(&self) -> u64 {
        const FIXED: u64 = 128; // Trace header + Vec headers + checkpoint
        const PER_PHASE: u64 = 64; // enum discriminant + inline fields
        let phase = |p: &Phase| -> u64 {
            PER_PHASE
                + match p {
                    Phase::Compute {
                        work: WorkDist::PerRank(v),
                        ..
                    } => 24 * v.len() as u64,
                    Phase::Halo { pairs } => 24 * pairs.len() as u64,
                    _ => 0,
                }
        };
        FIXED
            + self.prologue.iter().map(phase).sum::<u64>()
            + self.body.iter().map(phase).sum::<u64>()
    }

    /// Number of collective operations per iteration of the body.
    pub fn body_collectives(&self) -> usize {
        self.body
            .iter()
            .filter(|p| {
                matches!(
                    p,
                    Phase::Allreduce { .. }
                        | Phase::Alltoall { .. }
                        | Phase::Allgather { .. }
                        | Phase::Barrier
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workdist_totals() {
        let u = WorkDist::Uniform(Work::new(10, 20, 30));
        assert_eq!(u.total(4).flops, 40);
        assert_eq!(u.of_rank(3).flops, 10);
        let p = WorkDist::PerRank(vec![Work::new(1, 0, 0), Work::new(5, 0, 0)]);
        assert_eq!(p.total(2).flops, 6);
        assert_eq!(p.of_rank(1).flops, 5);
    }

    #[test]
    fn trace_totals_scale_with_iterations() {
        let t = Trace {
            ranks: 2,
            prologue: vec![Phase::Compute {
                class: KernelClass::VectorOp,
                work: WorkDist::Uniform(Work::new(100, 0, 0)),
                ws_bytes: 0,
            }],
            body: vec![
                Phase::Compute {
                    class: KernelClass::SpMV,
                    work: WorkDist::Uniform(Work::new(10, 0, 0)),
                    ws_bytes: 0,
                },
                Phase::Allreduce { bytes: 8 },
                Phase::Halo {
                    pairs: vec![(0, 1, 50)],
                },
            ],
            iterations: 5,
            fom_flops: 0.0,
            checkpoint: None,
        };
        assert_eq!(t.total_work().flops, 200 + 5 * 20);
        assert_eq!(t.body_halo_bytes(), 100);
        assert_eq!(t.body_collectives(), 1);
    }

    #[test]
    fn approx_bytes_tracks_payload_sizes() {
        let small = Trace {
            ranks: 2,
            prologue: vec![],
            body: vec![Phase::Barrier],
            iterations: 1,
            fom_flops: 0.0,
            checkpoint: None,
        };
        let big = Trace {
            ranks: 2,
            prologue: vec![Phase::Halo {
                pairs: vec![(0, 1, 8); 100],
            }],
            body: vec![
                Phase::Compute {
                    class: KernelClass::SpMV,
                    work: WorkDist::PerRank(vec![Work::ZERO; 64]),
                    ws_bytes: 0,
                },
                Phase::Barrier,
            ],
            iterations: 1,
            fom_flops: 0.0,
            checkpoint: None,
        };
        assert!(small.approx_bytes() > 0);
        assert!(
            big.approx_bytes() > small.approx_bytes() + 100 * 24,
            "cost must grow with payload: {} vs {}",
            big.approx_bytes(),
            small.approx_bytes()
        );
    }

    #[test]
    fn phase_labels_render() {
        let c = Phase::Compute {
            class: KernelClass::SymGS,
            work: WorkDist::Uniform(Work::new(52_400_000, 0, 0)),
            ws_bytes: 0,
        };
        assert_eq!(c.label(), "compute:SymGS (52.4 Mflop)");
        assert_eq!(Phase::Allreduce { bytes: 8 }.label(), "allreduce(8B)");
        assert_eq!(
            Phase::Halo {
                pairs: vec![(0, 1, 10), (1, 2, 10)]
            }
            .label(),
            "halo(2 pairs)"
        );
        assert_eq!(Phase::Barrier.label(), "barrier");
        assert_eq!(
            Phase::Overhead { us: 3.5 }.label(),
            "runtime overhead (3.5us)"
        );
    }

    #[test]
    fn kernel_classes_enumerate() {
        assert_eq!(KernelClass::all().len(), 9);
        let names: std::collections::HashSet<_> =
            KernelClass::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 9, "names must be unique");
    }

    #[test]
    fn access_patterns_follow_kernel_shape() {
        assert_eq!(KernelClass::SpMV.access_pattern(), AccessPattern::Gather);
        assert_eq!(KernelClass::SymGS.access_pattern(), AccessPattern::Gather);
        assert_eq!(
            KernelClass::StencilFD.access_pattern(),
            AccessPattern::Strided
        );
        assert_eq!(KernelClass::Fft.access_pattern(), AccessPattern::Strided);
        assert_eq!(
            KernelClass::VectorOp.access_pattern(),
            AccessPattern::Streaming
        );
        for class in KernelClass::all() {
            let p = class.access_pattern().prefetch_effectiveness();
            assert!((0.0..=1.0).contains(&p), "{class:?}");
        }
    }

    #[test]
    #[should_panic]
    fn per_rank_total_checks_length() {
        let p = WorkDist::PerRank(vec![Work::ZERO; 3]);
        let _ = p.total(4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{cosa, hpcg, minikab, nekbone, opensbli};
    use proptest::prelude::*;

    /// Every app's trace must be well-formed for any rank count: halo pairs
    /// within range, per-rank work vectors of the right length, and at
    /// least one compute phase.
    fn check_trace(t: &Trace) {
        assert!(t.iterations >= 1);
        let mut has_compute = false;
        for p in &t.body {
            match p {
                Phase::Compute { work, ws_bytes, .. } => {
                    has_compute = true;
                    if let WorkDist::PerRank(v) = work {
                        assert_eq!(v.len(), t.ranks as usize);
                    }
                    assert!(
                        *ws_bytes > 0,
                        "app compute phases must declare a working set"
                    );
                }
                Phase::Halo { pairs } => {
                    for &(a, b, bytes) in pairs {
                        assert!(a < t.ranks && b < t.ranks, "pair ({a},{b}) out of range");
                        assert!(a != b);
                        assert!(bytes > 0);
                    }
                }
                _ => {}
            }
        }
        assert!(has_compute, "a benchmark iteration must compute something");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn hpcg_traces_well_formed(ranks in 1u32..128) {
            check_trace(&hpcg::trace(hpcg::HpcgConfig::paper(), ranks));
        }

        #[test]
        fn minikab_traces_well_formed(ranks in 1u32..128) {
            check_trace(&minikab::trace(minikab::MinikabConfig::paper(), ranks));
        }

        #[test]
        fn nekbone_traces_well_formed(ranks in 1u32..128) {
            check_trace(&nekbone::trace(nekbone::NekboneConfig::paper(), ranks));
        }

        #[test]
        fn cosa_traces_well_formed(ranks in 1u32..1100) {
            check_trace(&cosa::trace(cosa::CosaConfig::paper(), ranks));
        }

        #[test]
        fn opensbli_traces_well_formed(ranks in 1u32..128) {
            check_trace(&opensbli::trace(opensbli::OpensbliConfig::paper(), ranks));
        }

        #[test]
        fn strong_scaled_apps_conserve_total_flops(r1 in 1u32..64, r2 in 1u32..64) {
            let a = minikab::trace(minikab::MinikabConfig::paper(), r1).total_work().flops as f64;
            let b = minikab::trace(minikab::MinikabConfig::paper(), r2).total_work().flops as f64;
            prop_assert!((a - b).abs() / a < 0.02, "minikab: {a} vs {b}");
            let a = cosa::trace(cosa::CosaConfig::paper(), r1).total_work().flops;
            let b = cosa::trace(cosa::CosaConfig::paper(), r2).total_work().flops;
            prop_assert_eq!(a, b);
        }
    }
}
