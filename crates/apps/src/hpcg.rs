//! HPCG — the High Performance Conjugate Gradients benchmark (paper §V).
//!
//! The paper runs HPCG in MPI-only mode, one rank per core, with a local
//! grid of `--nx=80 --ny=80 --nz=80` per process, and compares single-node
//! (Table III) and 1–8 node (Table IV) GFLOP/s across the five systems,
//! including vendor-optimised variants on NGIO and Fulhame.
//!
//! Our implementation mirrors the reference benchmark's structure: a
//! 27-point stencil operator, CG iterations preconditioned by a 4-level
//! geometric multigrid V-cycle with symmetric Gauss–Seidel smoothing, halo
//! exchanges at every level, and two allreduce-coupled dot products per
//! iteration. [`run_real`] executes it; [`trace`] emits the same structure
//! as a work-model trace at paper scale.

use crate::trace::{CheckpointSpec, KernelClass, Phase, Trace, WorkDist};
use densela::Work;
use sparsela::cg::{cg_matfree, pcg_solve};
use sparsela::coloring::Coloring;
use sparsela::ell::SellMatrix;
use sparsela::mg::MgHierarchy;
use sparsela::parallel::Team;
use sparsela::partition::Partition3d;

const F64B: u64 = 8;
const IDXB: u64 = 4;

/// HPCG configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HpcgConfig {
    /// Local grid dimensions per MPI rank (the paper uses 80×80×80).
    pub local: (usize, usize, usize),
    /// Multigrid levels (reference HPCG: 4).
    pub mg_levels: usize,
    /// CG iterations per set (reference HPCG: 50).
    pub iterations: u32,
}

impl HpcgConfig {
    /// The paper's configuration: 80³ local grid, 4 MG levels, 50-iteration
    /// CG sets.
    pub fn paper() -> Self {
        HpcgConfig {
            local: (80, 80, 80),
            mg_levels: 4,
            iterations: 50,
        }
    }

    /// A reduced configuration for tests and examples.
    pub fn test(n: usize) -> Self {
        HpcgConfig {
            local: (n, n, n),
            mg_levels: 3,
            iterations: 25,
        }
    }
}

/// Result of a real (executing) HPCG run.
#[derive(Debug, Clone)]
pub struct HpcgRealResult {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub rel_residual: f64,
    /// Whether the run converged below 1e-6 (informational — reference HPCG
    /// always runs its full iteration count).
    pub converged: bool,
    /// Total counted work.
    pub work: Work,
}

/// Execute HPCG for real on a single in-memory grid (the per-rank problem).
/// This is the code path the correctness tests exercise.
pub fn run_real(cfg: HpcgConfig) -> HpcgRealResult {
    let (nx, ny, nz) = cfg.local;
    let mg = MgHierarchy::new(nx, ny, nz, cfg.mg_levels);
    let a = mg.fine_operator().clone();
    let n = a.rows();
    // Reference HPCG uses b = A * ones, x0 = 0.
    let ones = vec![1.0; n];
    let mut b = vec![0.0; n];
    let mut w = a.spmv(&ones, &mut b);
    let mut x = vec![0.0; n];
    let res = pcg_solve(&a, &b, &mut x, cfg.iterations as usize, 1e-12, |r, z| {
        mg.vcycle(r, z)
    });
    w += res.work;
    HpcgRealResult {
        iterations: res.iterations,
        rel_residual: res.rel_residual,
        converged: res.rel_residual < 1e-6,
        work: w,
    }
}

/// Execute the *optimised* HPCG kernel path for real: the operator in
/// SELL-C-σ storage (vector-friendly SpMV) and a multi-colour symmetric
/// Gauss–Seidel preconditioner (parallelisable smoothing) — the two kernel
/// rewrites behind the vendor variants in the paper's Table III. Solves the
/// same problem as [`run_real`]; the tests check both agree.
pub fn run_real_optimised(cfg: HpcgConfig) -> HpcgRealResult {
    run_real_optimised_threaded(cfg, 1)
}

/// The optimised kernel path on a `threads`-wide persistent kernel-pool
/// [`Team`]: slice-parallel SELL-C-σ SpMV and colour-parallel multicolour
/// SymGS, both bit-identical to their serial counterparts, so the result is
/// exactly [`run_real_optimised`]'s for any thread count.
pub fn run_real_optimised_threaded(cfg: HpcgConfig, threads: usize) -> HpcgRealResult {
    let (nx, ny, nz) = cfg.local;
    let a = sparsela::gen::stencil27(nx, ny, nz);
    let sell = SellMatrix::from_csr(&a, 8, 32);
    let coloring = Coloring::stencil8(nx, ny, nz);
    let team = Team::new(threads);
    let n = a.rows();
    let ones = vec![1.0; n];
    let mut b = vec![0.0; n];
    let mut w = a.spmv(&ones, &mut b);
    let mut x = vec![0.0; n];
    let res = cg_matfree(
        |p, out| team.sell_spmv(&sell, p, out),
        &b,
        &mut x,
        cfg.iterations as usize,
        1e-12,
        Some(|r: &[f64], z: &mut [f64]| {
            z.fill(0.0);
            team.mc_symgs_sweep(&a, &coloring, r, z)
        }),
    );
    w += res.work;
    HpcgRealResult {
        iterations: res.iterations,
        rel_residual: res.rel_residual,
        converged: res.rel_residual < 1e-6,
        work: w,
    }
}

/// Non-zero count of the 27-point operator on an `nx×ny×nz` grid: per-axis
/// neighbour counts (3 interior, 2 at each boundary) multiply, so the total
/// is `(3nx−2)(3ny−2)(3nz−2)`.
pub fn stencil27_nnz(nx: usize, ny: usize, nz: usize) -> u64 {
    ((3 * nx - 2) * (3 * ny - 2) * (3 * nz - 2)) as u64
}

/// Analytic SpMV work on the level grid (mirrors `CsrMatrix::spmv_work`).
pub fn spmv_work_analytic(dims: (usize, usize, usize)) -> Work {
    let nnz = stencil27_nnz(dims.0, dims.1, dims.2);
    let n = (dims.0 * dims.1 * dims.2) as u64;
    Work::new(2 * nnz, nnz * (F64B + IDXB) + 2 * n * F64B, n * F64B)
}

/// Analytic symmetric Gauss–Seidel work (mirrors `symgs::symgs_work`).
pub fn symgs_work_analytic(dims: (usize, usize, usize)) -> Work {
    let nnz = stencil27_nnz(dims.0, dims.1, dims.2);
    let n = (dims.0 * dims.1 * dims.2) as u64;
    Work::new(
        4 * nnz + 2 * n,
        2 * (nnz * (F64B + IDXB) + 2 * n * F64B),
        2 * n * F64B,
    )
}

/// Per-rank memory footprint of the HPCG problem in bytes: all MG level
/// matrices (12 B/nnz + row pointers) plus the CG vector set.
pub fn memory_bytes_per_rank(cfg: HpcgConfig) -> u64 {
    let (mut nx, mut ny, mut nz) = cfg.local;
    let mut total = 0u64;
    for _ in 0..cfg.mg_levels {
        let n = (nx * ny * nz) as u64;
        total += stencil27_nnz(nx, ny, nz) * (F64B + IDXB) + (n + 1) * 8;
        total += 4 * n * F64B; // level vectors (r, z, Ax, scratch)
        nx /= 2;
        ny /= 2;
        nz /= 2;
    }
    let n = (cfg.local.0 * cfg.local.1 * cfg.local.2) as u64;
    total + 6 * n * F64B // x, b, r, z, p, Ap
}

fn level_dims(cfg: HpcgConfig, level: usize) -> (usize, usize, usize) {
    (
        cfg.local.0 >> level,
        cfg.local.1 >> level,
        cfg.local.2 >> level,
    )
}

/// Per-rank working set of one MG level's sparse kernels (SpMV/SymGS): the
/// level matrix (values, column indices, row pointers) plus the vector set
/// the sweep revisits. This is what decides whether the coarse levels run
/// from cache under the ECM pricing backend.
pub fn level_ws_bytes(dims: (usize, usize, usize)) -> u64 {
    let n = (dims.0 * dims.1 * dims.2) as u64;
    stencil27_nnz(dims.0, dims.1, dims.2) * (F64B + IDXB) + (n + 1) * 8 + 4 * n * F64B
}

/// Halo pairs for one MG level: face exchange of one ghost layer over the
/// rank partition (each face cell carries one f64).
fn level_halo(part: &Partition3d, cfg: HpcgConfig, level: usize) -> Vec<(u32, u32, u64)> {
    let d = level_dims(cfg, level);
    // In the weak layout neighbours differ in exactly one process-grid axis;
    // the shared face area is the product of the other two local dims at
    // this level.
    let mut pairs = Vec::new();
    for r in 0..part.ranks() {
        let (cx, cy, cz) = part.coords_of(r);
        let (px, py, pz) = part.pgrid;
        if cx + 1 < px {
            pairs.push((
                r as u32,
                part.rank_of((cx + 1, cy, cz)) as u32,
                (d.1 * d.2) as u64 * F64B,
            ));
        }
        if cy + 1 < py {
            pairs.push((
                r as u32,
                part.rank_of((cx, cy + 1, cz)) as u32,
                (d.0 * d.2) as u64 * F64B,
            ));
        }
        if cz + 1 < pz {
            pairs.push((
                r as u32,
                part.rank_of((cx, cy, cz + 1)) as u32,
                (d.0 * d.1) as u64 * F64B,
            ));
        }
    }
    pairs
}

/// Build the HPCG execution trace for `ranks` MPI ranks (weak layout: every
/// rank owns a `cfg.local` box, as the benchmark prescribes).
pub fn trace(cfg: HpcgConfig, ranks: u32) -> Trace {
    let part = Partition3d::weak(cfg.local, ranks as usize);
    let n_local = (cfg.local.0 * cfg.local.1 * cfg.local.2) as u64;
    let vec_bytes = n_local * F64B;

    let mut body: Vec<Phase> = Vec::new();

    // --- Multigrid V-cycle preconditioner (z = M^-1 r) ---
    for level in 0..cfg.mg_levels {
        let d = level_dims(cfg, level);
        let halo = level_halo(&part, cfg, level);
        if level + 1 < cfg.mg_levels {
            // Pre-smooth + post-smooth + residual SpMV.
            body.push(Phase::Halo {
                pairs: halo.clone(),
            });
            body.push(Phase::Compute {
                class: KernelClass::SymGS,
                work: WorkDist::Uniform(symgs_work_analytic(d) * 2),
                ws_bytes: level_ws_bytes(d),
            });
            body.push(Phase::Halo { pairs: halo });
            body.push(Phase::Compute {
                class: KernelClass::SpMV,
                work: WorkDist::Uniform(spmv_work_analytic(d)),
                ws_bytes: level_ws_bytes(d),
            });
            // Restrict + prolong vector traffic.
            let nc = ((d.0 / 2) * (d.1 / 2) * (d.2 / 2)) as u64;
            body.push(Phase::Compute {
                class: KernelClass::VectorOp,
                work: WorkDist::Uniform(Work::new(nc, 3 * nc * F64B, 2 * nc * F64B)),
                ws_bytes: 5 * nc * F64B,
            });
        } else {
            body.push(Phase::Halo { pairs: halo });
            body.push(Phase::Compute {
                class: KernelClass::SymGS,
                work: WorkDist::Uniform(symgs_work_analytic(d)),
                ws_bytes: level_ws_bytes(d),
            });
        }
    }

    // --- CG iteration proper ---
    // dot(r, z) -> allreduce
    body.push(Phase::Compute {
        class: KernelClass::Dot,
        work: WorkDist::Uniform(Work::new(2 * n_local, 2 * vec_bytes, 0)),
        ws_bytes: 2 * vec_bytes,
    });
    body.push(Phase::Allreduce { bytes: 8 });
    // p update (waxpby)
    body.push(Phase::Compute {
        class: KernelClass::VectorOp,
        work: WorkDist::Uniform(Work::new(3 * n_local, 2 * vec_bytes, vec_bytes)),
        ws_bytes: 3 * vec_bytes,
    });
    // SpMV(A, p) with halo
    body.push(Phase::Halo {
        pairs: level_halo(&part, cfg, 0),
    });
    body.push(Phase::Compute {
        class: KernelClass::SpMV,
        work: WorkDist::Uniform(spmv_work_analytic(cfg.local)),
        ws_bytes: level_ws_bytes(cfg.local),
    });
    // dot(p, Ap) -> allreduce
    body.push(Phase::Compute {
        class: KernelClass::Dot,
        work: WorkDist::Uniform(Work::new(2 * n_local, 2 * vec_bytes, 0)),
        ws_bytes: 2 * vec_bytes,
    });
    body.push(Phase::Allreduce { bytes: 8 });
    // x, r updates (2 waxpby) + residual norm (dot + allreduce)
    body.push(Phase::Compute {
        class: KernelClass::VectorOp,
        work: WorkDist::Uniform(Work::new(6 * n_local, 4 * vec_bytes, 2 * vec_bytes)),
        ws_bytes: 6 * vec_bytes,
    });
    body.push(Phase::Compute {
        class: KernelClass::Dot,
        work: WorkDist::Uniform(Work::new(2 * n_local, vec_bytes, 0)),
        ws_bytes: vec_bytes,
    });
    body.push(Phase::Allreduce { bytes: 8 });

    // Prologue: b = A*ones, initial residual.
    let prologue = vec![
        Phase::Halo {
            pairs: level_halo(&part, cfg, 0),
        },
        Phase::Compute {
            class: KernelClass::SpMV,
            work: WorkDist::Uniform(spmv_work_analytic(cfg.local)),
            ws_bytes: level_ws_bytes(cfg.local),
        },
        Phase::Compute {
            class: KernelClass::VectorOp,
            work: WorkDist::Uniform(Work::new(n_local, 2 * vec_bytes, vec_bytes)),
            ws_bytes: 3 * vec_bytes,
        },
        Phase::Allreduce { bytes: 8 },
    ];

    let mut t = Trace {
        ranks,
        prologue,
        body,
        iterations: cfg.iterations,
        fom_flops: 0.0,
        // CG live vectors (x, r, p, z) — what a coordinated checkpoint of
        // an HPCG-like solve has to persist per rank.
        checkpoint: Some(CheckpointSpec {
            bytes_per_rank: 4 * vec_bytes,
            suggested_interval_iters: cfg.iterations.div_ceil(10).max(1),
        }),
    };
    // HPCG's figure of merit counts the flops of the phases above.
    t.fom_flops = t.total_work().flops as f64;
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsela::gen::stencil27;
    use sparsela::symgs::symgs_work;

    #[test]
    fn real_run_converges() {
        let res = run_real(HpcgConfig::test(8));
        assert!(res.rel_residual < 1e-6, "residual {res:?}");
        assert!(res.work.flops > 0);
    }

    #[test]
    fn optimised_path_converges_like_reference() {
        let cfg = HpcgConfig::test(8);
        let reference = run_real(cfg);
        let optimised = run_real_optimised(cfg);
        assert!(optimised.rel_residual < 1e-6, "optimised: {optimised:?}");
        assert!(reference.rel_residual < 1e-6);
        // Both kernel paths solve the same linear system.
        assert!(optimised.converged && reference.converged);
    }

    #[test]
    fn threaded_optimised_path_is_bit_identical_to_serial() {
        // Slice-parallel SELL SpMV and colour-parallel MC-SymGS both match
        // their serial kernels bit-for-bit, so the whole solve must too.
        let cfg = HpcgConfig::test(6);
        let serial = run_real_optimised(cfg);
        let threaded = run_real_optimised_threaded(cfg, 4);
        assert_eq!(serial.iterations, threaded.iterations);
        assert_eq!(
            serial.rel_residual.to_bits(),
            threaded.rel_residual.to_bits()
        );
        assert_eq!(serial.work, threaded.work);
    }

    #[test]
    fn nnz_formula_matches_generator() {
        for (nx, ny, nz) in [(3, 4, 5), (8, 8, 8), (5, 5, 5), (2, 2, 2)] {
            let a = stencil27(nx, ny, nz);
            assert_eq!(a.nnz() as u64, stencil27_nnz(nx, ny, nz), "{nx}x{ny}x{nz}");
        }
    }

    #[test]
    fn analytic_work_matches_kernels() {
        let dims = (6, 6, 6);
        let a = stencil27(dims.0, dims.1, dims.2);
        assert_eq!(spmv_work_analytic(dims), a.spmv_work());
        assert_eq!(symgs_work_analytic(dims), symgs_work(&a));
    }

    #[test]
    fn paper_config_fits_a64fx_memory() {
        // 48 ranks x 80^3 must fit in 32 GB (the paper chose 80^3 for this).
        let per_rank = memory_bytes_per_rank(HpcgConfig::paper());
        let node_total = 48 * per_rank;
        assert!(
            node_total < 30 * (1u64 << 30),
            "total {} GiB",
            node_total >> 30
        );
        // ... while 128^3 would not fit.
        let big = HpcgConfig {
            local: (128, 128, 128),
            mg_levels: 4,
            iterations: 50,
        };
        assert!(48 * memory_bytes_per_rank(big) > 32 * (1u64 << 30));
    }

    #[test]
    fn trace_structure() {
        let t = trace(HpcgConfig::paper(), 48);
        assert_eq!(t.ranks, 48);
        assert_eq!(t.iterations, 50);
        // 3 allreduces per CG iteration (2 dots + residual norm).
        let allreduces = t
            .body
            .iter()
            .filter(|p| matches!(p, Phase::Allreduce { .. }))
            .count();
        assert_eq!(allreduces, 3);
        assert!(t.fom_flops > 0.0);
    }

    #[test]
    fn trace_work_dominated_by_symgs_and_spmv() {
        let t = trace(HpcgConfig::paper(), 1);
        let mut by_class = std::collections::HashMap::new();
        for p in &t.body {
            if let Phase::Compute { class, work, .. } = p {
                *by_class.entry(class.name()).or_insert(0u64) += work.total(1).flops;
            }
        }
        let symgs = by_class["SymGS"];
        let spmv = by_class["SpMV"];
        let vec = by_class["VectorOp"] + by_class["Dot"];
        assert!(symgs > vec, "SymGS must dominate vector work");
        assert!(symgs + spmv > 2 * vec, "matrix kernels dominate HPCG");
    }

    #[test]
    fn multi_rank_trace_has_halo_traffic() {
        let t1 = trace(HpcgConfig::paper(), 1);
        let t8 = trace(HpcgConfig::paper(), 8);
        assert_eq!(t1.body_halo_bytes(), 0, "single rank has no neighbours");
        assert!(t8.body_halo_bytes() > 0);
        // Weak scaling: per-rank work identical regardless of rank count.
        assert_eq!(t8.total_work().flops, 8 * t1.total_work().flops);
    }

    #[test]
    fn single_node_48_rank_fom_near_reference_shape() {
        // The counted flops per iteration per rank for 80^3 should be
        // dominated by the V-cycle: sanity-check the magnitude (reference
        // HPCG: ~0.3 GFLOP per iteration per 80^3 rank... order of 1e8-1e9).
        let t = trace(HpcgConfig::paper(), 1);
        let per_iter = t.total_work().flops as f64 / f64::from(t.iterations);
        assert!(
            per_iter > 1e8 && per_iter < 2e9,
            "per-iteration flops {per_iter}"
        );
    }
}
