//! # a64fx-apps — the six benchmark applications
//!
//! Rust implementations of every benchmark in *Investigating Applications on
//! the A64FX* (Jackson et al., CLUSTER 2020), each in two coupled forms:
//!
//! 1. a **real mini implementation** that actually computes (and is tested
//!    for correctness/physics at laptop scale), and
//! 2. a **work model** emitting an execution [`trace`] — compute phases with
//!    flop/byte counts plus communication phases — at the paper's full
//!    problem sizes, which the `a64fx-core` cost model replays on the
//!    simulated systems.
//!
//! The two forms share their kernels and closed-form work formulas, and the
//! test suites assert that the formulas match instrumented real runs.
//!
//! | module | paper benchmark | core kernels |
//! |---|---|---|
//! | [`hpcg`] | HPCG (§V) | MG-preconditioned CG, SpMV, SymGS |
//! | [`minikab`] | minikab (§VI.A) | plain CG on a structural matrix |
//! | [`nekbone`] | Nekbone (§VI.B) | spectral-element `ax` tensor kernel |
//! | [`cosa`] | COSA (§VII.A) | harmonic-balance block multigrid CFD |
//! | [`castep`] | CASTEP TiN (§VII.B) | 3-D FFT + BLAS3 SCF cycles |
//! | [`opensbli`] | OpenSBLI TGV (§VII.C) | 4th-order finite differences |

#![warn(missing_docs)]

pub mod castep;
pub mod cosa;
pub mod hpcg;
pub mod minikab;
pub mod nekbone;
pub mod opensbli;
pub mod trace;

pub use trace::{KernelClass, Phase, Trace, WorkDist};
