//! Nekbone — the Nek5000 proxy mini-app (paper §VI.B).
//!
//! Nekbone solves a Poisson problem with CG on spectral elements; over 75%
//! of the runtime is the `ax` kernel, which applies the stiffness operator
//! element by element as small tensor contractions. The paper runs the
//! largest repository test case — 200 local elements of polynomial order
//! 16³ — weak-scaled, and reports:
//!
//! * node GFLOP/s with and without fast-math (Table VI: A64FX 175.74 →
//!   312.34 with `-Kfast`, beating a V100's ~300);
//! * single-node core-count scaling (Figure 3);
//! * inter-node parallel efficiency to 16 nodes (Table VII).
//!
//! [`run_real`] assembles a chain of real spectral elements with direct
//! stiffness summation (the assembled operator `QᵀA_LQ`, symmetric positive
//! semi-definite, masked to Dirichlet ends) and solves it with CG;
//! [`trace`] emits the weak-scaled work model.

use crate::trace::{CheckpointSpec, KernelClass, Phase, Trace, WorkDist};
use densela::tensor::{gll_derivative_matrix, local_ax, local_ax_work, AxScratch};
use densela::{DMatrix, Work};
use sparsela::cg::{cg_matfree, CgResult};

const F64B: u64 = 8;

/// Nekbone configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NekboneConfig {
    /// Elements per MPI rank (weak scaling; the paper uses 200).
    pub elements_per_rank: usize,
    /// Polynomial order (points per element edge; the paper uses 16).
    pub poly: usize,
    /// CG iterations (Nekbone runs a fixed 100-iteration solve).
    pub iterations: u32,
}

impl NekboneConfig {
    /// The paper's largest-test-case configuration.
    pub fn paper() -> Self {
        NekboneConfig {
            elements_per_rank: 200,
            poly: 16,
            iterations: 100,
        }
    }

    /// Reduced configuration for tests.
    pub fn test() -> Self {
        NekboneConfig {
            elements_per_rank: 4,
            poly: 6,
            iterations: 80,
        }
    }

    /// Grid points per rank (elements × n³, local duplicated storage as in
    /// Nekbone).
    pub fn points_per_rank(&self) -> u64 {
        (self.elements_per_rank * self.poly * self.poly * self.poly) as u64
    }
}

/// A real chain of spectral elements along x with direct stiffness
/// summation into assembled (global) storage and Dirichlet chain ends.
pub struct ElementChain {
    n: usize,
    elements: usize,
    d: DMatrix,
    dt: DMatrix,
    geo: Vec<f64>,
}

impl ElementChain {
    /// Build a chain of `elements` elements of order `n`.
    pub fn new(elements: usize, n: usize) -> Self {
        assert!(elements >= 1 && n >= 2);
        let d = gll_derivative_matrix(n);
        let dt = d.transpose();
        ElementChain {
            n,
            elements,
            d,
            dt,
            geo: vec![1.0; n * n * n],
        }
    }

    /// Assembled (global, shared-face) degrees of freedom.
    pub fn global_dofs(&self) -> usize {
        let nx = self.elements * (self.n - 1) + 1;
        nx * self.n * self.n
    }

    fn nx_global(&self) -> usize {
        self.elements * (self.n - 1) + 1
    }

    #[inline]
    fn gid(&self, e: usize, i: usize, j: usize, k: usize) -> usize {
        let xg = e * (self.n - 1) + i;
        (k * self.n + j) * self.nx_global() + xg
    }

    /// Apply the masked assembled operator `M QᵀA_LQ M` (mask on both sides
    /// keeps it symmetric).
    pub fn apply(&self, u: &[f64], out: &mut [f64], scratch: &mut AxScratch) -> Work {
        assert_eq!(u.len(), self.global_dofs());
        assert_eq!(out.len(), self.global_dofs());
        let n = self.n;
        let n3 = n * n * n;
        let mut work = Work::ZERO;
        out.fill(0.0);
        let mut um = u.to_vec();
        self.mask(&mut um);
        let mut ue = vec![0.0; n3];
        let mut we = vec![0.0; n3];
        for e in 0..self.elements {
            // Scatter: local element view of the masked global vector.
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        ue[(k * n + j) * n + i] = um[self.gid(e, i, j, k)];
                    }
                }
            }
            work += local_ax(&self.d, &self.dt, n, &self.geo, &ue, &mut we, scratch);
            // Gather-add: direct stiffness summation.
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        out[self.gid(e, i, j, k)] += we[(k * n + j) * n + i];
                    }
                }
            }
        }
        self.mask(out);
        // Scatter/gather traffic.
        let pts = (self.elements * n3) as u64;
        work += Work::new(pts, 2 * pts * F64B, pts * F64B);
        work
    }

    /// Zero the two chain-end faces (homogeneous Dirichlet mask).
    pub fn mask(&self, v: &mut [f64]) {
        let n = self.n;
        let nx = self.nx_global();
        for k in 0..n {
            for j in 0..n {
                v[(k * n + j) * nx] = 0.0;
                v[(k * n + j) * nx + nx - 1] = 0.0;
            }
        }
    }
}

/// Solve the Nekbone problem for real: CG on the assembled element chain.
pub fn run_real(cfg: NekboneConfig) -> CgResult {
    let chain = ElementChain::new(cfg.elements_per_rank, cfg.poly);
    let ndof = chain.global_dofs();
    let mut scratch = AxScratch::new(cfg.poly);
    // RHS: a smooth masked field (as Nekbone's set-up does).
    let mut b: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.013).sin()).collect();
    chain.mask(&mut b);
    let mut x = vec![0.0; ndof];
    cg_matfree(
        |p, out| chain.apply(p, out, &mut scratch),
        &b,
        &mut x,
        cfg.iterations as usize,
        1e-8,
        None::<fn(&[f64], &mut [f64]) -> Work>,
    )
}

/// Build the weak-scaling Nekbone trace for `ranks` ranks.
pub fn trace(cfg: NekboneConfig, ranks: u32) -> Trace {
    let n = cfg.poly;
    let e = cfg.elements_per_rank as u64;
    let pts = cfg.points_per_rank();
    let vec_bytes = pts * F64B;

    // The ax kernel: E small tensor contractions.
    let ax = local_ax_work(n) * e;

    // Rank-boundary gather-scatter: ranks form a 3-D grid of element boxes;
    // with 200 ≈ 6×6×6 elements per rank each neighbour pair exchanges a
    // face of elements' worth of GLL face data.
    let elems_per_edge = (cfg.elements_per_rank as f64).cbrt().round().max(1.0) as u64;
    let face_bytes = elems_per_edge * elems_per_edge * (n * n) as u64 * F64B;
    let mut pairs = Vec::new();
    if ranks > 1 {
        for r in 0..ranks - 1 {
            pairs.push((r, r + 1, face_bytes));
        }
        // Close the ring so every rank has two neighbours.
        pairs.push((ranks - 1, 0, face_bytes));
    }

    let body = vec![
        // ax = A p (element contractions + neighbour exchange).
        Phase::Halo { pairs },
        Phase::Compute {
            class: KernelClass::SmallGemm,
            work: WorkDist::Uniform(ax),
            // The contraction's hot set is element-local: two n^3 fields
            // plus the n^2 GLL derivative matrix — the cache residency
            // that makes Nekbone compute-bound.
            ws_bytes: (2 * (n * n * n) as u64 + (n * n) as u64) * F64B,
        },
        // Nekbone's glsc3 reductions: 2 dot products + residual norm.
        Phase::Compute {
            class: KernelClass::Dot,
            work: WorkDist::Uniform(Work::new(6 * pts, 4 * vec_bytes, 0)),
            ws_bytes: 4 * vec_bytes,
        },
        Phase::Allreduce { bytes: 8 },
        Phase::Allreduce { bytes: 8 },
        Phase::Allreduce { bytes: 8 },
        // Vector updates (x, r, p).
        Phase::Compute {
            class: KernelClass::VectorOp,
            work: WorkDist::Uniform(Work::new(8 * pts, 6 * vec_bytes, 3 * vec_bytes)),
            ws_bytes: 6 * vec_bytes,
        },
    ];

    let mut t = Trace {
        ranks,
        prologue: Vec::new(),
        body,
        iterations: cfg.iterations,
        fom_flops: 0.0,
        // Matrix-free CG state: x, r, p and the ax output vector.
        checkpoint: Some(CheckpointSpec {
            bytes_per_rank: 4 * vec_bytes,
            suggested_interval_iters: cfg.iterations.div_ceil(10).max(1),
        }),
    };
    // Nekbone reports GFLOP/s over the CG work it counts.
    t.fom_flops = t.total_work().flops as f64;
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembled_operator_is_symmetric() {
        let chain = ElementChain::new(3, 4);
        let ndof = chain.global_dofs();
        let mut s = AxScratch::new(4);
        let mk = |seed: u64| -> Vec<f64> {
            (0..ndof)
                .map(|i| {
                    let h = (i as u64)
                        .wrapping_add(seed)
                        .wrapping_mul(0x9E3779B97F4A7C15);
                    ((h >> 40) % 100) as f64 / 50.0 - 1.0
                })
                .collect()
        };
        let u = mk(1);
        let v = mk(2);
        let mut au = vec![0.0; ndof];
        let mut av = vec![0.0; ndof];
        chain.apply(&u, &mut au, &mut s);
        chain.apply(&v, &mut av, &mut s);
        // The mask makes the operator act on the interior subspace; compare
        // inner products there (masked entries of Au are zero anyway).
        let mut um = u.clone();
        let mut vm = v.clone();
        chain.mask(&mut um);
        chain.mask(&mut vm);
        let uav: f64 = um.iter().zip(&av).map(|(a, b)| a * b).sum();
        let vau: f64 = vm.iter().zip(&au).map(|(a, b)| a * b).sum();
        assert!(
            (uav - vau).abs() < 1e-8 * (1.0 + uav.abs()),
            "{uav} vs {vau}"
        );
    }

    #[test]
    fn assembled_operator_is_positive_semidefinite() {
        let chain = ElementChain::new(2, 5);
        let ndof = chain.global_dofs();
        let mut s = AxScratch::new(5);
        for seed in 0..5u64 {
            let u: Vec<f64> = (0..ndof)
                .map(|i| {
                    let h = (i as u64)
                        .wrapping_add(seed)
                        .wrapping_mul(0xBF58476D1CE4E5B9);
                    ((h >> 33) % 64) as f64 / 32.0 - 1.0
                })
                .collect();
            let mut au = vec![0.0; ndof];
            chain.apply(&u, &mut au, &mut s);
            let quad: f64 = u.iter().zip(&au).map(|(a, b)| a * b).sum();
            assert!(quad > -1e-8, "u^T A u = {quad} must be >= 0");
        }
    }

    #[test]
    fn global_dofs_share_faces() {
        let chain = ElementChain::new(4, 6);
        // 4 elements of 6 points sharing faces: nx = 4*5+1 = 21.
        assert_eq!(chain.global_dofs(), 21 * 36);
    }

    #[test]
    fn real_solve_reduces_residual() {
        let res = run_real(NekboneConfig::test());
        assert!(!res.history.is_empty());
        let first = res.history.first().unwrap();
        let last = res.history.last().unwrap();
        // The unpreconditioned spectral operator is ill-conditioned (~n^4),
        // so like the real Nekbone a fixed-iteration solve gains a couple of
        // orders, not machine precision.
        assert!(
            last < &(0.1 * first),
            "CG must make progress: {first} -> {last}"
        );
    }

    #[test]
    fn paper_trace_flops_dominated_by_ax() {
        let t = trace(NekboneConfig::paper(), 48);
        let total = t.total_work().flops;
        let mut ax = 0u64;
        for p in &t.body {
            if let Phase::Compute {
                class: KernelClass::SmallGemm,
                work,
                ..
            } = p
            {
                ax += work.total(48).flops;
            }
        }
        let frac = (ax * u64::from(t.iterations)) as f64 / total as f64;
        assert!(
            frac > 0.75,
            "paper: ax is >75% of runtime; flop share {frac}"
        );
    }

    #[test]
    fn weak_scaling_total_flops_proportional_to_ranks() {
        let t1 = trace(NekboneConfig::paper(), 1);
        let t16 = trace(NekboneConfig::paper(), 16);
        assert_eq!(t16.total_work().flops, 16 * t1.total_work().flops);
    }

    #[test]
    fn per_node_fom_magnitude_is_sensible() {
        // 48 ranks x 200 elements x 16^3 x 100 iterations of ~12n^4 MACs per
        // element: ~8e11 flops for a node run.
        let t = trace(NekboneConfig::paper(), 48);
        assert!(
            t.fom_flops > 3e11 && t.fom_flops < 1e14,
            "fom {}",
            t.fom_flops
        );
    }

    #[test]
    fn trace_has_three_reductions_per_iteration() {
        let t = trace(NekboneConfig::paper(), 4);
        assert_eq!(t.body_collectives(), 3);
    }
}
