//! OpenSBLI — compressible finite-difference CFD (paper §VII.C).
//!
//! OpenSBLI generates C code (via OPS) solving the compressible
//! Navier–Stokes equations; the paper's benchmark is the **Taylor–Green
//! vortex** in a cubic periodic domain of length 2π on a 64³ grid (chosen so
//! it fits in the A64FX's 32 GB), pure-MPI, minimal I/O, strong-scaled over
//! 1–8 nodes (Table X). It is the one benchmark where the A64FX clearly
//! *loses* — ~3× slower than Fulhame/NGIO on one node — which the authors'
//! profiling attributes to instruction fetch waits and L2 integer loads:
//! many small generated stencil kernels that the A64FX front end dislikes.
//!
//! [`run_real`] is an actual compressible solver: conservative variables,
//! 4th-order central fluxes, Laplacian viscosity, JST-style 4th-difference
//! dissipation, SSP-RK3 time stepping, periodic domain. The tests verify
//! conservation and TGV physics. [`trace`] emits the strong-scaling work
//! model; the A64FX front-end penalty lives in the cost model's `StencilFD`
//! calibration, as documented in DESIGN.md.

use crate::trace::{KernelClass, Phase, Trace, WorkDist};
use densela::Work;
use sparsela::partition::Partition3d;

const F64B: u64 = 8;
/// Conservative fields: ρ, ρu, ρv, ρw, E.
const NFIELDS: usize = 5;

/// OpenSBLI configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpensbliConfig {
    /// Global cubic grid edge (paper: 64).
    pub grid: usize,
    /// Time steps in the benchmark run.
    pub steps: u32,
    /// Viscosity (1/Re).
    pub viscosity: f64,
    /// Time step size.
    pub dt: f64,
}

impl OpensbliConfig {
    /// The paper's TGV benchmark: 64³, pure MPI. The paper's runtimes
    /// (seconds over the whole run) correspond to a short fixed-step run;
    /// we use 100 steps.
    pub fn paper() -> Self {
        OpensbliConfig {
            grid: 64,
            steps: 100,
            viscosity: 1.0 / 1600.0,
            dt: 1e-3,
        }
    }

    /// Reduced configuration for tests.
    pub fn test() -> Self {
        OpensbliConfig {
            grid: 12,
            steps: 10,
            viscosity: 0.01,
            dt: 5e-4,
        }
    }
}

/// The real Taylor–Green vortex solver state.
pub struct TgvSolver {
    n: usize,
    nu: f64,
    /// Field-major storage: `u[f][cell]`.
    fields: Vec<Vec<f64>>,
}

const GAMMA: f64 = 1.4;

impl TgvSolver {
    /// Initialise the standard TGV field: ρ=1, u = sin x cos y cos z,
    /// v = −cos x sin y cos z, w = 0, p = p₀ + TGV pressure perturbation.
    pub fn new(cfg: OpensbliConfig) -> Self {
        let n = cfg.grid;
        let n3 = n * n * n;
        let mut fields = vec![vec![0.0; n3]; NFIELDS];
        let h = 2.0 * std::f64::consts::PI / n as f64;
        let p0 = 100.0 / GAMMA; // Mach ~0.1
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let i = (z * n + y) * n + x;
                    let (xx, yy, zz) = (x as f64 * h, y as f64 * h, z as f64 * h);
                    let u = xx.sin() * yy.cos() * zz.cos();
                    let v = -xx.cos() * yy.sin() * zz.cos();
                    let w = 0.0;
                    let p = p0
                        + ((2.0 * xx).cos() + (2.0 * yy).cos()) * ((2.0 * zz).cos() + 2.0) / 16.0;
                    let rho = 1.0;
                    fields[0][i] = rho;
                    fields[1][i] = rho * u;
                    fields[2][i] = rho * v;
                    fields[3][i] = rho * w;
                    fields[4][i] = p / (GAMMA - 1.0) + 0.5 * rho * (u * u + v * v + w * w);
                }
            }
        }
        TgvSolver {
            n,
            nu: cfg.viscosity,
            fields,
        }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.n + y) * self.n + x
    }

    #[inline]
    fn wrap(&self, i: i64) -> usize {
        i.rem_euclid(self.n as i64) as usize
    }

    /// 4th-order central first derivative of `f` along `axis` into `out`
    /// (grid spacing h).
    fn ddx(&self, f: &[f64], axis: usize, h: f64, out: &mut [f64]) {
        let n = self.n;
        let c = 1.0 / (12.0 * h);
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let sample = |o: i64| -> f64 {
                        let (mut xx, mut yy, mut zz) = (x as i64, y as i64, z as i64);
                        match axis {
                            0 => xx += o,
                            1 => yy += o,
                            _ => zz += o,
                        }
                        f[self.idx(self.wrap(xx), self.wrap(yy), self.wrap(zz))]
                    };
                    out[self.idx(x, y, z)] =
                        c * (sample(-2) - 8.0 * sample(-1) + 8.0 * sample(1) - sample(2));
                }
            }
        }
    }

    /// 2nd-order Laplacian (for the viscous terms) of `f` into `out`.
    fn laplacian(&self, f: &[f64], h: f64, out: &mut [f64]) {
        let n = self.n;
        let c = 1.0 / (h * h);
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let me = f[self.idx(x, y, z)];
                    let s = f[self.idx(self.wrap(x as i64 - 1), y, z)]
                        + f[self.idx(self.wrap(x as i64 + 1), y, z)]
                        + f[self.idx(x, self.wrap(y as i64 - 1), z)]
                        + f[self.idx(x, self.wrap(y as i64 + 1), z)]
                        + f[self.idx(x, y, self.wrap(z as i64 - 1))]
                        + f[self.idx(x, y, self.wrap(z as i64 + 1))];
                    out[self.idx(x, y, z)] = c * (s - 6.0 * me);
                }
            }
        }
    }

    /// 4th-difference JST dissipation of `f` into `out` (conservative,
    /// periodic; stabilises the central scheme).
    fn dissipation(&self, f: &[f64], eps: f64, out: &mut [f64]) {
        let n = self.n;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let mut acc = 0.0;
                    for axis in 0..3 {
                        let sample = |o: i64| -> f64 {
                            let (mut xx, mut yy, mut zz) = (x as i64, y as i64, z as i64);
                            match axis {
                                0 => xx += o,
                                1 => yy += o,
                                _ => zz += o,
                            }
                            f[self.idx(self.wrap(xx), self.wrap(yy), self.wrap(zz))]
                        };
                        acc -= eps
                            * (sample(-2) - 4.0 * sample(-1) + 6.0 * sample(0) - 4.0 * sample(1)
                                + sample(2));
                    }
                    out[self.idx(x, y, z)] = acc;
                }
            }
        }
    }

    /// Right-hand side dU/dt for the current state `u` (flux form).
    fn rhs(&self, state: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = self.n;
        let n3 = n * n * n;
        let h = 2.0 * std::f64::consts::PI / n as f64;
        // Primitives.
        let mut vel = vec![vec![0.0; n3]; 3];
        let mut pres = vec![0.0; n3];
        for i in 0..n3 {
            let rho = state[0][i];
            let (u, v, w) = (state[1][i] / rho, state[2][i] / rho, state[3][i] / rho);
            vel[0][i] = u;
            vel[1][i] = v;
            vel[2][i] = w;
            pres[i] = (GAMMA - 1.0) * (state[4][i] - 0.5 * rho * (u * u + v * v + w * w));
        }
        let mut rhs = vec![vec![0.0; n3]; NFIELDS];
        let mut flux = vec![0.0; n3];
        let mut dflux = vec![0.0; n3];
        #[allow(clippy::needless_range_loop)] // `axis` also selects the derivative direction
        for axis in 0..3 {
            let va = &vel[axis];
            for f in 0..NFIELDS {
                // Convective flux of field f along `axis`.
                for i in 0..n3 {
                    flux[i] = state[f][i] * va[i];
                }
                if f == axis + 1 {
                    for i in 0..n3 {
                        flux[i] += pres[i];
                    }
                }
                if f == 4 {
                    for i in 0..n3 {
                        flux[i] += pres[i] * va[i];
                    }
                }
                self.ddx(&flux, axis, h, &mut dflux);
                for i in 0..n3 {
                    rhs[f][i] -= dflux[i];
                }
            }
        }
        // Viscous terms: momentum and kinetic-energy diffusion (simplified
        // constant-μ model) + 4th-difference dissipation on all fields.
        let mut lap = vec![0.0; n3];
        for m in 0..3 {
            self.laplacian(&vel[m], h, &mut lap);
            for i in 0..n3 {
                let visc = self.nu * state[0][i] * lap[i];
                rhs[m + 1][i] += visc;
                rhs[4][i] += visc * vel[m][i];
            }
        }
        let eps = 1.0 / 256.0;
        for f in 0..NFIELDS {
            self.dissipation(&state[f], eps, &mut dflux);
            for i in 0..n3 {
                rhs[f][i] += dflux[i];
            }
        }
        rhs
    }

    /// One SSP-RK3 step.
    pub fn step(&mut self, dt: f64) {
        let n3 = self.n * self.n * self.n;
        let u0 = self.fields.clone();
        // Stage 1: u1 = u0 + dt L(u0).
        let l0 = self.rhs(&u0);
        let mut u1 = u0.clone();
        for f in 0..NFIELDS {
            for i in 0..n3 {
                u1[f][i] += dt * l0[f][i];
            }
        }
        // Stage 2: u2 = 3/4 u0 + 1/4 (u1 + dt L(u1)).
        let l1 = self.rhs(&u1);
        let mut u2 = u0.clone();
        for f in 0..NFIELDS {
            for i in 0..n3 {
                u2[f][i] = 0.75 * u0[f][i] + 0.25 * (u1[f][i] + dt * l1[f][i]);
            }
        }
        // Stage 3: u = 1/3 u0 + 2/3 (u2 + dt L(u2)).
        let l2 = self.rhs(&u2);
        for f in 0..NFIELDS {
            for i in 0..n3 {
                self.fields[f][i] = u0[f][i] / 3.0 + 2.0 / 3.0 * (u2[f][i] + dt * l2[f][i]);
            }
        }
    }

    /// Total mass (Σρ · cell volume surrogate).
    pub fn total_mass(&self) -> f64 {
        self.fields[0].iter().sum()
    }

    /// Total x-momentum.
    pub fn total_momentum_x(&self) -> f64 {
        self.fields[1].iter().sum()
    }

    /// Volume-integrated kinetic energy ½ρ|u|².
    pub fn kinetic_energy(&self) -> f64 {
        let n3 = self.n * self.n * self.n;
        (0..n3)
            .map(|i| {
                let rho = self.fields[0][i];
                (self.fields[1][i].powi(2) + self.fields[2][i].powi(2) + self.fields[3][i].powi(2))
                    / (2.0 * rho)
            })
            .sum()
    }

    /// Minimum density (positivity check).
    pub fn min_density(&self) -> f64 {
        self.fields[0].iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Run the real TGV solver; returns (initial KE, final KE, mass drift).
pub fn run_real(cfg: OpensbliConfig) -> (f64, f64, f64) {
    let mut s = TgvSolver::new(cfg);
    let ke0 = s.kinetic_energy();
    let m0 = s.total_mass();
    for _ in 0..cfg.steps {
        s.step(cfg.dt);
    }
    let drift = (s.total_mass() - m0).abs() / m0;
    (ke0, s.kinetic_energy(), drift)
}

/// Modelled flops per cell per RK stage: fluxes for 5 fields × 3 axes
/// (4th-order stencils), primitives, viscous Laplacians, dissipation —
/// OpenSBLI's generated kernels perform on the order of 1,500 flops/cell.
pub const FLOPS_PER_CELL_PER_STAGE: u64 = 1500;

/// Modelled memory traffic per cell per stage: 5 fields plus ~8 work arrays
/// streamed a handful of times each by the many small generated kernels —
/// OPS does not fuse loops, so traffic is high relative to flops.
pub const BYTES_PER_CELL_PER_STAGE: u64 = 5 * 8 * 18;

/// Fixed per-rank overhead per RK stage, microseconds: the OPS runtime
/// launches dozens of generated kernels per stage and progresses MPI between
/// them; this floor is what erodes strong scaling on the tiny 64^3 grid.
pub const STAGE_OVERHEAD_US: f64 = 500.0;

/// Build the strong-scaling OpenSBLI trace for `ranks` ranks.
pub fn trace(cfg: OpensbliConfig, ranks: u32) -> Trace {
    let part = Partition3d::new((cfg.grid, cfg.grid, cfg.grid), ranks as usize);
    let n3 = (cfg.grid * cfg.grid * cfg.grid) as u64;
    let cells_max = part.max_cells() as u64;
    let _ = n3;

    let per_stage = Work::new(
        cells_max * FLOPS_PER_CELL_PER_STAGE,
        cells_max * BYTES_PER_CELL_PER_STAGE,
        cells_max * (NFIELDS as u64) * F64B * 3,
    );
    // Halo exchange per stage: 2-deep ghost layers of all 5 fields.
    let halo = part.halo_pairs(2, (NFIELDS as u64) * F64B);

    let mut body = Vec::new();
    for _stage in 0..3 {
        body.push(Phase::Halo {
            pairs: halo.clone(),
        });
        body.push(Phase::Compute {
            class: KernelClass::StencilFD,
            work: WorkDist::Uniform(per_stage),
            // The stage's live arrays: 5 conserved fields plus ~8 OPS work
            // arrays over the rank's cells.
            ws_bytes: cells_max * (NFIELDS as u64 + 8) * F64B,
        });
        body.push(Phase::Overhead {
            us: STAGE_OVERHEAD_US,
        });
    }
    // One reduction per step (CFL / diagnostics).
    body.push(Phase::Allreduce { bytes: 8 });

    Trace {
        ranks,
        prologue: Vec::new(),
        body,
        iterations: cfg.steps,
        fom_flops: 0.0,
        checkpoint: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_and_momentum_conserved() {
        let cfg = OpensbliConfig::test();
        let mut s = TgvSolver::new(cfg);
        let m0 = s.total_mass();
        let px0 = s.total_momentum_x();
        for _ in 0..cfg.steps {
            s.step(cfg.dt);
        }
        let m1 = s.total_mass();
        assert!(
            ((m1 - m0) / m0).abs() < 1e-10,
            "mass drift {}",
            (m1 - m0) / m0
        );
        // TGV total momentum is zero by symmetry and stays there.
        assert!(px0.abs() < 1e-9);
        assert!(s.total_momentum_x().abs() < 1e-8);
    }

    #[test]
    fn density_stays_positive_and_finite() {
        let cfg = OpensbliConfig::test();
        let mut s = TgvSolver::new(cfg);
        for _ in 0..cfg.steps {
            s.step(cfg.dt);
        }
        assert!(
            s.min_density() > 0.5,
            "density must stay near 1: {}",
            s.min_density()
        );
        assert!(s.kinetic_energy().is_finite());
    }

    #[test]
    fn kinetic_energy_decays_viscously() {
        // With viscosity and no forcing, TGV kinetic energy must decrease.
        let cfg = OpensbliConfig {
            grid: 12,
            steps: 40,
            viscosity: 0.05,
            dt: 5e-4,
        };
        let (ke0, ke1, drift) = run_real(cfg);
        assert!(ke1 < ke0, "KE must decay: {ke0} -> {ke1}");
        assert!(ke1 > 0.5 * ke0, "but only slowly at these parameters");
        assert!(drift < 1e-9);
    }

    #[test]
    fn initial_ke_matches_tgv_analytic() {
        // KE density of the TGV field integrates to (1/16)·ρ·V... on the
        // discrete grid: mean of u²+v² is 1/4, so KE = n³/8.
        let cfg = OpensbliConfig::test();
        let s = TgvSolver::new(cfg);
        let n3 = (cfg.grid * cfg.grid * cfg.grid) as f64;
        let want = n3 / 8.0;
        let got = s.kinetic_energy();
        assert!((got - want).abs() / want < 1e-10, "{got} vs {want}");
    }

    #[test]
    fn paper_grid_fits_a64fx() {
        // 64^3 x 5 fields x ~30 arrays is well under 32 GB — the paper chose
        // this size exactly so single-node comparisons were possible.
        let bytes = 64u64.pow(3) * 5 * 8 * 30;
        assert!(bytes < 32 * (1u64 << 30));
    }

    #[test]
    fn trace_has_three_stages() {
        let t = trace(OpensbliConfig::paper(), 48);
        let stencil_phases = t
            .body
            .iter()
            .filter(|p| {
                matches!(
                    p,
                    Phase::Compute {
                        class: KernelClass::StencilFD,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(stencil_phases, 3, "SSP-RK3 has three stages");
        assert_eq!(t.body_collectives(), 1);
    }

    #[test]
    fn strong_scaling_divides_cells() {
        let t1 = trace(OpensbliConfig::paper(), 1);
        let t8 = trace(OpensbliConfig::paper(), 8);
        let f1 = t1.total_work().flops as f64;
        let f8 = t8.total_work().flops as f64;
        // Max-cells based: within rounding of equal total.
        assert!((f8 - f1).abs() / f1 < 0.05, "{f1} vs {f8}");
        // Per-rank work at 8 ranks is ~1/8th.
        if let Phase::Compute { work, .. } = &t8.body[1] {
            let w8 = work.of_rank(0).flops as f64;
            if let Phase::Compute { work: w, .. } = &t1.body[1] {
                let w1 = w.of_rank(0).flops as f64;
                assert!((w1 / w8 - 8.0).abs() < 0.5);
            }
        }
    }

    #[test]
    fn halo_traffic_grows_with_rank_count() {
        let t8 = trace(OpensbliConfig::paper(), 8);
        let t64 = trace(OpensbliConfig::paper(), 64);
        assert!(t64.body_halo_bytes() > t8.body_halo_bytes());
    }
}
