//! CASTEP — plane-wave density functional theory (paper §VII.B).
//!
//! CASTEP computes materials properties from first principles; its inner
//! loop applies the Kohn–Sham Hamiltonian to every electronic band — a 3-D
//! FFT pair per application — plus dense subspace linear algebra
//! (BLAS3/LAPACK) and density mixing. The paper runs the **TiN** benchmark
//! (CASTEP 18.1) across core counts that are factors or multiples of 8 and
//! reports SCF cycles/s (Figure 5, Table IX): the A64FX (0.145) beats
//! Fulhame (0.141) and ARCHER (0.074) but trails Cascade Lake NGIO (0.184).
//!
//! TiN itself needs pseudopotentials and a licensed code; [`run_real`]
//! implements the same computational pattern honestly — a plane-wave
//! spectral Hamiltonian `H = -½∇² + V(r)` on a periodic grid, bands relaxed
//! by preconditioned steepest descent with Gram–Schmidt re-orthonormalising,
//! the energy decreasing monotonically — built on our own `fftsim`.
//! [`trace`] emits the per-SCF-cycle work model at TiN-like scale.

use crate::trace::{KernelClass, Phase, Trace, WorkDist};
use densela::Work;
use fftsim::complex::Complex64;
use fftsim::fft3d::{fft3_inplace, ifft3_inplace, Fft3Plan};

const C64B: u64 = 16;

/// CASTEP-proxy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CastepConfig {
    /// FFT grid edge (power of two for our radix-2 transform).
    pub grid: usize,
    /// Electronic bands.
    pub bands: usize,
    /// Hamiltonian applications per band per SCF cycle (Davidson-style
    /// inner steps).
    pub h_applies: usize,
    /// SCF cycles to run.
    pub scf_cycles: u32,
}

impl CastepConfig {
    /// TiN-like scale: a 64³ fine grid, 384 bands and 7 Davidson-style
    /// H-applications per band per cycle — sized so one SCF cycle's work
    /// matches the TiN benchmark's order of magnitude.
    pub fn paper() -> Self {
        CastepConfig {
            grid: 64,
            bands: 384,
            h_applies: 7,
            scf_cycles: 10,
        }
    }

    /// Reduced configuration for tests.
    pub fn test() -> Self {
        CastepConfig {
            grid: 8,
            bands: 4,
            h_applies: 2,
            scf_cycles: 8,
        }
    }
}

/// The real plane-wave SCF proxy.
pub struct PlaneWaveSolver {
    n: usize,
    bands: Vec<Vec<Complex64>>,
    potential: Vec<f64>,
    /// |k|²/2 for every reciprocal grid point.
    kinetic: Vec<f64>,
}

impl PlaneWaveSolver {
    /// Set up `nb` random-ish orthonormal bands on an `n³` periodic grid
    /// with a smooth attractive potential.
    pub fn new(n: usize, nb: usize) -> Self {
        let n3 = n * n * n;
        let mut potential = vec![0.0; n3];
        let mut kinetic = vec![0.0; n3];
        let two_pi = 2.0 * std::f64::consts::PI;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let i = (z * n + y) * n + x;
                    potential[i] = -2.0
                        * ((two_pi * x as f64 / n as f64).cos()
                            + (two_pi * y as f64 / n as f64).cos()
                            + (two_pi * z as f64 / n as f64).cos());
                    let kf = |j: usize| {
                        let k = if j <= n / 2 {
                            j as f64
                        } else {
                            j as f64 - n as f64
                        };
                        two_pi * k / n as f64
                    };
                    let (kx, ky, kz) = (kf(x), kf(y), kf(z));
                    kinetic[i] = 0.5 * (kx * kx + ky * ky + kz * kz);
                }
            }
        }
        let mut bands = Vec::with_capacity(nb);
        for b in 0..nb {
            let psi: Vec<Complex64> = (0..n3)
                .map(|i| {
                    let h = ((i * 31 + b * 977 + 7) as u64).wrapping_mul(0x9E3779B97F4A7C15);
                    Complex64::new(
                        ((h >> 20) % 1000) as f64 / 500.0 - 1.0,
                        ((h >> 40) % 1000) as f64 / 500.0 - 1.0,
                    )
                })
                .collect();
            bands.push(psi);
        }
        let mut s = PlaneWaveSolver {
            n,
            bands,
            potential,
            kinetic,
        };
        s.orthonormalise();
        s
    }

    fn dot(a: &[Complex64], b: &[Complex64]) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for (x, y) in a.iter().zip(b) {
            acc += x.conj() * *y;
        }
        acc
    }

    /// Modified Gram–Schmidt re-orthonormalisation of the band set.
    pub fn orthonormalise(&mut self) {
        let nb = self.bands.len();
        for b in 0..nb {
            for prev in 0..b {
                let proj = {
                    let (head, tail) = self.bands.split_at(b);
                    Self::dot(&head[prev], &tail[0])
                };
                let (head, tail) = self.bands.split_at_mut(b);
                let p = &head[prev];
                let cur = &mut tail[0];
                for i in 0..cur.len() {
                    cur[i] = cur[i] - p[i] * proj;
                }
            }
            let norm = Self::dot(&self.bands[b], &self.bands[b]).re.sqrt();
            let inv = 1.0 / norm;
            for v in &mut self.bands[b] {
                *v = v.scale(inv);
            }
        }
    }

    /// Apply `H = -½∇² + V` to one band (2 FFTs + pointwise ops), returning
    /// (Hψ, work).
    pub fn apply_h(&self, psi: &[Complex64]) -> (Vec<Complex64>, Work) {
        let n = self.n;
        let n3 = n * n * n;
        let mut work = Work::ZERO;
        // Kinetic: FFT, multiply by |k|^2/2, inverse FFT.
        let mut kin = psi.to_vec();
        work += fft3_inplace(n, &mut kin);
        for (v, &t) in kin.iter_mut().zip(&self.kinetic) {
            *v = v.scale(t);
        }
        work += ifft3_inplace(n, &mut kin);
        // Potential: pointwise in real space.
        let mut out = vec![Complex64::ZERO; n3];
        for i in 0..n3 {
            out[i] = kin[i] + psi[i].scale(self.potential[i]);
        }
        work += Work::new(4 * n3 as u64, 3 * n3 as u64 * C64B, n3 as u64 * C64B);
        (out, work)
    }

    /// Total energy Σ_b ⟨ψ_b|H|ψ_b⟩ (assumes orthonormal bands).
    pub fn energy(&self) -> f64 {
        self.bands
            .iter()
            .map(|psi| {
                let (h, _) = self.apply_h(psi);
                Self::dot(psi, &h).re
            })
            .sum()
    }

    /// One SCF-like cycle: steepest-descent band updates + re-orthonormalise.
    /// Returns the work performed.
    pub fn scf_cycle(&mut self, step: f64) -> Work {
        let mut work = Work::ZERO;
        let nb = self.bands.len();
        for b in 0..nb {
            let psi = self.bands[b].clone();
            let (h, w) = self.apply_h(&psi);
            work += w;
            let eps = Self::dot(&psi, &h).re;
            let cur = &mut self.bands[b];
            for i in 0..cur.len() {
                // Residual descent: ψ ← ψ − η (Hψ − εψ).
                cur[i] = cur[i] - (h[i] - psi[i].scale(eps)).scale(step);
            }
        }
        self.orthonormalise();
        work
    }
}

/// Run the real SCF proxy; returns the energy after every cycle.
pub fn run_real(cfg: CastepConfig) -> Vec<f64> {
    let mut s = PlaneWaveSolver::new(cfg.grid, cfg.bands);
    let mut energies = Vec::with_capacity(cfg.scf_cycles as usize + 1);
    energies.push(s.energy());
    for _ in 0..cfg.scf_cycles {
        for _ in 0..cfg.h_applies.saturating_sub(1) {
            s.scf_cycle(0.05);
        }
        s.scf_cycle(0.05);
        energies.push(s.energy());
    }
    energies
}

/// Build the CASTEP trace for `ranks` ranks: per SCF cycle, every band gets
/// `h_applies` Hamiltonian applications (2 distributed FFTs each), then the
/// subspace is re-orthonormalised with BLAS3 and collectives.
pub fn trace(cfg: CastepConfig, ranks: u32) -> Trace {
    let n = cfg.grid;
    let n3 = (n * n * n) as u64;
    let nb = cfg.bands as u64;
    let p = ranks as usize;
    let plan = Fft3Plan::new(n, p.min(n));

    // FFT work per rank per cycle: bands x h_applies x 2 transforms, shared
    // over ranks (plane-distributed).
    let fft_per_rank = plan.local_work() * (nb * cfg.h_applies as u64 * 2);
    // Pointwise kinetic/potential ops per rank.
    let point = Work::new(
        6 * n3 * nb * cfg.h_applies as u64 / p as u64,
        4 * n3 * C64B * nb * cfg.h_applies as u64 / p as u64,
        n3 * C64B * nb * cfg.h_applies as u64 / p as u64,
    );
    // Subspace ortho: overlap S = Ψ^H Ψ + transform, performed in
    // plane-wave coefficient space — the G-sphere holds ~n³/16 coefficients,
    // not the full real-space grid (CASTEP's cutoff sphere inside the FFT
    // box).
    let npw = n3 / 16;
    let blas3_total = Work::new(2 * 8 * nb * nb * npw, 2 * nb * npw * C64B, nb * nb * C64B);
    let blas3_per_rank = Work::new(
        blas3_total.flops / p as u64,
        blas3_total.bytes_read / p as u64,
        blas3_total.bytes_written / p as u64,
    );
    // Density build + mixing.
    let dens = Work::new(
        4 * nb * n3 / p as u64,
        nb * n3 * C64B / p as u64,
        n3 * 8 / p as u64,
    );

    let mut body = Vec::new();
    // Distributed FFTs: the transposes are alltoalls (2 per transform).
    if plan.transposes() > 0 {
        let a2a_per_cycle = nb * cfg.h_applies as u64 * 2 * u64::from(plan.transposes());
        // Fold the repeated alltoalls into one phase with scaled volume.
        body.push(Phase::Alltoall {
            bytes_per_pair: plan.alltoall_bytes_per_pair() * a2a_per_cycle,
        });
    }
    body.push(Phase::Compute {
        class: KernelClass::Fft,
        work: WorkDist::Uniform(fft_per_rank),
        // One band's slab is the unit of reuse: the transform passes and
        // transpose pack/unpack sweep it repeatedly.
        ws_bytes: plan.slab_ws_bytes(C64B),
    });
    body.push(Phase::Compute {
        class: KernelClass::VectorOp,
        work: WorkDist::Uniform(point),
        ws_bytes: 2 * n3 * C64B / p as u64,
    });
    // Overlap matrix reduction (nb x nb complex).
    body.push(Phase::Compute {
        class: KernelClass::Blas3,
        work: WorkDist::Uniform(blas3_per_rank),
        // The coefficient panel a rank contracts plus the nb x nb overlap
        // block it accumulates.
        ws_bytes: 2 * nb * npw * C64B / p as u64 + nb * nb * C64B,
    });
    body.push(Phase::Allreduce {
        bytes: nb * nb * C64B,
    });
    body.push(Phase::Compute {
        class: KernelClass::VectorOp,
        work: WorkDist::Uniform(dens),
        ws_bytes: n3 * C64B / p as u64 + n3 * 8 / p as u64,
    });
    body.push(Phase::Allreduce {
        bytes: n3 * 8 / p as u64,
    });

    Trace {
        ranks,
        prologue: Vec::new(),
        body,
        iterations: cfg.scf_cycles,
        fom_flops: 0.0,
        checkpoint: None,
    }
}

/// The paper's note that the TiN benchmark "can only be run with total core
/// counts that are either a factor or multiple of 8".
pub fn core_count_allowed(cores: u32) -> bool {
    cores > 0 && (8 % cores == 0 || cores.is_multiple_of(8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_decreases_monotonically() {
        let energies = run_real(CastepConfig::test());
        for w in energies.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "SCF energy must not increase: {:?}",
                energies
            );
        }
        assert!(
            energies.last().unwrap() < &(energies[0] - 1e-3),
            "energy must actually drop: {:?}",
            energies
        );
    }

    #[test]
    fn bands_stay_orthonormal() {
        let cfg = CastepConfig::test();
        let mut s = PlaneWaveSolver::new(cfg.grid, cfg.bands);
        for _ in 0..3 {
            s.scf_cycle(0.05);
        }
        for a in 0..cfg.bands {
            for b in 0..cfg.bands {
                let d = PlaneWaveSolver::dot(&s.bands[a], &s.bands[b]);
                let want = if a == b { 1.0 } else { 0.0 };
                assert!(
                    (d.re - want).abs() < 1e-10 && d.im.abs() < 1e-10,
                    "<{a}|{b}> = ({}, {})",
                    d.re,
                    d.im
                );
            }
        }
    }

    #[test]
    fn ground_state_energy_below_zero() {
        // The attractive potential admits bound states: after relaxation the
        // lowest band's energy must be negative.
        let mut s = PlaneWaveSolver::new(8, 2);
        for _ in 0..30 {
            s.scf_cycle(0.05);
        }
        let (h, _) = s.apply_h(&s.bands[0]);
        let e0 = PlaneWaveSolver::dot(&s.bands[0], &h).re;
        assert!(e0 < 0.0, "lowest state must bind: {e0}");
    }

    #[test]
    fn core_count_rule_matches_paper() {
        // Factors of 8 and multiples of 8 are allowed; Cirrus runs 32 of 36.
        for ok in [1u32, 2, 4, 8, 16, 24, 32, 48, 64] {
            assert!(core_count_allowed(ok), "{ok}");
        }
        for bad in [3u32, 5, 6, 7, 9, 12, 36] {
            assert!(!core_count_allowed(bad), "{bad}");
        }
    }

    #[test]
    fn trace_fft_dominates_flops() {
        let t = trace(CastepConfig::paper(), 48);
        let mut fft = 0u64;
        let mut rest = 0u64;
        for ph in &t.body {
            if let Phase::Compute { class, work, .. } = ph {
                if *class == KernelClass::Fft {
                    fft += work.total(48).flops;
                } else {
                    rest += work.total(48).flops;
                }
            }
        }
        assert!(
            fft * 2 > rest,
            "FFT work should be within 2x of everything else: {fft} vs {rest}"
        );
    }

    #[test]
    fn trace_single_rank_has_no_alltoall() {
        let t1 = trace(CastepConfig::paper(), 1);
        assert!(!t1.body.iter().any(|p| matches!(p, Phase::Alltoall { .. })));
        let t8 = trace(CastepConfig::paper(), 8);
        assert!(t8.body.iter().any(|p| matches!(p, Phase::Alltoall { .. })));
    }

    #[test]
    fn work_model_scales_inversely_with_ranks() {
        let t1 = trace(CastepConfig::paper(), 1);
        let t8 = trace(CastepConfig::paper(), 8);
        let w1 = t1.total_work().flops;
        let w8 = t8.total_work().flops;
        let rel = (w1 as f64 - w8 as f64).abs() / w1 as f64;
        assert!(
            rel < 0.05,
            "strong scaling conserves total flops: {w1} vs {w8}"
        );
    }
}
