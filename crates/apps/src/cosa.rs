//! COSA — harmonic-balance block-structured CFD (paper §VII.A).
//!
//! COSA solves the Navier–Stokes equations with a finite-volume multigrid
//! scheme; its harmonic-balance (HB) solver carries `2·N_H + 1` coupled time
//! instances of the flow per cell. The paper's test case: HB with 4
//! harmonics, **800 grid blocks**, 3,690,218 cells total, 100 iterations,
//! I/O disabled, one MPI rank per core (Table VIII), strong-scaled over
//! 1–16 nodes (Figure 4).
//!
//! The decomposition distributes whole blocks to ranks, which produces the
//! paper's signature load-balance effects: at 768 ranks (16 A64FX nodes) 32
//! ranks carry 2 blocks while 736 carry 1; at 1024 ranks (16 Fulhame nodes)
//! 224 ranks have *nothing to do*. Both fall straight out of
//! [`sparsela::partition::BlockPartition`] here.
//!
//! [`run_real`] executes a real block-structured solver (Jacobi-smoothed
//! diffusion on a multi-block domain with halo exchange — the same
//! communication and sweep structure at mini scale); [`trace`] emits the
//! paper-scale work model with per-rank imbalance.

use crate::trace::{KernelClass, Phase, Trace, WorkDist};
use densela::Work;
use sparsela::partition::BlockPartition;

const F64B: u64 = 8;

/// COSA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CosaConfig {
    /// Grid blocks in the simulation (paper: 800, arranged here 40×20).
    pub blocks: usize,
    /// Block-grid shape (bx × by = blocks).
    pub block_grid: (usize, usize),
    /// Cells per block edge (square blocks of `m × m` cells).
    pub block_edge: usize,
    /// Harmonics (paper: 4 ⇒ 9 coupled time instances).
    pub harmonics: usize,
    /// Solver iterations (paper: 100).
    pub iterations: u32,
}

impl CosaConfig {
    /// The paper's HB test case: 800 blocks, ≈3.69 M cells, 4 harmonics,
    /// 100 iterations. Block edge 68 gives 800 × 68² = 3,699,200 cells,
    /// within 0.25% of the paper's 3,690,218.
    pub fn paper() -> Self {
        CosaConfig {
            blocks: 800,
            block_grid: (40, 20),
            block_edge: 68,
            harmonics: 4,
            iterations: 100,
        }
    }

    /// Reduced configuration for tests.
    pub fn test() -> Self {
        CosaConfig {
            blocks: 8,
            block_grid: (4, 2),
            block_edge: 8,
            harmonics: 1,
            iterations: 50,
        }
    }

    /// Coupled time instances (2·N_H + 1).
    pub fn instances(&self) -> usize {
        2 * self.harmonics + 1
    }

    /// Total cells.
    pub fn total_cells(&self) -> u64 {
        (self.blocks * self.block_edge * self.block_edge) as u64
    }

    /// Modelled flops per cell per multigrid iteration: a harmonic-balance
    /// finite-volume update (MUSCL reconstruction, Roe-type fluxes, implicit
    /// RK smoothing) costs ~12,000 flops per time instance, plus the dense
    /// HB source-term coupling across instances.
    pub fn flops_per_cell(&self) -> u64 {
        let nh = self.instances() as u64;
        nh * 12_000 + nh * nh * 200
    }

    /// Modelled bytes per cell per iteration: the HB state plus residuals,
    /// fluxes and metric arrays are streamed repeatedly by the flux sweeps;
    /// COSA's arithmetic intensity is close to 1 flop/byte.
    pub fn bytes_per_cell(&self) -> u64 {
        let nh = self.instances() as u64;
        nh * 11_500 + nh * nh * 200
    }

    /// Per-job memory footprint, bytes: the paper notes the case "fits into
    /// approximately 60 GB", i.e. does not fit one 32 GB A64FX node.
    pub fn memory_bytes(&self) -> u64 {
        // The HB state is 4 conservative variables x 9 instances x 8 B per
        // cell; COSA additionally keeps RK stages, multigrid levels,
        // residuals, fluxes, metrics and HB coupling workspace — ~52x the
        // bare state, calibrated to the paper's "fits into approximately
        // 60GB of memory" for this case.
        self.total_cells() * (self.instances() as u64) * 4 * F64B * 52 + (2u64 << 30)
    }
}

/// A real multi-block structured solver: scalar diffusion smoothed by
/// Jacobi sweeps over blocks with halo exchange, Dirichlet outer boundary.
pub struct BlockSolver {
    cfg: CosaConfig,
    /// Per block: (edge+2)² cells with a one-cell halo ring.
    fields: Vec<Vec<f64>>,
}

impl BlockSolver {
    /// Initialise with boundary value 1 on the left domain edge, 0 inside.
    pub fn new(cfg: CosaConfig) -> Self {
        let m = cfg.block_edge + 2;
        let mut fields = vec![vec![0.0; m * m]; cfg.blocks];
        // Left outer boundary held at 1.0.
        for by in 0..cfg.block_grid.1 {
            let b = by * cfg.block_grid.0;
            for r in 0..m {
                fields[b][r * m] = 1.0;
            }
        }
        BlockSolver { cfg, fields }
    }

    fn block_at(&self, bx: usize, by: usize) -> usize {
        by * self.cfg.block_grid.0 + bx
    }

    /// Exchange halo layers between adjacent blocks (the real analogue of
    /// COSA's MPI halo exchange; here blocks live in one address space).
    pub fn exchange_halos(&mut self) {
        let (gx, gy) = self.cfg.block_grid;
        let m = self.cfg.block_edge + 2;
        let e = self.cfg.block_edge;
        for by in 0..gy {
            for bx in 0..gx {
                let b = self.block_at(bx, by);
                if bx + 1 < gx {
                    let r = self.block_at(bx + 1, by);
                    for row in 1..=e {
                        let (left_val, right_val) =
                            (self.fields[b][row * m + e], self.fields[r][row * m + 1]);
                        self.fields[r][row * m] = left_val;
                        self.fields[b][row * m + e + 1] = right_val;
                    }
                }
                if by + 1 < gy {
                    let u = self.block_at(bx, by + 1);
                    for col in 1..=e {
                        let (lo_val, hi_val) =
                            (self.fields[b][e * m + col], self.fields[u][m + col]);
                        self.fields[u][col] = lo_val;
                        self.fields[b][(e + 1) * m + col] = hi_val;
                    }
                }
            }
        }
    }

    /// One damped-Jacobi sweep over every block. Returns the max update
    /// magnitude (the residual surrogate COSA logs).
    pub fn sweep(&mut self) -> f64 {
        let m = self.cfg.block_edge + 2;
        let e = self.cfg.block_edge;
        let mut max_delta = 0.0f64;
        for f in &mut self.fields {
            let old = f.clone();
            for r in 1..=e {
                for c in 1..=e {
                    let avg = 0.25
                        * (old[(r - 1) * m + c]
                            + old[(r + 1) * m + c]
                            + old[r * m + c - 1]
                            + old[r * m + c + 1]);
                    let nv = 0.8 * avg + 0.2 * old[r * m + c];
                    max_delta = max_delta.max((nv - old[r * m + c]).abs());
                    f[r * m + c] = nv;
                }
            }
        }
        max_delta
    }

    /// Run `iters` (exchange, sweep) cycles; returns the final residual.
    pub fn run(&mut self, iters: u32) -> f64 {
        let mut res = f64::INFINITY;
        for _ in 0..iters {
            self.exchange_halos();
            res = self.sweep();
        }
        res
    }

    /// Mean field value (diagnostic).
    pub fn mean(&self) -> f64 {
        let m = self.cfg.block_edge + 2;
        let e = self.cfg.block_edge;
        let mut sum = 0.0;
        let mut count = 0usize;
        for f in &self.fields {
            for r in 1..=e {
                for c in 1..=e {
                    sum += f[r * m + c];
                    count += 1;
                }
            }
        }
        sum / count as f64
    }
}

/// Run the real block solver.
pub fn run_real(cfg: CosaConfig) -> (f64, f64) {
    let mut s = BlockSolver::new(cfg);
    let res = s.run(cfg.iterations);
    (res, s.mean())
}

/// Block-to-rank assignment used by the trace (round-robin like COSA's
/// distribution of its block list).
pub fn owner_of_block(block: usize, partition: &BlockPartition) -> usize {
    // Blocks dealt in order: rank r takes blocks [start_r, start_r + n_r).
    // Equivalent to the contiguous deal COSA performs.
    let base = partition.blocks / partition.ranks;
    let extra = partition.blocks % partition.ranks;
    let cut = extra * (base + 1);
    if block < cut {
        block / (base + 1)
    } else {
        extra + (block - cut) / base.max(1)
    }
}

/// Build the strong-scaling COSA trace for `ranks` ranks.
pub fn trace(cfg: CosaConfig, ranks: u32) -> Trace {
    let part = BlockPartition::new(cfg.blocks, ranks as usize);
    let cells_per_block = (cfg.block_edge * cfg.block_edge) as u64;

    // Per-rank compute work: proportional to blocks owned (the paper's load
    // imbalance), multigrid adds ~1/3 on coarse levels.
    let per_block = Work::new(
        cells_per_block * cfg.flops_per_cell() * 4 / 3,
        cells_per_block * cfg.bytes_per_cell() * 4 / 3,
        cells_per_block * (cfg.instances() as u64) * 4 * F64B,
    );
    let works: Vec<Work> = (0..ranks as usize)
        .map(|r| per_block * part.blocks_of(r) as u64)
        .collect();

    // Halo exchange: block faces crossing rank boundaries. Blocks are laid
    // out on a (gx, gy) grid and dealt contiguously to ranks.
    let nh = cfg.instances() as u64;
    let face_bytes = cfg.block_edge as u64 * nh * 4 * F64B;
    let (gx, gy) = cfg.block_grid;
    let mut pair_bytes: std::collections::HashMap<(u32, u32), u64> =
        std::collections::HashMap::new();
    for by in 0..gy {
        for bx in 0..gx {
            let b = by * gx + bx;
            let ob = owner_of_block(b, &part) as u32;
            let mut note = |nb: usize| {
                let on = owner_of_block(nb, &part) as u32;
                if on != ob {
                    let key = if ob < on { (ob, on) } else { (on, ob) };
                    *pair_bytes.entry(key).or_insert(0) += face_bytes;
                }
            };
            if bx + 1 < gx {
                note(by * gx + bx + 1);
            }
            if by + 1 < gy {
                note((by + 1) * gx + bx);
            }
        }
    }
    let mut pairs: Vec<(u32, u32, u64)> = pair_bytes
        .into_iter()
        .map(|((a, b), v)| (a, b, v))
        .collect();
    pairs.sort_unstable();

    let body = vec![
        Phase::Halo { pairs },
        Phase::Compute {
            class: KernelClass::CfdFlux,
            work: WorkDist::PerRank(works),
            // A busy rank's hot set: its share of blocks, each holding the
            // harmonic-balance state, residual, and flux arrays (3 arrays
            // of cells x instances x 4 conserved vars).
            ws_bytes: (cfg.blocks as u64).div_ceil(u64::from(ranks))
                * cells_per_block
                * nh
                * 4
                * 3
                * F64B,
        },
        // Residual log (one global reduction per iteration).
        Phase::Allreduce { bytes: 8 },
    ];

    Trace {
        ranks,
        prologue: Vec::new(),
        body,
        iterations: cfg.iterations,
        fom_flops: 0.0,
        checkpoint: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_solver_converges_toward_steady_state() {
        let cfg = CosaConfig::test();
        let mut s = BlockSolver::new(cfg);
        s.exchange_halos();
        s.sweep();
        let early_mean = s.mean();
        let res = s.run(3000);
        assert!(res < 1e-6, "residual must vanish at steady state: {res}");
        // Heat flows in from the left boundary: the mean must rise.
        assert!(s.mean() > early_mean);
        assert!(s.mean() > 0.05 && s.mean() < 1.0);
    }

    #[test]
    fn halo_exchange_propagates_between_blocks() {
        let cfg = CosaConfig::test();
        let mut s = BlockSolver::new(cfg);
        // Before any exchange, block 1 is all zero except after sweeps.
        s.run(200);
        // Block on the far right must have received heat through 3 block
        // boundaries.
        let m = cfg.block_edge + 2;
        let right_block = &s.fields[3];
        let centre = right_block[(m / 2) * m + m / 2];
        assert!(centre > 0.0, "heat must cross block boundaries: {centre}");
    }

    #[test]
    fn paper_config_matches_paper_numbers() {
        let cfg = CosaConfig::paper();
        assert_eq!(cfg.blocks, 800);
        assert_eq!(cfg.instances(), 9);
        let cells = cfg.total_cells() as f64;
        let rel = (cells - 3_690_218.0).abs() / 3_690_218.0;
        assert!(rel < 0.005, "cells within 0.5% of the paper: {cells}");
        // Memory ~60 GB (paper: "fits into approximately 60GB").
        let gb = cfg.memory_bytes() as f64 / 1e9;
        assert!(gb > 45.0 && gb < 70.0, "memory {gb} GB");
        // Does not fit one A64FX node, fits two (the paper started at 2).
        assert!(cfg.memory_bytes() > 32 * (1u64 << 30));
        assert!(cfg.memory_bytes() < 2 * 30 * (1u64 << 30));
    }

    #[test]
    fn trace_imbalance_at_768_ranks() {
        let t = trace(CosaConfig::paper(), 768);
        if let Phase::Compute {
            work: WorkDist::PerRank(v),
            ..
        } = &t.body[1]
        {
            let max = v.iter().map(|w| w.flops).max().unwrap();
            let min = v.iter().map(|w| w.flops).min().unwrap();
            assert_eq!(max, 2 * min, "32 ranks carry two blocks");
            assert_eq!(v.iter().filter(|w| w.flops == max).count(), 32);
        } else {
            panic!("expected per-rank compute phase");
        }
    }

    #[test]
    fn trace_idle_ranks_at_1024() {
        let t = trace(CosaConfig::paper(), 1024);
        if let Phase::Compute {
            work: WorkDist::PerRank(v),
            ..
        } = &t.body[1]
        {
            assert_eq!(v.iter().filter(|w| w.flops == 0).count(), 224);
        } else {
            panic!("expected per-rank compute phase");
        }
    }

    #[test]
    fn owner_matches_blockpartition_counts() {
        for ranks in [48usize, 96, 768, 1024] {
            let part = BlockPartition::new(800, ranks);
            let mut counts = vec![0usize; ranks];
            for b in 0..800 {
                counts[owner_of_block(b, &part)] += 1;
            }
            for (r, &c) in counts.iter().enumerate() {
                assert_eq!(c, part.blocks_of(r), "rank {r} of {ranks}");
            }
        }
    }

    #[test]
    fn total_work_independent_of_rank_count() {
        let t96 = trace(CosaConfig::paper(), 96);
        let t768 = trace(CosaConfig::paper(), 768);
        assert_eq!(
            t96.total_work().flops,
            t768.total_work().flops,
            "strong scaling conserves work"
        );
    }

    #[test]
    fn halo_pairs_only_cross_rank_boundaries() {
        let t = trace(CosaConfig::paper(), 96);
        if let Phase::Halo { pairs } = &t.body[0] {
            assert!(!pairs.is_empty());
            for &(a, b, bytes) in pairs {
                assert_ne!(a, b);
                assert!(bytes > 0);
                assert!(a < 96 && b < 96);
            }
        } else {
            panic!("expected halo phase");
        }
    }
}
