//! # obs — deterministic tracing and metrics
//!
//! The observability seam of the reproduction: the simulator's answer to
//! the profiler evidence the paper leans on (the Fujitsu profiler breakdown
//! in Figure 1's caption, the per-phase OpenSBLI analysis in §VII.C). Every
//! layer of the stack — the executor's phase replay, `simmpi` collectives,
//! `netsim` transfers, the `densela` kernel pool, `faultsim` delivery —
//! reports through the [`Recorder`] trait:
//!
//! * **spans** — labelled intervals in *simulated* microseconds
//!   (`app.phase`, `mpi.allreduce`, `ckpt.write`, `pool.dispatch`), with
//!   structured attributes;
//! * **instants** — point events (`fault.crash`, `fault.recover`);
//! * **metrics** — deterministic counters, high-water gauges and fixed
//!   log2-bucket histograms, aggregated into a byte-stable JSON snapshot.
//!
//! Two recorders exist: [`NoopRecorder`] (the default — nothing is ever
//! installed, every instrumentation site short-circuits on one
//! thread-local check, and the simulation's outputs are bit-identical to
//! an uninstrumented build) and [`MemRecorder`] (collects everything in
//! memory and exports Chrome Trace Event JSON for `chrome://tracing` /
//! Perfetto, a text flamegraph-style rollup, and the metrics snapshot).
//!
//! Determinism is a hard contract, pinned by the `conform` crate's `obs`
//! suite: no wall-clock time is ever recorded (spans carry simulated time,
//! pool dispatches a logical generation clock), collections iterate in
//! `BTreeMap` order, and floats render with Rust's shortest-round-trip
//! formatting — so the same seed and thread count produce byte-identical
//! trace and snapshot files on every run.
//!
//! Instrumented code uses the ambient API:
//!
//! ```
//! use std::sync::Arc;
//! let rec = Arc::new(obs::MemRecorder::new());
//! obs::with_recorder(rec.clone(), || {
//!     obs::add("net.msg", 1);
//!     obs::span("app.phase", "compute:SymGS", 0.0, 12.5, &[]);
//! });
//! assert_eq!(rec.counter("net.msg"), Some(1));
//! // Outside `with_recorder` every call is a cheap no-op.
//! obs::add("net.msg", 1);
//! assert_eq!(rec.counter("net.msg"), Some(1));
//! ```

#![warn(missing_docs)]

pub mod analyze;
mod chrome;
mod mem;
mod metrics;

pub use analyze::{Analysis, Category, ChainNode};
pub use chrome::rollup_text;
pub use mem::{Instant, MemRecorder, Span, Totals};
pub use metrics::{bucket_index, sanitize_metric_name, Histogram, Registry};

use std::cell::RefCell;
use std::sync::Arc;

/// A structured span/event attribute value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue<'a> {
    /// An unsigned integer (byte counts, rank ids, ...).
    U64(u64),
    /// A float (durations, factors, ...).
    F64(f64),
    /// A short label.
    Str(&'a str),
}

/// The tracing/metrics sink every instrumented layer reports into.
///
/// All timestamps are **simulated** microseconds (or an explicitly logical
/// clock, e.g. the kernel pool's dispatch generation) — never wall-clock —
/// so recordings are deterministic for a fixed seed and thread count.
pub trait Recorder: Send + Sync {
    /// Whether recording is live. Instrumentation sites may skip argument
    /// construction entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Record a completed interval `[start_us, start_us + dur_us)`.
    fn span(&self, cat: &str, name: &str, start_us: f64, dur_us: f64, attrs: &[(&str, AttrValue)]);

    /// Record a point event at `at_us`.
    fn instant(&self, cat: &str, name: &str, at_us: f64, attrs: &[(&str, AttrValue)]);

    /// Add `delta` to a monotonic counter.
    fn add(&self, counter: &str, delta: u64);

    /// Raise a high-water gauge to at least `value`.
    fn gauge_max(&self, gauge: &str, value: f64);

    /// Record one observation into a fixed log2-bucket histogram.
    fn observe(&self, hist: &str, value: f64);
}

/// The zero-cost default: records nothing and reports itself disabled, so
/// guarded instrumentation sites skip even label formatting.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn span(&self, _: &str, _: &str, _: f64, _: f64, _: &[(&str, AttrValue)]) {}
    fn instant(&self, _: &str, _: &str, _: f64, _: &[(&str, AttrValue)]) {}
    fn add(&self, _: &str, _: u64) {}
    fn gauge_max(&self, _: &str, _: f64) {}
    fn observe(&self, _: &str, _: f64) {}
}

thread_local! {
    /// The ambient recorder of the current thread. `None` (the default)
    /// means every instrumentation site is a single TLS read + branch.
    static CURRENT: RefCell<Option<Arc<dyn Recorder>>> = const { RefCell::new(None) };
}

/// Install `rec` as the current thread's ambient recorder for the duration
/// of `f`, restoring the previous recorder afterwards (also on panic).
/// Nested installs are allowed and shadow the outer recorder.
pub fn with_recorder<T>(rec: Arc<dyn Recorder>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Arc<dyn Recorder>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(rec));
    let _restore = Restore(prev);
    f()
}

/// Whether a live (enabled) recorder is installed on this thread. Hot
/// paths check this before building labels or attributes.
pub fn enabled() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(|r| r.enabled()))
}

/// Run `f` against the installed recorder, if one is installed and
/// enabled. The no-recorder cost is one thread-local read.
pub fn with(f: impl FnOnce(&dyn Recorder)) {
    CURRENT.with(|c| {
        if let Some(r) = c.borrow().as_ref() {
            if r.enabled() {
                f(r.as_ref());
            }
        }
    });
}

/// Ambient [`Recorder::span`].
pub fn span(cat: &str, name: &str, start_us: f64, dur_us: f64, attrs: &[(&str, AttrValue)]) {
    with(|r| r.span(cat, name, start_us, dur_us, attrs));
}

/// Ambient [`Recorder::instant`].
pub fn instant(cat: &str, name: &str, at_us: f64, attrs: &[(&str, AttrValue)]) {
    with(|r| r.instant(cat, name, at_us, attrs));
}

/// Ambient [`Recorder::add`].
pub fn add(counter: &str, delta: u64) {
    with(|r| r.add(counter, delta));
}

/// Ambient [`Recorder::gauge_max`].
pub fn gauge_max(gauge: &str, value: f64) {
    with(|r| r.gauge_max(gauge, value));
}

/// Ambient [`Recorder::observe`].
pub fn observe(hist: &str, value: f64) {
    with(|r| r.observe(hist, value));
}

/// Escape a string for embedding in a JSON string literal. Shared by the
/// Chrome-trace and snapshot writers (the workspace `serde` is an offline
/// marker stub, so `obs` carries its own serialisation).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` for JSON: Rust's shortest round-trip formatting, with
/// non-finite values (never produced by the simulator, but the writer must
/// still emit valid JSON) mapped to large sentinels.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "null".to_string()
    } else if v > 0.0 {
        "1e308".to_string()
    } else {
        "-1e308".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_recorder_is_a_noop() {
        // Must not panic, must not record anywhere.
        add("x", 1);
        span("c", "n", 0.0, 1.0, &[]);
        instant("c", "n", 0.0, &[]);
        gauge_max("g", 1.0);
        observe("h", 1.0);
        assert!(!enabled());
    }

    #[test]
    fn noop_recorder_reports_disabled() {
        let rec: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        with_recorder(rec, || {
            assert!(!enabled());
            let mut called = false;
            with(|_| called = true);
            assert!(!called, "a disabled recorder must not receive calls");
        });
    }

    #[test]
    fn with_recorder_installs_and_restores() {
        let rec = Arc::new(MemRecorder::new());
        assert!(!enabled());
        with_recorder(rec.clone(), || {
            assert!(enabled());
            add("k", 2);
            add("k", 3);
        });
        assert!(!enabled());
        assert_eq!(rec.counter("k"), Some(5));
    }

    #[test]
    fn nested_install_shadows_and_restores_outer() {
        let outer = Arc::new(MemRecorder::new());
        let inner = Arc::new(MemRecorder::new());
        with_recorder(outer.clone(), || {
            add("depth", 1);
            with_recorder(inner.clone(), || add("depth", 10));
            add("depth", 1);
        });
        assert_eq!(outer.counter("depth"), Some(2));
        assert_eq!(inner.counter("depth"), Some(10));
    }

    #[test]
    fn recorder_restored_after_panic() {
        let rec = Arc::new(MemRecorder::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_recorder(rec.clone(), || panic!("boom"));
        }));
        assert!(result.is_err());
        assert!(!enabled(), "panic must not leak the installed recorder");
    }

    #[test]
    fn json_escape_handles_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_f64_is_shortest_round_trip() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(0.0), "0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "1e308");
        assert_eq!(json_f64(f64::NEG_INFINITY), "-1e308");
    }
}
