//! Deterministic metrics: counters, high-water gauges, and fixed
//! log2-bucket histograms, snapshotted to byte-stable JSON.

use std::collections::BTreeMap;

use crate::{json_escape, json_f64};

/// Number of histogram buckets. Bucket `i` (for `i >= 1`) holds values
/// whose integer part `u` satisfies `2^(i-1) <= u < 2^i`; bucket 0 holds
/// values below 1. Bucket 63 absorbs everything at or above `2^62`.
pub const BUCKETS: usize = 64;

/// Map a value to its histogram bucket using pure integer arithmetic —
/// no float log2, so the mapping is identical on every platform.
/// Negative and non-finite values clamp to bucket 0.
pub fn bucket_index(value: f64) -> usize {
    if !value.is_finite() || value < 1.0 {
        return 0;
    }
    let u = if value >= u64::MAX as f64 {
        u64::MAX
    } else {
        value as u64
    };
    let idx = 64 - u.leading_zeros() as usize;
    idx.min(BUCKETS - 1)
}

/// A fixed log2-bucket histogram. Deterministic: bucket assignment is
/// integer math and `sum` accumulates in observation order (callers
/// observe in deterministic order, so the float sum is reproducible).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.buckets[bucket_index(value)] += 1;
    }

    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Index of the highest non-empty bucket, or `None` when empty.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &c)| c > 0)
            .map(|(i, _)| i)
    }

    /// Upper bound of bucket `i`: the smallest value that lands in bucket
    /// `i + 1`. Bucket 0 (values below 1) reports 1; the absorbing top
    /// bucket reports `2^63` (its contents are unbounded above).
    pub fn bucket_upper_bound(i: usize) -> f64 {
        if i >= BUCKETS - 1 {
            (1u128 << 63) as f64
        } else {
            (1u128 << i) as f64
        }
    }

    /// Deterministic quantile estimate from the log2 buckets: the upper
    /// bound of the bucket holding the `ceil(q * count)`-th observation
    /// (rank clamped to `[1, count]`). Pure integer bucket arithmetic —
    /// no interpolation — so the estimate is bit-identical on every
    /// platform; it overstates the true quantile by at most one bucket
    /// width (a factor of 2). Empty histograms report 0.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(BUCKETS - 1)
    }

    /// Median estimate (see [`Histogram::percentile`]).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate (see [`Histogram::percentile`]).
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate (see [`Histogram::percentile`]).
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

/// A registry of named counters, gauges, and histograms. `BTreeMap`
/// storage keeps snapshot key order stable regardless of insertion order.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (created at 0 on first use).
    pub fn add(&mut self, counter: &str, delta: u64) {
        *self.counters.entry(counter.to_string()).or_insert(0) += delta;
    }

    /// Raise the named high-water gauge to at least `value`.
    pub fn gauge_max(&mut self, gauge: &str, value: f64) {
        let g = self.gauges.entry(gauge.to_string()).or_insert(f64::MIN);
        if value > *g {
            *g = value;
        }
    }

    /// Record one observation into the named histogram.
    pub fn observe(&mut self, hist: &str, value: f64) {
        self.histograms
            .entry(hist.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of a counter, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Current value of a gauge, if it exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Total number of metric points (counters + gauges + histogram
    /// observations) — used for summary rows.
    pub fn points(&self) -> u64 {
        self.counters.len() as u64
            + self.gauges.len() as u64
            + self.histograms.values().map(|h| h.count).sum::<u64>()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge another registry into this one (counters add, gauges max,
    /// histograms element-wise add).
    pub fn merge(&mut self, other: &Registry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauge_max(k, v);
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry(k.clone()).or_default();
            mine.count += h.count;
            mine.sum += h.sum;
            for (m, o) in mine.buckets.iter_mut().zip(h.buckets.iter()) {
                *m += o;
            }
        }
    }

    /// Insert (or replace) a whole histogram under `name` — the seam
    /// `obsctl prom` uses to rebuild a registry from a parsed snapshot.
    pub fn insert_histogram(&mut self, name: &str, h: Histogram) {
        self.histograms.insert(name.to_string(), h);
    }

    /// Serialise the registry to a stable, pretty-printed JSON snapshot.
    /// Keys appear in `BTreeMap` order; histogram buckets are emitted
    /// sparsely as `{"bucket_index": count}` so snapshots stay readable.
    /// `meta` key/value pairs (already-ordered) head the document.
    pub fn snapshot_json(&self, meta: &[(&str, String)]) -> String {
        self.snapshot_json_impl(meta, false)
    }

    /// [`Registry::snapshot_json`] with deterministic p50/p95/p99 bucket
    /// quantile estimates added to every histogram. A separate document
    /// on purpose: the plain snapshot format is pinned byte-for-byte by
    /// the conform `obs` goldens, so it must not grow fields.
    pub fn snapshot_json_ext(&self, meta: &[(&str, String)]) -> String {
        self.snapshot_json_impl(meta, true)
    }

    fn snapshot_json_impl(&self, meta: &[(&str, String)], percentiles: bool) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        for (k, v) in meta {
            out.push_str(&format!(
                "  \"{}\": \"{}\",\n",
                json_escape(k),
                json_escape(v)
            ));
        }
        out.push_str("  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {}", json_escape(k), v));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {}", json_escape(k), json_f64(*v)));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, ",
                json_escape(k),
                h.count,
                json_f64(h.sum)
            ));
            if percentiles {
                out.push_str(&format!(
                    "\"p50\": {}, \"p95\": {}, \"p99\": {}, ",
                    json_f64(h.p50()),
                    json_f64(h.p95()),
                    json_f64(h.p99())
                ));
            }
            out.push_str("\"buckets\": {");
            let mut bfirst = true;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !bfirst {
                    out.push_str(", ");
                }
                bfirst = false;
                out.push_str(&format!("\"{i}\": {c}"));
            }
            out.push_str("}}");
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Render the registry in the Prometheus text exposition format,
    /// deterministically: metric families in `BTreeMap` name order, names
    /// sanitised to `[a-zA-Z0-9_:]` (dots become underscores), histograms
    /// as cumulative `_bucket{le="..."}` series (log2 upper bounds, then
    /// `+Inf`) plus `_sum` and `_count`. The future campaign server's
    /// scrape endpoint serves exactly this string.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = sanitize_metric_name(k);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let name = sanitize_metric_name(k);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", json_f64(*v)));
        }
        for (k, h) in &self.histograms {
            let name = sanitize_metric_name(k);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            let top = h.max_bucket().unwrap_or(0);
            for (i, &c) in h.buckets.iter().enumerate().take(top + 1) {
                cum += c;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cum}\n",
                    json_f64(Histogram::bucket_upper_bound(i))
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", json_f64(h.sum)));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }
}

/// Map a metric name onto the Prometheus charset: `[a-zA-Z0-9_:]`, with a
/// leading underscore prepended if the name would start with a digit.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_integer_log2() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(0.5), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1.0), 1);
        assert_eq!(bucket_index(1.9), 1);
        assert_eq!(bucket_index(2.0), 2);
        assert_eq!(bucket_index(3.0), 2);
        assert_eq!(bucket_index(4.0), 3);
        assert_eq!(bucket_index(1024.0), 11);
        assert_eq!(bucket_index(1e300), BUCKETS - 1);
        assert_eq!(bucket_index(f64::INFINITY), 0); // non-finite clamps low
    }

    #[test]
    fn histogram_counts_and_mean() {
        let mut h = Histogram::default();
        h.observe(1.0);
        h.observe(3.0);
        h.observe(8.0);
        assert_eq!(h.count, 3);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.max_bucket(), Some(4));
    }

    #[test]
    fn registry_snapshot_is_stable_and_ordered() {
        let mut r = Registry::new();
        r.add("zeta", 2);
        r.add("alpha", 1);
        r.gauge_max("g", 3.0);
        r.gauge_max("g", 2.0); // lower: ignored
        r.observe("h", 5.0);
        let s1 = r.snapshot_json(&[("experiment", "t".to_string())]);
        let s2 = r.snapshot_json(&[("experiment", "t".to_string())]);
        assert_eq!(s1, s2);
        // alpha before zeta regardless of insertion order.
        let a = s1.find("alpha").unwrap();
        let z = s1.find("zeta").unwrap();
        assert!(a < z);
        assert!(s1.contains("\"g\": 3"));
        assert!(s1.contains("\"count\": 1"));
    }

    #[test]
    fn empty_registry_snapshot_is_valid_shape() {
        let r = Registry::new();
        let s = r.snapshot_json(&[]);
        assert!(s.contains("\"counters\": {}"));
        assert!(s.contains("\"gauges\": {}"));
        assert!(s.contains("\"histograms\": {}"));
        assert!(r.is_empty());
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds() {
        let mut h = Histogram::default();
        for v in [1.0, 3.0, 3.5, 9.0] {
            h.observe(v);
        }
        // Ranks: p50 -> 2nd of 4 (bucket 2, values 2..4) -> upper bound 4;
        // p95/p99 -> 4th (bucket 4, values 8..16) -> upper bound 16.
        assert_eq!(h.p50(), 4.0);
        assert_eq!(h.p95(), 16.0);
        assert_eq!(h.p99(), 16.0);
    }

    #[test]
    fn percentiles_of_empty_histogram_are_zero() {
        let h = Histogram::default();
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p95(), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.percentile(1.0), 0.0);
    }

    #[test]
    fn percentiles_handle_edge_buckets() {
        // Everything below 1 lands in bucket 0; its upper bound is 1.
        let mut low = Histogram::default();
        low.observe(0.0);
        low.observe(0.3);
        assert_eq!(low.p50(), 1.0);
        assert_eq!(low.p99(), 1.0);
        // The absorbing top bucket reports 2^63.
        let mut high = Histogram::default();
        high.observe(1e300);
        assert_eq!(high.p50(), (1u128 << 63) as f64);
        // Out-of-range q clamps: q <= 0 is the first observation,
        // q >= 1 the last.
        let mut h = Histogram::default();
        h.observe(1.0);
        h.observe(1024.0);
        assert_eq!(h.percentile(-1.0), 2.0);
        assert_eq!(h.percentile(2.0), 2048.0);
    }

    #[test]
    fn ext_snapshot_adds_percentiles_plain_stays_fixed() {
        let mut r = Registry::new();
        r.observe("h", 5.0);
        let plain = r.snapshot_json(&[]);
        let ext = r.snapshot_json_ext(&[]);
        assert!(!plain.contains("p50"), "plain snapshot format is pinned");
        assert!(ext.contains("\"p50\": 8, \"p95\": 8, \"p99\": 8"), "{ext}");
        // Identical apart from the percentile fields.
        assert_eq!(
            ext.replace("\"p50\": 8, \"p95\": 8, \"p99\": 8, ", ""),
            plain
        );
    }

    #[test]
    fn prometheus_rendering_is_stable_and_sane() {
        let mut r = Registry::new();
        r.add("mpi.allreduce.calls", 3);
        r.gauge_max("des.queue.peak_depth", 7.0);
        r.observe("mpi.sync_wait_us", 1.5);
        r.observe("mpi.sync_wait_us", 6.0);
        let p1 = r.render_prometheus();
        let p2 = r.render_prometheus();
        assert_eq!(p1, p2);
        assert!(p1.contains("# TYPE mpi_allreduce_calls counter\nmpi_allreduce_calls 3\n"));
        assert!(p1.contains("# TYPE des_queue_peak_depth gauge\ndes_queue_peak_depth 7\n"));
        // Cumulative buckets: 1.5 -> bucket 1 (le 2), 6.0 -> bucket 3 (le 8).
        assert!(p1.contains("mpi_sync_wait_us_bucket{le=\"2\"} 1\n"), "{p1}");
        assert!(p1.contains("mpi_sync_wait_us_bucket{le=\"8\"} 2\n"), "{p1}");
        assert!(p1.contains("mpi_sync_wait_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(p1.contains("mpi_sync_wait_us_sum 7.5\n"));
        assert!(p1.contains("mpi_sync_wait_us_count 2\n"));
    }

    #[test]
    fn metric_names_sanitise_to_prometheus_charset() {
        assert_eq!(sanitize_metric_name("mpi.sync_wait_us"), "mpi_sync_wait_us");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
    }

    #[test]
    fn insert_histogram_round_trips() {
        let mut h = Histogram::default();
        h.observe(3.0);
        let mut r = Registry::new();
        r.insert_histogram("h", h.clone());
        assert_eq!(r.histogram("h").unwrap().count, 1);
        assert_eq!(r.histogram("h").unwrap().buckets, h.buckets);
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = Registry::new();
        a.add("c", 1);
        a.gauge_max("g", 1.0);
        a.observe("h", 2.0);
        let mut b = Registry::new();
        b.add("c", 2);
        b.gauge_max("g", 5.0);
        b.observe("h", 4.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.gauge("g"), Some(5.0));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 6.0);
    }
}
