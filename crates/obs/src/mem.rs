//! In-memory recorder: collects spans, instants, and metrics behind a
//! mutex, for export once the experiment finishes.

use std::sync::Mutex;

use crate::metrics::{Histogram, Registry};
use crate::{AttrValue, Recorder};

/// An owned attribute (the `Recorder` API takes borrowed attrs; storage
/// owns them as `(String, String)` with values pre-rendered — rendering at
/// record time keeps export trivially deterministic).
pub type OwnedAttr = (String, String);

fn own_attrs(attrs: &[(&str, AttrValue)]) -> Vec<OwnedAttr> {
    attrs
        .iter()
        .map(|(k, v)| {
            let rendered = match v {
                AttrValue::U64(u) => u.to_string(),
                AttrValue::F64(f) => crate::json_f64(*f),
                AttrValue::Str(s) => format!("\"{}\"", crate::json_escape(s)),
            };
            (k.to_string(), rendered)
        })
        .collect()
}

/// A recorded interval, in simulated (or logical) microseconds.
#[derive(Debug, Clone)]
pub struct Span {
    /// Category, e.g. `app.phase`, `mpi`, `pool`.
    pub cat: String,
    /// Display name, e.g. `compute:SymGS (52.4 Mflop)`.
    pub name: String,
    /// Start timestamp.
    pub start_us: f64,
    /// Duration.
    pub dur_us: f64,
    /// Structured attributes with values pre-rendered as JSON fragments.
    pub attrs: Vec<OwnedAttr>,
}

/// A recorded point event.
#[derive(Debug, Clone)]
pub struct Instant {
    /// Category, e.g. `fault`.
    pub cat: String,
    /// Display name, e.g. `fault.crash`.
    pub name: String,
    /// Timestamp.
    pub at_us: f64,
    /// Structured attributes with values pre-rendered as JSON fragments.
    pub attrs: Vec<OwnedAttr>,
}

/// Compact record-volume totals for summary rows.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Totals {
    /// Number of spans recorded.
    pub spans: u64,
    /// Number of instant events recorded.
    pub instants: u64,
    /// Number of metric points (counters + gauges + histogram samples).
    pub metric_points: u64,
}

#[derive(Default)]
struct Inner {
    spans: Vec<Span>,
    instants: Vec<Instant>,
    registry: Registry,
}

/// A [`Recorder`] that collects everything in memory.
///
/// Interior mutability is a mutex rather than atomics: recording happens
/// on the simulation driver thread (pool workers never have a recorder
/// installed), so there is no contention, and a single lock keeps span
/// order exactly the call order — which is what makes the exported trace
/// byte-stable.
#[derive(Default)]
pub struct MemRecorder {
    inner: Mutex<Inner>,
}

impl MemRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded spans, in record order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.lock().unwrap().spans.clone()
    }

    /// All recorded instants, in record order.
    pub fn instants(&self) -> Vec<Instant> {
        self.inner.lock().unwrap().instants.clone()
    }

    /// Current value of a counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.inner.lock().unwrap().registry.counter(name)
    }

    /// Current value of a gauge, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().unwrap().registry.gauge(name)
    }

    /// A clone of the named histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.lock().unwrap().registry.histogram(name).cloned()
    }

    /// A clone of the whole metrics registry.
    pub fn registry(&self) -> Registry {
        self.inner.lock().unwrap().registry.clone()
    }

    /// Record-volume totals for summary rows.
    pub fn totals(&self) -> Totals {
        let inner = self.inner.lock().unwrap();
        Totals {
            spans: inner.spans.len() as u64,
            instants: inner.instants.len() as u64,
            metric_points: inner.registry.points(),
        }
    }

    /// The metrics snapshot JSON (see [`Registry::snapshot_json`]).
    pub fn metrics_json(&self, meta: &[(&str, String)]) -> String {
        self.inner.lock().unwrap().registry.snapshot_json(meta)
    }

    /// The extended metrics snapshot with histogram percentiles (see
    /// [`Registry::snapshot_json_ext`]).
    pub fn metrics_json_ext(&self, meta: &[(&str, String)]) -> String {
        self.inner.lock().unwrap().registry.snapshot_json_ext(meta)
    }

    /// Attribute the recorded spans (see [`crate::analyze::Analysis`]).
    pub fn analyze(&self) -> crate::analyze::Analysis {
        let inner = self.inner.lock().unwrap();
        crate::analyze::Analysis::from_spans(&inner.spans)
    }

    /// Prometheus text exposition of the metrics registry (see
    /// [`Registry::render_prometheus`]).
    pub fn prometheus(&self) -> String {
        self.inner.lock().unwrap().registry.render_prometheus()
    }

    /// The Chrome Trace Event JSON document for this recording.
    pub fn chrome_trace_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        crate::chrome::trace_json(&inner.spans, &inner.instants)
    }

    /// A text flamegraph-style rollup of span time by category/name.
    pub fn rollup(&self) -> String {
        let inner = self.inner.lock().unwrap();
        crate::chrome::rollup_text(&inner.spans)
    }
}

impl Recorder for MemRecorder {
    fn span(&self, cat: &str, name: &str, start_us: f64, dur_us: f64, attrs: &[(&str, AttrValue)]) {
        self.inner.lock().unwrap().spans.push(Span {
            cat: cat.to_string(),
            name: name.to_string(),
            start_us,
            dur_us,
            attrs: own_attrs(attrs),
        });
    }

    fn instant(&self, cat: &str, name: &str, at_us: f64, attrs: &[(&str, AttrValue)]) {
        self.inner.lock().unwrap().instants.push(Instant {
            cat: cat.to_string(),
            name: name.to_string(),
            at_us,
            attrs: own_attrs(attrs),
        });
    }

    fn add(&self, counter: &str, delta: u64) {
        self.inner.lock().unwrap().registry.add(counter, delta);
    }

    fn gauge_max(&self, gauge: &str, value: f64) {
        self.inner.lock().unwrap().registry.gauge_max(gauge, value);
    }

    fn observe(&self, hist: &str, value: f64) {
        self.inner.lock().unwrap().registry.observe(hist, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_instants_and_metrics() {
        let rec = MemRecorder::new();
        rec.span(
            "app.phase",
            "compute",
            0.0,
            10.0,
            &[("mflop", AttrValue::F64(1.5))],
        );
        rec.instant("fault", "fault.crash", 5.0, &[("rank", AttrValue::U64(3))]);
        rec.add("mpi.allreduce.calls", 1);
        rec.gauge_max("net.queue.peak", 4.0);
        rec.observe("pool.lane_rows", 128.0);

        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "compute");
        assert_eq!(
            spans[0].attrs,
            vec![("mflop".to_string(), "1.5".to_string())]
        );
        let instants = rec.instants();
        assert_eq!(instants.len(), 1);
        assert_eq!(
            instants[0].attrs,
            vec![("rank".to_string(), "3".to_string())]
        );
        assert_eq!(rec.counter("mpi.allreduce.calls"), Some(1));
        assert_eq!(rec.gauge("net.queue.peak"), Some(4.0));
        assert_eq!(rec.histogram("pool.lane_rows").unwrap().count, 1);
        assert_eq!(
            rec.totals(),
            Totals {
                spans: 1,
                instants: 1,
                metric_points: 3
            }
        );
    }

    #[test]
    fn str_attrs_render_as_quoted_json() {
        let rec = MemRecorder::new();
        rec.span("c", "n", 0.0, 1.0, &[("alg", AttrValue::Str("ring"))]);
        assert_eq!(rec.spans()[0].attrs[0].1, "\"ring\"");
    }
}
