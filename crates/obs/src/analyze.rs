//! Post-hoc attribution analysis over a recorded span stream — the
//! reproduction's answer to "where did the simulated time go?".
//!
//! The executor and the layers under it emit spans on rank 0's simulated
//! clock: `app.phase` spans tile the run phase by phase, each collective's
//! `mpi.<op>` span covers only the post-rendezvous operation (the gap
//! between the phase start and the op start is rank 0 waiting for the
//! slowest rank), and the resilience layer brackets checkpoint writes
//! with `ckpt` spans. [`Analysis::from_spans`] slices that stream into
//! elementary segments at every span boundary and attributes each segment
//! to exactly one [`Category`] by layer precedence:
//!
//! 1. `ckpt` spans — checkpoint/rollback machinery, including the
//!    barrier+write they contain;
//! 2. compute and runtime-overhead `app.phase` spans;
//! 3. `mpi` spans — the collective operation proper;
//! 4. what remains of communication `app.phase` spans — rendezvous skew
//!    and point-to-point (halo) transfer, i.e. network wait;
//! 5. time inside the recording extent covered by no span at all
//!    ([`Category::Unattributed`] — e.g. restart stalls, which are priced
//!    as bare uniform compute).
//!
//! Because the simulated SPMD timeline is a single sequential chain on
//! rank 0's clock, the critical path *is* the covered part of that chain:
//! [`Analysis::path_us`] (everything attributed to a real category) is
//! `<=` [`Analysis::end_to_end_us`] by construction, the category totals
//! sum to end-to-end time exactly (same additions, same order), and the
//! dominant chain is the per-`(category, operation)` aggregation sorted
//! by contribution. All outputs are byte-stable: segment walks follow
//! record order and floats render shortest-round-trip.

use crate::mem::Span;
use crate::{json_escape, json_f64};

/// Where a slice of simulated time went. The order is fixed — JSON
/// documents, tables and the exact-sum guarantees all follow it, with
/// `Unattributed` summed last so attributed time is a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Kernel compute (`app.phase` spans labelled `compute:<class>`).
    Compute,
    /// Collective operations proper (`mpi.<op>` spans, post-rendezvous).
    Collective,
    /// Rendezvous skew and point-to-point transfer: communication phases
    /// minus their contained collective op.
    NetworkWait,
    /// Checkpoint writes and rollback machinery (`ckpt` spans).
    Checkpoint,
    /// Modelled runtime overhead phases.
    Overhead,
    /// Time inside the recording extent covered by no span.
    Unattributed,
}

impl Category {
    /// Every category, in the fixed accounting order.
    pub const ALL: [Category; 6] = [
        Category::Compute,
        Category::Collective,
        Category::NetworkWait,
        Category::Checkpoint,
        Category::Overhead,
        Category::Unattributed,
    ];

    /// Stable snake_case name (JSON keys, table columns).
    pub fn name(self) -> &'static str {
        match self {
            Category::Compute => "compute",
            Category::Collective => "collective",
            Category::NetworkWait => "net_wait",
            Category::Checkpoint => "checkpoint",
            Category::Overhead => "overhead",
            Category::Unattributed => "unattributed",
        }
    }

    fn index(self) -> usize {
        match self {
            Category::Compute => 0,
            Category::Collective => 1,
            Category::NetworkWait => 2,
            Category::Checkpoint => 3,
            Category::Overhead => 4,
            Category::Unattributed => 5,
        }
    }
}

/// One aggregated node of the dominant chain: all segments with the same
/// `(category, label)`, e.g. every `SymGS` sweep or every `mpi.allreduce`.
#[derive(Debug, Clone)]
pub struct ChainNode {
    /// The attribution category of these segments.
    pub category: Category,
    /// The operation label (kernel class, `mpi.<op>`, `wait:<phase>` ...).
    pub label: String,
    /// Total simulated time attributed, microseconds.
    pub us: f64,
    /// Number of distinct span visits aggregated (a phase split by an
    /// inner span still counts once).
    pub count: u64,
}

/// A classified interval awaiting the segment sweep.
struct Interval {
    start: f64,
    end: f64,
    category: Category,
    label: String,
}

/// One precedence layer: intervals sorted by start (record order breaks
/// ties), plus the running maximum of interval ends — the early-exit that
/// keeps coverage lookups from rescanning the whole timeline.
struct Layer {
    ivs: Vec<Interval>,
    prefix_max_end: Vec<f64>,
}

impl Layer {
    fn build(mut ivs: Vec<Interval>) -> Layer {
        ivs.sort_by(|a, b| a.start.total_cmp(&b.start)); // stable: record order ties
        let mut prefix_max_end = Vec::with_capacity(ivs.len());
        let mut m = f64::NEG_INFINITY;
        for iv in &ivs {
            m = m.max(iv.end);
            prefix_max_end.push(m);
        }
        Layer {
            ivs,
            prefix_max_end,
        }
    }

    /// Index of the interval covering `[a, b]`, preferring the
    /// latest-starting one (the innermost span when spans nest).
    fn covering(&self, a: f64, b: f64) -> Option<usize> {
        let mut i = self.ivs.partition_point(|iv| iv.start <= a);
        while i > 0 {
            i -= 1;
            if self.prefix_max_end[i] < b {
                return None; // nothing at or before i reaches b
            }
            if self.ivs[i].end >= b {
                return Some(i);
            }
        }
        None
    }
}

/// The attribution of one recorded run. Build with
/// [`Analysis::from_spans`]; render with [`Analysis::to_json`].
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Earliest classified span start, microseconds (0 when empty).
    pub extent_start_us: f64,
    /// Latest classified span end, microseconds (0 when empty).
    pub extent_end_us: f64,
    /// Per-category totals, in [`Category::ALL`] order.
    pub totals: [f64; 6],
    /// The dominant chain: `(category, label)` aggregates, largest first
    /// (ties break on category order, then label).
    pub chain: Vec<ChainNode>,
    /// Spans that participated in the attribution.
    pub spans_considered: usize,
    /// Elementary segments the extent was sliced into.
    pub segments: usize,
}

/// Strip the pre-rendered JSON quoting from a recorded `Str` attribute.
fn attr_str(raw: &str) -> &str {
    raw.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(raw)
}

/// The phase kind of an `app.phase` span: the `phase` attribute when the
/// emitter provided one, else parsed from the label.
fn phase_kind(span: &Span) -> &str {
    if let Some((_, v)) = span.attrs.iter().find(|(k, _)| k == "phase") {
        return attr_str(v);
    }
    let name = span.name.as_str();
    if name.starts_with("compute:") {
        "compute"
    } else if name.starts_with("runtime overhead") {
        "overhead"
    } else {
        name.split('(').next().unwrap_or(name)
    }
}

/// The chain label of a compute phase: `compute:SymGS (52.4 Mflop)`
/// becomes `SymGS`.
fn compute_label(name: &str) -> String {
    let body = name.strip_prefix("compute:").unwrap_or(name);
    body.split(" (").next().unwrap_or(body).to_string()
}

/// Classify one span into `(precedence layer 1..=4, category, label)`.
/// Spans outside the attribution taxonomy (pool dispatches, DES engine
/// internals) return `None` and are ignored.
fn classify(span: &Span) -> Option<(usize, Category, String)> {
    match span.cat.as_str() {
        "ckpt" => Some((4, Category::Checkpoint, span.name.clone())),
        "mpi" => Some((2, Category::Collective, span.name.clone())),
        "app.phase" => match phase_kind(span) {
            "compute" => Some((3, Category::Compute, compute_label(&span.name))),
            "overhead" => Some((3, Category::Overhead, "overhead".to_string())),
            kind => Some((1, Category::NetworkWait, format!("wait:{kind}"))),
        },
        _ => None,
    }
}

impl Analysis {
    /// Attribute a recorded span stream (see the module docs for the
    /// taxonomy). Spans with non-positive duration are skipped; an empty
    /// or fully-unclassifiable stream yields an all-zero analysis.
    pub fn from_spans(spans: &[Span]) -> Analysis {
        let mut per_layer: [Vec<Interval>; 5] = Default::default();
        let mut boundaries: Vec<f64> = Vec::new();
        let mut considered = 0usize;
        for s in spans {
            if s.dur_us.is_nan() || s.dur_us <= 0.0 || !s.start_us.is_finite() {
                continue;
            }
            let Some((layer, category, label)) = classify(s) else {
                continue;
            };
            considered += 1;
            let (start, end) = (s.start_us, s.start_us + s.dur_us);
            boundaries.push(start);
            boundaries.push(end);
            per_layer[layer].push(Interval {
                start,
                end,
                category,
                label,
            });
        }
        if considered == 0 {
            return Analysis {
                extent_start_us: 0.0,
                extent_end_us: 0.0,
                totals: [0.0; 6],
                chain: Vec::new(),
                spans_considered: 0,
                segments: 0,
            };
        }
        boundaries.sort_by(f64::total_cmp);
        boundaries.dedup();
        let layers: Vec<Layer> = per_layer.into_iter().map(Layer::build).collect();

        let mut totals = [0.0f64; 6];
        // Chain aggregation in first-visit order; a (layer, index) change
        // marks a new visit even when an inner span splits the interval.
        let mut chain: Vec<ChainNode> = Vec::new();
        let mut node_of: std::collections::HashMap<(usize, String), usize> =
            std::collections::HashMap::new();
        let mut last_key: Option<(usize, usize)> = None;
        let mut segments = 0usize;
        for w in boundaries.windows(2) {
            let (a, b) = (w[0], w[1]);
            let dur = b - a;
            if dur.is_nan() || dur <= 0.0 {
                continue;
            }
            segments += 1;
            // Highest-precedence covering layer wins the segment.
            let mut hit: Option<(usize, usize)> = None;
            for layer in (1..=4).rev() {
                if let Some(i) = layers[layer].covering(a, b) {
                    hit = Some((layer, i));
                    break;
                }
            }
            let (category, label, key) = match hit {
                Some((layer, i)) => {
                    let iv = &layers[layer].ivs[i];
                    (iv.category, iv.label.as_str(), Some((layer, i)))
                }
                None => (Category::Unattributed, "(uncovered)", None),
            };
            totals[category.index()] += dur;
            let node_key = (category.index(), label.to_string());
            let at = *node_of.entry(node_key).or_insert_with(|| {
                chain.push(ChainNode {
                    category,
                    label: label.to_string(),
                    us: 0.0,
                    count: 0,
                });
                chain.len() - 1
            });
            chain[at].us += dur;
            if key != last_key || key.is_none() {
                chain[at].count += 1;
            }
            last_key = key;
        }
        chain.sort_by(|x, y| {
            y.us.total_cmp(&x.us)
                .then(x.category.index().cmp(&y.category.index()))
                .then(x.label.cmp(&y.label))
        });
        Analysis {
            extent_start_us: boundaries[0],
            extent_end_us: *boundaries.last().unwrap(),
            totals,
            chain,
            spans_considered: considered,
            segments,
        }
    }

    /// Total attributed to one category, microseconds.
    pub fn total(&self, c: Category) -> f64 {
        self.totals[c.index()]
    }

    /// End-to-end accounted time: the category totals folded in
    /// [`Category::ALL`] order. Equals the span extent up to float
    /// round-off, and equals the category sum *exactly* (same additions,
    /// same order) — the invariant the conform suite pins bitwise.
    pub fn end_to_end_us(&self) -> f64 {
        self.totals.iter().sum()
    }

    /// The simulated critical path: everything attributed to a real
    /// category (the fold of [`Analysis::end_to_end_us`] minus its final
    /// `Unattributed` addend, so `path_us <= end_to_end_us` holds exactly
    /// — adding a non-negative tail never shrinks a float sum).
    pub fn path_us(&self) -> f64 {
        self.totals[..5].iter().sum()
    }

    /// The raw span extent (last end minus first start), microseconds.
    pub fn extent_us(&self) -> f64 {
        self.extent_end_us - self.extent_start_us
    }

    /// The category holding the most time (first in [`Category::ALL`]
    /// order on an exact tie — including the all-zero empty analysis,
    /// which reports `Compute`).
    pub fn dominant(&self) -> Category {
        let mut best = Category::ALL[0];
        for c in Category::ALL {
            if self.total(c) > self.total(best) {
                best = c;
            }
        }
        best
    }

    /// A category's share of end-to-end time, percent (0 when empty).
    pub fn share_pct(&self, c: Category) -> f64 {
        let total = self.end_to_end_us();
        if total > 0.0 {
            100.0 * self.total(c) / total
        } else {
            0.0
        }
    }

    /// Serialise as a byte-stable JSON document. `meta` key/value string
    /// pairs head the document, mirroring the metrics snapshot.
    pub fn to_json(&self, meta: &[(&str, String)]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        for (k, v) in meta {
            out.push_str(&format!(
                "  \"{}\": \"{}\",\n",
                json_escape(k),
                json_escape(v)
            ));
        }
        out.push_str(&format!(
            "  \"extent_us\": {{\"start\": {}, \"end\": {}}},\n",
            json_f64(self.extent_start_us),
            json_f64(self.extent_end_us)
        ));
        out.push_str(&format!(
            "  \"end_to_end_us\": {},\n  \"path_us\": {},\n",
            json_f64(self.end_to_end_us()),
            json_f64(self.path_us())
        ));
        out.push_str(&format!(
            "  \"dominant\": \"{}\",\n  \"categories\": {{\n",
            self.dominant().name()
        ));
        for (i, c) in Category::ALL.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\"us\": {}, \"share_pct\": {}}}{}\n",
                c.name(),
                json_f64(self.total(*c)),
                json_f64(self.share_pct(*c)),
                if i + 1 < Category::ALL.len() { "," } else { "" }
            ));
        }
        out.push_str("  },\n  \"chain\": [");
        for (i, n) in self.chain.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"category\": \"{}\", \"label\": \"{}\", \"us\": {}, \"share_pct\": {}, \"count\": {}}}",
                n.category.name(),
                json_escape(&n.label),
                json_f64(n.us),
                json_f64(self.share_pct_of(n.us)),
                n.count
            ));
        }
        out.push_str(if self.chain.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str(&format!(
            "  \"spans\": {},\n  \"segments\": {}\n}}\n",
            self.spans_considered, self.segments
        ));
        out
    }

    /// An arbitrary duration's share of end-to-end time, percent (0 when
    /// empty) — e.g. one chain node's contribution.
    pub fn share_pct_of(&self, us: f64) -> f64 {
        let total = self.end_to_end_us();
        if total > 0.0 {
            100.0 * us / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrValue, MemRecorder, Recorder};

    fn span(cat: &str, name: &str, start: f64, dur: f64) -> Span {
        Span {
            cat: cat.to_string(),
            name: name.to_string(),
            start_us: start,
            dur_us: dur,
            attrs: Vec::new(),
        }
    }

    /// A miniature run shaped like the real emitters: one compute phase,
    /// one allreduce phase whose mpi span starts after the rendezvous,
    /// a checkpoint write containing its barrier, and a gap.
    fn demo_spans() -> Vec<Span> {
        vec![
            span("mpi", "mpi.allreduce", 12.0, 6.0),
            span("app.phase", "compute:SymGS (52.4 Mflop)", 0.0, 10.0),
            span("app.phase", "allreduce(8B)", 10.0, 8.0),
            span("mpi", "mpi.barrier", 20.0, 1.0),
            span("ckpt", "ckpt.write", 20.0, 5.0),
            // 25..30 is covered by nothing: unattributed.
            span("app.phase", "runtime overhead (2us)", 30.0, 2.0),
        ]
    }

    #[test]
    fn categories_split_by_layer_precedence() {
        let a = Analysis::from_spans(&demo_spans());
        assert_eq!(a.total(Category::Compute), 10.0);
        assert_eq!(a.total(Category::Collective), 6.0); // mpi.allreduce only
        assert_eq!(a.total(Category::NetworkWait), 2.0); // 10..12 rendezvous
        assert_eq!(a.total(Category::Checkpoint), 5.0); // barrier absorbed
        assert_eq!(a.total(Category::Overhead), 2.0);
        assert_eq!(a.total(Category::Unattributed), 7.0); // 18..20 and 25..30
        assert_eq!(a.extent_us(), 32.0);
        assert_eq!(a.dominant(), Category::Compute);
    }

    #[test]
    fn sums_and_path_are_exact_by_construction() {
        let a = Analysis::from_spans(&demo_spans());
        let manual: f64 = a.totals.iter().sum();
        assert_eq!(manual.to_bits(), a.end_to_end_us().to_bits());
        assert!(a.path_us() <= a.end_to_end_us());
        assert_eq!(a.path_us(), 25.0);
        assert_eq!(a.end_to_end_us(), 32.0);
    }

    #[test]
    fn chain_aggregates_and_sorts_by_contribution() {
        let a = Analysis::from_spans(&demo_spans());
        assert_eq!(a.chain[0].label, "SymGS");
        assert_eq!(a.chain[0].us, 10.0);
        let wait = a.chain.iter().find(|n| n.label == "wait:allreduce");
        assert_eq!(wait.unwrap().us, 2.0);
        let ckpt = a.chain.iter().find(|n| n.label == "ckpt.write").unwrap();
        assert_eq!((ckpt.us, ckpt.count), (5.0, 1));
    }

    #[test]
    fn empty_and_unclassifiable_streams_are_all_zero() {
        let a = Analysis::from_spans(&[]);
        assert_eq!(a.end_to_end_us(), 0.0);
        assert_eq!(a.dominant(), Category::Compute);
        let b = Analysis::from_spans(&[span("pool", "pool.dispatch", 0.0, 5.0)]);
        assert_eq!(b.spans_considered, 0);
        assert_eq!(b.end_to_end_us(), 0.0);
        assert!(b.to_json(&[]).contains("\"chain\": []"));
    }

    #[test]
    fn phase_attr_overrides_label_parsing() {
        let rec = MemRecorder::new();
        rec.span(
            "app.phase",
            "weird label",
            0.0,
            4.0,
            &[("phase", AttrValue::Str("compute"))],
        );
        let a = Analysis::from_spans(&rec.spans());
        assert_eq!(a.total(Category::Compute), 4.0);
    }

    #[test]
    fn json_is_deterministic_and_carries_meta() {
        let a = Analysis::from_spans(&demo_spans());
        let j1 = a.to_json(&[("app", "demo".to_string())]);
        let j2 = Analysis::from_spans(&demo_spans()).to_json(&[("app", "demo".to_string())]);
        assert_eq!(j1, j2);
        assert!(j1.contains("\"app\": \"demo\""));
        assert!(j1.contains("\"dominant\": \"compute\""));
        assert!(j1.contains("\"net_wait\""));
    }

    /// Deterministic pseudo-random span stream for the invariant tests.
    fn arb_spans(seed: u64, n: usize) -> Vec<Span> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let cats: [(&str, &str); 6] = [
            ("app.phase", "compute:SpMV (1.0 Mflop)"),
            ("app.phase", "allreduce(64B)"),
            ("app.phase", "halo(4 pairs)"),
            ("mpi", "mpi.allreduce"),
            ("ckpt", "ckpt.write"),
            ("pool", "pool.dispatch"),
        ];
        (0..n)
            .map(|_| {
                let (cat, name) = cats[(next() % 6) as usize];
                let start = (next() % 10_000) as f64 / 10.0;
                let dur = (next() % 500) as f64 / 10.0;
                span(cat, name, start, dur)
            })
            .collect()
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Build a classified span from a proptest case tuple: a taxonomy
        /// pick plus quantised start/duration (quantisation produces the
        /// boundary collisions that stress the sweep's dedup path).
        fn case_span(pick: usize, start_q: u64, dur_q: u64) -> Span {
            let cats: [(&str, &str); 7] = [
                ("app.phase", "compute:SpMV (1.0 Mflop)"),
                ("app.phase", "compute:SymGS (2.0 Mflop)"),
                ("app.phase", "allreduce(64B)"),
                ("app.phase", "halo(4 pairs)"),
                ("mpi", "mpi.allreduce"),
                ("ckpt", "ckpt.write"),
                ("des", "des.shard.run"),
            ];
            let (cat, name) = cats[pick % cats.len()];
            span(cat, name, start_q as f64 * 0.5, dur_q as f64 * 0.5)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn path_never_exceeds_extent_or_end_to_end(
                raw in proptest::collection::vec((0usize..7, 0u64..2000, 0u64..200), 0..80),
            ) {
                let spans: Vec<Span> =
                    raw.iter().map(|&(p, s, d)| case_span(p, s, d)).collect();
                let a = Analysis::from_spans(&spans);
                prop_assert!(a.path_us() <= a.end_to_end_us());
                if a.spans_considered > 0 {
                    prop_assert!(
                        a.path_us() <= a.extent_us() * (1.0 + f64::EPSILON),
                        "path {} > extent {}", a.path_us(), a.extent_us()
                    );
                }
            }

            #[test]
            fn categories_sum_to_end_to_end_within_one_ulp(
                raw in proptest::collection::vec((0usize..7, 0u64..2000, 0u64..200), 0..80),
            ) {
                let spans: Vec<Span> =
                    raw.iter().map(|&(p, s, d)| case_span(p, s, d)).collect();
                let a = Analysis::from_spans(&spans);
                let sum: f64 = a.totals.iter().sum();
                // Exact by construction: same addends, same order.
                prop_assert_eq!(sum.to_bits(), a.end_to_end_us().to_bits());
                // And within 1 ulp of any other summation order.
                let mut rev = 0.0;
                for t in a.totals.iter().rev() {
                    rev += t;
                }
                let ulp = f64::from_bits(sum.to_bits() + 1) - sum;
                prop_assert!((rev - sum).abs() <= ulp.max(f64::MIN_POSITIVE));
            }

            #[test]
            fn analysis_json_is_byte_identical_across_threads(
                raw in proptest::collection::vec((0usize..7, 0u64..2000, 0u64..200), 1..40),
            ) {
                let spans: std::sync::Arc<Vec<Span>> = std::sync::Arc::new(
                    raw.iter().map(|&(p, s, d)| case_span(p, s, d)).collect(),
                );
                let reference =
                    Analysis::from_spans(&spans).to_json(&[("run", "p".to_string())]);
                for nthreads in [1usize, 2, 4] {
                    let handles: Vec<_> = (0..nthreads)
                        .map(|_| {
                            let spans = spans.clone();
                            std::thread::spawn(move || {
                                Analysis::from_spans(&spans)
                                    .to_json(&[("run", "p".to_string())])
                            })
                        })
                        .collect();
                    for h in handles {
                        prop_assert_eq!(
                            &h.join().expect("analysis thread panicked"),
                            &reference,
                            "analysis diverged under {} threads", nthreads
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn invariants_hold_on_random_overlapping_streams() {
        for seed in 1..40u64 {
            let spans = arb_spans(seed * 0x9e37_79b9, 60);
            let a = Analysis::from_spans(&spans);
            // Path <= end-to-end, exactly.
            assert!(a.path_us() <= a.end_to_end_us(), "seed {seed}");
            // Category totals sum to end-to-end, bitwise.
            let sum: f64 = a.totals.iter().sum();
            assert_eq!(sum.to_bits(), a.end_to_end_us().to_bits(), "seed {seed}");
            // All totals non-negative; accounted time is within float
            // round-off of the raw extent.
            for t in a.totals {
                assert!(t >= 0.0, "seed {seed}");
            }
            if a.spans_considered > 0 {
                let extent = a.extent_us();
                assert!(
                    (a.end_to_end_us() - extent).abs() <= 1e-9 * extent.max(1.0),
                    "seed {seed}: {} vs extent {extent}",
                    a.end_to_end_us()
                );
                assert!(a.path_us() <= extent * (1.0 + 1e-12), "seed {seed}");
            }
            // Chain totals re-sum to the category totals.
            let chain_sum: f64 = a.chain.iter().map(|n| n.us).sum();
            assert!(
                (chain_sum - a.end_to_end_us()).abs() <= 1e-9 * chain_sum.max(1.0),
                "seed {seed}"
            );
        }
    }
}
