//! Chrome Trace Event JSON export and a text flamegraph-style rollup.
//!
//! The export follows the Trace Event Format accepted by
//! `chrome://tracing` and Perfetto: one `"X"` (complete) event per span
//! with `ts`/`dur` in microseconds, one `"i"` (instant) event per point
//! event with global scope, and `"M"` metadata events naming the two
//! virtual tracks — track 0 for simulated time (app phases, MPI,
//! network, faults) and track 1 for the kernel pool's logical
//! dispatch-generation clock, which would otherwise interleave
//! meaninglessly with simulated time.

use std::collections::BTreeMap;

use crate::mem::{Instant, Span};
use crate::{json_escape, json_f64};

/// The trace `pid` — single simulated process.
const PID: u32 = 1;

fn tid_for(cat: &str) -> u32 {
    if cat.starts_with("pool") {
        1
    } else {
        0
    }
}

fn args_json(attrs: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {}", json_escape(k), v));
    }
    out.push('}');
    out
}

/// Serialise a recording to a Chrome Trace Event JSON document.
pub(crate) fn trace_json(spans: &[Span], instants: &[Instant]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    out.push_str(&format!(
        "{{\"ph\": \"M\", \"pid\": {PID}, \"tid\": 0, \"name\": \"thread_name\", \"args\": {{\"name\": \"simulated time (us)\"}}}}"
    ));
    let has_pool =
        spans.iter().any(|s| tid_for(&s.cat) == 1) || instants.iter().any(|i| tid_for(&i.cat) == 1);
    if has_pool {
        out.push_str(",\n");
        out.push_str(&format!(
            "{{\"ph\": \"M\", \"pid\": {PID}, \"tid\": 1, \"name\": \"thread_name\", \"args\": {{\"name\": \"kernel pool (logical dispatch clock)\"}}}}"
        ));
    }
    for s in spans {
        out.push_str(",\n");
        out.push_str(&format!(
            "{{\"ph\": \"X\", \"pid\": {PID}, \"tid\": {}, \"cat\": \"{}\", \"name\": \"{}\", \"ts\": {}, \"dur\": {}, \"args\": {}}}",
            tid_for(&s.cat),
            json_escape(&s.cat),
            json_escape(&s.name),
            json_f64(s.start_us),
            json_f64(s.dur_us),
            args_json(&s.attrs)
        ));
    }
    for i in instants {
        out.push_str(",\n");
        out.push_str(&format!(
            "{{\"ph\": \"i\", \"s\": \"g\", \"pid\": {PID}, \"tid\": {}, \"cat\": \"{}\", \"name\": \"{}\", \"ts\": {}, \"args\": {}}}",
            tid_for(&i.cat),
            json_escape(&i.cat),
            json_escape(&i.name),
            json_f64(i.at_us),
            args_json(&i.attrs)
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Strip a per-instance suffix from a span name for aggregation: labels
/// like `compute:SymGS (52.4 Mflop)` or `allreduce(8B)` collapse to the
/// part before the first `(` so repeated phases aggregate into one row.
fn rollup_key(name: &str) -> &str {
    match name.find('(') {
        Some(i) => name[..i].trim_end(),
        None => name,
    }
}

/// Aggregate spans into a text flamegraph-style rollup: one row per
/// `category / name-stem`, sorted by total self time descending (ties
/// broken by name for determinism), with counts and percentages of the
/// total recorded span time.
pub fn rollup_text(spans: &[Span]) -> String {
    let mut agg: BTreeMap<(String, String), (u64, f64)> = BTreeMap::new();
    for s in spans {
        let key = (s.cat.clone(), rollup_key(&s.name).to_string());
        let e = agg.entry(key).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += s.dur_us;
    }
    // Fold from +0.0: the std empty-sum identity is -0.0, which would
    // leak into the header as "-0.0 us".
    let total: f64 = agg.values().fold(0.0, |acc, (_, d)| acc + d);
    let mut rows: Vec<((String, String), (u64, f64))> = agg.into_iter().collect();
    rows.sort_by(|a, b| {
        b.1 .1
            .partial_cmp(&a.1 .1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    let mut out = String::new();
    out.push_str(&format!(
        "span rollup: {} spans, {:.1} us total\n",
        spans.len(),
        total
    ));
    out.push_str(&format!(
        "{:>12}  {:>8}  {:>6}  {}\n",
        "total_us", "count", "share", "cat / name"
    ));
    for ((cat, name), (count, dur)) in rows {
        let share = if total > 0.0 {
            100.0 * dur / total
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:>12.1}  {:>8}  {:>5.1}%  {} / {}\n",
            dur, count, share, cat, name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrValue, MemRecorder, Recorder};

    fn sample() -> MemRecorder {
        let rec = MemRecorder::new();
        rec.span(
            "app.phase",
            "compute:SymGS (52.4 Mflop)",
            0.0,
            100.0,
            &[("mflop", AttrValue::F64(52.4))],
        );
        rec.span("app.phase", "compute:SymGS (52.4 Mflop)", 100.0, 100.0, &[]);
        rec.span(
            "mpi",
            "mpi.allreduce",
            200.0,
            50.0,
            &[("bytes", AttrValue::U64(8))],
        );
        rec.span("pool", "pool.dispatch", 0.0, 1.0, &[]);
        rec.instant(
            "fault",
            "fault.crash",
            120.0,
            &[("rank", AttrValue::U64(2))],
        );
        rec
    }

    #[test]
    fn trace_json_has_expected_events() {
        let rec = sample();
        let json = rec.chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"));
        assert!(json.trim_end().ends_with("]}"));
        // 2 thread_name metadata + 4 spans + 1 instant.
        assert_eq!(json.matches("\"ph\": \"M\"").count(), 2);
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 4);
        assert_eq!(json.matches("\"ph\": \"i\"").count(), 1);
        assert!(json.contains("\"tid\": 1, \"cat\": \"pool\""));
        assert!(json.contains("\"args\": {\"rank\": 2}"));
        assert!(json.contains("\"ts\": 200, \"dur\": 50"));
    }

    #[test]
    fn pool_metadata_omitted_without_pool_spans() {
        let rec = MemRecorder::new();
        rec.span("app.phase", "compute", 0.0, 1.0, &[]);
        let json = rec.chrome_trace_json();
        assert_eq!(json.matches("\"ph\": \"M\"").count(), 1);
    }

    #[test]
    fn rollup_aggregates_and_sorts_by_time() {
        let rec = sample();
        let text = rec.rollup();
        assert!(text.starts_with("span rollup: 4 spans, 251.0 us total\n"));
        // SymGS aggregates its two spans and leads the table.
        let symgs = text.find("app.phase / compute:SymGS").unwrap();
        let allreduce = text.find("mpi / mpi.allreduce").unwrap();
        assert!(symgs < allreduce);
        assert!(text.contains("       200.0         2"));
    }

    #[test]
    fn rollup_of_empty_recording() {
        let text = rollup_text(&[]);
        assert!(text.starts_with("span rollup: 0 spans, 0.0 us total"));
    }
}
