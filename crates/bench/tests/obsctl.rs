//! End-to-end tests of the `obsctl` binary: the perf gate's exit-code
//! contract (including the injected-regression self-test CI relies on),
//! and the offline attrib/prom views against in-process ground truth.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Arc;

fn obsctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_obsctl"))
        .args(args)
        .output()
        .expect("obsctl must spawn")
}

/// Write `content` to a unique temp file and return its path.
fn temp(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("obsctl_test_{}_{name}", std::process::id()));
    std::fs::write(&path, content).expect("temp write");
    path
}

fn baseline_doc(wall_s: f64, speedup: f64, threads: u64) -> String {
    format!(
        r#"{{
  "config": {{"git_sha": "baseline00", "des_backend": "serial", "pricing": "flat", "threads": {threads}}},
  "available_parallelism": 1,
  "wall_s": {wall_s},
  "kernels": [
    {{"name": "spmv_csr", "serial_s": 0.01, "pooled_s": 0.005, "pooled_vs_serial": {speedup}}}
  ]
}}
"#
    )
}

#[test]
fn diff_exit_codes_cover_the_gate_contract() {
    let base = temp("base.json", &baseline_doc(10.0, 2.0, 1));

    // Clean: identical numbers under a different git sha.
    let same = temp(
        "same.json",
        &baseline_doc(10.0, 2.0, 1).replace("baseline00", "candidate11"),
    );
    let out = obsctl(&["diff", base.to_str().unwrap(), same.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // The acceptance self-test: a >threshold injected regression (wall
    // time +40% over a 25% default threshold) must exit nonzero.
    let slow = temp("slow.json", &baseline_doc(14.0, 2.0, 1));
    let out = obsctl(&["diff", base.to_str().unwrap(), slow.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("REGRESSION"), "{report}");
    assert!(report.contains("wall_s"), "{report}");

    // The same regression is tolerated under --warn-values (CI's
    // untrusted-timing mode) and under a looser threshold.
    let out = obsctl(&[
        "diff",
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--warn-values",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = obsctl(&[
        "diff",
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--threshold",
        "50",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // A lost speedup (higher-is-better moving down) also regresses.
    let lost = temp("lost.json", &baseline_doc(10.0, 1.0, 1));
    let out = obsctl(&["diff", base.to_str().unwrap(), lost.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    // Shape drift: a renamed kernel fails even under --warn-values.
    let renamed = temp(
        "renamed.json",
        &baseline_doc(10.0, 2.0, 1).replace("spmv_csr", "spmv_sell"),
    );
    let out = obsctl(&[
        "diff",
        base.to_str().unwrap(),
        renamed.to_str().unwrap(),
        "--warn-values",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // Config mismatch: different thread counts are not comparable.
    let threads4 = temp("threads4.json", &baseline_doc(10.0, 2.0, 4));
    let out = obsctl(&[
        "diff",
        base.to_str().unwrap(),
        threads4.to_str().unwrap(),
        "--warn-values",
    ]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");

    // Unreadable input is its own failure, distinct from the gate codes.
    let garbage = temp("garbage.json", "{ not json");
    let out = obsctl(&["diff", base.to_str().unwrap(), garbage.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(4), "{out:?}");

    for p in [base, same, slow, lost, renamed, threads4, garbage] {
        std::fs::remove_file(p).ok();
    }
}

/// Record a small taxonomy-shaped run and return the recorder.
fn sample_recording() -> Arc<obs::MemRecorder> {
    use obs::AttrValue;
    let rec = Arc::new(obs::MemRecorder::new());
    obs::with_recorder(rec.clone(), || {
        obs::span(
            "app.phase",
            "compute:SymGS (10.0 Mflop)",
            0.0,
            60.0,
            &[("phase", AttrValue::Str("compute"))],
        );
        obs::span(
            "app.phase",
            "allreduce(8B)",
            60.0,
            20.0,
            &[("phase", AttrValue::Str("allreduce"))],
        );
        obs::span(
            "mpi",
            "mpi.allreduce",
            65.0,
            15.0,
            &[
                ("ranks", AttrValue::U64(2)),
                ("wait0_us", AttrValue::F64(5.0)),
            ],
        );
        obs::span("ckpt", "ckpt.write", 80.0, 10.0, &[]);
        obs::add("mpi.allreduce.calls", 1);
        obs::gauge_max("des.queue.peak_depth", 7.0);
        obs::observe("mpi.sync_wait_us", 5.0);
        obs::observe("mpi.sync_wait_us", 300.0);
    });
    rec
}

#[test]
fn attrib_replays_a_chrome_trace_to_the_in_process_analysis() {
    let rec = sample_recording();
    let trace = temp("trace.json", &rec.chrome_trace_json());

    // The offline document is byte-identical to the in-process one: the
    // trace round-trip loses nothing the analyzer reads.
    let out = obsctl(&["attrib", trace.to_str().unwrap(), "--json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        rec.analyze().to_json(&[])
    );

    // The human view names the categories and the dominant chain.
    let out = obsctl(&["attrib", trace.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "compute",
        "collective",
        "checkpoint",
        "SymGS",
        "critical path",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // A non-trace JSON file is rejected with the input-error code.
    let not_trace = temp("not_trace.json", "{\"spans\": []}");
    let out = obsctl(&["attrib", not_trace.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(4), "{out:?}");

    std::fs::remove_file(trace).ok();
    std::fs::remove_file(not_trace).ok();
}

#[test]
fn prom_rebuilds_the_exposition_from_a_snapshot() {
    let rec = sample_recording();
    // Both snapshot flavours must round-trip (the percentile fields of the
    // extended one are recomputable and ignored).
    for (name, snapshot) in [
        (
            "metrics.json",
            rec.metrics_json(&[("experiment", "t".to_string())]),
        ),
        (
            "metrics_ext.json",
            rec.metrics_json_ext(&[("experiment", "t".to_string())]),
        ),
    ] {
        let path = temp(name, &snapshot);
        let out = obsctl(&["prom", path.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(0), "{out:?}");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            rec.prometheus(),
            "offline exposition must match the in-process registry"
        );
        std::fs::remove_file(path).ok();
    }
}
