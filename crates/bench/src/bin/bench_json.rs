//! `bench_json` — machine-readable kernel and repro-suite timings, no
//! criterion.
//!
//! Times the shared-memory kernel runtime three ways — serial, the old
//! spawn-a-thread-scope-per-call team, and the persistent kernel pool — on
//! the paper-shaped kernels (CSR SpMV, SELL-C-σ SpMV, multicolour SymGS,
//! dot, AXPY, and a full CG solve on the 48³ 27-point stencil), and writes
//! the results as JSON to `BENCH_kernels.json` (or the path given as the
//! first argument).
//!
//! It then times one full repro run — every experiment through the
//! isolated runner, trace cache on — and writes `BENCH_repro.json` (or the
//! path given as the second argument): wall seconds, per-experiment
//! seconds, trace-cache counters (hits, misses, inserts, LRU evictions
//! and disk-tier loads/stores/corruptions), collective-cache counters,
//! campaign counters (journal records, resumes, retries), and a DES
//! drain microbench (events popped per second through a pre-sized
//! [`netsim::des::EventQueue`]).
//!
//! Finally it times the backend-routed DES allreduce (serial heap vs the
//! sharded conservative-lookahead engine at 2 and 4 shards) at 1k/16k/131k
//! simulated nodes, writing events/sec and engine statistics to
//! `BENCH_des.json` (or the path given as the third argument).
//! `bench_json --des [path]` runs only this part — the fast mode CI's
//! `des` job uses.
//!
//! It also prices one representative kernel of every app kernel class
//! under both pricing backends (flat roofline vs cache-hierarchy ECM) on
//! the A64FX, asserting the flat path bit-identical across independently
//! built executors, and writes predicted times and roofline efficiencies
//! to `BENCH_ecm.json` (or the path given as the fourth argument).
//! `bench_json --ecm [path]` runs only this part — the fast mode CI's
//! `ecm` job uses.
//!
//! Each timing is the best of a few repetitions of `std::time::Instant`
//! around the kernel. Every file opens with a `"config"` header (git
//! revision, DES backend, pricing backend, worker threads) so `obsctl
//! diff` can refuse comparisons across mismatched configurations, and
//! records `available_parallelism` so readers can judge the numbers: on a single-core host the pooled kernels cannot
//! beat serial — what the pool still demonstrates there is the amortised
//! spawn overhead against the spawn-per-call team. The kernel file also
//! records the team's `serial_cutover_ops` — kernels below it run inline
//! (the small-kernel regression fix), so their pooled and serial columns
//! should read within noise of each other.

use sparsela::coloring::Coloring;
use sparsela::ell::SellMatrix;
use sparsela::gen::stencil27;
use sparsela::parallel::{SpawnTeam, Team};
use std::hint::black_box;
use std::time::Instant;

const GRID: (usize, usize, usize) = (48, 48, 48);
const THREADS: usize = 4;
const CG_ITERS: usize = 30;
const VEC_REPS: u32 = 5;
const CG_REPS: u32 = 3;

/// Best-of-`reps` wall time of `f`, in seconds.
fn time<O>(reps: u32, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct Row {
    name: &'static str,
    serial_s: f64,
    spawn_s: f64,
    pooled_s: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "    {{\"name\": \"{}\", \"serial_s\": {:.6e}, \"spawn_s\": {:.6e}, \"pooled_s\": {:.6e}, \"pooled_vs_serial\": {:.3}, \"pooled_vs_spawn\": {:.3}}}",
            self.name,
            self.serial_s,
            self.spawn_s,
            self.pooled_s,
            self.serial_s / self.pooled_s,
            self.spawn_s / self.pooled_s,
        )
    }
}

/// Time one full repro run (all experiments through the isolated runner,
/// trace cache on) and write the result as JSON to `path`.
fn bench_repro(path: &str) {
    use a64fx_core::{campaign, runner, tracecache};
    use simmpi::collcache;

    let threads = runner::resolve_threads(None);
    eprintln!("timing full repro suite ({threads} worker threads)...");
    let trace0 = tracecache::stats();
    let coll0 = collcache::stats();
    let camp0 = campaign::stats();
    let t0 = Instant::now();
    let outcomes = runner::run_all_isolated(threads, runner::resolve_deadline(None));
    let wall_s = t0.elapsed().as_secs_f64();
    let trace1 = tracecache::stats();
    let coll1 = collcache::stats();
    let camp1 = campaign::stats();
    let failed = outcomes.iter().filter(|o| o.failed()).count();
    let per_exp: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "    {{\"id\": \"{}\", \"wall_s\": {:.3}, \"failed\": {}}}",
                o.id,
                o.elapsed.as_secs_f64(),
                o.failed(),
            )
        })
        .collect();

    // DES drain microbench: schedule-then-drain through a pre-sized queue,
    // the pattern the simulator's validation path uses. `popped_total()`
    // gives the event count without needing an obs recorder around the
    // timed region.
    const DES_EVENTS: usize = 100_000;
    let mut q = netsim::des::EventQueue::with_capacity(DES_EVENTS);
    let d0 = Instant::now();
    for i in 0..DES_EVENTS {
        q.schedule_at(i as f64 * 0.5, i);
    }
    while q.pop().is_some() {}
    let des_s = d0.elapsed().as_secs_f64();
    let des_popped = q.popped_total();

    let json = format!(
        "{{\n  \"config\": {cfg},\n  \"threads\": {threads},\n  \"available_parallelism\": {ap},\n  \"wall_s\": {wall_s:.3},\n  \"experiments\": {nexp},\n  \"failed\": {failed},\n  \"trace_cache\": {{\"hits\": {th}, \"misses\": {tm}, \"inserts\": {ti}, \"evictions\": {te}, \"disk_loads\": {tdl}, \"disk_stores\": {tds}, \"disk_corrupt\": {tdc}}},\n  \"collective_cache\": {{\"hits\": {ch}, \"misses\": {cm}, \"evictions\": {ce}}},\n  \"campaign\": {{\"resumed\": {cr}, \"retries\": {crt}, \"journal_records\": {cjr}}},\n  \"des_drain\": {{\"events_popped\": {des_popped}, \"wall_s\": {des_s:.6}}},\n  \"per_experiment\": [\n{per}\n  ]\n}}\n",
        cfg = a64fx_bench::config::header_json(threads),
        ap = densela::pool::available_parallelism(),
        nexp = outcomes.len(),
        th = trace1.hits - trace0.hits,
        tm = trace1.misses - trace0.misses,
        ti = trace1.inserts - trace0.inserts,
        te = trace1.evictions - trace0.evictions,
        tdl = trace1.disk_loads - trace0.disk_loads,
        tds = trace1.disk_stores - trace0.disk_stores,
        tdc = trace1.disk_corrupt - trace0.disk_corrupt,
        ch = coll1.hits - coll0.hits,
        cm = coll1.misses - coll0.misses,
        ce = coll1.evictions - coll0.evictions,
        cr = camp1.resumed - camp0.resumed,
        crt = camp1.retries - camp0.retries,
        cjr = camp1.journal_records - camp0.journal_records,
        per = per_exp.join(",\n"),
    );
    std::fs::write(path, &json).expect("writing the repro benchmark file failed");
    eprintln!("wrote {path}");
    println!("{json}");
}

/// Time the backend-routed DES allreduce (serial heap vs the sharded
/// conservative-lookahead engine at 2 and 4 shards) at several simulated
/// node scales, and write the results as JSON to `path`. Simulated times,
/// event counts and window counts are backend-invariant (the engine's
/// determinism guarantee, asserted here); events/sec is the figure of
/// merit. On a single-core host the sharded lanes are oversubscribed —
/// `available_parallelism` is recorded so readers can judge the numbers.
fn bench_des(path: &str) {
    use netsim::{DesBackend, Network};
    use simmpi::desval::allreduce_des_stats;

    const SCALES: [usize; 3] = [1024, 16_384, 131_072];
    const DES_BYTES: u64 = 8;
    const DES_REPS: u32 = 3;
    let backends = [
        DesBackend::Serial,
        DesBackend::Sharded { shards: 2 },
        DesBackend::Sharded { shards: 4 },
    ];
    let mut entries = Vec::new();
    for nodes in SCALES {
        eprintln!("timing DES allreduce at {nodes} simulated nodes...");
        let placement: Vec<usize> = (0..nodes).collect();
        let net = Network::new(archsim::InterconnectKind::TofuD, nodes);
        let mut serial_wall = f64::NAN;
        let mut serial_bits = 0u64;
        for backend in backends {
            let mut best = f64::INFINITY;
            let mut sim_us = 0.0;
            let mut stats = netsim::RunStats::default();
            for _ in 0..DES_REPS {
                let t0 = Instant::now();
                let (t, s) = black_box(allreduce_des_stats(&net, &placement, DES_BYTES, backend));
                best = best.min(t0.elapsed().as_secs_f64());
                (sim_us, stats) = (t, s);
            }
            match backend {
                DesBackend::Serial => {
                    serial_wall = best;
                    serial_bits = sim_us.to_bits();
                }
                DesBackend::Sharded { .. } => assert_eq!(
                    sim_us.to_bits(),
                    serial_bits,
                    "sharded result drifted from serial at {nodes} nodes"
                ),
            }
            entries.push(format!(
                "    {{\"nodes\": {nodes}, \"backend\": \"{backend}\", \"shards\": {shards}, \
                 \"wall_s\": {best:.6e}, \"events\": {events}, \"events_per_s\": {eps:.3e}, \
                 \"windows\": {windows}, \"stalls\": {stalls}, \"cross_msgs\": {cross}, \
                 \"sim_us\": {sim_us:.3}, \"vs_serial\": {ratio:.3}}}",
                shards = backend.shards(),
                events = stats.events,
                eps = stats.events as f64 / best,
                windows = stats.windows,
                stalls = stats.stalls,
                cross = stats.cross_msgs,
                ratio = serial_wall / best,
            ));
        }
    }
    let json = format!(
        "{{\n  \"config\": {cfg},\n  \"bytes\": {DES_BYTES},\n  \"available_parallelism\": {ap},\n  \"runs\": [\n{rows}\n  ]\n}}\n",
        cfg = a64fx_bench::config::header_json(a64fx_core::runner::resolve_threads(None)),
        ap = densela::pool::available_parallelism(),
        rows = entries.join(",\n"),
    );
    std::fs::write(path, &json).expect("writing the DES benchmark file failed");
    eprintln!("wrote {path}");
    println!("{json}");
}

/// Price one representative kernel of every class the paper's apps emit
/// under both pricing backends on the A64FX, and write flat-vs-ECM
/// predicted times plus achieved-vs-peak roofline efficiencies as JSON to
/// `path`. The flat path is priced twice through independently built
/// executors and asserted bit-identical — the byte-stability guarantee
/// the goldens (and CI's double-run diffs) lean on. `bench_json --ecm
/// [path]` runs only this part — the fast mode CI's ecm job uses.
fn bench_ecm(path: &str) {
    use a64fx_apps::trace::{Phase, Trace};
    use a64fx_apps::{castep, cosa, hpcg, nekbone, opensbli, KernelClass};
    use a64fx_core::costmodel::{Executor, JobLayout, PricingBackend};
    use archsim::{paper_toolchain, system, SystemId};

    eprintln!("pricing app kernels under flat and ECM backends (A64FX)...");
    const RANKS: u32 = 4;
    let traces: Vec<(&str, Trace)> = vec![
        ("hpcg", hpcg::trace(hpcg::HpcgConfig::paper(), RANKS)),
        (
            "nekbone",
            nekbone::trace(nekbone::NekboneConfig::paper(), RANKS),
        ),
        (
            "castep",
            castep::trace(castep::CastepConfig::paper(), RANKS),
        ),
        ("cosa", cosa::trace(cosa::CosaConfig::paper(), RANKS)),
        (
            "opensbli",
            opensbli::trace(opensbli::OpensbliConfig::paper(), RANKS),
        ),
    ];
    // First occurrence of each kernel class across the app traces, in
    // trace order: (app, class, rank-0 work, working set).
    let mut kernels: Vec<(&str, KernelClass, densela::Work, u64)> = Vec::new();
    for (app, trace) in &traces {
        for phase in trace.prologue.iter().chain(&trace.body) {
            if let Phase::Compute {
                class,
                work,
                ws_bytes,
            } = phase
            {
                if kernels.iter().all(|(_, c, _, _)| c != class) {
                    kernels.push((app, *class, work.of_rank(0), *ws_bytes));
                }
            }
        }
    }

    let spec = system(SystemId::A64fx);
    let tc = paper_toolchain(SystemId::A64fx, "hpcg").unwrap();
    // One rank on a full CMG: the per-kernel shape the paper discusses.
    let threads = spec.node.cores_per_domain();
    let layout = JobLayout {
        ranks: 1,
        ranks_per_node: 1,
        threads_per_rank: threads,
    };
    let flat = Executor::with_pricing(&spec, &tc, PricingBackend::Flat);
    let ecm = Executor::with_pricing(&spec, &tc, PricingBackend::Ecm);
    let peak_gflops = f64::from(threads) * spec.node.processor.peak_dp_gflops_per_core();

    let mut entries = Vec::new();
    for (app, class, work, ws) in kernels {
        let flat_us = flat.kernel_time_us(layout, class, work, ws);
        // Bit-identity pin: a freshly built flat executor must reproduce
        // the price exactly — the flat path has no hidden state.
        let again = Executor::with_pricing(&spec, &tc, PricingBackend::Flat)
            .kernel_time_us(layout, class, work, ws);
        assert_eq!(
            flat_us.to_bits(),
            again.to_bits(),
            "flat pricing drifted for {app}/{class:?}"
        );
        let ecm_us = ecm.kernel_time_us(layout, class, work, ws);
        let gflops = |us: f64| {
            if us > 0.0 {
                work.flops as f64 / (us * 1e3)
            } else {
                0.0
            }
        };
        entries.push(format!(
            "    {{\"app\": \"{app}\", \"class\": \"{class:?}\", \"pattern\": \"{pattern}\", \
             \"flops\": {flops}, \"bytes\": {bytes}, \"ws_bytes\": {ws}, \
             \"flat_us\": {flat_us:.6}, \"ecm_us\": {ecm_us:.6}, \"ecm_vs_flat\": {ratio:.4}, \
             \"flat_roofline_eff\": {feff:.4}, \"ecm_roofline_eff\": {eeff:.4}}}",
            pattern = class.access_pattern().name(),
            flops = work.flops,
            bytes = work.bytes(),
            ratio = ecm_us / flat_us,
            feff = gflops(flat_us) / peak_gflops,
            eeff = gflops(ecm_us) / peak_gflops,
        ));
    }
    let json = format!(
        "{{\n  \"config\": {cfg},\n  \"system\": \"A64FX\",\n  \"threads_per_rank\": {threads},\n  \"peak_gflops\": {peak_gflops:.2},\n  \"kernels\": [\n{rows}\n  ]\n}}\n",
        cfg = a64fx_bench::config::header_json(a64fx_core::runner::resolve_threads(None)),
        rows = entries.join(",\n"),
    );
    std::fs::write(path, &json).expect("writing the ECM benchmark file failed");
    eprintln!("wrote {path}");
    println!("{json}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--des [path]`: only the DES engine benchmark — the fast mode CI's
    // des job uses (no kernel timings, no full repro run).
    if let Some(i) = args.iter().position(|a| a == "--des") {
        let des_path = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_des.json".to_string());
        bench_des(&des_path);
        return;
    }
    // `--ecm [path]`: only the flat-vs-ECM kernel pricing comparison —
    // the fast mode CI's ecm job uses.
    if let Some(i) = args.iter().position(|a| a == "--ecm") {
        let ecm_path = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_ecm.json".to_string());
        bench_ecm(&ecm_path);
        return;
    }
    let path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let repro_path = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_repro.json".to_string());
    let des_path = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "BENCH_des.json".to_string());
    let (nx, ny, nz) = GRID;
    eprintln!("building {nx}x{ny}x{nz} stencil27 operator...");
    let a = stencil27(nx, ny, nz);
    let sell = SellMatrix::from_csr(&a, 8, 32);
    let coloring = Coloring::stencil8(nx, ny, nz);
    let n = a.rows();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.017).cos()).collect();
    let mut y = vec![0.0; n];

    let team = Team::new(THREADS);
    let spawn = SpawnTeam::new(THREADS);
    let serial_team = Team::new(1);

    // Warm the matrix, vectors, and pool before any timed region so the
    // first-timed variant doesn't pay the page-fault bill.
    a.spmv(&x, &mut y);
    team.spmv(&a, &x, &mut y);
    spawn.spmv(&a, &x, &mut y);

    eprintln!("timing kernels ({THREADS} threads)...");
    let mut rows = Vec::new();

    rows.push(Row {
        name: "spmv_csr",
        serial_s: time(VEC_REPS, || a.spmv(&x, &mut y)),
        spawn_s: time(VEC_REPS, || spawn.spmv(&a, &x, &mut y)),
        pooled_s: time(VEC_REPS, || team.spmv(&a, &x, &mut y)),
    });
    rows.push(Row {
        name: "spmv_sell8",
        serial_s: time(VEC_REPS, || sell.spmv(&x, &mut y)),
        // SpawnTeam has no SELL path; the honest baseline is serial SELL.
        spawn_s: time(VEC_REPS, || sell.spmv(&x, &mut y)),
        pooled_s: time(VEC_REPS, || team.sell_spmv(&sell, &x, &mut y)),
    });
    {
        let mut xs = vec![0.0; n];
        let mut xp = vec![0.0; n];
        rows.push(Row {
            name: "mc_symgs_sweep",
            serial_s: time(VEC_REPS, || {
                sparsela::coloring::mc_symgs_sweep(&a, &coloring, &b, &mut xs)
            }),
            spawn_s: time(VEC_REPS, || {
                sparsela::coloring::mc_symgs_sweep(&a, &coloring, &b, &mut xs)
            }),
            pooled_s: time(VEC_REPS, || team.mc_symgs_sweep(&a, &coloring, &b, &mut xp)),
        });
    }
    rows.push(Row {
        name: "dot",
        serial_s: time(VEC_REPS, || densela::vecops::dot(&x, &b)),
        spawn_s: time(VEC_REPS, || spawn.dot(&x, &b)),
        pooled_s: time(VEC_REPS, || team.dot(&x, &b)),
    });
    {
        let mut acc = b.clone();
        rows.push(Row {
            name: "axpy",
            serial_s: time(VEC_REPS, || densela::vecops::axpy(1.0001, &x, &mut acc)),
            spawn_s: time(VEC_REPS, || spawn.axpy(1.0001, &x, &mut acc)),
            pooled_s: time(VEC_REPS, || team.axpy(1.0001, &x, &mut acc)),
        });
    }

    eprintln!("timing CG ({CG_ITERS} fixed iterations)...");
    let cg = Row {
        name: "cg_stencil27_48cubed",
        serial_s: time(CG_REPS, || {
            let mut x0 = vec![0.0; n];
            serial_team.cg_solve(&a, &b, &mut x0, CG_ITERS, 0.0)
        }),
        spawn_s: time(CG_REPS, || {
            let mut x0 = vec![0.0; n];
            spawn.cg_solve(&a, &b, &mut x0, CG_ITERS, 0.0)
        }),
        pooled_s: time(CG_REPS, || {
            let mut x0 = vec![0.0; n];
            team.cg_solve(&a, &b, &mut x0, CG_ITERS, 0.0)
        }),
    };

    // A strong-scaling-limit CG: per-rank grids shrink as jobs scale out,
    // and at small per-rank sizes the spawn-per-call overhead dominates —
    // the regime the persistent pool exists for.
    let a_small = stencil27(16, 16, 16);
    let ns = a_small.rows();
    let bs: Vec<f64> = (0..ns).map(|i| (i as f64 * 0.017).cos()).collect();
    {
        let mut x0 = vec![0.0; ns];
        a_small.spmv(&bs, &mut x0);
    }
    rows.push(Row {
        name: "cg_stencil27_16cubed",
        serial_s: time(VEC_REPS, || {
            let mut x0 = vec![0.0; ns];
            serial_team.cg_solve(&a_small, &bs, &mut x0, CG_ITERS, 0.0)
        }),
        spawn_s: time(VEC_REPS, || {
            let mut x0 = vec![0.0; ns];
            spawn.cg_solve(&a_small, &bs, &mut x0, CG_ITERS, 0.0)
        }),
        pooled_s: time(VEC_REPS, || {
            let mut x0 = vec![0.0; ns];
            team.cg_solve(&a_small, &bs, &mut x0, CG_ITERS, 0.0)
        }),
    });

    let kernel_lines: Vec<String> = rows.iter().map(Row::json).collect();
    let json = format!(
        "{{\n  \"config\": {cfg},\n  \"grid\": [{nx}, {ny}, {nz}],\n  \"rows\": {n},\n  \"threads\": {THREADS},\n  \"available_parallelism\": {ap},\n  \"serial_cutover_ops\": {cutover},\n  \"cg_iterations\": {CG_ITERS},\n  \"cg\":\n{cg_line},\n  \"kernels\": [\n{kernels}\n  ]\n}}\n",
        cfg = a64fx_bench::config::header_json(THREADS),
        ap = densela::pool::available_parallelism(),
        cutover = team.serial_cutover_ops(),
        cg_line = cg.json(),
        kernels = kernel_lines.join(",\n"),
    );
    std::fs::write(&path, &json).expect("writing the benchmark file failed");
    eprintln!("wrote {path}");
    println!("{json}");

    bench_repro(&repro_path);
    bench_des(&des_path);
    bench_ecm(
        &args
            .get(3)
            .cloned()
            .unwrap_or_else(|| "BENCH_ecm.json".to_string()),
    );
}
