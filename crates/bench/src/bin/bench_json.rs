//! `bench_json` — machine-readable kernel and repro-suite timings, no
//! criterion.
//!
//! Times the shared-memory kernel runtime three ways — serial, the old
//! spawn-a-thread-scope-per-call team, and the persistent kernel pool — on
//! the paper-shaped kernels (CSR SpMV, SELL-C-σ SpMV, multicolour SymGS,
//! dot, AXPY, and a full CG solve on the 48³ 27-point stencil), plus every
//! data-level-optimised kernel against its naive reference (register-tiled
//! GEMM, the packed Nekbone batch, tiled tensor contractions, the
//! cache-blocked MC-SymGS sweep, and the tile-gathered 3-D FFT — outputs
//! asserted byte-identical before either variant is timed), and writes the
//! results as JSON to `BENCH_kernels.json` (or the path given as the first
//! argument). Every row carries roofline fields: modelled flops and bytes
//! from the kernel's `Work` counters, the achieved GFLOP/s and GB/s at the
//! row's best time, and those rates as fractions of one A64FX core's DP
//! peak and one CMG's sustained bandwidth (`flop_eff`, `bw_eff`). The
//! config header stamps the compiled-in tiling id so `obsctl diff` refuses
//! baselines taken under different block/chunk parameters.
//!
//! It then times one full repro run — every experiment through the
//! isolated runner, trace cache on — and writes `BENCH_repro.json` (or the
//! path given as the second argument): wall seconds, per-experiment
//! seconds, trace-cache counters (hits, misses, inserts, LRU evictions
//! and disk-tier loads/stores/corruptions), collective-cache counters,
//! campaign counters (journal records, resumes, retries), and a DES
//! drain microbench (events popped per second through a pre-sized
//! [`netsim::des::EventQueue`]).
//!
//! Finally it times the backend-routed DES allreduce (serial heap vs the
//! sharded conservative-lookahead engine at 2 and 4 shards) at 1k/16k/131k
//! simulated nodes, writing events/sec and engine statistics to
//! `BENCH_des.json` (or the path given as the third argument).
//! `bench_json --des [path]` runs only this part — the fast mode CI's
//! `des` job uses.
//!
//! It also prices one representative kernel of every app kernel class
//! under both pricing backends (flat roofline vs cache-hierarchy ECM) on
//! the A64FX, asserting the flat path bit-identical across independently
//! built executors, and writes predicted times and roofline efficiencies
//! to `BENCH_ecm.json` (or the path given as the fourth argument).
//! `bench_json --ecm [path]` runs only this part — the fast mode CI's
//! `ecm` job uses.
//!
//! Each timing is the best of a few repetitions of `std::time::Instant`
//! around the kernel. Every file opens with a `"config"` header (git
//! revision, DES backend, pricing backend, worker threads) so `obsctl
//! diff` can refuse comparisons across mismatched configurations, and
//! records `available_parallelism` so readers can judge the numbers: on a single-core host the pooled kernels cannot
//! beat serial — what the pool still demonstrates there is the amortised
//! spawn overhead against the spawn-per-call team. The kernel file also
//! records the team's `serial_cutover_ops` — kernels below it run inline
//! (the small-kernel regression fix), so their pooled and serial columns
//! should read within noise of each other.

use sparsela::coloring::Coloring;
use sparsela::ell::SellMatrix;
use sparsela::gen::stencil27;
use sparsela::parallel::{SpawnTeam, Team};
use std::hint::black_box;
use std::time::Instant;

const GRID: (usize, usize, usize) = (48, 48, 48);
const THREADS: usize = 4;
const CG_ITERS: usize = 30;
const VEC_REPS: u32 = 11;
const CG_REPS: u32 = 3;

/// Best-of-`reps` wall time of `f`, in seconds.
fn time<O>(reps: u32, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-`reps` wall times of two variants of the same kernel, reps
/// interleaved A/B/A/B so a noisy-neighbour burst on a shared host hits
/// both variants instead of biasing whichever happened to be timed second.
fn time_pair<O, P>(reps: u32, mut fa: impl FnMut() -> O, mut fb: impl FnMut() -> P) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(fa());
        best_a = best_a.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        black_box(fb());
        best_b = best_b.min(t0.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

/// Roofline fields for one kernel row: the kernel's modelled work (flops
/// and bytes from the [`densela::Work`] counters) and the rates it achieved
/// at the row's best time, as fractions of one A64FX core's DP peak and
/// one CMG's sustained memory bandwidth (the most a single-threaded kernel
/// could achieve — the honest denominator on this host, where the pooled
/// columns are oversubscribed lanes, not extra cores). `*_per_s` and
/// `*_eff` keys are higher-is-better under `obsctl diff`.
fn roofline_json(work: densela::Work, best_s: f64) -> String {
    use archsim::{system, SystemId};
    let spec = system(SystemId::A64fx);
    let peak_gflops = spec.node.processor.peak_dp_gflops_per_core();
    let cmg_bw_gbs = spec.node.sustained_bw_gbs() / spec.node.memory.num_domains() as f64;
    let gflops = work.flops as f64 / best_s / 1e9;
    let gbs = work.bytes() as f64 / best_s / 1e9;
    format!(
        "\"flops\": {}, \"bytes\": {}, \"gflops_per_s\": {:.4}, \"gbytes_per_s\": {:.4}, \"flop_eff\": {:.6}, \"bw_eff\": {:.6}",
        work.flops,
        work.bytes(),
        gflops,
        gbs,
        gflops / peak_gflops,
        gbs / cmg_bw_gbs,
    )
}

struct Row {
    name: &'static str,
    serial_s: f64,
    spawn_s: f64,
    pooled_s: f64,
    work: densela::Work,
}

impl Row {
    fn json(&self) -> String {
        let best = self.serial_s.min(self.spawn_s).min(self.pooled_s);
        format!(
            "    {{\"name\": \"{}\", \"serial_s\": {:.6e}, \"spawn_s\": {:.6e}, \"pooled_s\": {:.6e}, \"pooled_vs_serial\": {:.3}, \"pooled_vs_spawn\": {:.3}, {}}}",
            self.name,
            self.serial_s,
            self.spawn_s,
            self.pooled_s,
            self.serial_s / self.pooled_s,
            self.spawn_s / self.pooled_s,
            roofline_json(self.work, best),
        )
    }
}

/// A blocked-vs-naive comparison row: the same kernel with and without the
/// data-level optimisation (register tiling, chunked inner loops, cache
/// tiling), outputs asserted byte-identical before either variant is
/// timed. `blocked_vs_naive` is higher-is-better under `obsctl diff`.
struct BlockedRow {
    name: &'static str,
    naive_s: f64,
    blocked_s: f64,
    work: densela::Work,
}

impl BlockedRow {
    fn json(&self) -> String {
        format!(
            "    {{\"name\": \"{}\", \"naive_s\": {:.6e}, \"blocked_s\": {:.6e}, \"blocked_vs_naive\": {:.3}, {}}}",
            self.name,
            self.naive_s,
            self.blocked_s,
            self.naive_s / self.blocked_s,
            roofline_json(self.work, self.naive_s.min(self.blocked_s)),
        )
    }
}

/// Assert two f64 buffers byte-identical — the in-bench parity gate every
/// blocked row passes before its timings mean anything.
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: blocked kernel diverged from naive at element {i}"
        );
    }
}

/// Time one full repro run (all experiments through the isolated runner,
/// trace cache on) and write the result as JSON to `path`.
fn bench_repro(path: &str) {
    use a64fx_core::{campaign, runner, tracecache};
    use simmpi::collcache;

    let threads = runner::resolve_threads(None);
    eprintln!("timing full repro suite ({threads} worker threads)...");
    let trace0 = tracecache::stats();
    let coll0 = collcache::stats();
    let camp0 = campaign::stats();
    let t0 = Instant::now();
    let outcomes = runner::run_all_isolated(threads, runner::resolve_deadline(None));
    let wall_s = t0.elapsed().as_secs_f64();
    let trace1 = tracecache::stats();
    let coll1 = collcache::stats();
    let camp1 = campaign::stats();
    let failed = outcomes.iter().filter(|o| o.failed()).count();
    let per_exp: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "    {{\"id\": \"{}\", \"wall_s\": {:.3}, \"failed\": {}}}",
                o.id,
                o.elapsed.as_secs_f64(),
                o.failed(),
            )
        })
        .collect();

    // DES drain microbench: schedule-then-drain through a pre-sized queue,
    // the pattern the simulator's validation path uses. `popped_total()`
    // gives the event count without needing an obs recorder around the
    // timed region.
    const DES_EVENTS: usize = 100_000;
    let mut q = netsim::des::EventQueue::with_capacity(DES_EVENTS);
    let d0 = Instant::now();
    for i in 0..DES_EVENTS {
        q.schedule_at(i as f64 * 0.5, i);
    }
    while q.pop().is_some() {}
    let des_s = d0.elapsed().as_secs_f64();
    let des_popped = q.popped_total();

    let json = format!(
        "{{\n  \"config\": {cfg},\n  \"threads\": {threads},\n  \"available_parallelism\": {ap},\n  \"wall_s\": {wall_s:.3},\n  \"experiments\": {nexp},\n  \"failed\": {failed},\n  \"trace_cache\": {{\"hits\": {th}, \"misses\": {tm}, \"inserts\": {ti}, \"evictions\": {te}, \"disk_loads\": {tdl}, \"disk_stores\": {tds}, \"disk_corrupt\": {tdc}}},\n  \"collective_cache\": {{\"hits\": {ch}, \"misses\": {cm}, \"evictions\": {ce}}},\n  \"campaign\": {{\"resumed\": {cr}, \"retries\": {crt}, \"journal_records\": {cjr}}},\n  \"des_drain\": {{\"events_popped\": {des_popped}, \"wall_s\": {des_s:.6}}},\n  \"per_experiment\": [\n{per}\n  ]\n}}\n",
        cfg = a64fx_bench::config::header_json(threads),
        ap = densela::pool::available_parallelism(),
        nexp = outcomes.len(),
        th = trace1.hits - trace0.hits,
        tm = trace1.misses - trace0.misses,
        ti = trace1.inserts - trace0.inserts,
        te = trace1.evictions - trace0.evictions,
        tdl = trace1.disk_loads - trace0.disk_loads,
        tds = trace1.disk_stores - trace0.disk_stores,
        tdc = trace1.disk_corrupt - trace0.disk_corrupt,
        ch = coll1.hits - coll0.hits,
        cm = coll1.misses - coll0.misses,
        ce = coll1.evictions - coll0.evictions,
        cr = camp1.resumed - camp0.resumed,
        crt = camp1.retries - camp0.retries,
        cjr = camp1.journal_records - camp0.journal_records,
        per = per_exp.join(",\n"),
    );
    std::fs::write(path, &json).expect("writing the repro benchmark file failed");
    eprintln!("wrote {path}");
    println!("{json}");
}

/// Time the backend-routed DES allreduce (serial heap vs the sharded
/// conservative-lookahead engine at 2 and 4 shards) at several simulated
/// node scales, and write the results as JSON to `path`. Simulated times,
/// event counts and window counts are backend-invariant (the engine's
/// determinism guarantee, asserted here); events/sec is the figure of
/// merit. On a single-core host the sharded lanes are oversubscribed —
/// `available_parallelism` is recorded so readers can judge the numbers.
fn bench_des(path: &str) {
    use netsim::{DesBackend, Network};
    use simmpi::desval::allreduce_des_stats;

    const SCALES: [usize; 3] = [1024, 16_384, 131_072];
    const DES_BYTES: u64 = 8;
    const DES_REPS: u32 = 3;
    let backends = [
        DesBackend::Serial,
        DesBackend::Sharded { shards: 2 },
        DesBackend::Sharded { shards: 4 },
    ];
    let mut entries = Vec::new();
    for nodes in SCALES {
        eprintln!("timing DES allreduce at {nodes} simulated nodes...");
        let placement: Vec<usize> = (0..nodes).collect();
        let net = Network::new(archsim::InterconnectKind::TofuD, nodes);
        let mut serial_wall = f64::NAN;
        let mut serial_bits = 0u64;
        for backend in backends {
            let mut best = f64::INFINITY;
            let mut sim_us = 0.0;
            let mut stats = netsim::RunStats::default();
            for _ in 0..DES_REPS {
                let t0 = Instant::now();
                let (t, s) = black_box(allreduce_des_stats(&net, &placement, DES_BYTES, backend));
                best = best.min(t0.elapsed().as_secs_f64());
                (sim_us, stats) = (t, s);
            }
            match backend {
                DesBackend::Serial => {
                    serial_wall = best;
                    serial_bits = sim_us.to_bits();
                }
                DesBackend::Sharded { .. } => assert_eq!(
                    sim_us.to_bits(),
                    serial_bits,
                    "sharded result drifted from serial at {nodes} nodes"
                ),
            }
            entries.push(format!(
                "    {{\"nodes\": {nodes}, \"backend\": \"{backend}\", \"shards\": {shards}, \
                 \"wall_s\": {best:.6e}, \"events\": {events}, \"events_per_s\": {eps:.3e}, \
                 \"windows\": {windows}, \"stalls\": {stalls}, \"cross_msgs\": {cross}, \
                 \"sim_us\": {sim_us:.3}, \"vs_serial\": {ratio:.3}}}",
                shards = backend.shards(),
                events = stats.events,
                eps = stats.events as f64 / best,
                windows = stats.windows,
                stalls = stats.stalls,
                cross = stats.cross_msgs,
                ratio = serial_wall / best,
            ));
        }
    }
    let json = format!(
        "{{\n  \"config\": {cfg},\n  \"bytes\": {DES_BYTES},\n  \"available_parallelism\": {ap},\n  \"runs\": [\n{rows}\n  ]\n}}\n",
        cfg = a64fx_bench::config::header_json(a64fx_core::runner::resolve_threads(None)),
        ap = densela::pool::available_parallelism(),
        rows = entries.join(",\n"),
    );
    std::fs::write(path, &json).expect("writing the DES benchmark file failed");
    eprintln!("wrote {path}");
    println!("{json}");
}

/// Price one representative kernel of every class the paper's apps emit
/// under both pricing backends on the A64FX, and write flat-vs-ECM
/// predicted times plus achieved-vs-peak roofline efficiencies as JSON to
/// `path`. The flat path is priced twice through independently built
/// executors and asserted bit-identical — the byte-stability guarantee
/// the goldens (and CI's double-run diffs) lean on. `bench_json --ecm
/// [path]` runs only this part — the fast mode CI's ecm job uses.
fn bench_ecm(path: &str) {
    use a64fx_apps::trace::{Phase, Trace};
    use a64fx_apps::{castep, cosa, hpcg, nekbone, opensbli, KernelClass};
    use a64fx_core::costmodel::{Executor, JobLayout, PricingBackend};
    use archsim::{paper_toolchain, system, SystemId};

    eprintln!("pricing app kernels under flat and ECM backends (A64FX)...");
    const RANKS: u32 = 4;
    let traces: Vec<(&str, Trace)> = vec![
        ("hpcg", hpcg::trace(hpcg::HpcgConfig::paper(), RANKS)),
        (
            "nekbone",
            nekbone::trace(nekbone::NekboneConfig::paper(), RANKS),
        ),
        (
            "castep",
            castep::trace(castep::CastepConfig::paper(), RANKS),
        ),
        ("cosa", cosa::trace(cosa::CosaConfig::paper(), RANKS)),
        (
            "opensbli",
            opensbli::trace(opensbli::OpensbliConfig::paper(), RANKS),
        ),
    ];
    // First occurrence of each kernel class across the app traces, in
    // trace order: (app, class, rank-0 work, working set).
    let mut kernels: Vec<(&str, KernelClass, densela::Work, u64)> = Vec::new();
    for (app, trace) in &traces {
        for phase in trace.prologue.iter().chain(&trace.body) {
            if let Phase::Compute {
                class,
                work,
                ws_bytes,
            } = phase
            {
                if kernels.iter().all(|(_, c, _, _)| c != class) {
                    kernels.push((app, *class, work.of_rank(0), *ws_bytes));
                }
            }
        }
    }

    let spec = system(SystemId::A64fx);
    let tc = paper_toolchain(SystemId::A64fx, "hpcg").unwrap();
    // One rank on a full CMG: the per-kernel shape the paper discusses.
    let threads = spec.node.cores_per_domain();
    let layout = JobLayout {
        ranks: 1,
        ranks_per_node: 1,
        threads_per_rank: threads,
    };
    let flat = Executor::with_pricing(&spec, &tc, PricingBackend::Flat);
    let ecm = Executor::with_pricing(&spec, &tc, PricingBackend::Ecm);
    let peak_gflops = f64::from(threads) * spec.node.processor.peak_dp_gflops_per_core();

    let mut entries = Vec::new();
    for (app, class, work, ws) in kernels {
        let flat_us = flat.kernel_time_us(layout, class, work, ws);
        // Bit-identity pin: a freshly built flat executor must reproduce
        // the price exactly — the flat path has no hidden state.
        let again = Executor::with_pricing(&spec, &tc, PricingBackend::Flat)
            .kernel_time_us(layout, class, work, ws);
        assert_eq!(
            flat_us.to_bits(),
            again.to_bits(),
            "flat pricing drifted for {app}/{class:?}"
        );
        let ecm_us = ecm.kernel_time_us(layout, class, work, ws);
        let gflops = |us: f64| {
            if us > 0.0 {
                work.flops as f64 / (us * 1e3)
            } else {
                0.0
            }
        };
        entries.push(format!(
            "    {{\"app\": \"{app}\", \"class\": \"{class:?}\", \"pattern\": \"{pattern}\", \
             \"flops\": {flops}, \"bytes\": {bytes}, \"ws_bytes\": {ws}, \
             \"flat_us\": {flat_us:.6}, \"ecm_us\": {ecm_us:.6}, \"ecm_vs_flat\": {ratio:.4}, \
             \"flat_roofline_eff\": {feff:.4}, \"ecm_roofline_eff\": {eeff:.4}}}",
            pattern = class.access_pattern().name(),
            flops = work.flops,
            bytes = work.bytes(),
            ratio = ecm_us / flat_us,
            feff = gflops(flat_us) / peak_gflops,
            eeff = gflops(ecm_us) / peak_gflops,
        ));
    }
    let json = format!(
        "{{\n  \"config\": {cfg},\n  \"system\": \"A64FX\",\n  \"threads_per_rank\": {threads},\n  \"peak_gflops\": {peak_gflops:.2},\n  \"kernels\": [\n{rows}\n  ]\n}}\n",
        cfg = a64fx_bench::config::header_json(a64fx_core::runner::resolve_threads(None)),
        rows = entries.join(",\n"),
    );
    std::fs::write(path, &json).expect("writing the ECM benchmark file failed");
    eprintln!("wrote {path}");
    println!("{json}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--des [path]`: only the DES engine benchmark — the fast mode CI's
    // des job uses (no kernel timings, no full repro run).
    if let Some(i) = args.iter().position(|a| a == "--des") {
        let des_path = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_des.json".to_string());
        bench_des(&des_path);
        return;
    }
    // `--ecm [path]`: only the flat-vs-ECM kernel pricing comparison —
    // the fast mode CI's ecm job uses.
    if let Some(i) = args.iter().position(|a| a == "--ecm") {
        let ecm_path = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_ecm.json".to_string());
        bench_ecm(&ecm_path);
        return;
    }
    let path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let repro_path = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_repro.json".to_string());
    let des_path = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "BENCH_des.json".to_string());
    let (nx, ny, nz) = GRID;
    eprintln!("building {nx}x{ny}x{nz} stencil27 operator...");
    let a = stencil27(nx, ny, nz);
    // Auto-σ: the sorting window follows the row-length variance of the
    // operator (boundary rows of a 27-point stencil are shorter than
    // interior ones) instead of a hand-picked constant.
    let sell = SellMatrix::from_csr_auto(&a, 8);
    let coloring = Coloring::stencil8(nx, ny, nz);
    let n = a.rows();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.017).cos()).collect();
    let mut y = vec![0.0; n];

    let team = Team::new(THREADS);
    let spawn = SpawnTeam::new(THREADS);
    let serial_team = Team::new(1);

    // Warm the matrix, vectors, and pool before any timed region so the
    // first-timed variant doesn't pay the page-fault bill.
    a.spmv(&x, &mut y);
    team.spmv(&a, &x, &mut y);
    spawn.spmv(&a, &x, &mut y);

    eprintln!("timing kernels ({THREADS} threads)...");
    let mut rows = Vec::new();

    rows.push(Row {
        name: "spmv_csr",
        serial_s: time(VEC_REPS, || a.spmv(&x, &mut y)),
        spawn_s: time(VEC_REPS, || spawn.spmv(&a, &x, &mut y)),
        pooled_s: time(VEC_REPS, || team.spmv(&a, &x, &mut y)),
        work: a.spmv_work(),
    });
    {
        // In-bench parity: the pooled SELL path (the chunked kernel) must
        // reproduce the naive SELL SpMV bit for bit before it is timed.
        let mut y_naive = vec![0.0; n];
        let mut y_chunked = vec![0.0; n];
        sell.spmv(&x, &mut y_naive);
        team.sell_spmv(&sell, &x, &mut y_chunked);
        assert_bits_eq(&y_naive, &y_chunked, "spmv_sell8");
    }
    rows.push(Row {
        name: "spmv_sell8",
        serial_s: time(VEC_REPS, || sell.spmv(&x, &mut y)),
        // SpawnTeam has no SELL path; the honest baseline is serial SELL.
        spawn_s: time(VEC_REPS, || sell.spmv(&x, &mut y)),
        pooled_s: time(VEC_REPS, || team.sell_spmv(&sell, &x, &mut y)),
        work: sell.spmv_work(),
    });
    {
        let mut xs = vec![0.0; n];
        let mut xp = vec![0.0; n];
        let symgs_work = sparsela::coloring::mc_symgs_sweep(&a, &coloring, &b, &mut xs);
        rows.push(Row {
            name: "mc_symgs_sweep",
            serial_s: time(VEC_REPS, || {
                sparsela::coloring::mc_symgs_sweep(&a, &coloring, &b, &mut xs)
            }),
            spawn_s: time(VEC_REPS, || {
                sparsela::coloring::mc_symgs_sweep(&a, &coloring, &b, &mut xs)
            }),
            pooled_s: time(VEC_REPS, || team.mc_symgs_sweep(&a, &coloring, &b, &mut xp)),
            work: symgs_work,
        });
    }
    rows.push(Row {
        name: "dot",
        serial_s: time(VEC_REPS, || densela::vecops::dot(&x, &b)),
        spawn_s: time(VEC_REPS, || spawn.dot(&x, &b)),
        pooled_s: time(VEC_REPS, || team.dot(&x, &b)),
        work: densela::vecops::dot(&x, &b).1,
    });
    {
        let mut acc = b.clone();
        let axpy_work = densela::vecops::axpy(1.0001, &x, &mut acc);
        rows.push(Row {
            name: "axpy",
            serial_s: time(VEC_REPS, || densela::vecops::axpy(1.0001, &x, &mut acc)),
            spawn_s: time(VEC_REPS, || spawn.axpy(1.0001, &x, &mut acc)),
            pooled_s: time(VEC_REPS, || team.axpy(1.0001, &x, &mut acc)),
            work: axpy_work,
        });
    }

    eprintln!("timing CG ({CG_ITERS} fixed iterations)...");
    let cg_work = {
        let mut x0 = vec![0.0; n];
        serial_team.cg_solve(&a, &b, &mut x0, CG_ITERS, 0.0).2
    };
    let cg = Row {
        name: "cg_stencil27_48cubed",
        serial_s: time(CG_REPS, || {
            let mut x0 = vec![0.0; n];
            serial_team.cg_solve(&a, &b, &mut x0, CG_ITERS, 0.0)
        }),
        spawn_s: time(CG_REPS, || {
            let mut x0 = vec![0.0; n];
            spawn.cg_solve(&a, &b, &mut x0, CG_ITERS, 0.0)
        }),
        pooled_s: time(CG_REPS, || {
            let mut x0 = vec![0.0; n];
            team.cg_solve(&a, &b, &mut x0, CG_ITERS, 0.0)
        }),
        work: cg_work,
    };

    // A strong-scaling-limit CG: per-rank grids shrink as jobs scale out,
    // and at small per-rank sizes the spawn-per-call overhead dominates —
    // the regime the persistent pool exists for.
    let a_small = stencil27(16, 16, 16);
    let ns = a_small.rows();
    let bs: Vec<f64> = (0..ns).map(|i| (i as f64 * 0.017).cos()).collect();
    {
        let mut x0 = vec![0.0; ns];
        a_small.spmv(&bs, &mut x0);
    }
    let cg_small_work = {
        let mut x0 = vec![0.0; ns];
        serial_team
            .cg_solve(&a_small, &bs, &mut x0, CG_ITERS, 0.0)
            .2
    };
    rows.push(Row {
        name: "cg_stencil27_16cubed",
        serial_s: time(VEC_REPS, || {
            let mut x0 = vec![0.0; ns];
            serial_team.cg_solve(&a_small, &bs, &mut x0, CG_ITERS, 0.0)
        }),
        spawn_s: time(VEC_REPS, || {
            let mut x0 = vec![0.0; ns];
            spawn.cg_solve(&a_small, &bs, &mut x0, CG_ITERS, 0.0)
        }),
        pooled_s: time(VEC_REPS, || {
            let mut x0 = vec![0.0; ns];
            team.cg_solve(&a_small, &bs, &mut x0, CG_ITERS, 0.0)
        }),
        work: cg_small_work,
    });

    // --- Blocked-vs-naive rows: every data-level-optimised kernel against
    // its naive reference, outputs byte-matched before timing. ---
    eprintln!("timing blocked-vs-naive kernels...");
    let mut blocked_rows = Vec::new();

    {
        // Register-tiled GEMM at a dense L2-straddling shape.
        const M: usize = 256;
        let am: Vec<f64> = (0..M * M).map(|i| (i as f64 * 0.013).sin()).collect();
        let bm: Vec<f64> = (0..M * M).map(|i| (i as f64 * 0.029).cos()).collect();
        let mut c_naive = vec![0.0; M * M];
        let mut c_blocked = vec![0.0; M * M];
        densela::gemm::gemm(M, M, M, 1.0, &am, &bm, 0.0, &mut c_naive);
        let w = densela::gemm::gemm_blocked(M, M, M, 1.0, &am, &bm, 0.0, &mut c_blocked);
        assert_bits_eq(&c_naive, &c_blocked, "gemm_256");
        // With beta = 0 the C buffer is write-only; the closures return one
        // element (black_boxed by the timer) so the stores stay live.
        let (naive_s, blocked_s) = time_pair(
            VEC_REPS,
            || {
                densela::gemm::gemm(M, M, M, 1.0, &am, &bm, 0.0, &mut c_naive);
                c_naive[M]
            },
            || {
                densela::gemm::gemm_blocked(M, M, M, 1.0, &am, &bm, 0.0, &mut c_blocked);
                c_blocked[M]
            },
        );
        blocked_rows.push(BlockedRow {
            name: "gemm_256",
            naive_s,
            blocked_s,
            work: w,
        });
    }
    {
        // The Nekbone shape: one small A applied to a batch of elements,
        // packed once for the whole batch. The batch is sized so one timed
        // rep spans a few milliseconds — long enough that a noisy-neighbour
        // burst on a shared host cannot cover every interleaved rep.
        const P: usize = 16;
        const NEL: usize = 2048;
        let am: Vec<f64> = (0..P * P).map(|i| (i as f64 * 0.017).sin()).collect();
        let bb: Vec<f64> = (0..NEL * P * P).map(|i| (i as f64 * 0.003).cos()).collect();
        let mut c_naive = vec![0.0; NEL * P * P];
        let mut c_blocked = vec![0.0; NEL * P * P];
        densela::gemm::small_gemm_batch_ref(P, P, P, 1.0, &am, &bb, 0.0, &mut c_naive);
        let w = densela::gemm::small_gemm_batch(P, P, P, 1.0, &am, &bb, 0.0, &mut c_blocked);
        assert_bits_eq(&c_naive, &c_blocked, "small_gemm_batch16");
        let (naive_s, blocked_s) = time_pair(
            VEC_REPS,
            || {
                densela::gemm::small_gemm_batch_ref(P, P, P, 1.0, &am, &bb, 0.0, &mut c_naive);
                c_naive[P]
            },
            || {
                densela::gemm::small_gemm_batch(P, P, P, 1.0, &am, &bb, 0.0, &mut c_blocked);
                c_blocked[P]
            },
        );
        blocked_rows.push(BlockedRow {
            name: "small_gemm_batch16",
            naive_s,
            blocked_s,
            work: w,
        });
    }
    {
        // Spectral-element tensor contractions: all three axes over a batch
        // of elements, naive vs i-chunked/row-chunked tiled passes.
        use densela::tensor;
        const P: usize = 16;
        const NEL: usize = 128;
        let d = densela::DMatrix::from_fn(P, P, |r, c| ((r * P + c) as f64 * 0.011).sin());
        let u: Vec<f64> = (0..NEL * P * P * P)
            .map(|i| (i as f64 * 0.0007).cos())
            .collect();
        let p3 = P * P * P;
        let mut out_naive = vec![0.0; p3];
        let mut out_blocked = vec![0.0; p3];
        let mut w = densela::Work::ZERO;
        type Apply = fn(&densela::DMatrix, usize, &[f64], &mut [f64]) -> densela::Work;
        for (apply, tiled) in [
            (
                tensor::apply_dim0 as Apply,
                tensor::apply_dim0_tiled as Apply,
            ),
            (
                tensor::apply_dim1 as Apply,
                tensor::apply_dim1_tiled as Apply,
            ),
            (
                tensor::apply_dim2 as Apply,
                tensor::apply_dim2_tiled as Apply,
            ),
        ] {
            apply(&d, P, &u[..p3], &mut out_naive);
            w += tiled(&d, P, &u[..p3], &mut out_blocked);
            assert_bits_eq(&out_naive, &out_blocked, "tensor_apply16");
        }
        let w = w * NEL as u64;
        // Each axis writes its own buffer (the Nekbone ur/us/ut shape) and
        // the timed closure folds one element of each into its return value
        // (black_boxed by `time`): with a single shared output the first two
        // naive applies are dead stores the optimiser deletes wholesale,
        // which made the naive column look 3x faster than it is.
        let (mut ur_n, mut us_n, mut ut_n) = (vec![0.0; p3], vec![0.0; p3], vec![0.0; p3]);
        let (mut ur_b, mut us_b, mut ut_b) = (vec![0.0; p3], vec![0.0; p3], vec![0.0; p3]);
        let (naive_s, blocked_s) = time_pair(
            VEC_REPS,
            || {
                let mut acc = 0.0;
                for e in 0..NEL {
                    let ue = &u[e * p3..(e + 1) * p3];
                    tensor::apply_dim0(&d, P, ue, &mut ur_n);
                    tensor::apply_dim1(&d, P, ue, &mut us_n);
                    tensor::apply_dim2(&d, P, ue, &mut ut_n);
                    acc += ur_n[e % p3] + us_n[e % p3] + ut_n[e % p3];
                }
                acc
            },
            || {
                let mut acc = 0.0;
                for e in 0..NEL {
                    let ue = &u[e * p3..(e + 1) * p3];
                    tensor::apply_dim0_tiled(&d, P, ue, &mut ur_b);
                    tensor::apply_dim1_tiled(&d, P, ue, &mut us_b);
                    tensor::apply_dim2_tiled(&d, P, ue, &mut ut_b);
                    acc += ur_b[e % p3] + us_b[e % p3] + ut_b[e % p3];
                }
                acc
            },
        );
        blocked_rows.push(BlockedRow {
            name: "tensor_apply16",
            naive_s,
            blocked_s,
            work: w,
        });
    }
    {
        // Cache-blocked MC-SymGS (tiled colour rows + single-pass diagonal)
        // against the naive per-row sweep on the same 48³ operator.
        let mut x_naive = vec![0.0; n];
        let mut x_blocked = vec![0.0; n];
        sparsela::coloring::mc_symgs_sweep(&a, &coloring, &b, &mut x_naive);
        let w = sparsela::coloring::mc_symgs_sweep_blocked(&a, &coloring, &b, &mut x_blocked);
        assert_bits_eq(&x_naive, &x_blocked, "mc_symgs_blocked");
        let (naive_s, blocked_s) = time_pair(
            VEC_REPS,
            || sparsela::coloring::mc_symgs_sweep(&a, &coloring, &b, &mut x_naive),
            || sparsela::coloring::mc_symgs_sweep_blocked(&a, &coloring, &b, &mut x_blocked),
        );
        blocked_rows.push(BlockedRow {
            name: "mc_symgs_blocked",
            naive_s,
            blocked_s,
            work: w,
        });
    }
    {
        // 3-D FFT with tile-gathered strided passes vs pencil-at-a-time.
        const NF: usize = 64;
        let mk = || -> Vec<fftsim::Complex64> {
            (0..NF * NF * NF)
                .map(|i| fftsim::Complex64::new((i as f64 * 0.001).sin(), (i as f64 * 0.002).cos()))
                .collect()
        };
        let mut d_naive = mk();
        let mut d_blocked = mk();
        fftsim::fft3_inplace(NF, &mut d_naive);
        let w = fftsim::fft3d::fft3_inplace_blocked(NF, &mut d_blocked);
        for (i, (p, q)) in d_naive.iter().zip(&d_blocked).enumerate() {
            assert!(
                p.re.to_bits() == q.re.to_bits() && p.im.to_bits() == q.im.to_bits(),
                "fft3_64: blocked kernel diverged from naive at element {i}"
            );
        }
        let (naive_s, blocked_s) = time_pair(
            VEC_REPS,
            || fftsim::fft3_inplace(NF, &mut d_naive),
            || fftsim::fft3d::fft3_inplace_blocked(NF, &mut d_blocked),
        );
        blocked_rows.push(BlockedRow {
            name: "fft3_64",
            naive_s,
            blocked_s,
            work: w,
        });
    }

    let kernel_lines: Vec<String> = rows.iter().map(Row::json).collect();
    let blocked_lines: Vec<String> = blocked_rows.iter().map(BlockedRow::json).collect();
    let json = format!(
        "{{\n  \"config\": {cfg},\n  \"grid\": [{nx}, {ny}, {nz}],\n  \"rows\": {n},\n  \"threads\": {THREADS},\n  \"available_parallelism\": {ap},\n  \"serial_cutover_ops\": {cutover},\n  \"sell\": {{\"c\": {sc}, \"sigma\": {ssig}, \"fill_ratio\": {sfill:.4}}},\n  \"cg_iterations\": {CG_ITERS},\n  \"cg\":\n{cg_line},\n  \"kernels\": [\n{kernels}\n  ],\n  \"blocked\": [\n{blocked}\n  ]\n}}\n",
        cfg = a64fx_bench::config::header_json(THREADS),
        ap = densela::pool::available_parallelism(),
        cutover = team.serial_cutover_ops(),
        sc = sell.c(),
        ssig = sell.sigma(),
        sfill = sell.fill_ratio(),
        cg_line = cg.json(),
        kernels = kernel_lines.join(",\n"),
        blocked = blocked_lines.join(",\n"),
    );
    std::fs::write(&path, &json).expect("writing the benchmark file failed");
    eprintln!("wrote {path}");
    println!("{json}");

    bench_repro(&repro_path);
    bench_des(&des_path);
    bench_ecm(
        &args
            .get(3)
            .cloned()
            .unwrap_or_else(|| "BENCH_ecm.json".to_string()),
    );
}
