//! `obsctl` — offline analysis of the simulator's observability artefacts.
//!
//! Three subcommands, all pure functions of their input files:
//!
//! * `obsctl diff <baseline.json> <candidate.json> [--threshold <pct>]
//!   [--warn-values]` — the CI perf gate. Compares two `BENCH_*.json`
//!   documents metric by metric under a relative threshold (default 25%).
//!   Exit codes: 0 clean, 1 value regression (suppressed by
//!   `--warn-values` for hosts whose timings are untrustworthy), 2 shape
//!   drift (a metric appeared/vanished/renamed — never suppressed), 3
//!   config mismatch (the two files were measured under different
//!   DES/pricing/thread configurations and are not comparable), 4
//!   unreadable or malformed input.
//!
//! * `obsctl attrib <trace.json> [--json]` — critical-path attribution of
//!   a Chrome trace written by `repro --trace-out`. Replays the trace's
//!   complete (`"ph": "X"`) events through a fresh recorder and runs the
//!   same [`obs::Analysis`] the simulator uses in-process, so the offline
//!   view is byte-identical to `repro --attrib-out` for the same run.
//!   Prints a category breakdown and the dominant chain; `--json` prints
//!   the raw analysis document instead.
//!
//! * `obsctl prom <metrics.json>` — re-serialise a metrics snapshot
//!   (`repro --metrics-out`) in the Prometheus text exposition format,
//!   for pasting into anything that speaks it.

use std::process::ExitCode;

use a64fx_bench::obsdiff;
use conform::json::{self, Value};

const USAGE: &str = "usage:
  obsctl diff <baseline.json> <candidate.json> [--threshold <pct>] [--warn-values]
  obsctl attrib <trace.json> [--json]
  obsctl prom <metrics.json>";

fn fail(msg: &str) -> ExitCode {
    eprintln!("obsctl: {msg}");
    ExitCode::from(4)
}

fn load(path: &str) -> Result<Value, String> {
    json::parse_file(std::path::Path::new(path))
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut threshold = obsdiff::DEFAULT_THRESHOLD_PCT;
    let mut warn_values = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => threshold = t,
                _ => return fail("--threshold needs a non-negative percentage"),
            },
            "--warn-values" => warn_values = true,
            p if !p.starts_with("--") => paths.push(p.to_string()),
            other => return fail(&format!("unknown diff flag '{other}'\n{USAGE}")),
        }
    }
    let [old, new] = paths.as_slice() else {
        return fail(&format!("diff takes exactly two files\n{USAGE}"));
    };
    let (old, new) = match (load(old), load(new)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let report = obsdiff::diff_docs(&old, &new, threshold);
    print!("{}", report.render(warn_values));
    ExitCode::from(report.exit_code(warn_values) as u8)
}

/// Rebuild an analysis from a Chrome trace: replay every complete event
/// through a fresh `MemRecorder` in file order (string attributes
/// included — the `phase` attribute drives classification), then analyse.
fn analysis_from_trace(doc: &Value) -> Result<obs::Analysis, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("no \"traceEvents\" array — not a Chrome trace (use `repro --trace-out`)")?;
    use obs::Recorder;
    let rec = obs::MemRecorder::new();
    for ev in events {
        if ev.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let cat = ev.get("cat").and_then(Value::as_str).unwrap_or("");
        let name = ev.get("name").and_then(Value::as_str).unwrap_or("");
        let ts = ev.get("ts").and_then(Value::as_f64).unwrap_or(0.0);
        let dur = ev.get("dur").and_then(Value::as_f64).unwrap_or(0.0);
        let mut attrs: Vec<(&str, obs::AttrValue)> = Vec::new();
        if let Some(Value::Obj(pairs)) = ev.get("args") {
            for (k, v) in pairs {
                match v {
                    Value::Str(s) => attrs.push((k, obs::AttrValue::Str(s))),
                    Value::Num(n) => attrs.push((k, obs::AttrValue::F64(*n))),
                    _ => {}
                }
            }
        }
        rec.span(cat, name, ts, dur, &attrs);
    }
    Ok(rec.analyze())
}

fn cmd_attrib(args: &[String]) -> ExitCode {
    let as_json = args.iter().any(|a| a == "--json");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [path] = paths.as_slice() else {
        return fail(&format!("attrib takes exactly one trace file\n{USAGE}"));
    };
    let doc = match load(path) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    let a = match analysis_from_trace(&doc) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    if as_json {
        print!("{}", a.to_json(&[]));
        return ExitCode::SUCCESS;
    }
    println!(
        "critical-path attribution: {} spans, {} segments, end-to-end {:.1} us",
        a.spans_considered,
        a.segments,
        a.end_to_end_us()
    );
    println!("{:>14}  {:>12}  {:>6}", "category", "us", "share");
    for c in obs::Category::ALL {
        println!(
            "{:>14}  {:>12.1}  {:>5.1}%",
            c.name(),
            a.total(c),
            a.share_pct(c)
        );
    }
    println!(
        "critical path {:.1} us ({:.1}% of end-to-end), dominant category: {}",
        a.path_us(),
        a.share_pct_of(a.path_us()),
        a.dominant().name()
    );
    for n in a.chain.iter().take(8) {
        println!(
            "  {:>5.1}%  {}:{} ({} spans, {:.1} us)",
            a.share_pct_of(n.us),
            n.category.name(),
            n.label,
            n.count,
            n.us
        );
    }
    ExitCode::SUCCESS
}

/// Rebuild a [`obs::Registry`] from a parsed metrics snapshot (plain or
/// extended — the percentile fields are recomputable and ignored).
fn registry_from_snapshot(doc: &Value) -> Result<obs::Registry, String> {
    let mut reg = obs::Registry::new();
    let section = |name: &str| -> Result<Vec<(String, Value)>, String> {
        match doc.get(name) {
            Some(Value::Obj(pairs)) => Ok(pairs.clone()),
            _ => Err(format!(
                "no \"{name}\" object — not a metrics snapshot (use `repro --metrics-out`)"
            )),
        }
    };
    for (k, v) in section("counters")? {
        let n = v
            .as_f64()
            .ok_or_else(|| format!("counter {k} is not a number"))?;
        reg.add(&k, n as u64);
    }
    for (k, v) in section("gauges")? {
        let n = v
            .as_f64()
            .ok_or_else(|| format!("gauge {k} is not a number"))?;
        reg.gauge_max(&k, n);
    }
    for (k, v) in section("histograms")? {
        let count = v
            .get("count")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("histogram {k} has no count"))? as u64;
        let sum = v
            .get("sum")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("histogram {k} has no sum"))?;
        let mut h = obs::Histogram {
            count,
            sum,
            ..Default::default()
        };
        if let Some(Value::Obj(buckets)) = v.get("buckets") {
            for (idx, c) in buckets {
                let i: usize = idx
                    .parse()
                    .map_err(|_| format!("histogram {k}: bad bucket index '{idx}'"))?;
                if i >= h.buckets.len() {
                    return Err(format!("histogram {k}: bucket index {i} out of range"));
                }
                h.buckets[i] = c.as_f64().unwrap_or(0.0) as u64;
            }
        }
        reg.insert_histogram(&k, h);
    }
    Ok(reg)
}

fn cmd_prom(args: &[String]) -> ExitCode {
    let [path] = args else {
        return fail(&format!("prom takes exactly one metrics file\n{USAGE}"));
    };
    let doc = match load(path) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    match registry_from_snapshot(&doc) {
        Ok(reg) => {
            print!("{}", reg.render_prometheus());
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "diff" => cmd_diff(rest),
        Some((cmd, rest)) if cmd == "attrib" => cmd_attrib(rest),
        Some((cmd, rest)) if cmd == "prom" => cmd_prom(rest),
        _ => fail(USAGE),
    }
}
