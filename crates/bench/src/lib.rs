//! # a64fx-bench — the benchmark harness
//!
//! Criterion benches regenerating every table and figure of the paper, plus
//! microbenchmarks of the real numerical substrates and the ablation
//! sweeps. Run with `cargo bench --workspace`; regenerate the tables
//! themselves with the `repro` binary (`cargo run -p a64fx-core --bin repro
//! -- --all`).
//!
//! * `benches/paper_tables.rs` — one bench per paper artefact (T1, T3, T4,
//!   T5, F1, F2, T6, F3, T7, T8, F4, F5, T9, T10), each timing the
//!   simulation that regenerates it.
//! * `benches/kernels.rs` — the real kernels underneath: SpMV, SymGS,
//!   multigrid V-cycles, spectral-element `ax`, 3-D FFTs, CG iterations,
//!   and a compressible TGV time step.
//! * `benches/ablations.rs` — the design-choice sweeps of
//!   `a64fx_core::ablations`.
//!
//! The crate also hosts the regression-gate machinery behind the `obsctl`
//! binary: [`config`] stamps every `BENCH_*.json` with the run
//! configuration (git revision, DES backend, pricing backend, worker
//! threads) so comparisons across mismatched setups can be refused, and
//! [`obsdiff`] is the deterministic comparator CI runs as a perf gate.

/// The criterion sample size used across the harness: the simulations being
/// timed are deterministic, so a small sample suffices.
pub const SAMPLE_SIZE: usize = 10;

pub mod config {
    //! The run-configuration header every `BENCH_*.json` carries.
    //!
    //! A benchmark number is only comparable to another taken under the
    //! same configuration: the resolved DES backend, the kernel-pricing
    //! backend, and the worker-thread count all change what is measured.
    //! Each writer embeds a `"config"` object built here; `obsctl diff`
    //! refuses comparisons whose configs disagree (the git SHA and host
    //! parallelism are recorded for provenance but excluded from the
    //! match — comparing across revisions is the whole point of a gate).

    /// The git revision of the working tree, via `git rev-parse HEAD`.
    /// Falls back to `"unknown"` outside a git checkout (e.g. a source
    /// tarball) — provenance only, never load-bearing.
    pub fn git_sha() -> String {
        std::process::Command::new("git")
            .args(["rev-parse", "--short=12", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    }

    /// The `"config"` object (one JSON fragment, no trailing newline)
    /// recorded in every benchmark file: git revision plus the four
    /// resolved knobs that make two runs comparable. `threads` is the
    /// worker count the caller actually used for the timed region;
    /// `tiling` is the compiled-in block/chunk parameter set
    /// ([`densela::block::tiling_id`]) — numbers taken under different
    /// tiling measure different inner loops, so `obsctl diff` refuses
    /// differently-tiled baselines like any other config mismatch.
    pub fn header_json(threads: usize) -> String {
        format!(
            "{{\"git_sha\": \"{}\", \"des_backend\": \"{}\", \"pricing\": \"{}\", \"tiling\": \"{}\", \"threads\": {threads}}}",
            git_sha(),
            a64fx_core::runner::resolve_des_backend(None),
            a64fx_core::runner::resolve_pricing(None),
            densela::block::tiling_id(),
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn header_is_valid_json_with_the_five_keys() {
            let doc = conform::json::parse(&header_json(3)).unwrap();
            for key in ["git_sha", "des_backend", "pricing", "tiling"] {
                assert!(doc.get(key).and_then(|v| v.as_str()).is_some(), "{key}");
            }
            assert_eq!(doc.get("threads").and_then(|v| v.as_f64()), Some(3.0));
            assert_eq!(
                doc.get("tiling").and_then(|v| v.as_str()),
                Some(densela::block::tiling_id().as_str()),
                "the header must stamp the compiled-in tiling"
            );
        }
    }
}

pub mod obsdiff {
    //! Deterministic benchmark comparison — the engine behind
    //! `obsctl diff`, CI's perf gate.
    //!
    //! Two `BENCH_*.json` (or metrics-snapshot) documents are flattened to
    //! dotted metric paths — array elements keyed by their `name`/`id`
    //! fields where present, so `kernels[2]` becomes
    //! `kernels.mc_symgs_sweep` and survives reordering — and compared
    //! metric by metric:
    //!
    //! * **config mismatch** (exit 3): the documents' `"config"` objects
    //!   disagree on anything except the git SHA. Such numbers are not
    //!   comparable; the diff refuses rather than report noise.
    //! * **shape drift** (exit 2): a metric exists on only one side, or a
    //!   non-numeric value changed (a kernel renamed, an experiment's
    //!   `failed` flag flipped). Shape drift always fails the gate — it
    //!   means the benchmark itself changed, not just its numbers.
    //! * **value regression** (exit 1): a numeric metric moved past the
    //!   relative threshold in its bad direction. Keys ending in `_s`/`_us`
    //!   are times (lower is better); keys ending in `per_s`/`_eff` and
    //!   speedup ratios (`pooled_vs_*`, `blocked_vs_*`, `vs_serial`) are
    //!   rates (higher is better); everything else is neutral — reported when it moves, but
    //!   never a failure. `--warn-values` downgrades value regressions to
    //!   warnings for hosts whose timings are not trustworthy (CI's
    //!   single-core runners).
    //!
    //! The comparator itself is pure and deterministic: same two documents,
    //! same report, byte for byte.

    use std::collections::BTreeMap;

    use conform::json::Value;

    /// Default relative threshold, percent: moves within ±25% are noise on
    /// shared CI hosts.
    pub const DEFAULT_THRESHOLD_PCT: f64 = 25.0;

    /// Which way a metric is allowed to move.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Direction {
        /// Times and latencies: an increase past threshold is a regression.
        LowerIsBetter,
        /// Rates, efficiencies, speedups: a decrease is a regression.
        HigherIsBetter,
        /// Counts and sizes: changes are reported, never failures.
        Neutral,
    }

    /// Classify a flattened metric key by its final path segment.
    pub fn direction(key: &str) -> Direction {
        let last = key.rsplit('.').next().unwrap_or(key);
        if last.ends_with("per_s")
            || last.ends_with("_eff")
            || last.starts_with("pooled_vs")
            || last.starts_with("blocked_vs")
            || last == "vs_serial"
        {
            Direction::HigherIsBetter
        } else if last.ends_with("_s") || last.ends_with("_us") {
            Direction::LowerIsBetter
        } else {
            Direction::Neutral
        }
    }

    /// A flattened leaf: a number to compare, or text that must not change.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Flat {
        /// A numeric metric.
        Num(f64),
        /// A non-numeric value (strings, booleans, null).
        Text(String),
    }

    /// Array elements are keyed by an identifying field when they have one,
    /// so reordering a benchmark's rows is not a spurious diff; positional
    /// index is the fallback.
    fn element_key(v: &Value, i: usize) -> String {
        for field in ["name", "id"] {
            if let Some(s) = v.get(field).and_then(Value::as_str) {
                return s.to_string();
            }
        }
        if let (Some(app), Some(class)) = (
            v.get("app").and_then(Value::as_str),
            v.get("class").and_then(Value::as_str),
        ) {
            return format!("{app}.{class}");
        }
        if let (Some(nodes), Some(backend)) = (
            v.get("nodes").and_then(Value::as_f64),
            v.get("backend").and_then(Value::as_str),
        ) {
            return format!("{}.{backend}", nodes as u64);
        }
        i.to_string()
    }

    /// Flatten a document into `dotted.path -> leaf` under `prefix`
    /// (empty at the root). Key order comes from the `BTreeMap`, so the
    /// report is independent of document layout.
    pub fn flatten(v: &Value, prefix: &str, out: &mut BTreeMap<String, Flat>) {
        let join = |k: &str| {
            if prefix.is_empty() {
                k.to_string()
            } else {
                format!("{prefix}.{k}")
            }
        };
        match v {
            Value::Obj(pairs) => {
                for (k, val) in pairs {
                    flatten(val, &join(k), out);
                }
            }
            Value::Arr(items) => {
                for (i, item) in items.iter().enumerate() {
                    flatten(item, &join(&element_key(item, i)), out);
                }
            }
            Value::Num(n) => {
                out.insert(prefix.to_string(), Flat::Num(*n));
            }
            Value::Str(s) => {
                out.insert(prefix.to_string(), Flat::Text(s.clone()));
            }
            Value::Bool(b) => {
                out.insert(prefix.to_string(), Flat::Text(b.to_string()));
            }
            Value::Null => {
                out.insert(prefix.to_string(), Flat::Text("null".to_string()));
            }
        }
    }

    /// Keys excluded from comparison entirely: provenance and host facts
    /// that legitimately differ between a baseline and a candidate.
    fn ignored(key: &str) -> bool {
        let last = key.rsplit('.').next().unwrap_or(key);
        last == "git_sha" || last == "available_parallelism"
    }

    /// The outcome of one comparison, most severe condition first.
    #[derive(Debug, Default)]
    pub struct DiffReport {
        /// Config keys that disagree — the comparison is refused.
        pub config_mismatches: Vec<String>,
        /// Metrics present on only one side, or changed non-numeric values.
        pub shape_drift: Vec<String>,
        /// Numeric metrics past threshold in their bad direction.
        pub regressions: Vec<String>,
        /// Numeric metrics past threshold in their good direction.
        pub improvements: Vec<String>,
        /// Neutral metrics that moved past threshold — informational.
        pub neutral_changes: Vec<String>,
        /// Total numeric metrics compared.
        pub compared: usize,
    }

    impl DiffReport {
        /// The gate's exit code: 3 config mismatch, 2 shape drift, 1 value
        /// regression (suppressed by `warn_values`), 0 clean.
        pub fn exit_code(&self, warn_values: bool) -> i32 {
            if !self.config_mismatches.is_empty() {
                3
            } else if !self.shape_drift.is_empty() {
                2
            } else if !self.regressions.is_empty() && !warn_values {
                1
            } else {
                0
            }
        }

        /// Human-readable report, one finding per line, worst first.
        pub fn render(&self, warn_values: bool) -> String {
            let mut out = String::new();
            let mut section = |title: &str, lines: &[String]| {
                for l in lines {
                    out.push_str(&format!("{title}: {l}\n"));
                }
            };
            section("config mismatch", &self.config_mismatches);
            section("shape drift", &self.shape_drift);
            section(
                if warn_values {
                    "regression (warn-only)"
                } else {
                    "REGRESSION"
                },
                &self.regressions,
            );
            section("improvement", &self.improvements);
            section("changed (neutral)", &self.neutral_changes);
            out.push_str(&format!(
                "compared {} metrics: {} regressed, {} improved, {} drifted, exit {}\n",
                self.compared,
                self.regressions.len(),
                self.improvements.len(),
                self.shape_drift.len(),
                self.exit_code(warn_values)
            ));
            out
        }
    }

    /// Compare two parsed benchmark documents under a relative threshold
    /// (percent). `old` is the baseline; `new` is the candidate.
    pub fn diff_docs(old: &Value, new: &Value, threshold_pct: f64) -> DiffReport {
        let mut a = BTreeMap::new();
        let mut b = BTreeMap::new();
        flatten(old, "", &mut a);
        flatten(new, "", &mut b);
        let mut report = DiffReport::default();

        // Config gate first: refuse incomparable documents. A baseline
        // that predates config headers is flagged as drift, not mismatch.
        let a_cfg: Vec<_> = a.iter().filter(|(k, _)| k.starts_with("config.")).collect();
        let b_has_cfg = b.keys().any(|k| k.starts_with("config."));
        if a_cfg.is_empty() == b_has_cfg {
            report
                .shape_drift
                .push("one side has a \"config\" header, the other does not".to_string());
        }
        for (k, va) in &a_cfg {
            if ignored(k) {
                continue;
            }
            match b.get(*k) {
                Some(vb) if *vb == **va => {}
                Some(vb) => report.config_mismatches.push(format!(
                    "{k}: baseline {va:?} vs candidate {vb:?} — regenerate under the same configuration"
                )),
                None => report
                    .config_mismatches
                    .push(format!("{k}: missing from the candidate")),
            }
        }

        for (k, va) in &a {
            if k.starts_with("config.") || ignored(k) {
                continue;
            }
            let Some(vb) = b.get(k) else {
                report.shape_drift.push(format!("{k}: only in baseline"));
                continue;
            };
            match (va, vb) {
                (Flat::Num(x), Flat::Num(y)) => {
                    report.compared += 1;
                    let (x, y) = (*x, *y);
                    if x == y {
                        continue;
                    }
                    if x == 0.0 {
                        report
                            .neutral_changes
                            .push(format!("{k}: baseline 0, candidate {y}"));
                        continue;
                    }
                    let pct = 100.0 * (y - x) / x;
                    if pct.abs() <= threshold_pct {
                        continue;
                    }
                    let line = format!("{k}: {x} -> {y} ({pct:+.1}%)");
                    match direction(k) {
                        Direction::LowerIsBetter if pct > 0.0 => report.regressions.push(line),
                        Direction::HigherIsBetter if pct < 0.0 => report.regressions.push(line),
                        Direction::Neutral => report.neutral_changes.push(line),
                        _ => report.improvements.push(line),
                    }
                }
                (va, vb) if va == vb => {}
                (va, vb) => report
                    .shape_drift
                    .push(format!("{k}: {va:?} changed to {vb:?}")),
            }
        }
        for k in b.keys() {
            if !k.starts_with("config.") && !ignored(k) && !a.contains_key(k) {
                report.shape_drift.push(format!("{k}: only in candidate"));
            }
        }
        report
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use conform::json::parse;

        fn doc(wall: f64, speedup: f64, events: u64, threads: u64) -> Value {
            parse(&format!(
                r#"{{"config": {{"git_sha": "g{threads}", "des_backend": "serial",
                     "pricing": "flat", "threads": {threads}}},
                    "available_parallelism": {threads},
                    "wall_s": {wall},
                    "kernels": [{{"name": "spmv", "serial_s": 1.0,
                                  "pooled_vs_serial": {speedup}}}],
                    "des": {{"events": {events}}}}}"#
            ))
            .unwrap()
        }

        #[test]
        fn direction_classification() {
            assert_eq!(direction("wall_s"), Direction::LowerIsBetter);
            assert_eq!(direction("kernels.spmv.flat_us"), Direction::LowerIsBetter);
            assert_eq!(
                direction("runs.1024.serial.events_per_s"),
                Direction::HigherIsBetter
            );
            assert_eq!(
                direction("kernels.spmv.pooled_vs_serial"),
                Direction::HigherIsBetter
            );
            assert_eq!(direction("ecm_roofline_eff"), Direction::HigherIsBetter);
            assert_eq!(
                direction("blocked.small_gemm_batch16.blocked_vs_naive"),
                Direction::HigherIsBetter
            );
            assert_eq!(
                direction("kernels.spmv_csr.gflops_per_s"),
                Direction::HigherIsBetter
            );
            assert_eq!(
                direction("runs.1024.serial.vs_serial"),
                Direction::HigherIsBetter
            );
            assert_eq!(direction("des.events"), Direction::Neutral);
            assert_eq!(direction("threads"), Direction::Neutral);
        }

        #[test]
        fn identical_documents_are_clean() {
            let r = diff_docs(&doc(10.0, 2.0, 5, 1), &doc(10.0, 2.0, 5, 1), 25.0);
            assert_eq!(r.exit_code(false), 0, "{}", r.render(false));
            assert!(r.compared > 0);
        }

        #[test]
        fn git_sha_and_parallelism_never_matter() {
            let mut b = doc(10.0, 2.0, 5, 1);
            // Same config.threads, different sha/host: comparable.
            if let Value::Obj(pairs) = &mut b {
                for (k, v) in pairs.iter_mut() {
                    if k == "available_parallelism" {
                        *v = Value::Num(64.0);
                    }
                }
            }
            let r = diff_docs(&doc(10.0, 2.0, 5, 1), &b, 25.0);
            assert_eq!(r.exit_code(false), 0, "{}", r.render(false));
        }

        #[test]
        fn slower_time_past_threshold_regresses() {
            let r = diff_docs(&doc(10.0, 2.0, 5, 1), &doc(14.0, 2.0, 5, 1), 25.0);
            assert_eq!(r.exit_code(false), 1);
            assert_eq!(r.exit_code(true), 0, "--warn-values downgrades");
            // A looser threshold passes it.
            let r = diff_docs(&doc(10.0, 2.0, 5, 1), &doc(14.0, 2.0, 5, 1), 50.0);
            assert_eq!(r.exit_code(false), 0);
            // Faster is an improvement, not a failure.
            let r = diff_docs(&doc(10.0, 2.0, 5, 1), &doc(6.0, 2.0, 5, 1), 25.0);
            assert_eq!(r.exit_code(false), 0);
            assert_eq!(r.improvements.len(), 1);
        }

        #[test]
        fn lost_speedup_regresses_and_neutral_counts_never_fail() {
            let r = diff_docs(&doc(10.0, 2.0, 5, 1), &doc(10.0, 1.0, 5, 1), 25.0);
            assert_eq!(r.exit_code(false), 1);
            let r = diff_docs(&doc(10.0, 2.0, 5, 1), &doc(10.0, 2.0, 500, 1), 25.0);
            assert_eq!(r.exit_code(false), 0);
            assert_eq!(r.neutral_changes.len(), 1);
        }

        #[test]
        fn missing_metric_is_shape_drift_and_beats_value_regression() {
            let stripped = parse(
                r#"{"config": {"git_sha": "x", "des_backend": "serial",
                    "pricing": "flat", "threads": 1},
                   "wall_s": 99.0, "kernels": [], "des": {"events": 5}}"#,
            )
            .unwrap();
            let r = diff_docs(&doc(10.0, 2.0, 5, 1), &stripped, 25.0);
            assert_eq!(r.exit_code(false), 2);
            assert_eq!(r.exit_code(true), 2, "--warn-values never hides drift");
        }

        #[test]
        fn mismatched_config_is_refused() {
            let r = diff_docs(&doc(10.0, 2.0, 5, 1), &doc(10.0, 2.0, 5, 4), 25.0);
            assert_eq!(r.exit_code(false), 3);
            assert_eq!(r.exit_code(true), 3, "--warn-values never hides a mismatch");
            assert!(r
                .render(false)
                .contains("regenerate under the same configuration"));
        }

        #[test]
        fn mismatched_tiling_is_refused() {
            // Same knobs everywhere except the config's tiling id: the
            // candidate was built with different block/chunk parameters, so
            // its inner loops are not the baseline's inner loops.
            let with_tiling = |id: &str| {
                parse(&format!(
                    r#"{{"config": {{"git_sha": "x", "des_backend": "serial",
                        "pricing": "flat", "tiling": "{id}", "threads": 1}},
                       "wall_s": 10.0}}"#
                ))
                .unwrap()
            };
            let r = diff_docs(
                &with_tiling("w8.mr8.nr4.gs512.fft8"),
                &with_tiling("w4.mr4.nr2.gs256.fft4"),
                25.0,
            );
            assert_eq!(r.exit_code(false), 3);
            assert_eq!(r.exit_code(true), 3, "--warn-values never hides a mismatch");
            let same = diff_docs(
                &with_tiling("w8.mr8.nr4.gs512.fft8"),
                &with_tiling("w8.mr8.nr4.gs512.fft8"),
                25.0,
            );
            assert_eq!(same.exit_code(false), 0);
        }

        #[test]
        fn report_is_deterministic() {
            let a = doc(10.0, 2.0, 5, 1);
            let b = doc(14.0, 1.0, 500, 4);
            let r1 = diff_docs(&a, &b, 25.0).render(false);
            let r2 = diff_docs(&a, &b, 25.0).render(false);
            assert_eq!(r1, r2);
        }
    }
}
