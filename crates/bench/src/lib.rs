//! # a64fx-bench — the benchmark harness
//!
//! Criterion benches regenerating every table and figure of the paper, plus
//! microbenchmarks of the real numerical substrates and the ablation
//! sweeps. Run with `cargo bench --workspace`; regenerate the tables
//! themselves with the `repro` binary (`cargo run -p a64fx-core --bin repro
//! -- --all`).
//!
//! * `benches/paper_tables.rs` — one bench per paper artefact (T1, T3, T4,
//!   T5, F1, F2, T6, F3, T7, T8, F4, F5, T9, T10), each timing the
//!   simulation that regenerates it.
//! * `benches/kernels.rs` — the real kernels underneath: SpMV, SymGS,
//!   multigrid V-cycles, spectral-element `ax`, 3-D FFTs, CG iterations,
//!   and a compressible TGV time step.
//! * `benches/ablations.rs` — the design-choice sweeps of
//!   `a64fx_core::ablations`.

/// The criterion sample size used across the harness: the simulations being
/// timed are deterministic, so a small sample suffices.
pub const SAMPLE_SIZE: usize = 10;
