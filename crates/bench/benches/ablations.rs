//! Benches of the design-choice ablation sweeps (each regenerates its
//! ablation table; the tables themselves print via `repro --ablations`).

use a64fx_core::ablations;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("a1_bandwidth_sweep", |b| {
        b.iter(|| black_box(ablations::bandwidth_sweep()))
    });
    g.bench_function("a2_topology_swap", |b| {
        b.iter(|| black_box(ablations::topology_swap()))
    });
    g.bench_function("a3_cosa_block_sweep", |b| {
        b.iter(|| black_box(ablations::cosa_block_sweep()))
    });
    g.bench_function("a4_placement_policy", |b| {
        b.iter(|| black_box(ablations::placement_policy()))
    });
    g.bench_function("a5_fastmath_sweep", |b| {
        b.iter(|| black_box(ablations::fastmath_sweep()))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
