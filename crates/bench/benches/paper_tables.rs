//! One bench per paper table/figure: times the simulation that regenerates
//! each artefact. The representative "cell" of each artefact is benched so
//! the whole suite stays fast; the full tables are printed by the `repro`
//! binary.

use a64fx_core::experiments::{castep, cosa, hpcg, minikab, nekbone, opensbli, specs};
use archsim::SystemId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_tables");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));

    // T1 — node specification table (pure model construction).
    g.bench_function("t1_table1_specs", |b| b.iter(|| black_box(specs::table1())));

    // T3 — single-node HPCG (the A64FX cell).
    g.bench_function("t3_hpcg_single_node_a64fx", |b| {
        b.iter(|| black_box(hpcg::hpcg_gflops(SystemId::A64fx, 1, false)))
    });

    // T4 — multi-node HPCG (the 8-node A64FX cell).
    g.bench_function("t4_hpcg_8node_a64fx", |b| {
        b.iter(|| black_box(hpcg::hpcg_gflops(SystemId::A64fx, 8, false)))
    });

    // T5 — single-core minikab (the A64FX cell).
    g.bench_function("t5_minikab_single_core_a64fx", |b| {
        b.iter(|| black_box(minikab::minikab_runtime_s(SystemId::A64fx, 1, 1, 1)))
    });

    // F1 — minikab process/thread sweep (the winning 8x12 cell).
    g.bench_function("f1_minikab_8x12_2nodes", |b| {
        b.iter(|| black_box(minikab::minikab_runtime_s(SystemId::A64fx, 2, 8, 12)))
    });

    // F2 — minikab strong scaling (the 8-node A64FX cell).
    g.bench_function("f2_minikab_8node_a64fx", |b| {
        b.iter(|| black_box(minikab::minikab_runtime_s(SystemId::A64fx, 8, 32, 12)))
    });

    // T6 — Nekbone node performance with fast-math (the headline cell).
    g.bench_function("t6_nekbone_fastmath_a64fx", |b| {
        b.iter(|| black_box(nekbone::nekbone_gflops(SystemId::A64fx, 1, 48, true)))
    });

    // F3 — Nekbone core scaling (the 24-core half-node cell).
    g.bench_function("f3_nekbone_24cores_a64fx", |b| {
        b.iter(|| black_box(nekbone::nekbone_gflops_default(SystemId::A64fx, 1, 24)))
    });

    // T7 — Nekbone parallel efficiency at 16 nodes.
    g.bench_function("t7_nekbone_pe_16node_a64fx", |b| {
        b.iter(|| black_box(nekbone::nekbone_pe(SystemId::A64fx, 16)))
    });

    // T8 — COSA processes-per-node table.
    g.bench_function("t8_cosa_procs_table", |b| {
        b.iter(|| black_box(cosa::table8()))
    });

    // F4 — COSA strong scaling (the 16-node crossover cells).
    g.bench_function("f4_cosa_16node_a64fx", |b| {
        b.iter(|| black_box(cosa::cosa_runtime_s(SystemId::A64fx, 16)))
    });
    g.bench_function("f4_cosa_16node_fulhame", |b| {
        b.iter(|| black_box(cosa::cosa_runtime_s(SystemId::Fulhame, 16)))
    });

    // F5 — CASTEP core-count scaling (the 8-core cell).
    g.bench_function("f5_castep_8cores_a64fx", |b| {
        b.iter(|| black_box(castep::castep_scf_per_s(SystemId::A64fx, 8)))
    });

    // T9 — CASTEP best node (the NGIO-vs-A64FX cells).
    g.bench_function("t9_castep_node_a64fx", |b| {
        b.iter(|| black_box(castep::castep_scf_per_s(SystemId::A64fx, 48)))
    });

    // T10 — OpenSBLI runtimes (the single-node A64FX cell).
    g.bench_function("t10_opensbli_1node_a64fx", |b| {
        b.iter(|| black_box(opensbli::opensbli_runtime_s(SystemId::A64fx, 1)))
    });

    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
