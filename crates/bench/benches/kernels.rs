//! Microbenchmarks of the real numerical kernels underneath the apps: the
//! same kernel classes the cost model calibrates (SpMV, SymGS, MG V-cycle,
//! spectral-element `ax`, FFT, CG, compressible stencils, vector ops).

use a64fx_apps::opensbli::{OpensbliConfig, TgvSolver};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use densela::tensor::{gll_derivative_matrix, local_ax, AxScratch};
use densela::vecops;
use fftsim::complex::Complex64;
use fftsim::fft3d::fft3_inplace;
use sparsela::cg::cg_solve;
use sparsela::coloring::{mc_symgs_sweep, Coloring};
use sparsela::ell::SellMatrix;
use sparsela::gen::{stencil27, structural3d};
use sparsela::mg::MgHierarchy;
use sparsela::parallel::{SpawnTeam, Team};
use sparsela::symgs::symgs_sweep;
use std::hint::black_box;

fn bench_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse");
    g.sample_size(20);

    let a = stencil27(32, 32, 32);
    let x = vec![1.0; a.cols()];
    let mut y = vec![0.0; a.rows()];
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function("spmv_stencil27_32cubed", |b| {
        b.iter(|| black_box(a.spmv(&x, &mut y)))
    });

    let bvec = vec![1.0; a.rows()];
    let mut xg = vec![0.0; a.rows()];
    g.bench_function("symgs_sweep_32cubed", |b| {
        b.iter(|| black_box(symgs_sweep(&a, &bvec, &mut xg)))
    });

    // The optimised-HPCG kernel path: SELL-C-sigma SpMV and multi-colour
    // Gauss-Seidel, vs the reference CSR kernels above.
    let sell = SellMatrix::from_csr(&a, 8, 32);
    g.bench_function("spmv_sell8_32cubed", |b| {
        b.iter(|| black_box(sell.spmv(&x, &mut y)))
    });
    let coloring = Coloring::stencil8(32, 32, 32);
    let mut xc = vec![0.0; a.rows()];
    g.bench_function("mc_symgs_sweep_32cubed", |b| {
        b.iter(|| black_box(mc_symgs_sweep(&a, &coloring, &bvec, &mut xc)))
    });

    // The hybrid-rank thread team on the same SpMV: the persistent kernel
    // pool (threads spawned once) against the old spawn-per-call scheme.
    let team = Team::new(4);
    let spawn_team = SpawnTeam::new(4);
    let mut yt = vec![0.0; a.rows()];
    g.bench_function("spmv_pool4_32cubed", |b| {
        b.iter(|| black_box(team.spmv(&a, &x, &mut yt)))
    });
    g.bench_function("spmv_spawn4_32cubed", |b| {
        b.iter(|| black_box(spawn_team.spmv(&a, &x, &mut yt)))
    });
    // The pooled optimised-HPCG kernels.
    let mut ysell = vec![0.0; a.rows()];
    g.bench_function("spmv_sell8_pool4_32cubed", |b| {
        b.iter(|| black_box(team.sell_spmv(&sell, &x, &mut ysell)))
    });
    let mut xmc = vec![0.0; a.rows()];
    g.bench_function("mc_symgs_pool4_32cubed", |b| {
        b.iter(|| black_box(team.mc_symgs_sweep(&a, &coloring, &bvec, &mut xmc)))
    });

    let s = structural3d(8, 8, 8);
    let xs = vec![1.0; s.cols()];
    let mut ys = vec![0.0; s.rows()];
    g.throughput(Throughput::Elements(s.nnz() as u64));
    g.bench_function("spmv_structural_8cubed", |b| {
        b.iter(|| black_box(s.spmv(&xs, &mut ys)))
    });
    g.finish();

    let mut g = c.benchmark_group("multigrid");
    g.sample_size(10);
    let mg = MgHierarchy::new(32, 32, 32, 4);
    let r = vec![1.0; mg.fine_operator().rows()];
    let mut z = vec![0.0; mg.fine_operator().rows()];
    g.bench_function("vcycle_32cubed_4level", |b| {
        b.iter(|| black_box(mg.vcycle(&r, &mut z)))
    });
    g.bench_function("cg_poisson_16cubed", |b| {
        let a = stencil27(16, 16, 16);
        let rhs = vec![1.0; a.rows()];
        b.iter(|| {
            let mut x0 = vec![0.0; a.rows()];
            black_box(cg_solve(&a, &rhs, &mut x0, 25, 1e-9))
        })
    });
    // Serial vs spawn-per-call vs persistent-pool CG: the spawn overhead a
    // pooled solve amortises is 4 spawn/join cycles per iteration.
    g.bench_function("cg_pool4_16cubed", |b| {
        let a = stencil27(16, 16, 16);
        let rhs = vec![1.0; a.rows()];
        let team = Team::new(4);
        b.iter(|| {
            let mut x0 = vec![0.0; a.rows()];
            black_box(team.cg_solve(&a, &rhs, &mut x0, 25, 1e-9))
        })
    });
    g.bench_function("cg_spawn4_16cubed", |b| {
        let a = stencil27(16, 16, 16);
        let rhs = vec![1.0; a.rows()];
        let team = SpawnTeam::new(4);
        b.iter(|| {
            let mut x0 = vec![0.0; a.rows()];
            black_box(team.cg_solve(&a, &rhs, &mut x0, 25, 1e-9))
        })
    });
    g.finish();
}

fn bench_dense(c: &mut Criterion) {
    let mut g = c.benchmark_group("dense");
    g.sample_size(20);

    // The Nekbone ax kernel at the paper's polynomial order.
    let n = 16;
    let d = gll_derivative_matrix(n);
    let dt = d.transpose();
    let geo = vec![1.0; n * n * n];
    let u = vec![0.5; n * n * n];
    let mut w = vec![0.0; n * n * n];
    let mut scratch = AxScratch::new(n);
    g.bench_function("nekbone_ax_order16", |b| {
        b.iter(|| black_box(local_ax(&d, &dt, n, &geo, &u, &mut w, &mut scratch)))
    });

    let x: Vec<f64> = (0..1_000_000).map(|i| i as f64 * 0.001).collect();
    let yv: Vec<f64> = x.iter().map(|v| v + 1.0).collect();
    g.throughput(Throughput::Bytes(16_000_000));
    g.bench_function("dot_1m", |b| b.iter(|| black_box(vecops::dot(&x, &yv))));
    let mut acc = yv.clone();
    g.bench_function("axpy_1m", |b| {
        b.iter(|| black_box(vecops::axpy(1.0001, &x, &mut acc)))
    });
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    g.sample_size(10);
    for n in [16usize, 32] {
        let mut data: Vec<Complex64> = (0..n * n * n)
            .map(|i| Complex64::new((i as f64).sin(), 0.0))
            .collect();
        g.bench_function(format!("fft3_{n}cubed"), |b| {
            b.iter(|| black_box(fft3_inplace(n, &mut data)))
        });
    }
    g.finish();
}

fn bench_cfd(c: &mut Criterion) {
    let mut g = c.benchmark_group("cfd");
    g.sample_size(10);
    let cfg = OpensbliConfig {
        grid: 16,
        steps: 1,
        viscosity: 0.01,
        dt: 1e-4,
    };
    let mut solver = TgvSolver::new(cfg);
    g.bench_function("tgv_rk3_step_16cubed", |b| {
        b.iter(|| solver.step(black_box(1e-4)))
    });
    g.finish();
}

criterion_group!(benches, bench_sparse, bench_dense, bench_fft, bench_cfd);
criterion_main!(benches);
