#![recursion_limit = "256"]
//! Integration tests for the crash-safe campaign layer: LRU
//! bit-transparency under property-based thrashing, torn-journal
//! recovery, and kill-and-resume byte-identity — the contracts
//! `repro --all --journal --resume` ships on.

use std::sync::Arc;
use std::time::Duration;

use a64fx_apps::nekbone::NekboneConfig;
use a64fx_core::campaign::{self, CampaignConfig, CampaignEnd};
use a64fx_core::report::Table;
use a64fx_core::tracecache;
use proptest::prelude::*;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "a64fx-itest-campaign-{name}-{}",
        std::process::id()
    ))
}

fn demo_table(id: &str) -> Table {
    let mut t = Table::new(&id.to_ascii_uppercase(), "itest probe", &["k", "v"]);
    t.push_row(vec![id.to_string(), format!("v-{id}")]);
    t.note("integration probe with \"quotes\" and\nnewlines");
    t
}

fn demo_body() -> Arc<dyn Fn(&str) -> Table + Send + Sync> {
    Arc::new(|id: &str| demo_table(id))
}

const IDS: [&str; 5] = ["i1", "i2", "i3", "i4", "i5"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Any access sequence against a cache capped to ~1 trace must serve
    // traces bit-equal (fingerprint and payload) to direct builds, no
    // matter how it thrashes.
    #[test]
    fn lru_eviction_is_bit_transparent_under_any_access_pattern(
        accesses in proptest::collection::vec(0usize..4, 1..24),
    ) {
        let configs: Vec<NekboneConfig> = (0..4)
            .map(|i| NekboneConfig { elements_per_rank: 61 + 2 * i, poly: 5, iterations: 2 })
            .collect();
        let ranks = 3;
        let reference: Vec<_> = configs
            .iter()
            .map(|c| a64fx_apps::nekbone::trace(*c, ranks))
            .collect();
        let _g = tracecache::override_lock();
        tracecache::set_enabled(true);
        tracecache::set_capacity(Some(reference[0].approx_bytes() + 16));
        tracecache::clear();
        for &i in &accesses {
            let got = tracecache::nekbone(configs[i], ranks);
            prop_assert_eq!(&*got, &reference[i], "access to config {} served wrong bytes", i);
        }
        prop_assert!(
            tracecache::resident_bytes() <= reference[0].approx_bytes() + 16,
            "resident bytes exceed the cap"
        );
        tracecache::set_capacity(None);
        tracecache::clear_override();
        tracecache::clear();
    }

    // A journal truncated at ANY byte resumes to the same final output.
    #[test]
    fn journal_truncated_anywhere_resumes_byte_identical(cut_frac in 0.0f64..1.0) {
        let path = tmp(&format!("anycut-{}", (cut_frac * 1e6) as u64));
        let cfg = CampaignConfig::new(1, Duration::from_secs(30));
        let clean = campaign::run_campaign_with(&IDS, demo_body(), &cfg, Some(&path), false)
            .unwrap();
        let clean_merged = campaign::merged_json(&clean.outcomes);
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let resumed = campaign::run_campaign_with(&IDS, demo_body(), &cfg, Some(&path), true)
            .unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(resumed.end, CampaignEnd::Completed);
        prop_assert_eq!(
            campaign::merged_json(&resumed.outcomes),
            clean_merged,
            "cut at byte {} of {} broke resume identity",
            cut,
            bytes.len()
        );
    }
}

/// Truncating inside the penultimate record drops exactly the torn
/// records and resume re-runs only those.
#[test]
fn truncated_mid_record_resumes_from_last_complete_record() {
    let path = tmp("midrecord");
    let cfg = CampaignConfig::new(1, Duration::from_secs(30));
    campaign::run_campaign_with(&IDS, demo_body(), &cfg, Some(&path), false).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    // Cut 10 bytes into the 4th record: records 0..3 survive.
    let newlines: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i)
        .collect();
    let cut = newlines[3] + 10; // header + 3 records end at newlines[3]
    std::fs::write(&path, &bytes[..cut]).unwrap();
    let loaded = campaign::load_journal(&path, &IDS).expect("header intact");
    assert_eq!(loaded.records.len(), 3);
    let resumed = campaign::run_campaign_with(&IDS, demo_body(), &cfg, Some(&path), true).unwrap();
    assert_eq!(
        resumed.outcomes.iter().filter(|o| o.from_journal).count(),
        3,
        "exactly the three durable records replay"
    );
    assert_eq!(
        resumed.outcomes.iter().filter(|o| !o.from_journal).count(),
        2,
        "exactly the torn and never-run experiments re-run"
    );
    // The journal is whole again after the resumed campaign.
    assert_eq!(
        campaign::load_journal(&path, &IDS).unwrap().records.len(),
        IDS.len()
    );
    let _ = std::fs::remove_file(&path);
}

/// The flagship contract: kill after every possible record count, resume,
/// and demand byte-identical merged output and renders.
#[test]
fn kill_after_each_record_count_resumes_byte_identical() {
    let cfg = CampaignConfig::new(1, Duration::from_secs(30));
    let clean_path = tmp("kill-clean");
    let clean =
        campaign::run_campaign_with(&IDS, demo_body(), &cfg, Some(&clean_path), false).unwrap();
    let _ = std::fs::remove_file(&clean_path);
    let clean_merged = campaign::merged_json(&clean.outcomes);
    let clean_renders: Vec<&String> = clean.outcomes.iter().map(|o| &o.render).collect();
    for stop_after in 1..IDS.len() as u64 {
        let path = tmp(&format!("kill-{stop_after}"));
        let kill_cfg = CampaignConfig {
            stop_after_records: Some(stop_after),
            ..cfg
        };
        let killed =
            campaign::run_campaign_with(&IDS, demo_body(), &kill_cfg, Some(&path), false).unwrap();
        assert_eq!(killed.end, CampaignEnd::Killed, "stop_after {stop_after}");
        let resumed =
            campaign::run_campaign_with(&IDS, demo_body(), &cfg, Some(&path), true).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(resumed.end, CampaignEnd::Completed);
        assert_eq!(
            resumed.outcomes.iter().filter(|o| o.from_journal).count(),
            stop_after as usize
        );
        assert_eq!(
            campaign::merged_json(&resumed.outcomes),
            clean_merged,
            "merged JSON drifted after kill at {stop_after}"
        );
        let renders: Vec<&String> = resumed.outcomes.iter().map(|o| &o.render).collect();
        assert_eq!(
            renders, clean_renders,
            "renders drifted after kill at {stop_after}"
        );
    }
}

/// Campaign workers share one journal safely: a multi-worker campaign
/// journals every outcome and resumes cleanly.
#[test]
fn multi_worker_campaign_journals_every_outcome() {
    let path = tmp("workers");
    let cfg = CampaignConfig::new(4, Duration::from_secs(30));
    let result = campaign::run_campaign_with(&IDS, demo_body(), &cfg, Some(&path), false).unwrap();
    assert_eq!(result.outcomes.len(), IDS.len());
    assert_eq!(result.failed(), 0);
    let loaded = campaign::load_journal(&path, &IDS).unwrap();
    assert_eq!(loaded.records.len(), IDS.len());
    // Resume with nothing left to do replays everything.
    let resumed = campaign::run_campaign_with(&IDS, demo_body(), &cfg, Some(&path), true).unwrap();
    assert!(resumed.outcomes.iter().all(|o| o.from_journal));
    assert_eq!(
        campaign::merged_json(&resumed.outcomes),
        campaign::merged_json(&result.outcomes)
    );
    let _ = std::fs::remove_file(&path);
}
