//! The fault-aware executor: replay a trace under a `faultsim` schedule.
//!
//! [`run_resilient`] drives the same phase replay as [`Executor::run`], but
//! iteration by iteration, reacting to the installed fault schedule between
//! iterations:
//!
//! * **coordinated checkpoints** — every `every_iters` body iterations the
//!   job barriers and writes the app's [`CheckpointSpec`] state through the
//!   node's I/O bandwidth share;
//! * **node crashes** — when ranks report failed ([`World::poll_failed`]),
//!   the world shrinks ULFM-style, survivors pay the restart cost, and the
//!   iterations since the last checkpoint are replayed (rollback);
//! * **everything else** (stragglers, link flaps, message retries, memory
//!   derates) is absorbed transparently by `simmpi`/`netsim`.
//!
//! **Additivity contract:** with an empty schedule and a disabled
//! checkpoint model, the priced runtime is bit-identical to
//! [`Executor::run`] — the fault path costs nothing when it injects
//! nothing. `conform`'s resilience parity suite pins this.

use a64fx_apps::trace::Trace;
use faultsim::{CheckpointModel, FaultSchedule, RetryPolicy};

use crate::costmodel::{Executor, JobLayout};

/// The outcome of one resilient replay.
#[derive(Debug, Clone)]
pub struct ResilientResult {
    /// Wall-clock runtime including all resilience overheads, seconds.
    pub runtime_s: f64,
    /// Checkpoints written.
    pub checkpoints: u32,
    /// Wall time spent writing checkpoints (barrier + I/O), seconds.
    pub checkpoint_s: f64,
    /// Shrink-and-recover rounds (distinct crash recoveries).
    pub recoveries: u32,
    /// Body iterations replayed due to rollback.
    pub rollback_iters: u64,
    /// Ranks lost to crashes over the run.
    pub ranks_lost: u32,
    /// Message retransmissions drawn by the network layer.
    pub msg_retries: u64,
}

impl ResilientResult {
    /// Resilience overhead relative to a fault-free baseline runtime, as a
    /// fraction (0.05 = 5% slower). Negative values are clamped to zero.
    pub fn overhead_vs(&self, baseline_s: f64) -> f64 {
        if baseline_s <= 0.0 {
            return 0.0;
        }
        ((self.runtime_s - baseline_s) / baseline_s).max(0.0)
    }
}

/// Replay `trace` under `layout` on `ex`'s system with `sched` installed,
/// checkpointing per `model` (`model.every_iters` is authoritative; use the
/// trace's [`CheckpointSpec::suggested_interval_iters`] or Young's period
/// to pick it). See the module docs for the semantics.
///
/// With `FaultSchedule::none(..)` and `CheckpointModel::disabled()` the
/// returned `runtime_s` is bit-identical to `ex.run(trace, layout)`.
pub fn run_resilient(
    ex: &Executor<'_>,
    trace: &Trace,
    layout: JobLayout,
    sched: &FaultSchedule,
    retry: RetryPolicy,
    model: &CheckpointModel,
) -> ResilientResult {
    let mut world = ex.build_world(trace, layout);
    if !sched.is_empty() {
        world.install_faults(sched, retry);
    }
    // Price once, *after* fault installation (memory derates feed the
    // roofline), and replay the priced body every iteration — including
    // rollback replays. Straggler stretch and dead-rank skipping happen
    // inside the world, so the priced durations stay valid across
    // shrink-and-recover.
    let priced = ex.price(trace, &world);

    let ckpt_spec = trace.checkpoint;
    let every = model.every_iters;
    let do_ckpt = model.enabled() && ckpt_spec.is_some();
    let write_us = ckpt_spec.map_or(0.0, |s| {
        model.write_us(s.bytes_per_rank, layout.ranks_per_node)
    });

    let mut checkpoints = 0u32;
    let mut checkpoint_s = 0.0f64;
    let mut rollback_iters = 0u64;
    let mut last_ckpt_iter = 0u32;

    ex.replay_priced_prologue(&priced, &mut world);

    let mut it = 0u32;
    while it < trace.iterations {
        ex.replay_priced_iteration(&priced, &mut world);
        it += 1;

        // Crash handling: shrink, pay the restart, replay the work lost
        // since the last checkpoint (or the whole run without one).
        if !world.poll_failed().is_empty() {
            world.shrink_failed();
            if world.alive_ranks() == 0 {
                break;
            }
            world.compute_uniform(model.restart_s * 1e6);
            let lost = it - last_ckpt_iter;
            rollback_iters += u64::from(lost);
            if obs::enabled() {
                obs::add("ckpt.rollback_iters", u64::from(lost));
                obs::instant(
                    "ckpt",
                    "ckpt.rollback",
                    world.elapsed_us(),
                    &[
                        ("lost_iters", obs::AttrValue::U64(u64::from(lost))),
                        (
                            "alive_ranks",
                            obs::AttrValue::U64(u64::from(world.alive_ranks())),
                        ),
                    ],
                );
            }
            for _ in 0..lost {
                ex.replay_priced_iteration(&priced, &mut world);
            }
        }

        if do_ckpt && it.is_multiple_of(every) && it < trace.iterations {
            let before = world.elapsed_us();
            world.barrier();
            world.compute_uniform(write_us);
            checkpoint_s += (world.elapsed_us() - before) / 1e6;
            checkpoints += 1;
            last_ckpt_iter = it;
            if obs::enabled() {
                obs::add("ckpt.writes", 1);
                obs::span(
                    "ckpt",
                    "ckpt.write",
                    before,
                    world.elapsed_us() - before,
                    &[(
                        "bytes_per_rank",
                        obs::AttrValue::U64(ckpt_spec.map_or(0, |s| s.bytes_per_rank)),
                    )],
                );
            }
        }
    }

    ResilientResult {
        runtime_s: world.elapsed_s(),
        checkpoints,
        checkpoint_s,
        recoveries: world.recoveries(),
        rollback_iters,
        ranks_lost: world.ranks() - world.alive_ranks(),
        msg_retries: world.network().faults().map_or(0, |f| f.retries()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a64fx_apps::hpcg;
    use archsim::{paper_toolchain, system, SystemId};
    use faultsim::{FaultConfig, FaultEvent};

    fn setup() -> (archsim::SystemSpec, archsim::Toolchain, Trace, JobLayout) {
        let spec = system(SystemId::A64fx);
        let tc = paper_toolchain(SystemId::A64fx, "hpcg").unwrap();
        let layout = JobLayout::mpi_full(2, &spec);
        let trace = hpcg::trace(
            hpcg::HpcgConfig {
                local: (16, 16, 16),
                mg_levels: 3,
                iterations: 20,
            },
            layout.ranks,
        );
        (spec, tc, trace, layout)
    }

    #[test]
    fn fault_free_resilient_run_matches_plain_run_bitwise() {
        let (spec, tc, trace, layout) = setup();
        let ex = Executor::new(&spec, &tc);
        let plain = ex.run(&trace, layout);
        let sched = FaultSchedule::none(SystemId::A64fx, layout.ranks, layout.nodes() as usize);
        let r = run_resilient(
            &ex,
            &trace,
            layout,
            &sched,
            RetryPolicy::default_policy(),
            &CheckpointModel::disabled(),
        );
        assert_eq!(
            r.runtime_s.to_bits(),
            plain.runtime_s.to_bits(),
            "fault-off resilient path must be bit-identical"
        );
        assert_eq!(r.checkpoints, 0);
        assert_eq!(r.recoveries, 0);
        assert_eq!(r.msg_retries, 0);
        assert_eq!(r.overhead_vs(plain.runtime_s), 0.0);
    }

    #[test]
    fn checkpointing_costs_time_but_no_recoveries() {
        let (spec, tc, trace, layout) = setup();
        let ex = Executor::new(&spec, &tc);
        let base = ex.run(&trace, layout).runtime_s;
        let sched = FaultSchedule::none(SystemId::A64fx, layout.ranks, layout.nodes() as usize);
        let model = CheckpointModel {
            every_iters: 5,
            io_gbs_per_node: 2.0,
            restart_s: 10.0,
        };
        let r = run_resilient(
            &ex,
            &trace,
            layout,
            &sched,
            RetryPolicy::default_policy(),
            &model,
        );
        // 20 iterations, checkpoint every 5, none after the final one: 3.
        assert_eq!(r.checkpoints, 3);
        assert!(r.runtime_s > base);
        assert!(r.checkpoint_s > 0.0);
        assert!(r.runtime_s >= base + r.checkpoint_s * 0.99);
        assert_eq!(r.recoveries, 0);
        assert_eq!(r.rollback_iters, 0);
    }

    #[test]
    fn crash_triggers_shrink_restart_and_rollback() {
        let (spec, tc, trace, layout) = setup();
        let ex = Executor::new(&spec, &tc);
        let base = ex.run(&trace, layout).runtime_s;
        // Crash node 1 early in the run.
        let mut sched = FaultSchedule::none(SystemId::A64fx, layout.ranks, layout.nodes() as usize);
        sched.events.push(FaultEvent::NodeCrash {
            node: 1,
            at_us: base * 1e6 * 0.25,
        });
        let model = CheckpointModel {
            every_iters: 4,
            io_gbs_per_node: 2.0,
            restart_s: 5.0,
        };
        let r = run_resilient(
            &ex,
            &trace,
            layout,
            &sched,
            RetryPolicy::default_policy(),
            &model,
        );
        assert_eq!(r.recoveries, 1);
        assert_eq!(r.ranks_lost, layout.ranks_per_node);
        assert!(r.rollback_iters >= 1 && r.rollback_iters <= 4);
        assert!(
            r.runtime_s > base + model.restart_s,
            "restart + rollback must show up in the runtime: {} vs {}",
            r.runtime_s,
            base
        );
    }

    #[test]
    fn checkpoints_bound_rollback_after_late_crash() {
        let (spec, tc, trace, layout) = setup();
        let ex = Executor::new(&spec, &tc);
        let base = ex.run(&trace, layout).runtime_s;
        let mut sched = FaultSchedule::none(SystemId::A64fx, layout.ranks, layout.nodes() as usize);
        sched.events.push(FaultEvent::NodeCrash {
            node: 1,
            at_us: base * 1e6 * 0.9,
        });
        let retry = RetryPolicy::default_policy();
        let model = CheckpointModel {
            every_iters: 2,
            io_gbs_per_node: 2.0,
            restart_s: 5.0,
        };
        let with_ckpt = run_resilient(&ex, &trace, layout, &sched, retry, &model);
        let without = run_resilient(
            &ex,
            &trace,
            layout,
            &sched,
            retry,
            &CheckpointModel::disabled(),
        );
        assert!(
            with_ckpt.rollback_iters < without.rollback_iters,
            "checkpoints must bound the replayed work: {} vs {}",
            with_ckpt.rollback_iters,
            without.rollback_iters
        );
    }

    #[test]
    fn resilient_run_records_checkpoint_and_rollback_events() {
        let (spec, tc, trace, layout) = setup();
        let ex = Executor::new(&spec, &tc);
        let base = ex.run(&trace, layout).runtime_s;
        let mut sched = FaultSchedule::none(SystemId::A64fx, layout.ranks, layout.nodes() as usize);
        sched.events.push(FaultEvent::NodeCrash {
            node: 1,
            at_us: base * 1e6 * 0.25,
        });
        let model = CheckpointModel {
            every_iters: 4,
            io_gbs_per_node: 2.0,
            restart_s: 5.0,
        };
        let rec = std::sync::Arc::new(obs::MemRecorder::new());
        let r = obs::with_recorder(rec.clone(), || {
            run_resilient(
                &ex,
                &trace,
                layout,
                &sched,
                RetryPolicy::default_policy(),
                &model,
            )
        });
        assert_eq!(rec.counter("ckpt.writes"), Some(u64::from(r.checkpoints)));
        assert_eq!(rec.counter("ckpt.rollback_iters"), Some(r.rollback_iters));
        let spans = rec.spans();
        let writes: Vec<_> = spans.iter().filter(|s| s.name == "ckpt.write").collect();
        assert_eq!(writes.len(), r.checkpoints as usize);
        assert!(writes.iter().all(|s| s.dur_us > 0.0));
        // The shrink recorded one fault.crash instant per lost rank plus
        // one ckpt.rollback marker.
        let instants = rec.instants();
        assert_eq!(
            instants.iter().filter(|i| i.name == "fault.crash").count(),
            r.ranks_lost as usize
        );
        assert_eq!(
            instants
                .iter()
                .filter(|i| i.name == "ckpt.rollback")
                .count(),
            r.recoveries as usize
        );
    }

    #[test]
    fn generated_early_access_schedule_runs_to_completion() {
        let (spec, tc, trace, layout) = setup();
        let ex = Executor::new(&spec, &tc);
        let base = ex.run(&trace, layout).runtime_s;
        let cfg = FaultConfig::early_access(0xA64F, base * 4.0, base * 2.0);
        let sched =
            FaultSchedule::generate(&cfg, SystemId::A64fx, layout.ranks, layout.nodes() as usize);
        // Checkpoint at the interval the app's trace suggests.
        let model = CheckpointModel {
            every_iters: trace.checkpoint.unwrap().suggested_interval_iters,
            io_gbs_per_node: 2.0,
            restart_s: 5.0,
        };
        let r = run_resilient(
            &ex,
            &trace,
            layout,
            &sched,
            RetryPolicy::default_policy(),
            &model,
        );
        // Note: a crashed node's work is *not* redistributed (the shrunk
        // job computes a degraded answer), so runtime after a shrink is not
        // guaranteed to exceed the fault-free baseline — only positivity
        // and determinism are invariant.
        assert!(r.runtime_s > 0.0);
        // Deterministic: same schedule, same result.
        let r2 = run_resilient(
            &ex,
            &trace,
            layout,
            &sched,
            RetryPolicy::default_policy(),
            &model,
        );
        assert_eq!(r.runtime_s.to_bits(), r2.runtime_s.to_bits());
        assert_eq!(r.msg_retries, r2.msg_retries);
    }
}
