//! Extension studies beyond the paper's tables.
//!
//! The paper's introduction and conclusions gesture at three analyses it
//! does not tabulate; this module builds them from the same models:
//!
//! * [`power_efficiency`] — performance per watt (the intro cites the
//!   A64FX's Green500 lead of 16.876 GFLOPS/W on HPL; we report the HPCG-
//!   and Nekbone-based equivalents for all five systems).
//! * [`roofline_table`] — each system's ridge point and per-kernel-class
//!   effective ceilings, the quantitative version of §VIII's discussion.
//! * [`profile_table`] — per-application compute-time breakdown by kernel
//!   class on each system, the simulator's answer to the Fujitsu profiler
//!   runs mentioned in the Figure 1 caption and §VII.C.

use a64fx_apps::{castep, cosa, hpcg, minikab, nekbone, opensbli, KernelClass};
use archsim::{paper_toolchain, system, SystemId};

use crate::calibration::Calibration;
use crate::costmodel::{Executor, JobLayout};
use crate::report::Table;
use crate::tracecache;

/// X1 — GFLOP/s per watt on single-node HPCG and Nekbone.
pub fn power_efficiency() -> Table {
    let mut t = Table::new(
        "X1",
        "Extension: single-node performance per watt",
        &[
            "System",
            "Node watts",
            "HPCG GF/s/W",
            "Nekbone GF/s/W",
            "Peak GF/s/W",
        ],
    );
    for sys in SystemId::all() {
        let spec = system(sys);
        let watts = spec.node_power_watts;
        let hpcg_gf = crate::experiments::hpcg::hpcg_gflops(sys, 1, false);
        let nek_gf = if paper_toolchain(sys, "nekbone").is_some() {
            let cores = spec.node.cores();
            crate::experiments::nekbone::nekbone_gflops_default(sys, 1, cores)
        } else {
            0.0
        };
        t.push_row(vec![
            sys.name().to_string(),
            format!("{watts:.0}"),
            format!("{:.3}", hpcg_gf / watts),
            if nek_gf > 0.0 {
                format!("{:.3}", nek_gf / watts)
            } else {
                "-".into()
            },
            format!("{:.2}", spec.node.peak_dp_gflops() / watts),
        ]);
    }
    t.note("The A64FX's efficiency lead (the paper's Green500 reference) holds on real kernels, not just HPL peak.");
    t
}

/// X2 — roofline summary: peak, sustained bandwidth, ridge intensity, and
/// the effective SpMV/SmallGemm/StencilFD ceilings after calibration.
pub fn roofline_table() -> Table {
    let mut t = Table::new(
        "X2",
        "Extension: rooflines and calibrated kernel ceilings (per node)",
        &[
            "System",
            "Peak GF/s",
            "Stream GB/s",
            "Ridge flop/B",
            "SpMV GF/s",
            "Nekbone-ax GF/s",
            "Stencil GF/s",
        ],
    );
    let calib = Calibration::default();
    for sys in SystemId::all() {
        let spec = system(sys);
        let peak = spec.node.peak_dp_gflops();
        let bw = spec.node.sustained_bw_gbs();
        // Effective ceilings: memory-bound classes shown at AI of the kernel.
        let spmv_ai = 0.16; // ~2 flops per 12.5 bytes
        let spmv = (peak * calib.flop_eff(sys, KernelClass::SpMV))
            .min(spmv_ai * bw * calib.mem_eff(sys, KernelClass::SpMV));
        let ax_ai = 0.97;
        let ax = (peak * calib.flop_eff(sys, KernelClass::SmallGemm))
            .min(ax_ai * bw * calib.mem_eff(sys, KernelClass::SmallGemm));
        let st_ai = 1500.0 / 720.0;
        let st = (peak * calib.flop_eff(sys, KernelClass::StencilFD))
            .min(st_ai * bw * calib.mem_eff(sys, KernelClass::StencilFD));
        t.push_row(vec![
            sys.name().to_string(),
            format!("{peak:.0}"),
            format!("{bw:.0}"),
            format!("{:.2}", peak / bw),
            format!("{spmv:.1}"),
            format!("{ax:.1}"),
            format!("{st:.1}"),
        ]);
    }
    t.note("Ridge = peak/bandwidth: kernels left of it are memory-bound. The A64FX's ridge (4.0) is far left of the x86 systems' (13-26).");
    t
}

/// X3 — per-application compute profile by kernel class on one system.
pub fn profile_table(sys: SystemId) -> Table {
    let spec = system(sys);
    let mut t = Table::new(
        "X3",
        &format!(
            "Extension: {} single-node compute profile by kernel class (% of rank-0 compute)",
            sys.name()
        ),
        &["App", "dominant class", "share", "2nd class", "share "],
    );
    let layout = JobLayout::mpi_full(1, &spec);
    let runs: Vec<(&str, Option<std::sync::Arc<a64fx_apps::Trace>>)> = vec![
        (
            "hpcg",
            Some(tracecache::hpcg(hpcg::HpcgConfig::paper(), layout.ranks)),
        ),
        (
            "minikab",
            paper_toolchain(sys, "minikab")
                .map(|_| tracecache::minikab(minikab::MinikabConfig::paper(), layout.ranks)),
        ),
        (
            "nekbone",
            paper_toolchain(sys, "nekbone")
                .map(|_| tracecache::nekbone(nekbone::NekboneConfig::paper(), layout.ranks)),
        ),
        (
            "cosa",
            Some(tracecache::cosa(cosa::CosaConfig::paper(), layout.ranks)),
        ),
        (
            "castep",
            Some(tracecache::castep(
                castep::CastepConfig::paper(),
                layout.ranks,
            )),
        ),
        (
            "opensbli",
            Some(tracecache::opensbli(
                opensbli::OpensbliConfig::paper(),
                layout.ranks,
            )),
        ),
    ];
    for (app, trace) in runs {
        let Some(trace) = trace else {
            t.push_row(vec![
                app.into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let tc = paper_toolchain(sys, app).unwrap_or_else(|| paper_toolchain(sys, "hpcg").unwrap());
        let r = Executor::new(&spec, &tc).run(&trace, layout);
        let mut cells = vec![app.to_string()];
        for i in 0..2 {
            if let Some((class, secs)) = r.class_profile_s.get(i) {
                let total: f64 = r.class_profile_s.iter().map(|(_, s)| s).sum();
                cells.push(class.name().to_string());
                cells.push(format!("{:.0}%", 100.0 * secs / total));
            } else {
                cells.push("-".into());
                cells.push("-".into());
            }
        }
        t.push_row(cells);
    }
    t.note("Matches the paper's analysis: HPCG lives in SymGS, Nekbone in its ax contractions, CASTEP in FFTs, OpenSBLI/COSA in stencil sweeps.");
    t
}

/// X4 — simulated STREAM-triad bandwidth versus active cores: the
/// saturation behaviour behind the paper's single-core results (Table V)
/// and the low-core-count ends of Figures 3 and 5.
pub fn stream_scaling() -> Table {
    use a64fx_apps::trace::{Phase, Trace, WorkDist};
    use densela::Work;

    let mut t = Table::new(
        "X4",
        "Extension: simulated STREAM triad GB/s by active cores (one rank per core)",
        &["Cores", "A64FX", "ARCHER", "Cirrus", "EPCC NGIO", "Fulhame"],
    );
    let n_elems: u64 = 8_000_000; // 64 MB arrays: out of every cache
    let triad_work = Work::new(2 * n_elems, 16 * n_elems, 8 * n_elems);
    for cores in [1u32, 2, 4, 8, 12, 16, 24, 32, 48, 64] {
        let mut row = vec![cores.to_string()];
        for sys in SystemId::all() {
            let spec = system(sys);
            if cores > spec.node.cores() {
                row.push("-".into());
                continue;
            }
            let tc = paper_toolchain(sys, "hpcg").unwrap();
            let layout = JobLayout {
                ranks: cores,
                ranks_per_node: cores,
                threads_per_rank: 1,
            };
            let trace = Trace {
                ranks: cores,
                prologue: Vec::new(),
                body: vec![Phase::Compute {
                    class: KernelClass::VectorOp,
                    work: WorkDist::Uniform(triad_work),
                    // 64 MB arrays stream from memory on every system.
                    ws_bytes: 24 * n_elems,
                }],
                iterations: 10,
                fom_flops: 0.0,
                checkpoint: None,
            };
            let r = Executor::new(&spec, &tc).run(&trace, layout);
            // Total bytes moved / time = aggregate triad bandwidth.
            let bytes = 10.0 * 24.0 * n_elems as f64 * f64::from(cores);
            row.push(format!("{:.0}", bytes / r.runtime_s / 1e9));
        }
        t.push_row(row);
    }
    t.note("Bandwidth saturates once enough cores are active (9 on an A64FX CMG, 18 on a ThunderX2 socket) — the mechanism behind Table V.");
    t
}

/// Run all extension studies (profiles on the A64FX).
pub fn run_all() -> Vec<Table> {
    vec![
        power_efficiency(),
        roofline_table(),
        profile_table(SystemId::A64fx),
        stream_scaling(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a64fx_most_power_efficient() {
        let t = power_efficiency();
        let eff = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[2]
                .parse()
                .unwrap()
        };
        let a = eff("A64FX");
        for sys in ["ARCHER", "Cirrus", "EPCC NGIO", "Fulhame"] {
            assert!(
                a > 2.0 * eff(sys),
                "A64FX must dominate {sys} on HPCG GF/s/W"
            );
        }
    }

    #[test]
    fn a64fx_has_lowest_ridge() {
        let t = roofline_table();
        let ridge = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[3]
                .parse()
                .unwrap()
        };
        let a = ridge("A64FX");
        for sys in ["ARCHER", "Cirrus", "EPCC NGIO", "Fulhame"] {
            assert!(a < ridge(sys), "{sys}");
        }
    }

    #[test]
    fn profiles_match_paper_analysis() {
        let t = profile_table(SystemId::A64fx);
        let dominant =
            |app: &str| -> String { t.rows.iter().find(|r| r[0] == app).unwrap()[1].clone() };
        assert_eq!(dominant("hpcg"), "SymGS");
        assert_eq!(dominant("nekbone"), "SmallGemm");
        assert_eq!(dominant("opensbli"), "StencilFD");
        assert_eq!(dominant("cosa"), "CfdFlux");
        assert_eq!(dominant("castep"), "FFT");
        assert_eq!(dominant("minikab"), "SpMV");
    }

    #[test]
    fn stream_saturates_with_cores() {
        let t = stream_scaling();
        let col = |cores: &str, idx: usize| -> f64 {
            t.rows.iter().find(|r| r[0] == cores).unwrap()[idx]
                .parse()
                .unwrap()
        };
        // A64FX column: 1 core far below node bandwidth; 48 cores near it.
        let one = col("1", 1);
        let full = col("48", 1);
        assert!(one < 40.0, "single A64FX core: {one} GB/s");
        assert!(full > 500.0, "full A64FX node: {full} GB/s");
        // Fulhame's weak single core (the Table V mechanism).
        let tx2_one = col("1", 5);
        assert!(tx2_one < 12.0, "single ThunderX2 core: {tx2_one} GB/s");
    }

    #[test]
    fn profile_shares_sum_sensibly() {
        let t = profile_table(SystemId::Ngio);
        for row in &t.rows {
            if row[2] != "-" {
                let share: f64 = row[2].trim_end_matches('%').parse().unwrap();
                assert!(share > 30.0 && share <= 100.0, "{row:?}");
            }
        }
    }
}
