//! # a64fx-core — the evaluation framework
//!
//! This crate is the reproduction's "primary contribution" layer: it takes
//! the application work models from `a64fx-apps`, prices them on the machine
//! models from `archsim` via a calibrated per-kernel-class roofline, replays
//! their communication on `simmpi`/`netsim`, and regenerates **every table
//! and figure** of *Investigating Applications on the A64FX* (Jackson et
//! al., IEEE CLUSTER 2020).
//!
//! Structure:
//!
//! * [`costmodel`] — the executor: replays an application [`a64fx_apps::Trace`]
//!   on a simulated system, phase by phase.
//! * [`calibration`] — the per-(system, kernel-class) efficiency tables and
//!   the modelling constants, each documented with its provenance.
//! * [`experiments`] — one module per paper artefact (Tables I–X, Figures
//!   1–5), each returning a [`report::Table`] with paper-vs-simulated values.
//! * [`ablations`] — design-choice sweeps (bandwidth, topology, placement,
//!   decomposition granularity, fast-math).
//! * [`extensions`] — studies beyond the paper's tables: power efficiency,
//!   roofline summaries, per-app kernel profiles.
//! * [`autotune`] — layout search: rediscovers the paper's hand-tuned
//!   process/thread configurations automatically.
//! * [`resilience`] — the fault-aware executor: replays a trace under a
//!   `faultsim` schedule with checkpoint/restart and shrink-and-recover.
//! * [`runner`] — parallel regeneration of all experiments on a bounded
//!   worker team (at most `available_parallelism` threads), each isolated
//!   behind `catch_unwind` and a wall-clock deadline.
//! * [`campaign`] — crash-safe batch supervision: a checksummed
//!   write-ahead journal, `--resume` replay, and deterministic retry.
//! * [`chaos`] — the seeded fault-injection self-test behind
//!   `repro --chaos` (panics, hangs, torn journals, corrupt disk cache).
//! * [`tracecache`] / [`tracedisk`] — the bounded in-memory LRU trace
//!   cache and its optional checksummed on-disk tier.
//! * [`timeline`] — per-iteration phase timelines (the profiler view).
//! * [`report`] — plain-text table rendering and paper-comparison summaries.
//! * [`paper`] — the paper's published numbers, transcribed for comparison.
//!
//! The `repro` binary drives everything: `repro --exp t3`, `repro --all`.

#![warn(missing_docs)]

pub mod ablations;
pub mod autotune;
pub mod calibration;
pub mod campaign;
pub mod chaos;
pub mod costmodel;
pub mod experiments;
pub mod extensions;
pub mod paper;
pub mod report;
pub mod resilience;
pub mod runner;
pub mod timeline;
pub mod tracecache;
pub mod tracedisk;

pub use calibration::Calibration;
pub use costmodel::{ExecutionResult, Executor, JobLayout};
pub use report::Table;
