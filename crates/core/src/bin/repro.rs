//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --all            # every experiment, in paper order (isolated: a
//!                        #   panicking/hung experiment prints a FAILED row
//!                        #   and repro exits nonzero after the rest finish)
//! repro --exp t3         # one experiment (t1, t3, t4, t5, f1, f2, t6,
//!                        #   f3, t7, t8, f4, f5, t9, t10, r1, d1)
//! repro --exp-json r1    # one experiment as JSON (CI reproducibility diffs)
//! repro --markdown       # --all, rendered as markdown (EXPERIMENTS.md body)
//! repro --list           # list experiment ids
//! repro --ablations      # design-choice ablation sweeps
//! repro --extensions     # power/roofline/profile extension studies
//! repro --timeline hpcg a64fx   # one iteration, phase by phase
//! repro --autotune 2            # layout search per system
//! ```
//!
//! `--threads N` (anywhere on the command line) bounds the experiment
//! runner's worker team; the `A64FX_REPRO_THREADS` environment variable is
//! the fallback (invalid values warn and are ignored), and the default is
//! `available_parallelism`.
//!
//! `--des-backend serial|sharded<N>` (anywhere on the command line)
//! selects the discrete-event engine for DES-routed experiments (e.g.
//! D1); the `A64FX_DES_BACKEND` environment variable is the fallback
//! (invalid values warn and are ignored), and the default is `serial`.
//! Serial and sharded runs are byte-identical — the sharded engine only
//! changes wall-clock time at scale.
//!
//! `--pricing flat|ecm` (anywhere on the command line) selects the
//! kernel-pricing backend for compute phases; the `A64FX_PRICING`
//! environment variable is the fallback (invalid values warn and are
//! ignored), and the default is `flat` — byte-identical to every pre-ECM
//! release. `ecm` routes the memory side of each kernel through the
//! cache-hierarchy ECM model (`archsim::ecm`).
//!
//! `--no-cache` (anywhere on the command line) disables the process-wide
//! trace cache (`a64fx_core::tracecache`); `A64FX_TRACE_CACHE=off` is the
//! environment equivalent. Reports are byte-identical either way — the
//! cache only skips rebuilding identical app traces.
//!
//! `--trace-out <file>` and `--metrics-out <file>` (anywhere on the
//! command line) record the run with an [`obs::MemRecorder`] and write a
//! Chrome Trace Event JSON (load it in `chrome://tracing` or Perfetto)
//! and a deterministic metrics snapshot respectively. They apply to the
//! single-run modes `--exp`, `--exp-json` and `--timeline`; both files
//! are byte-identical across repeated runs of the same command.

use std::sync::Arc;

use a64fx_apps::{castep, cosa, hpcg, minikab, nekbone, opensbli};
use a64fx_core::costmodel::JobLayout;
use a64fx_core::{ablations, autotune, experiments, extensions, runner, timeline, tracecache};
use archsim::{paper_toolchain, system, SystemId};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--threads <n>] [--des-backend serial|sharded<n>] [--pricing flat|ecm] [--no-cache] [--trace-out <file>] [--metrics-out <file>] [--all | --exp <id> | --exp-json <id> | --markdown | --list | --ablations | --extensions | --timeline <app> <system> | --autotune <nodes>]"
    );
    std::process::exit(2);
}

/// Strip `<flag> <path>` out of `args` (wherever it appears), returning
/// the path if the flag was given.
fn take_out_path(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    let Some(path) = args.get(i + 1).cloned() else {
        eprintln!("{flag} needs a file path");
        std::process::exit(2);
    };
    args.drain(i..=i + 1);
    Some(path)
}

/// Recording sink behind `--trace-out` / `--metrics-out`: one in-memory
/// recorder for the run, flushed to the requested files at the end.
struct ObsSink {
    rec: Arc<obs::MemRecorder>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

impl ObsSink {
    /// Strip both output flags from `args`; `Some` if either was given.
    fn take(args: &mut Vec<String>) -> Option<Self> {
        let trace_out = take_out_path(args, "--trace-out");
        let metrics_out = take_out_path(args, "--metrics-out");
        if trace_out.is_none() && metrics_out.is_none() {
            return None;
        }
        Some(Self {
            rec: Arc::new(obs::MemRecorder::new()),
            trace_out,
            metrics_out,
        })
    }

    fn recorder(&self) -> Arc<obs::MemRecorder> {
        self.rec.clone()
    }

    /// Write the requested output files; `meta` is embedded in the
    /// metrics snapshot so a reader knows what produced it.
    fn flush(&self, meta: &[(&str, String)]) {
        if let Some(path) = &self.trace_out {
            if let Err(why) = std::fs::write(path, self.rec.chrome_trace_json()) {
                eprintln!("--trace-out {path}: {why}");
                std::process::exit(1);
            }
            // Flamegraph-style rollup on stderr: instant feedback without
            // opening the trace in Perfetto (stdout stays diffable JSON).
            eprintln!("{}", self.rec.rollup());
        }
        if let Some(path) = &self.metrics_out {
            if let Err(why) = std::fs::write(path, self.rec.metrics_json(meta)) {
                eprintln!("--metrics-out {path}: {why}");
                std::process::exit(1);
            }
        }
    }
}

/// Strip `--no-cache` out of `args` (wherever it appears); when given,
/// pin the process-wide trace cache off, so every fetch rebuilds its
/// trace — the byte-identity escape hatch.
fn take_no_cache(args: &mut Vec<String>) {
    if let Some(i) = args.iter().position(|a| a == "--no-cache") {
        args.remove(i);
        a64fx_core::tracecache::set_enabled(false);
    }
}

/// Strip `--threads N` out of `args` (wherever it appears) and resolve the
/// worker count: flag, then `A64FX_REPRO_THREADS`, then
/// `available_parallelism`.
fn take_threads(args: &mut Vec<String>) -> usize {
    let mut threads = None;
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let v = match args.get(i + 1) {
            Some(raw) => match runner::parse_threads(raw) {
                Ok(v) => v,
                Err(why) => {
                    eprintln!("--threads: {why}");
                    std::process::exit(2);
                }
            },
            None => {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            }
        };
        threads = Some(v);
        args.drain(i..=i + 1);
    }
    runner::resolve_threads(threads)
}

/// Strip `--des-backend <value>` out of `args` (wherever it appears) and
/// resolve the discrete-event engine: flag, then `A64FX_DES_BACKEND`, then
/// serial. The resolved backend is installed process-wide so every
/// DES-routed experiment (e.g. D1) picks it up; serial and sharded runs
/// are byte-identical by construction.
fn take_des_backend(args: &mut Vec<String>) -> netsim::DesBackend {
    let mut explicit = None;
    if let Some(i) = args.iter().position(|a| a == "--des-backend") {
        let v = match args.get(i + 1) {
            Some(raw) => match netsim::DesBackend::parse(raw) {
                Ok(v) => v,
                Err(why) => {
                    eprintln!("--des-backend: {why}");
                    std::process::exit(2);
                }
            },
            None => {
                eprintln!("--des-backend needs 'serial' or 'sharded<N>'");
                std::process::exit(2);
            }
        };
        explicit = Some(v);
        args.drain(i..=i + 1);
    }
    runner::resolve_des_backend(explicit)
}

/// Strip `--pricing <value>` out of `args` (wherever it appears) and
/// resolve the kernel-pricing backend: flag, then `A64FX_PRICING`, then
/// the flat roofline. The resolved backend is installed process-wide so
/// every executor built without an explicit backend picks it up; the
/// flat default is byte-identical to every pre-ECM release.
fn take_pricing(args: &mut Vec<String>) -> a64fx_core::costmodel::PricingBackend {
    let mut explicit = None;
    if let Some(i) = args.iter().position(|a| a == "--pricing") {
        let v = match args.get(i + 1) {
            Some(raw) => match a64fx_core::costmodel::PricingBackend::parse(raw) {
                Ok(v) => v,
                Err(why) => {
                    eprintln!("--pricing: {why}");
                    std::process::exit(2);
                }
            },
            None => {
                eprintln!("--pricing needs 'flat' or 'ecm'");
                std::process::exit(2);
            }
        };
        explicit = Some(v);
        args.drain(i..=i + 1);
    }
    runner::resolve_pricing(explicit)
}

/// Run one experiment under the hardened runner with the sink's recorder
/// installed on the worker thread, then flush the sink's output files.
fn run_observed(id: &str, sink: &ObsSink) -> runner::ExperimentOutcome {
    let id = id.to_ascii_lowercase();
    if !experiments::all_ids().contains(&id.as_str()) {
        eprintln!("unknown experiment '{id}'; try --list");
        std::process::exit(1);
    }
    let body_id = id.clone();
    let outcome =
        runner::run_isolated_observed(&id, runner::DEFAULT_DEADLINE, sink.recorder(), move || {
            experiments::run_one(&body_id).expect("id validated above")
        });
    sink.flush(&[("experiment", id)]);
    outcome
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    take_no_cache(&mut args);
    let threads = take_threads(&mut args);
    netsim::shard::set_default_backend(take_des_backend(&mut args));
    a64fx_core::costmodel::set_default_pricing(take_pricing(&mut args));
    let sink = ObsSink::take(&mut args);
    if sink.is_some()
        && !matches!(
            args.first().map(String::as_str),
            Some("--exp" | "--exp-json" | "--timeline")
        )
    {
        eprintln!("--trace-out/--metrics-out apply to --exp, --exp-json and --timeline");
        std::process::exit(2);
    }
    match args.first().map(String::as_str) {
        Some("--all") | None => {
            let outcomes = runner::run_all_isolated(threads, runner::DEFAULT_DEADLINE);
            let failed = outcomes.iter().filter(|o| o.failed()).count();
            for o in &outcomes {
                println!("{}", o.render());
            }
            if failed > 0 {
                eprintln!("{failed} experiment(s) FAILED");
                std::process::exit(1);
            }
        }
        Some("--markdown") => {
            for t in experiments::run_all() {
                println!("{}", t.render_markdown());
            }
        }
        Some("--exp") => {
            let id = args.get(1).unwrap_or_else(|| usage());
            match &sink {
                Some(s) => {
                    let o = run_observed(id, s);
                    println!("{}", o.render());
                    if o.failed() {
                        std::process::exit(1);
                    }
                }
                None => match experiments::run_one(id) {
                    Some(t) => println!("{}", t.render()),
                    None => {
                        eprintln!("unknown experiment '{id}'; try --list");
                        std::process::exit(1);
                    }
                },
            }
        }
        Some("--exp-json") => {
            let id = args.get(1).unwrap_or_else(|| usage());
            match &sink {
                Some(s) => {
                    let o = run_observed(id, s);
                    match &o.result {
                        Ok(t) => println!("{}", t.to_json(&[])),
                        Err(_) => {
                            eprint!("{}", o.render());
                            std::process::exit(1);
                        }
                    }
                }
                None => match experiments::run_one(id) {
                    Some(t) => println!("{}", t.to_json(&[])),
                    None => {
                        eprintln!("unknown experiment '{id}'; try --list");
                        std::process::exit(1);
                    }
                },
            }
        }
        Some("--ablations") => {
            for t in ablations::run_all() {
                println!("{}", t.render());
            }
        }
        Some("--extensions") => {
            for t in extensions::run_all() {
                println!("{}", t.render());
            }
        }
        Some("--autotune") => {
            // repro --autotune [nodes]
            let nodes: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
            for sys in [SystemId::A64fx, SystemId::Ngio, SystemId::Fulhame] {
                let ranking = autotune::tune_minikab(sys, nodes);
                if !ranking.is_empty() {
                    println!(
                        "{}",
                        autotune::tune_table("minikab", sys, nodes, &ranking).render()
                    );
                }
            }
        }
        Some("--timeline") => {
            // repro --timeline <app> <system>
            let app = args.get(1).map(String::as_str).unwrap_or("hpcg");
            let sys_name = args.get(2).map(String::as_str).unwrap_or("a64fx");
            let sys = match sys_name.to_ascii_lowercase().as_str() {
                "a64fx" => SystemId::A64fx,
                "archer" => SystemId::Archer,
                "cirrus" => SystemId::Cirrus,
                "ngio" => SystemId::Ngio,
                "fulhame" => SystemId::Fulhame,
                other => {
                    eprintln!("unknown system '{other}'");
                    std::process::exit(1);
                }
            };
            let spec = system(sys);
            let layout = JobLayout::mpi_full(1, &spec);
            let trace = match app {
                "hpcg" => tracecache::hpcg(hpcg::HpcgConfig::paper(), layout.ranks),
                "minikab" => tracecache::minikab(minikab::MinikabConfig::paper(), layout.ranks),
                "nekbone" => tracecache::nekbone(nekbone::NekboneConfig::paper(), layout.ranks),
                "cosa" => tracecache::cosa(cosa::CosaConfig::paper(), layout.ranks),
                "castep" => tracecache::castep(castep::CastepConfig::paper(), layout.ranks),
                "opensbli" => tracecache::opensbli(opensbli::OpensbliConfig::paper(), layout.ranks),
                other => {
                    eprintln!("unknown app '{other}'");
                    std::process::exit(1);
                }
            };
            let Some(tc) = paper_toolchain(sys, app) else {
                eprintln!("the paper did not run {app} on {sys_name}");
                std::process::exit(1);
            };
            let entries = match &sink {
                Some(s) => {
                    let entries = obs::with_recorder(s.recorder(), || {
                        timeline::iteration_timeline(&spec, &tc, &trace, layout)
                    });
                    s.flush(&[
                        ("app", app.to_string()),
                        ("system", sys_name.to_ascii_lowercase()),
                    ]);
                    entries
                }
                None => timeline::iteration_timeline(&spec, &tc, &trace, layout),
            };
            let title = format!(
                "{app} on one {} node: one iteration, phase by phase",
                spec.name
            );
            println!("{}", timeline::timeline_table(&title, &entries).render());
        }
        Some("--list") => {
            for id in experiments::all_ids() {
                println!("{id}");
            }
        }
        _ => usage(),
    }
}
