//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --all            # every experiment, in paper order (isolated: a
//!                        #   panicking/hung experiment prints a FAILED row
//!                        #   and repro exits nonzero after the rest finish)
//! repro --exp t3         # one experiment (t1, t3, t4, t5, f1, f2, t6,
//!                        #   f3, t7, t8, f4, f5, t9, t10, r1, d1)
//! repro --exp-json r1    # one experiment as JSON (CI reproducibility diffs)
//! repro --markdown       # --all, rendered as markdown (EXPERIMENTS.md body)
//! repro --list           # list experiment ids
//! repro --ablations      # design-choice ablation sweeps
//! repro --extensions     # power/roofline/profile extension studies
//! repro --timeline hpcg a64fx   # one iteration, phase by phase
//! repro --autotune 2            # layout search per system
//! repro --chaos 42              # seeded campaign chaos self-test
//! ```
//!
//! Campaign flags (for `--all`):
//!
//! * `--journal <path>` appends every completed experiment to a
//!   checksummed write-ahead journal (one fsynced JSONL record each); a
//!   `SIGKILL` at any byte leaves a valid prefix.
//! * `--resume` replays the journal's durable records and runs only the
//!   rest — output is byte-identical to an uninterrupted run.
//! * `--retries <n>` re-runs failed experiments up to n extra times
//!   (`--retry-backoff-ms <ms>` paces the attempts; results are
//!   backoff-invariant).
//! * `--exp-json-out <path>` writes every table's JSON as one merged
//!   deterministic document (what CI byte-diffs across kill/resume).
//! * `--kill-after <n>` stops the campaign after n durable journal
//!   records and exits 9 — the crash-injection hook CI uses to prove
//!   resume correctness (each record is fsynced before it counts, so
//!   this is equivalent to a SIGKILL landing after the nth append).
//!
//! `--threads N` (anywhere on the command line) bounds the experiment
//! runner's worker team; the `A64FX_REPRO_THREADS` environment variable is
//! the fallback (invalid values warn and are ignored), and the default is
//! `available_parallelism`.
//!
//! `--des-backend serial|sharded<N>` (anywhere on the command line)
//! selects the discrete-event engine for DES-routed experiments (e.g.
//! D1); the `A64FX_DES_BACKEND` environment variable is the fallback
//! (invalid values warn and are ignored), and the default is `serial`.
//! Serial and sharded runs are byte-identical — the sharded engine only
//! changes wall-clock time at scale.
//!
//! `--pricing flat|ecm` (anywhere on the command line) selects the
//! kernel-pricing backend for compute phases; the `A64FX_PRICING`
//! environment variable is the fallback (invalid values warn and are
//! ignored), and the default is `flat` — byte-identical to every pre-ECM
//! release. `ecm` routes the memory side of each kernel through the
//! cache-hierarchy ECM model (`archsim::ecm`).
//!
//! `--no-cache` (anywhere on the command line) disables the process-wide
//! trace cache (`a64fx_core::tracecache`); `A64FX_TRACE_CACHE=off` is the
//! environment equivalent. Reports are byte-identical either way — the
//! cache only skips rebuilding identical app traces.
//!
//! `--trace-out <file>`, `--metrics-out <file>` and `--attrib-out <file>`
//! (anywhere on the command line) record the run with an
//! [`obs::MemRecorder`] and write a Chrome Trace Event JSON (load it in
//! `chrome://tracing` or Perfetto), a deterministic metrics snapshot
//! (with histogram percentiles), and a critical-path attribution document
//! (see `obs::analyze`) respectively. They apply to the single-run modes
//! `--exp`, `--exp-json` and `--timeline`; all files are byte-identical
//! across repeated runs of the same command.
//!
//! `--deadline-secs <n>` (anywhere on the command line) sets the
//! per-experiment wall-clock deadline; the `A64FX_DEADLINE_SECS`
//! environment variable is the fallback (invalid values warn and are
//! ignored), and the default is 600 seconds.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use a64fx_apps::{castep, cosa, hpcg, minikab, nekbone, opensbli};
use a64fx_core::campaign::{self, CampaignConfig, CampaignEnd, RetryPolicy};
use a64fx_core::costmodel::JobLayout;
use a64fx_core::{
    ablations, autotune, chaos, experiments, extensions, runner, timeline, tracecache,
};
use archsim::{paper_toolchain, system, SystemId};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--threads <n>] [--des-backend serial|sharded<n>] [--pricing flat|ecm] [--no-cache] [--deadline-secs <n>] [--trace-out <file>] [--metrics-out <file>] [--attrib-out <file>] [--journal <path>] [--resume] [--retries <n>] [--retry-backoff-ms <ms>] [--exp-json-out <path>] [--kill-after <n>] [--all | --exp <id> | --exp-json <id> | --markdown | --list | --ablations | --extensions | --timeline <app> <system> | --autotune <nodes> | --chaos <seed>]"
    );
    std::process::exit(2);
}

/// Strip `<flag> <path>` out of `args` (wherever it appears), returning
/// the path if the flag was given.
fn take_out_path(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    let Some(path) = args.get(i + 1).cloned() else {
        eprintln!("{flag} needs a file path");
        std::process::exit(2);
    };
    args.drain(i..=i + 1);
    Some(path)
}

/// Recording sink behind `--trace-out` / `--metrics-out` /
/// `--attrib-out`: one in-memory recorder for the run, flushed to the
/// requested files at the end.
struct ObsSink {
    rec: Arc<obs::MemRecorder>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    attrib_out: Option<String>,
}

impl ObsSink {
    /// Strip the output flags from `args`; `Some` if any was given.
    fn take(args: &mut Vec<String>) -> Option<Self> {
        let trace_out = take_out_path(args, "--trace-out");
        let metrics_out = take_out_path(args, "--metrics-out");
        let attrib_out = take_out_path(args, "--attrib-out");
        if trace_out.is_none() && metrics_out.is_none() && attrib_out.is_none() {
            return None;
        }
        Some(Self {
            rec: Arc::new(obs::MemRecorder::new()),
            trace_out,
            metrics_out,
            attrib_out,
        })
    }

    fn recorder(&self) -> Arc<obs::MemRecorder> {
        self.rec.clone()
    }

    /// Write the requested output files; `meta` is embedded in the
    /// metrics snapshot so a reader knows what produced it.
    fn flush(&self, meta: &[(&str, String)]) {
        if let Some(path) = &self.trace_out {
            if let Err(why) = std::fs::write(path, self.rec.chrome_trace_json()) {
                eprintln!("--trace-out {path}: {why}");
                std::process::exit(1);
            }
            // Flamegraph-style rollup on stderr: instant feedback without
            // opening the trace in Perfetto (stdout stays diffable JSON).
            eprintln!("{}", self.rec.rollup());
        }
        if let Some(path) = &self.metrics_out {
            if let Err(why) = std::fs::write(path, self.rec.metrics_json_ext(meta)) {
                eprintln!("--metrics-out {path}: {why}");
                std::process::exit(1);
            }
        }
        if let Some(path) = &self.attrib_out {
            if let Err(why) = std::fs::write(path, self.rec.analyze().to_json(meta)) {
                eprintln!("--attrib-out {path}: {why}");
                std::process::exit(1);
            }
        }
    }
}

/// Strip `--no-cache` out of `args` (wherever it appears); when given,
/// pin the process-wide trace cache off, so every fetch rebuilds its
/// trace — the byte-identity escape hatch.
fn take_no_cache(args: &mut Vec<String>) {
    if let Some(i) = args.iter().position(|a| a == "--no-cache") {
        args.remove(i);
        a64fx_core::tracecache::set_enabled(false);
    }
}

/// Strip `--threads N` out of `args` (wherever it appears) and resolve the
/// worker count: flag, then `A64FX_REPRO_THREADS`, then
/// `available_parallelism`.
fn take_threads(args: &mut Vec<String>) -> usize {
    let mut threads = None;
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let v = match args.get(i + 1) {
            Some(raw) => match runner::parse_threads(raw) {
                Ok(v) => v,
                Err(why) => {
                    eprintln!("--threads: {why}");
                    std::process::exit(2);
                }
            },
            None => {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            }
        };
        threads = Some(v);
        args.drain(i..=i + 1);
    }
    runner::resolve_threads(threads)
}

/// Strip `--des-backend <value>` out of `args` (wherever it appears) and
/// resolve the discrete-event engine: flag, then `A64FX_DES_BACKEND`, then
/// serial. The resolved backend is installed process-wide so every
/// DES-routed experiment (e.g. D1) picks it up; serial and sharded runs
/// are byte-identical by construction.
fn take_des_backend(args: &mut Vec<String>) -> netsim::DesBackend {
    let mut explicit = None;
    if let Some(i) = args.iter().position(|a| a == "--des-backend") {
        let v = match args.get(i + 1) {
            Some(raw) => match netsim::DesBackend::parse(raw) {
                Ok(v) => v,
                Err(why) => {
                    eprintln!("--des-backend: {why}");
                    std::process::exit(2);
                }
            },
            None => {
                eprintln!("--des-backend needs 'serial' or 'sharded<N>'");
                std::process::exit(2);
            }
        };
        explicit = Some(v);
        args.drain(i..=i + 1);
    }
    runner::resolve_des_backend(explicit)
}

/// Strip `--pricing <value>` out of `args` (wherever it appears) and
/// resolve the kernel-pricing backend: flag, then `A64FX_PRICING`, then
/// the flat roofline. The resolved backend is installed process-wide so
/// every executor built without an explicit backend picks it up; the
/// flat default is byte-identical to every pre-ECM release.
fn take_pricing(args: &mut Vec<String>) -> a64fx_core::costmodel::PricingBackend {
    let mut explicit = None;
    if let Some(i) = args.iter().position(|a| a == "--pricing") {
        let v = match args.get(i + 1) {
            Some(raw) => match a64fx_core::costmodel::PricingBackend::parse(raw) {
                Ok(v) => v,
                Err(why) => {
                    eprintln!("--pricing: {why}");
                    std::process::exit(2);
                }
            },
            None => {
                eprintln!("--pricing needs 'flat' or 'ecm'");
                std::process::exit(2);
            }
        };
        explicit = Some(v);
        args.drain(i..=i + 1);
    }
    runner::resolve_pricing(explicit)
}

/// Strip a bare `flag` out of `args` (wherever it appears); whether it
/// was given.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Strip `<flag> <n>` out of `args` (wherever it appears), returning the
/// parsed non-negative integer if the flag was given.
fn take_u64(args: &mut Vec<String>, flag: &str) -> Option<u64> {
    let i = args.iter().position(|a| a == flag)?;
    let v = match args.get(i + 1).map(|raw| raw.parse::<u64>()) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("{flag} needs a non-negative integer");
            std::process::exit(2);
        }
    };
    args.drain(i..=i + 1);
    Some(v)
}

/// Strip `--deadline-secs <n>` out of `args` (wherever it appears) and
/// resolve the per-experiment deadline: flag, then `A64FX_DEADLINE_SECS`
/// (invalid values warn and are ignored), then the 600s default.
fn take_deadline(args: &mut Vec<String>) -> Duration {
    let mut explicit = None;
    if let Some(i) = args.iter().position(|a| a == "--deadline-secs") {
        let v = match args.get(i + 1) {
            Some(raw) => match runner::parse_deadline_secs(raw) {
                Ok(v) => v,
                Err(why) => {
                    eprintln!("--deadline-secs: {why}");
                    std::process::exit(2);
                }
            },
            None => {
                eprintln!("--deadline-secs needs a positive integer of seconds");
                std::process::exit(2);
            }
        };
        explicit = Some(Duration::from_secs(v));
        args.drain(i..=i + 1);
    }
    runner::resolve_deadline(explicit)
}

/// Campaign flags for `--all`: journal path, resume, retry policy, the
/// merged-JSON output path, and the crash-injection hook.
struct CampaignFlags {
    journal: Option<PathBuf>,
    resume: bool,
    retry: RetryPolicy,
    exp_json_out: Option<PathBuf>,
    kill_after: Option<u64>,
}

impl CampaignFlags {
    fn take(args: &mut Vec<String>) -> Self {
        let journal = take_out_path(args, "--journal").map(PathBuf::from);
        let resume = take_flag(args, "--resume");
        let retries = take_u64(args, "--retries").unwrap_or(0);
        let backoff_ms = take_u64(args, "--retry-backoff-ms").unwrap_or(0);
        let exp_json_out = take_out_path(args, "--exp-json-out").map(PathBuf::from);
        let kill_after = take_u64(args, "--kill-after");
        if resume && journal.is_none() {
            eprintln!("--resume needs --journal <path>");
            std::process::exit(2);
        }
        if kill_after == Some(0) {
            eprintln!("--kill-after needs at least 1 record");
            std::process::exit(2);
        }
        if kill_after.is_some() && journal.is_none() {
            eprintln!("--kill-after needs --journal <path>");
            std::process::exit(2);
        }
        CampaignFlags {
            journal,
            resume,
            retry: RetryPolicy::with_retries(
                u32::try_from(retries).unwrap_or(u32::MAX),
                Duration::from_millis(backoff_ms),
            ),
            exp_json_out,
            kill_after,
        }
    }

    fn given(&self) -> bool {
        self.journal.is_some()
            || self.resume
            || self.retry.max_attempts > 1
            || self.exp_json_out.is_some()
            || self.kill_after.is_some()
    }
}

/// Run one experiment under the hardened runner with the sink's recorder
/// installed on the worker thread, then flush the sink's output files.
fn run_observed(id: &str, deadline: Duration, sink: &ObsSink) -> runner::ExperimentOutcome {
    let id = id.to_ascii_lowercase();
    if !experiments::all_ids().contains(&id.as_str()) {
        eprintln!("unknown experiment '{id}'; try --list");
        std::process::exit(1);
    }
    let body_id = id.clone();
    let outcome = runner::run_isolated_observed(&id, deadline, sink.recorder(), move || {
        experiments::run_one(&body_id).expect("id validated above")
    });
    sink.flush(&[("experiment", id)]);
    outcome
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    take_no_cache(&mut args);
    let threads = take_threads(&mut args);
    let deadline = take_deadline(&mut args);
    netsim::shard::set_default_backend(take_des_backend(&mut args));
    a64fx_core::costmodel::set_default_pricing(take_pricing(&mut args));
    let sink = ObsSink::take(&mut args);
    let cflags = CampaignFlags::take(&mut args);
    if sink.is_some()
        && !matches!(
            args.first().map(String::as_str),
            Some("--exp" | "--exp-json" | "--timeline")
        )
    {
        eprintln!(
            "--trace-out/--metrics-out/--attrib-out apply to --exp, --exp-json and --timeline"
        );
        std::process::exit(2);
    }
    if cflags.given() && !matches!(args.first().map(String::as_str), Some("--all") | None) {
        eprintln!("--journal/--resume/--retries/--exp-json-out/--kill-after apply to --all");
        std::process::exit(2);
    }
    match args.first().map(String::as_str) {
        Some("--all") | None => {
            let cfg = CampaignConfig {
                workers: threads,
                deadline,
                retry: cflags.retry,
                stop_after_records: cflags.kill_after,
            };
            let result =
                match campaign::run_campaign(&cfg, cflags.journal.as_deref(), cflags.resume) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("campaign journal error: {e}");
                        std::process::exit(1);
                    }
                };
            for w in &result.warnings {
                eprintln!("warning: {w}");
            }
            if result.end == CampaignEnd::Killed {
                // The crash-injection hook: every journal record is
                // already fsynced, so exiting here is indistinguishable
                // from a SIGKILL landing after the last append.
                eprintln!(
                    "killed after {} durable record(s) (--kill-after)",
                    result.outcomes.len()
                );
                std::process::exit(9);
            }
            for o in &result.outcomes {
                println!("{}", o.render);
            }
            if let Some(path) = &cflags.exp_json_out {
                let merged = campaign::merged_json(&result.outcomes);
                if let Err(e) = std::fs::write(path, merged) {
                    eprintln!("--exp-json-out {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
            let failed = result.failed();
            if failed > 0 {
                eprintln!("{failed} experiment(s) FAILED");
                std::process::exit(1);
            }
        }
        Some("--chaos") => {
            let seed: u64 = match args.get(1).map(|s| s.parse()) {
                Some(Ok(s)) => s,
                _ => {
                    eprintln!("--chaos needs a numeric seed");
                    std::process::exit(2);
                }
            };
            let (table, failures) = chaos::run_chaos(seed);
            println!("{}", table.render());
            if !failures.is_empty() {
                for f in &failures {
                    eprintln!("chaos FAILED: {f}");
                }
                std::process::exit(1);
            }
        }
        Some("--markdown") => {
            for t in experiments::run_all() {
                println!("{}", t.render_markdown());
            }
        }
        Some("--exp") => {
            let id = args.get(1).unwrap_or_else(|| usage());
            match &sink {
                Some(s) => {
                    let o = run_observed(id, deadline, s);
                    println!("{}", o.render());
                    if o.failed() {
                        std::process::exit(1);
                    }
                }
                None => match experiments::run_one(id) {
                    Some(t) => println!("{}", t.render()),
                    None => {
                        eprintln!("unknown experiment '{id}'; try --list");
                        std::process::exit(1);
                    }
                },
            }
        }
        Some("--exp-json") => {
            let id = args.get(1).unwrap_or_else(|| usage());
            match &sink {
                Some(s) => {
                    let o = run_observed(id, deadline, s);
                    match &o.result {
                        Ok(t) => println!("{}", t.to_json(&[])),
                        Err(_) => {
                            eprint!("{}", o.render());
                            std::process::exit(1);
                        }
                    }
                }
                None => match experiments::run_one(id) {
                    Some(t) => println!("{}", t.to_json(&[])),
                    None => {
                        eprintln!("unknown experiment '{id}'; try --list");
                        std::process::exit(1);
                    }
                },
            }
        }
        Some("--ablations") => {
            for t in ablations::run_all() {
                println!("{}", t.render());
            }
        }
        Some("--extensions") => {
            for t in extensions::run_all() {
                println!("{}", t.render());
            }
        }
        Some("--autotune") => {
            // repro --autotune [nodes]
            let nodes: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
            for sys in [SystemId::A64fx, SystemId::Ngio, SystemId::Fulhame] {
                let ranking = autotune::tune_minikab(sys, nodes);
                if !ranking.is_empty() {
                    println!(
                        "{}",
                        autotune::tune_table("minikab", sys, nodes, &ranking).render()
                    );
                }
            }
        }
        Some("--timeline") => {
            // repro --timeline <app> <system>
            let app = args.get(1).map(String::as_str).unwrap_or("hpcg");
            let sys_name = args.get(2).map(String::as_str).unwrap_or("a64fx");
            let sys = match sys_name.to_ascii_lowercase().as_str() {
                "a64fx" => SystemId::A64fx,
                "archer" => SystemId::Archer,
                "cirrus" => SystemId::Cirrus,
                "ngio" => SystemId::Ngio,
                "fulhame" => SystemId::Fulhame,
                other => {
                    eprintln!("unknown system '{other}'");
                    std::process::exit(1);
                }
            };
            let spec = system(sys);
            let layout = JobLayout::mpi_full(1, &spec);
            let trace = match app {
                "hpcg" => tracecache::hpcg(hpcg::HpcgConfig::paper(), layout.ranks),
                "minikab" => tracecache::minikab(minikab::MinikabConfig::paper(), layout.ranks),
                "nekbone" => tracecache::nekbone(nekbone::NekboneConfig::paper(), layout.ranks),
                "cosa" => tracecache::cosa(cosa::CosaConfig::paper(), layout.ranks),
                "castep" => tracecache::castep(castep::CastepConfig::paper(), layout.ranks),
                "opensbli" => tracecache::opensbli(opensbli::OpensbliConfig::paper(), layout.ranks),
                other => {
                    eprintln!("unknown app '{other}'");
                    std::process::exit(1);
                }
            };
            let Some(tc) = paper_toolchain(sys, app) else {
                eprintln!("the paper did not run {app} on {sys_name}");
                std::process::exit(1);
            };
            let entries = match &sink {
                Some(s) => {
                    let entries = obs::with_recorder(s.recorder(), || {
                        timeline::iteration_timeline(&spec, &tc, &trace, layout)
                    });
                    s.flush(&[
                        ("app", app.to_string()),
                        ("system", sys_name.to_ascii_lowercase()),
                    ]);
                    entries
                }
                None => timeline::iteration_timeline(&spec, &tc, &trace, layout),
            };
            let title = format!(
                "{app} on one {} node: one iteration, phase by phase",
                spec.name
            );
            println!("{}", timeline::timeline_table(&title, &entries).render());
        }
        Some("--list") => {
            for id in experiments::all_ids() {
                println!("{id}");
            }
        }
        _ => usage(),
    }
}
