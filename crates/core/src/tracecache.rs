//! Trace-once, simulate-many: a process-wide memo table for application
//! traces.
//!
//! A [`Trace`] depends only on its application config and the rank
//! count — never on the simulated system, toolchain or layout — yet the
//! paper's tables sweep the same six workloads across five systems and
//! many node counts, rebuilding identical traces for every cell. This
//! module builds each distinct workload once: traces are keyed by
//! `(app id, config fingerprint, ranks)` and shared as `Arc<Trace>`
//! across experiments, the resilience runner and the conform suites.
//!
//! Correctness rests on two properties:
//!
//! * **Builders are pure.** `<app>::trace(cfg, ranks)` is a
//!   deterministic function of its arguments, so serving a cached trace
//!   is indistinguishable (bit-for-bit) from rebuilding it.
//! * **Fingerprints are injective in practice.** [`Fingerprint`] hashes
//!   every config field through a fixed 64-bit FNV-1a — no
//!   `DefaultHasher` seed randomness — so the same config always maps
//!   to the same key, across threads and runs. Tests pin collision
//!   resistance for near-miss configs (transposed fields, off-by-one
//!   sizes).
//!
//! The cache is an escape-hatched optimisation, not a semantic layer:
//! `A64FX_TRACE_CACHE=off` (or `0`/`false`/`no`) and `repro --no-cache`
//! disable it, and cache-on vs cache-off runs are byte-identical.
//!
//! The memory tier is **capacity-bounded**: entries are charged their
//! [`Trace::approx_bytes`] against `A64FX_TRACE_CACHE_CAP` (default
//! [`DEFAULT_CAPACITY_BYTES`]) and evicted least-recently-used — purity
//! makes eviction bit-transparent, so a million-distinct-workload
//! campaign runs flat instead of growing without bound. With
//! `A64FX_TRACE_CACHE_DIR` set, built traces are also **persisted** as
//! checksummed files ([`crate::tracedisk`]) and reloaded across
//! evictions and across processes, with graceful fallback-to-rebuild on
//! any corruption or version mismatch.
//!
//! Totals are exposed through [`stats`] and — when a recorder is
//! installed — the `trace_cache.{hits,misses,inserts,evictions}` and
//! `trace_cache.disk_{loads,stores,corrupt}` `obs` counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use a64fx_apps::castep::CastepConfig;
use a64fx_apps::cosa::CosaConfig;
use a64fx_apps::hpcg::HpcgConfig;
use a64fx_apps::minikab::MinikabConfig;
use a64fx_apps::nekbone::NekboneConfig;
use a64fx_apps::opensbli::OpensbliConfig;
use a64fx_apps::trace::Trace;

/// Content-keying for cacheable application configs: a stable app
/// namespace plus a deterministic 64-bit digest of every field.
pub trait Fingerprint {
    /// Application id — the cache-key namespace, so two apps whose
    /// configs happen to hash alike can never collide.
    const APP: &'static str;

    /// Deterministic digest of the full config. Must cover every field
    /// that influences the built trace (i.e. all of them) and must not
    /// depend on process-specific state such as hasher seeds.
    fn fingerprint(&self) -> u64;
}

/// A tiny stable FNV-1a (64-bit) hasher. `std`'s `DefaultHasher` is
/// seeded per process, which would still be *correct* for an in-process
/// cache but makes fingerprints unprintable/unpinnable in tests; FNV
/// gives the same digest everywhere, forever.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET_BASIS)
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb a `u64` (little-endian byte order).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `usize` (widened so 32- and 64-bit builds agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb an `f64` by its IEEE-754 bit pattern, so `-0.0 != 0.0`
    /// and every NaN payload is distinguished — exactly the equality the
    /// trace builders themselves see.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint for HpcgConfig {
    const APP: &'static str = "hpcg";
    fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.local.0);
        h.write_usize(self.local.1);
        h.write_usize(self.local.2);
        h.write_usize(self.mg_levels);
        h.write_u64(u64::from(self.iterations));
        h.finish()
    }
}

impl Fingerprint for MinikabConfig {
    const APP: &'static str = "minikab";
    fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.dof);
        h.write_u64(self.nnz);
        h.write_usize(self.grid.0);
        h.write_usize(self.grid.1);
        h.write_usize(self.grid.2);
        h.write_u64(u64::from(self.iterations));
        h.finish()
    }
}

impl Fingerprint for NekboneConfig {
    const APP: &'static str = "nekbone";
    fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.elements_per_rank);
        h.write_usize(self.poly);
        h.write_u64(u64::from(self.iterations));
        h.finish()
    }
}

impl Fingerprint for CosaConfig {
    const APP: &'static str = "cosa";
    fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.blocks);
        h.write_usize(self.block_grid.0);
        h.write_usize(self.block_grid.1);
        h.write_usize(self.block_edge);
        h.write_usize(self.harmonics);
        h.write_u64(u64::from(self.iterations));
        h.finish()
    }
}

impl Fingerprint for CastepConfig {
    const APP: &'static str = "castep";
    fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.grid);
        h.write_usize(self.bands);
        h.write_usize(self.h_applies);
        h.write_u64(u64::from(self.scf_cycles));
        h.finish()
    }
}

impl Fingerprint for OpensbliConfig {
    const APP: &'static str = "opensbli";
    fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.grid);
        h.write_u64(u64::from(self.steps));
        h.write_f64(self.viscosity);
        h.write_f64(self.dt);
        h.finish()
    }
}

/// (app id, config fingerprint, ranks) — what a built trace depends on.
type Key = (&'static str, u64, u32);

/// One cached trace plus its LRU bookkeeping.
struct Entry {
    trace: Arc<Trace>,
    /// Capacity charge ([`Trace::approx_bytes`] at insert time).
    cost: u64,
    /// Logical clock of the last fetch that touched this entry.
    last_use: u64,
}

/// The memo table: entries, a logical use-clock, and the bytes charged.
#[derive(Default)]
struct Store {
    map: HashMap<Key, Entry>,
    tick: u64,
    total_cost: u64,
}

impl Store {
    /// Touch-and-get under LRU accounting.
    fn get(&mut self, key: &Key) -> Option<Arc<Trace>> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.map.get_mut(key)?;
        e.last_use = tick;
        Some(Arc::clone(&e.trace))
    }

    /// Insert under the byte cap, evicting least-recently-used entries
    /// first. A trace larger than the whole cap is returned to the
    /// caller uncached (evicting everything for it would just thrash).
    fn insert(&mut self, key: Key, trace: &Arc<Trace>, cap: u64) {
        let cost = trace.approx_bytes();
        if cost > cap {
            return;
        }
        while self.total_cost + cost > cap {
            let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k)
            else {
                break;
            };
            let evicted = self.map.remove(&victim).expect("victim exists");
            self.total_cost -= evicted.cost;
            EVICTIONS.fetch_add(1, Ordering::Relaxed);
            if obs::enabled() {
                obs::add("trace_cache.evictions", 1);
            }
        }
        self.tick += 1;
        self.total_cost += cost;
        self.map.insert(
            key,
            Entry {
                trace: Arc::clone(trace),
                cost,
                last_use: self.tick,
            },
        );
    }
}

fn table() -> &'static Mutex<Store> {
    static TABLE: OnceLock<Mutex<Store>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Store::default()))
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static INSERTS: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static DISK_LOADS: AtomicU64 = AtomicU64::new(0);
static DISK_STORES: AtomicU64 = AtomicU64::new(0);
static DISK_CORRUPT: AtomicU64 = AtomicU64::new(0);

/// Runtime override state: follows `A64FX_TRACE_CACHE` until
/// [`set_enabled`] pins it (the `repro --no-cache` path, and tests that
/// must not race through `env::set_var`).
static OVERRIDE: AtomicU8 = AtomicU8::new(OVERRIDE_UNSET);
const OVERRIDE_UNSET: u8 = 0;
const OVERRIDE_ON: u8 = 1;
const OVERRIDE_OFF: u8 = 2;

/// Force the cache on or off for this process, taking precedence over
/// `A64FX_TRACE_CACHE`. Used by `repro --no-cache` and by tests, which
/// cannot portably mutate the environment of a multi-threaded test
/// runner.
pub fn set_enabled(on: bool) {
    OVERRIDE.store(
        if on { OVERRIDE_ON } else { OVERRIDE_OFF },
        Ordering::Relaxed,
    );
}

/// Drop any [`set_enabled`] override and fall back to the environment.
pub fn clear_override() {
    OVERRIDE.store(OVERRIDE_UNSET, Ordering::Relaxed);
}

/// Whether an `A64FX_TRACE_CACHE` value disables the cache: `off`, `0`,
/// `false` and `no` (any case, surrounding whitespace ignored) do;
/// everything else — including unset — leaves it on.
pub fn env_disables(value: Option<&str>) -> bool {
    matches!(
        value.map(|v| v.trim().to_ascii_lowercase()).as_deref(),
        Some("off" | "0" | "false" | "no")
    )
}

/// Whether the cache is currently serving: the [`set_enabled`] override
/// if one is pinned, else the `A64FX_TRACE_CACHE` environment variable.
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        OVERRIDE_ON => true,
        OVERRIDE_OFF => false,
        _ => !env_disables(std::env::var("A64FX_TRACE_CACHE").ok().as_deref()),
    }
}

/// Default in-memory capacity: 256 MiB. Far above anything the paper's
/// sweeps build (traces are tens of kilobytes), so the bound is pure
/// insurance — a million-distinct-request campaign stays flat instead of
/// growing without limit.
pub const DEFAULT_CAPACITY_BYTES: u64 = 256 << 20;

/// Parse an `A64FX_TRACE_CACHE_CAP` value: a positive byte count. Pure,
/// so garbage handling is unit-testable.
pub fn parse_capacity(raw: &str) -> Result<u64, String> {
    let s = raw.trim();
    if s.is_empty() {
        return Err("empty value".to_string());
    }
    match s.parse::<u64>() {
        Ok(0) => Err("0 bytes is not a valid capacity".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("'{s}' is not a positive byte count")),
    }
}

/// Pinned capacity override (bytes); 0 means "not pinned, follow the
/// environment".
static CAPACITY_OVERRIDE: AtomicU64 = AtomicU64::new(0);

/// Pin the in-memory capacity for this process (tests, chaos scenarios),
/// taking precedence over `A64FX_TRACE_CACHE_CAP`. `None` drops the pin.
pub fn set_capacity(cap: Option<u64>) {
    CAPACITY_OVERRIDE.store(cap.unwrap_or(0), Ordering::Relaxed);
}

/// The capacity in force: the [`set_capacity`] pin, else
/// `A64FX_TRACE_CACHE_CAP` (invalid values warn once on first use and
/// fall back), else [`DEFAULT_CAPACITY_BYTES`].
pub fn capacity() -> u64 {
    let pinned = CAPACITY_OVERRIDE.load(Ordering::Relaxed);
    if pinned > 0 {
        return pinned;
    }
    static FROM_ENV: OnceLock<u64> = OnceLock::new();
    *FROM_ENV.get_or_init(
        || match std::env::var("A64FX_TRACE_CACHE_CAP").ok().as_deref() {
            None => DEFAULT_CAPACITY_BYTES,
            Some(raw) => match parse_capacity(raw) {
                Ok(n) => n,
                Err(why) => {
                    eprintln!("warning: ignoring A64FX_TRACE_CACHE_CAP ({why}); using default");
                    DEFAULT_CAPACITY_BYTES
                }
            },
        },
    )
}

/// Pinned disk-directory override. Outer `None` = not pinned (follow
/// `A64FX_TRACE_CACHE_DIR`); `Some(None)` = pinned off.
#[allow(clippy::type_complexity)]
fn disk_override() -> &'static Mutex<Option<Option<std::path::PathBuf>>> {
    static DIR: OnceLock<Mutex<Option<Option<std::path::PathBuf>>>> = OnceLock::new();
    DIR.get_or_init(|| Mutex::new(None))
}

/// Pin the disk persistence directory for this process (the
/// `repro`-level plumbing and tests), taking precedence over
/// `A64FX_TRACE_CACHE_DIR`. `Some(None)` pins persistence off;
/// `None` drops the pin and falls back to the environment.
pub fn set_disk_dir(dir: Option<Option<std::path::PathBuf>>) {
    *disk_override()
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = dir;
}

/// The disk persistence directory in force, if any: the [`set_disk_dir`]
/// pin, else `A64FX_TRACE_CACHE_DIR` (empty value = off).
pub fn disk_dir() -> Option<std::path::PathBuf> {
    if let Some(pinned) = disk_override()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
    {
        return pinned;
    }
    std::env::var("A64FX_TRACE_CACHE_DIR")
        .ok()
        .filter(|v| !v.trim().is_empty())
        .map(std::path::PathBuf::from)
}

/// Serialise users of the process-global override pins ([`set_enabled`],
/// [`set_capacity`], [`set_disk_dir`]). Tests and chaos scenarios that
/// pin-and-restore must hold this guard so concurrent pinners do not
/// interleave; the cache itself never takes it.
pub fn override_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Empty the in-memory memo table (counters are untouched). Used by
/// tests and chaos scenarios to force the disk tier or fresh rebuilds;
/// bit-transparency makes this safe at any time.
pub fn clear() {
    let mut store = table().lock().unwrap_or_else(PoisonError::into_inner);
    store.map.clear();
    store.total_cost = 0;
}

/// Bytes currently charged against the capacity.
pub fn resident_bytes() -> u64 {
    table()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .total_cost
}

/// A snapshot of the process-wide trace-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Fetches served from the memo table.
    pub hits: u64,
    /// Fetches that had to build (or disk-load) the trace.
    pub misses: u64,
    /// Traces inserted (misses that ran with the cache enabled).
    pub inserts: u64,
    /// Entries evicted under the capacity bound.
    pub evictions: u64,
    /// Memory misses served from the disk tier.
    pub disk_loads: u64,
    /// Traces persisted to the disk tier.
    pub disk_stores: u64,
    /// Disk files refused (corruption, truncation, version skew) and
    /// silently rebuilt.
    pub disk_corrupt: u64,
}

/// Current process-wide cache totals (monotonic; disabled fetches count
/// as misses without inserts).
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        inserts: INSERTS.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        disk_loads: DISK_LOADS.load(Ordering::Relaxed),
        disk_stores: DISK_STORES.load(Ordering::Relaxed),
        disk_corrupt: DISK_CORRUPT.load(Ordering::Relaxed),
    }
}

/// Fetch the trace for `(cfg, ranks)`, building it with `build` on the
/// first request and sharing the same `Arc` on every subsequent one.
/// With the cache disabled this degenerates to `Arc::new(build())` —
/// the exact uncached behaviour, minus sharing.
///
/// The bounded memory tier evicts least-recently-used entries past
/// [`capacity`] bytes (cost = [`Trace::approx_bytes`]); an evicted key
/// simply rebuilds on its next fetch — builders are pure, so eviction is
/// bit-transparent. With a disk directory configured ([`disk_dir`]), a
/// memory miss first tries the checksummed on-disk copy and falls back
/// to rebuilding on *any* refusal (missing, corrupt, version skew), then
/// persists what it built.
///
/// The build runs under the table lock: builders are microsecond-cheap
/// and this guarantees each key is built exactly once even when the
/// experiment runner fetches the same workload from several worker
/// threads at once.
pub fn fetch<C: Fingerprint>(cfg: &C, ranks: u32, build: impl FnOnce() -> Trace) -> Arc<Trace> {
    if !enabled() {
        MISSES.fetch_add(1, Ordering::Relaxed);
        if obs::enabled() {
            obs::add("trace_cache.misses", 1);
        }
        return Arc::new(build());
    }
    let key: Key = (C::APP, cfg.fingerprint(), ranks);
    let mut store = table().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(t) = store.get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        if obs::enabled() {
            obs::add("trace_cache.hits", 1);
        }
        return t;
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    if obs::enabled() {
        obs::add("trace_cache.misses", 1);
    }
    let dir = disk_dir();
    // Disk tier first: a valid on-disk copy is bit-identical to a fresh
    // build (decode is exact and the builder is pure), so serving it is
    // transparent. Anything refused falls through to the builder.
    let (t, from_disk) = match &dir {
        Some(d) => match crate::tracedisk::load(d, key.0, key.1, key.2) {
            Ok(t) => {
                DISK_LOADS.fetch_add(1, Ordering::Relaxed);
                if obs::enabled() {
                    obs::add("trace_cache.disk_loads", 1);
                }
                (Arc::new(t), true)
            }
            Err(crate::tracedisk::LoadError::Missing) => (Arc::new(build()), false),
            Err(_) => {
                DISK_CORRUPT.fetch_add(1, Ordering::Relaxed);
                if obs::enabled() {
                    obs::add("trace_cache.disk_corrupt", 1);
                }
                (Arc::new(build()), false)
            }
        },
        None => (Arc::new(build()), false),
    };
    INSERTS.fetch_add(1, Ordering::Relaxed);
    if obs::enabled() {
        obs::add("trace_cache.inserts", 1);
    }
    store.insert(key, &t, capacity());
    if let (Some(d), false) = (&dir, from_disk) {
        // Best-effort persist: a full disk or unwritable directory costs
        // the amortisation, never the run.
        match crate::tracedisk::store(d, key.0, key.1, key.2, &t) {
            Ok(()) => {
                DISK_STORES.fetch_add(1, Ordering::Relaxed);
                if obs::enabled() {
                    obs::add("trace_cache.disk_stores", 1);
                }
            }
            Err(why) => eprintln!("warning: trace cache persist failed: {why}"),
        }
    }
    t
}

/// Memoized [`a64fx_apps::hpcg::trace`].
pub fn hpcg(cfg: HpcgConfig, ranks: u32) -> Arc<Trace> {
    fetch(&cfg, ranks, || a64fx_apps::hpcg::trace(cfg, ranks))
}

/// Memoized [`a64fx_apps::minikab::trace`].
pub fn minikab(cfg: MinikabConfig, ranks: u32) -> Arc<Trace> {
    fetch(&cfg, ranks, || a64fx_apps::minikab::trace(cfg, ranks))
}

/// Memoized [`a64fx_apps::nekbone::trace`].
pub fn nekbone(cfg: NekboneConfig, ranks: u32) -> Arc<Trace> {
    fetch(&cfg, ranks, || a64fx_apps::nekbone::trace(cfg, ranks))
}

/// Memoized [`a64fx_apps::cosa::trace`].
pub fn cosa(cfg: CosaConfig, ranks: u32) -> Arc<Trace> {
    fetch(&cfg, ranks, || a64fx_apps::cosa::trace(cfg, ranks))
}

/// Memoized [`a64fx_apps::castep::trace`].
pub fn castep(cfg: CastepConfig, ranks: u32) -> Arc<Trace> {
    fetch(&cfg, ranks, || a64fx_apps::castep::trace(cfg, ranks))
}

/// Memoized [`a64fx_apps::opensbli::trace`].
pub fn opensbli(cfg: OpensbliConfig, ranks: u32) -> Arc<Trace> {
    fetch(&cfg, ranks, || a64fx_apps::opensbli::trace(cfg, ranks))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that flip the cache override must not interleave: the
    /// override is process-global state.
    fn override_guard() -> std::sync::MutexGuard<'static, ()> {
        override_lock()
    }

    #[test]
    fn fingerprints_are_stable_across_calls() {
        let cfg = HpcgConfig::paper();
        assert_eq!(cfg.fingerprint(), cfg.fingerprint());
        assert_eq!(
            HpcgConfig::paper().fingerprint(),
            HpcgConfig::paper().fingerprint()
        );
    }

    #[test]
    fn distinct_configs_get_distinct_fingerprints() {
        // Asymmetric grid, so transposing its extents changes the config
        // (the paper's (80, 80, 80) would not).
        let base = HpcgConfig {
            local: (16, 32, 48),
            ..HpcgConfig::paper()
        };
        let mut seen = vec![base.fingerprint()];
        let variants = [
            HpcgConfig {
                local: (base.local.1, base.local.0, base.local.2),
                ..base
            },
            HpcgConfig {
                local: (base.local.0 + 1, base.local.1, base.local.2),
                ..base
            },
            HpcgConfig {
                mg_levels: base.mg_levels + 1,
                ..base
            },
            HpcgConfig {
                iterations: base.iterations + 1,
                ..base
            },
            // Field-transposition trap: mg_levels and iterations swapped.
            HpcgConfig {
                mg_levels: base.iterations as usize,
                iterations: base.mg_levels as u32,
                ..base
            },
        ];
        for v in variants {
            let fp = v.fingerprint();
            assert!(!seen.contains(&fp), "collision for {v:?}");
            seen.push(fp);
        }
    }

    #[test]
    fn f64_fields_fingerprint_by_bits() {
        let base = OpensbliConfig::paper();
        let tweaked = OpensbliConfig {
            dt: base.dt * (1.0 + 1e-15),
            ..base
        };
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
        let neg_zero = OpensbliConfig {
            viscosity: -0.0,
            ..base
        };
        let pos_zero = OpensbliConfig {
            viscosity: 0.0,
            ..base
        };
        assert_ne!(neg_zero.fingerprint(), pos_zero.fingerprint());
    }

    #[test]
    fn same_key_returns_pointer_equal_arc() {
        let _g = override_guard();
        set_enabled(true);
        let a = hpcg(HpcgConfig::paper(), 96);
        let b = hpcg(HpcgConfig::paper(), 96);
        assert!(Arc::ptr_eq(&a, &b), "cache must share one allocation");
        // A different rank count is a different workload.
        let c = hpcg(HpcgConfig::paper(), 48);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.ranks, 48);
        clear_override();
    }

    #[test]
    fn disabled_cache_builds_fresh_but_identical_traces() {
        let _g = override_guard();
        set_enabled(false);
        let a = nekbone(NekboneConfig::paper(), 48);
        let b = nekbone(NekboneConfig::paper(), 48);
        assert!(!Arc::ptr_eq(&a, &b), "disabled cache must not share");
        set_enabled(true);
        let cached = nekbone(NekboneConfig::paper(), 48);
        assert_eq!(*a, *cached, "cached and fresh traces must be equal");
        clear_override();
    }

    #[test]
    fn table_renders_byte_identical_cache_on_vs_off() {
        let _g = override_guard();
        set_enabled(true);
        let on = crate::experiments::run_one("t5")
            .expect("t5 exists")
            .render();
        let on_again = crate::experiments::run_one("t5")
            .expect("t5 exists")
            .render();
        set_enabled(false);
        let off = crate::experiments::run_one("t5")
            .expect("t5 exists")
            .render();
        clear_override();
        assert_eq!(on, off, "cache must not change a byte of the report");
        assert_eq!(on, on_again, "cache hits must not either");
    }

    #[test]
    fn env_value_parsing() {
        for off in ["off", "OFF", " Off ", "0", "false", "FALSE", "no"] {
            assert!(env_disables(Some(off)), "{off:?} must disable");
        }
        for on in ["on", "1", "true", "", "yes", "anything"] {
            assert!(!env_disables(Some(on)), "{on:?} must not disable");
        }
        assert!(!env_disables(None), "unset leaves the cache on");
    }

    #[test]
    fn parse_capacity_accepts_bytes_and_rejects_garbage() {
        assert_eq!(parse_capacity("1"), Ok(1));
        assert_eq!(parse_capacity(" 268435456 "), Ok(256 << 20));
        for bad in ["", "  ", "0", "-1", "64M", "lots", "1.5"] {
            assert!(parse_capacity(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn lru_eviction_is_bit_transparent() {
        let _g = override_guard();
        set_enabled(true);
        // Two distinct workloads no other test uses.
        let cfg_a = NekboneConfig {
            elements_per_rank: 31,
            poly: 5,
            iterations: 2,
        };
        let cfg_b = NekboneConfig {
            elements_per_rank: 37,
            poly: 5,
            iterations: 2,
        };
        let a1 = nekbone(cfg_a, 3);
        // Cap to just this one trace: inserting the next must evict it.
        set_capacity(Some(a1.approx_bytes() + 16));
        let before = stats();
        let _b = nekbone(cfg_b, 3);
        let a2 = nekbone(cfg_a, 3);
        let after = stats();
        set_capacity(None);
        clear_override();
        assert!(
            after.evictions > before.evictions,
            "a tiny cap must evict: {after:?}"
        );
        assert!(
            !Arc::ptr_eq(&a1, &a2),
            "the evicted entry must have been rebuilt"
        );
        assert_eq!(*a1, *a2, "evict-then-refetch must be bit-transparent");
        assert_eq!(cfg_a.fingerprint(), cfg_a.fingerprint());
    }

    #[test]
    fn oversized_trace_is_served_but_not_cached() {
        let _g = override_guard();
        set_enabled(true);
        set_capacity(Some(1)); // nothing fits
        let cfg = NekboneConfig {
            elements_per_rank: 41,
            poly: 5,
            iterations: 2,
        };
        let a = nekbone(cfg, 3);
        let b = nekbone(cfg, 3);
        set_capacity(None);
        clear_override();
        assert!(!Arc::ptr_eq(&a, &b), "nothing may be cached under cap 1");
        assert_eq!(*a, *b);
    }

    #[test]
    fn disk_tier_round_trips_and_survives_corruption() {
        let _g = override_guard();
        set_enabled(true);
        let dir =
            std::env::temp_dir().join(format!("a64fx-tracecache-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        set_disk_dir(Some(Some(dir.clone())));
        let cfg = NekboneConfig {
            elements_per_rank: 43,
            poly: 5,
            iterations: 2,
        };
        let before = stats();
        let fresh = nekbone(cfg, 3);
        let mid = stats();
        assert!(mid.disk_stores > before.disk_stores, "first build persists");
        // Drop the memory tier: the next fetch must come from disk and
        // be bit-identical to the fresh build.
        clear();
        let loaded = nekbone(cfg, 3);
        let after_load = stats();
        assert!(after_load.disk_loads > mid.disk_loads, "{after_load:?}");
        assert_eq!(*fresh, *loaded);
        // Corrupt the file: the next cold fetch must refuse it, count
        // it, and rebuild the identical trace.
        let path = crate::tracedisk::file_path(&dir, "nekbone", cfg.fingerprint(), 3);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid_byte = bytes.len() / 3;
        bytes[mid_byte] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        clear();
        let rebuilt = nekbone(cfg, 3);
        let after_corrupt = stats();
        set_disk_dir(None);
        clear_override();
        let _ = std::fs::remove_dir_all(&dir);
        assert!(
            after_corrupt.disk_corrupt > after_load.disk_corrupt,
            "{after_corrupt:?}"
        );
        assert_eq!(*fresh, *rebuilt, "corruption must fall back to rebuild");
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let _g = override_guard();
        set_enabled(true);
        let before = stats();
        // A config no other test uses, so the first fetch is a miss.
        let cfg = CosaConfig {
            blocks: 13,
            block_grid: (13, 1),
            block_edge: 7,
            harmonics: 2,
            iterations: 3,
        };
        let _a = cosa(cfg, 4);
        let _b = cosa(cfg, 4);
        let after = stats();
        assert!(after.misses > before.misses);
        assert!(after.inserts > before.inserts);
        assert!(after.hits > before.hits);
        clear_override();
    }
}
