//! Calibration: the per-(system, kernel-class) efficiency tables.
//!
//! The roofline needs two efficiencies per kernel class and system:
//!
//! * `flop_eff` — fraction of a core's SIMD peak the class achieves when
//!   compute-bound (vectorisability, pipeline behaviour, front-end limits);
//! * `mem_eff` — achieved streaming bandwidth relative to the node's
//!   STREAM-sustained bandwidth. Values slightly above 1 are legal and mean
//!   the kernel enjoys cache reuse the pure-streaming byte count does not
//!   credit (e.g. SymGS back-sweeps on large x86 L3s).
//!
//! **Provenance.** Single-node anchors are fitted to the paper's own
//! single-node/single-core measurements (Tables III, V, VI, IX, X); the
//! relative values across classes follow the paper's analysis (§VIII):
//! HPCG-class kernels are bandwidth-bound everywhere; Nekbone's small
//! tensor contractions are compute-bound and respond to `-Kfast` only on
//! the A64FX; OpenSBLI's many small generated stencil kernels hit the
//! A64FX's narrow front end (instruction-fetch waits, L2 pressure in the
//! paper's profile) and achieve a very low fraction of peak there.
//! Everything multi-node or multi-config is *derived*, not fitted.

use a64fx_apps::KernelClass;
use archsim::{SystemId, Toolchain, ToolchainFamily};

/// The calibration table set. `Default` gives the fitted values; fields are
/// public so ablation benches can perturb them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Global multiplier on every memory efficiency (ablations).
    pub mem_scale: f64,
    /// Global multiplier on every flop efficiency (ablations).
    pub flop_scale: f64,
    /// Whether the vendor-optimised HPCG variant is selected: multiplies
    /// the SpMV/SymGS efficiencies by [`Calibration::hpcg_optimised_factor`].
    pub hpcg_optimised: bool,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            mem_scale: 1.0,
            flop_scale: 1.0,
            hpcg_optimised: false,
        }
    }
}

impl Calibration {
    /// Penalty applied when one rank's threads span multiple memory domains
    /// (NUMA/CMG-crossing OpenMP regions).
    pub const NUMA_SPAN_PENALTY: f64 = 0.85;

    /// Fraction of SIMD peak achieved by `class` on `sys` when
    /// compute-bound.
    pub fn flop_eff(&self, sys: SystemId, class: KernelClass) -> f64 {
        use KernelClass::*;
        use SystemId::*;
        let v = match (sys, class) {
            // --- Sparse kernels: indirect access, gather-heavy.
            (A64fx, SpMV) => 0.035,
            (Archer, SpMV) => 0.12,
            (Cirrus, SpMV) => 0.10,
            (Ngio, SpMV) => 0.06,
            (Fulhame, SpMV) => 0.14,
            // SymGS adds a dependency chain: no vectorisation anywhere.
            (A64fx, SymGS) => 0.020,
            (Archer, SymGS) => 0.085,
            (Cirrus, SymGS) => 0.07,
            (Ngio, SymGS) => 0.045,
            (Fulhame, SymGS) => 0.10,
            // --- Regular stencils (OpenSBLI/COSA): many small generated
            // kernels. The paper's A64FX profile shows instruction fetch
            // waits and L2 integer loads — a very low achieved fraction of
            // peak; the fat OoO x86 cores and the ThunderX2 cope far better.
            (A64fx, StencilFD) => 0.0108,
            (Archer, StencilFD) => 0.055,
            (Cirrus, StencilFD) => 0.060,
            (Ngio, StencilFD) => 0.045,
            (Fulhame, StencilFD) => 0.105,
            // --- COSA's hand-written finite-volume flux sweeps vectorise
            // well everywhere; set high enough that the memory system binds
            // (the paper credits the A64FX's bandwidth for its COSA lead).
            (A64fx, CfdFlux) => 0.10,
            (Archer, CfdFlux) => 0.145,
            (Cirrus, CfdFlux) => 0.095,
            (Ngio, CfdFlux) => 0.080,
            (Fulhame, CfdFlux) => 0.190,
            // --- Nekbone's batched small tensor contractions (Table VI
            // anchors: A64FX 175.74 of 3379 peak = 5.2%; NGIO 127.19 of
            // 2662 = 4.8%; Fulhame 121.63 of 1126 = 10.8%; ARCHER 66.55 of
            // 518 = 12.8%).
            (A64fx, SmallGemm) => 0.0558,
            (Archer, SmallGemm) => 0.180,
            (Cirrus, SmallGemm) => 0.13,
            (Ngio, SmallGemm) => 0.0673,
            (Fulhame, SmallGemm) => 0.139,
            // --- Vendor BLAS3 (SSL2 / MKL / ArmPL): high fractions of peak.
            (A64fx, Blas3) => 0.70,
            (Archer, Blas3) => 0.80,
            (Cirrus, Blas3) => 0.85,
            (Ngio, Blas3) => 0.85,
            (Fulhame, Blas3) => 0.75,
            // --- FFT (Fujitsu's early FFTW port vs mature MKL/FFTW):
            // fractions of peak typical for 3-D FFTs.
            (A64fx, Fft) => 0.040,
            (Archer, Fft) => 0.105,
            (Cirrus, Fft) => 0.135,
            (Ngio, Fft) => 0.145,
            (Fulhame, Fft) => 0.145,
            // --- Streaming vector ops and dots: trivially vectorised;
            // they are always memory-bound, so flop_eff barely matters.
            (_, VectorOp) | (_, Dot) => 0.50,
        };
        let opt = if self.hpcg_optimised && matches!(class, SpMV | SymGS) {
            Self::hpcg_optimised_factor(sys)
        } else {
            1.0
        };
        v * self.flop_scale * opt
    }

    /// Achieved bandwidth of `class` on `sys`, relative to the node's
    /// STREAM-sustained bandwidth.
    pub fn mem_eff(&self, sys: SystemId, class: KernelClass) -> f64 {
        use KernelClass::*;
        use SystemId::*;
        let v = match (sys, class) {
            // Sparse kernels: the A64FX's HBM needs deep concurrency that
            // indirect sparse access cannot raise, so it realises a smaller
            // fraction of STREAM than the x86 parts with big L3 caches
            // (which even exceed 1 thanks to cache reuse of x/y vectors).
            (A64fx, SpMV) => 0.31,
            (Archer, SpMV) => 0.96,
            (Cirrus, SpMV) => 0.87,
            (Ngio, SpMV) => 0.72,
            (Fulhame, SpMV) => 0.52,
            (A64fx, SymGS) => 0.27,
            (Archer, SymGS) => 1.18,
            (Cirrus, SymGS) => 0.97,
            (Ngio, SymGS) => 0.87,
            (Fulhame, SymGS) => 0.67,
            (A64fx, StencilFD) => 0.55,
            (Archer, StencilFD) => 0.90,
            (Cirrus, StencilFD) => 0.90,
            (Ngio, StencilFD) => 0.85,
            (Fulhame, StencilFD) => 0.80,
            (A64fx, CfdFlux) => 0.35,
            (Archer, CfdFlux) => 0.90,
            (Cirrus, CfdFlux) => 0.85,
            (Ngio, CfdFlux) => 0.85,
            (Fulhame, CfdFlux) => 0.85,
            // Nekbone: elements stream from memory; the A64FX's HBM keeps
            // the FPUs fed (the paper's central claim for this benchmark).
            (A64fx, SmallGemm) => 0.50,
            (Archer, SmallGemm) => 1.35,
            (Cirrus, SmallGemm) => 1.05,
            (Ngio, SmallGemm) => 0.95,
            (Fulhame, SmallGemm) => 0.85,
            (_, Blas3) => 0.90,
            // The Fujitsu early FFTW port realises little of the HBM's
            // bandwidth on transposed accesses; the mature MKL/FFTW builds
            // do much better on DDR.
            (A64fx, Fft) => 0.152,
            (Archer, Fft) => 0.66,
            (Cirrus, Fft) => 0.92,
            (Ngio, Fft) => 0.79,
            (Fulhame, Fft) => 0.51,
            // Pure streaming: close to STREAM by construction; ARCHER's
            // large L3 relative to its vectors earns cache-reuse credit.
            (A64fx, VectorOp) | (A64fx, Dot) => 0.80,
            (Archer, VectorOp) | (Archer, Dot) => 1.20,
            (_, VectorOp) | (_, Dot) => 0.90,
        };
        let opt = if self.hpcg_optimised && matches!(class, SpMV | SymGS) {
            Self::hpcg_optimised_factor(sys)
        } else {
            1.0
        };
        v * self.mem_scale * opt
    }

    /// Whether `-Kfast`/`-ffast-math` style flags change this class's
    /// compute throughput (they re-associate and contract the dense inner
    /// loops; sparse and memory-bound classes don't care).
    pub fn fastmath_applies(class: KernelClass) -> bool {
        // CfdFlux (COSA) is excluded: the paper's COSA runs *all* used
        // -Kfast-style flags, so the CfdFlux calibration already includes
        // them.
        matches!(
            class,
            KernelClass::SmallGemm | KernelClass::StencilFD | KernelClass::Fft
        )
    }

    /// The fast-math throughput multiplier for a system/toolchain pair.
    /// These are *kernel-level* factors, fitted so that the application-
    /// level Table VI ratios (A64FX ×1.777, ARCHER ×1.025, NGIO ×0.710 —
    /// Intel's fast-math *hurt* Nekbone — and Fulhame ×1.091) emerge once
    /// the memory-bound vector phases dilute the kernel speed-up.
    pub fn fastmath_factor(&self, sys: SystemId, toolchain: &Toolchain) -> f64 {
        match (sys, toolchain.family) {
            (SystemId::A64fx, ToolchainFamily::Fujitsu) => 2.00,
            (SystemId::Ngio, ToolchainFamily::Intel) => 0.60,
            (SystemId::Fulhame, _) => 1.12,
            (SystemId::Archer, _) => 1.04,
            _ => 1.05,
        }
    }

    /// OpenMP parallel-region efficiency for a rank with `threads` threads
    /// (fork/join overhead and imbalance inside the rank).
    pub fn omp_efficiency(threads: u32) -> f64 {
        if threads <= 1 {
            1.0
        } else {
            1.0 / (1.0 + 0.012 * f64::from(threads - 1))
        }
    }

    /// Throughput multiplier of the vendor-optimised HPCG variants the
    /// paper ran (Table III): Intel's optimised HPCG on NGIO is 37.61/26.16
    /// = ×1.438, Arm's on Fulhame 33.80/23.58 = ×1.433. Applied to the
    /// SymGS/SpMV classes when the optimised variant is selected.
    pub fn hpcg_optimised_factor(sys: SystemId) -> f64 {
        match sys {
            SystemId::Ngio => 1.438,
            SystemId::Fulhame => 1.433,
            // The paper ran only the reference HPCG elsewhere; it argues a
            // similar ~30% headroom exists on the A64FX.
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiencies_in_sane_ranges() {
        let c = Calibration::default();
        for sys in SystemId::all() {
            for class in KernelClass::all() {
                let f = c.flop_eff(sys, class);
                let m = c.mem_eff(sys, class);
                assert!(f > 0.0 && f <= 1.0, "{sys:?}/{class:?} flop_eff {f}");
                assert!(m > 0.0 && m <= 1.55, "{sys:?}/{class:?} mem_eff {m}");
            }
        }
    }

    #[test]
    fn a64fx_stencil_is_the_weak_spot() {
        // The paper's OpenSBLI finding: A64FX achieves by far the lowest
        // fraction of peak on generated stencil code.
        let c = Calibration::default();
        let a = c.flop_eff(SystemId::A64fx, KernelClass::StencilFD);
        for sys in [
            SystemId::Archer,
            SystemId::Cirrus,
            SystemId::Ngio,
            SystemId::Fulhame,
        ] {
            assert!(c.flop_eff(sys, KernelClass::StencilFD) > 2.0 * a, "{sys:?}");
        }
    }

    #[test]
    fn fastmath_ratios_match_table6() {
        let c = Calibration::default();
        let fj = Toolchain::for_family(ToolchainFamily::Fujitsu, "1.2.24", "-Kfast", "");
        assert!(c.fastmath_factor(SystemId::A64fx, &fj) > 1.7);
        let intel = Toolchain::for_family(ToolchainFamily::Intel, "19", "-O3", "");
        assert!(
            c.fastmath_factor(SystemId::Ngio, &intel) < 1.0,
            "Intel fast-math hurt Nekbone"
        );
    }

    #[test]
    fn omp_efficiency_decreases_with_threads() {
        assert_eq!(Calibration::omp_efficiency(1), 1.0);
        assert!(Calibration::omp_efficiency(12) < 1.0);
        assert!(Calibration::omp_efficiency(24) < Calibration::omp_efficiency(12));
        assert!(Calibration::omp_efficiency(24) > 0.7);
    }

    #[test]
    fn optimised_hpcg_factors_match_table3_ratios() {
        assert!((Calibration::hpcg_optimised_factor(SystemId::Ngio) - 37.61 / 26.16).abs() < 0.01);
        assert!(
            (Calibration::hpcg_optimised_factor(SystemId::Fulhame) - 33.80 / 23.58).abs() < 0.01
        );
        assert_eq!(Calibration::hpcg_optimised_factor(SystemId::A64fx), 1.0);
    }

    #[test]
    fn scales_apply() {
        let mut c = Calibration::default();
        let base = c.mem_eff(SystemId::A64fx, KernelClass::SpMV);
        c.mem_scale = 2.0;
        assert!((c.mem_eff(SystemId::A64fx, KernelClass::SpMV) - 2.0 * base).abs() < 1e-12);
    }
}
