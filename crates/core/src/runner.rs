//! Parallel experiment runner.
//!
//! The 14 experiments are independent simulations; this module fans them
//! out over a crossbeam thread scope (one worker per experiment, results
//! collected under a `parking_lot` mutex) so `repro --all` regenerates the
//! whole paper in roughly the time of its slowest artefact.

use parking_lot::Mutex;

use crate::experiments;
use crate::report::Table;

/// Run every experiment concurrently, returning them in paper order.
pub fn run_all_parallel() -> Vec<Table> {
    let ids = experiments::all_ids();
    let slots: Mutex<Vec<Option<Table>>> = Mutex::new(vec![None; ids.len()]);
    crossbeam::thread::scope(|scope| {
        for (i, id) in ids.iter().enumerate() {
            let slots = &slots;
            scope.spawn(move |_| {
                let t = experiments::run_one(id).expect("known id");
                slots.lock()[i] = Some(t);
            });
        }
    })
    .expect("experiment worker panicked");
    slots
        .into_inner()
        .into_iter()
        .map(|t| t.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_run_matches_serial_order_and_content() {
        let par = run_all_parallel();
        let ser = experiments::run_all();
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.id, s.id, "order must be paper order");
            assert_eq!(p, s, "{}: parallel and serial runs must agree", p.id);
        }
    }
}
