//! Parallel experiment runner.
//!
//! The 14 experiments are independent simulations; this module fans them
//! out over a `std::thread::scope` worker team so `repro --all` regenerates
//! the whole paper in roughly the time of its slowest artefact. Unlike the
//! old one-thread-per-experiment fan-out, the worker count is bounded by
//! `available_parallelism` (oversubscribing a small machine with 14 solver
//! threads just thrashes), and workers pull experiment indices from a
//! shared atomic queue. Results land in per-experiment slots, so the output
//! order is always paper order regardless of which worker ran what.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::experiments;
use crate::report::Table;

/// Resolve the worker-team size: an explicit request (e.g. a `--threads`
/// flag) wins, then the `A64FX_REPRO_THREADS` environment variable, then
/// `available_parallelism`. Zero and unparseable values are ignored at
/// each step, so a garbage environment variable falls back silently — the
/// runner must never refuse to run over a typo in a login script.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&n| n >= 1)
        .or_else(|| {
            std::env::var("A64FX_REPRO_THREADS")
                .ok()?
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
        })
        .unwrap_or_else(densela::pool::available_parallelism)
}

/// Run every experiment concurrently on at most `available_parallelism`
/// workers, returning them in paper order.
pub fn run_all_parallel() -> Vec<Table> {
    run_all_parallel_bounded(densela::pool::available_parallelism())
}

/// Run every experiment concurrently on at most `workers` worker threads
/// (at least one), returning them in paper order.
pub fn run_all_parallel_bounded(workers: usize) -> Vec<Table> {
    let ids = experiments::all_ids();
    let workers = workers.clamp(1, ids.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Table>>> = ids.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let work = |_w: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(id) = ids.get(i) else { break };
            let t = experiments::run_one(id).expect("known id");
            *slots[i].lock().unwrap() = Some(t);
        };
        let mut handles = Vec::with_capacity(workers - 1);
        for w in 1..workers {
            handles.push(scope.spawn(move || work(w)));
        }
        work(0);
        for h in handles {
            if h.join().is_err() {
                panic!("experiment worker panicked");
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_run_matches_serial_order_and_content() {
        let par = run_all_parallel();
        let ser = experiments::run_all();
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.id, s.id, "order must be paper order");
            assert_eq!(p, s, "{}: parallel and serial runs must agree", p.id);
        }
    }

    #[test]
    fn bounded_run_matches_for_any_worker_count() {
        let ser = experiments::run_all();
        for workers in [1usize, 2, 100] {
            let par = run_all_parallel_bounded(workers);
            assert_eq!(par, ser, "{workers} workers");
        }
    }
}
