//! Parallel experiment runner, hardened against misbehaving experiments.
//!
//! The experiments are independent simulations; this module fans them out
//! over a `std::thread::scope` worker team so `repro --all` regenerates the
//! whole paper in roughly the time of its slowest artefact. The worker
//! count is bounded by `available_parallelism` (oversubscribing a small
//! machine with one solver thread per experiment just thrashes), and
//! workers pull experiment indices from a shared atomic queue. Results land
//! in per-experiment slots, so the output order is always paper order
//! regardless of which worker ran what.
//!
//! Each experiment additionally runs **isolated**: behind
//! `catch_unwind` and a wall-clock deadline, so one panicking or hung
//! experiment yields a FAILED entry instead of killing the whole `repro`
//! run ([`run_isolated`], [`run_all_isolated`]).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::experiments;
use crate::report::Table;

/// Default wall-clock budget for one experiment. Generous: the slowest
/// artefact takes tens of seconds on one core; ten minutes only trips on a
/// genuine hang. Override with `repro --deadline-secs` or
/// `A64FX_DEADLINE_SECS` (see [`resolve_deadline`]).
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(600);

/// Parse a per-experiment deadline request in whole seconds. Pure (no
/// environment access) so garbage handling is unit-testable: empty,
/// unparseable, zero or negative input is an `Err` describing the
/// problem.
pub fn parse_deadline_secs(raw: &str) -> Result<u64, String> {
    let s = raw.trim();
    if s.is_empty() {
        return Err("empty value".to_string());
    }
    match s.parse::<u64>() {
        Ok(0) => Err("0 seconds is not a valid deadline".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("'{s}' is not a positive integer of seconds")),
    }
}

/// Resolve the per-experiment deadline: an explicit request (e.g. a
/// `--deadline-secs` flag) wins, then the `A64FX_DEADLINE_SECS`
/// environment variable, then [`DEFAULT_DEADLINE`]. As with
/// [`resolve_threads`], a present-but-invalid environment variable is
/// treated as unset with a one-line warning on stderr — a typo in a login
/// script must never refuse to run.
pub fn resolve_deadline(explicit: Option<Duration>) -> Duration {
    resolve_deadline_from(
        explicit,
        std::env::var("A64FX_DEADLINE_SECS").ok().as_deref(),
    )
}

/// [`resolve_deadline`] with the environment value passed in — the pure
/// core, split out so tests can exercise the env path without mutating
/// the environment of a multi-threaded test runner.
pub fn resolve_deadline_from(explicit: Option<Duration>, env: Option<&str>) -> Duration {
    if let Some(d) = explicit.filter(|d| !d.is_zero()) {
        return d;
    }
    if let Some(raw) = env {
        match parse_deadline_secs(raw) {
            Ok(n) => return Duration::from_secs(n),
            Err(why) => {
                eprintln!("warning: ignoring A64FX_DEADLINE_SECS ({why}); using default");
            }
        }
    }
    DEFAULT_DEADLINE
}

/// Parse a thread-count request. Pure (no environment access) so garbage
/// handling is unit-testable: empty, unparseable, zero or negative input is
/// an `Err` describing the problem.
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    let s = raw.trim();
    if s.is_empty() {
        return Err("empty value".to_string());
    }
    match s.parse::<usize>() {
        Ok(0) => Err("0 is not a valid worker count".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("'{s}' is not a positive integer")),
    }
}

/// Resolve the worker-team size: an explicit request (e.g. a `--threads`
/// flag) wins, then the `A64FX_REPRO_THREADS` environment variable, then
/// `available_parallelism`. A present-but-invalid environment variable is
/// treated as unset with a one-line warning on stderr — the runner must
/// never refuse to run over a typo in a login script.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit.filter(|&n| n >= 1) {
        return n;
    }
    if let Ok(raw) = std::env::var("A64FX_REPRO_THREADS") {
        match parse_threads(&raw) {
            Ok(n) => return n,
            Err(why) => {
                eprintln!("warning: ignoring A64FX_REPRO_THREADS ({why}); using default");
            }
        }
    }
    densela::pool::available_parallelism()
}

/// Resolve the discrete-event simulation backend: an explicit request
/// (e.g. a `--des-backend` flag) wins, then the `A64FX_DES_BACKEND`
/// environment variable (`serial` or `sharded<N>`), then the serial
/// engine. As with [`resolve_threads`], a present-but-invalid environment
/// variable is treated as unset with a one-line warning on stderr — a typo
/// in a login script must never change results or refuse to run.
pub fn resolve_des_backend(explicit: Option<netsim::DesBackend>) -> netsim::DesBackend {
    if let Some(b) = explicit {
        return b;
    }
    if let Ok(raw) = std::env::var("A64FX_DES_BACKEND") {
        match netsim::DesBackend::parse(&raw) {
            Ok(b) => return b,
            Err(why) => {
                eprintln!("warning: ignoring A64FX_DES_BACKEND ({why}); using default");
            }
        }
    }
    netsim::DesBackend::Serial
}

/// Resolve the kernel-pricing backend: an explicit request (e.g. a
/// `--pricing` flag) wins, then the `A64FX_PRICING` environment variable
/// (`flat` or `ecm`), then the flat roofline. As with
/// [`resolve_des_backend`], a present-but-invalid environment variable is
/// treated as unset with a one-line warning on stderr — a typo in a login
/// script must never change results or refuse to run.
pub fn resolve_pricing(
    explicit: Option<crate::costmodel::PricingBackend>,
) -> crate::costmodel::PricingBackend {
    resolve_pricing_from(explicit, std::env::var("A64FX_PRICING").ok().as_deref())
}

/// [`resolve_pricing`] with the environment value passed in — the pure
/// core, split out so tests can exercise the env path without mutating
/// the environment of a multi-threaded test runner.
pub fn resolve_pricing_from(
    explicit: Option<crate::costmodel::PricingBackend>,
    env: Option<&str>,
) -> crate::costmodel::PricingBackend {
    if let Some(b) = explicit {
        return b;
    }
    if let Some(raw) = env {
        match crate::costmodel::PricingBackend::parse(raw) {
            Ok(b) => return b,
            Err(why) => {
                eprintln!("warning: ignoring A64FX_PRICING ({why}); using default");
            }
        }
    }
    crate::costmodel::PricingBackend::Flat
}

/// Record-volume summary of an observed experiment: how much the recorder
/// captured, plus the DES queue high-water mark (0 when the experiment
/// never touched the event queue).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsSummary {
    /// Span/instant/metric-point counts.
    pub totals: obs::Totals,
    /// Peak `netsim` event-queue depth (`des.queue.peak_depth` gauge).
    pub peak_queue_depth: f64,
}

impl ObsSummary {
    /// Summarise a recorder after a run.
    pub fn of(rec: &obs::MemRecorder) -> Self {
        ObsSummary {
            totals: rec.totals(),
            peak_queue_depth: rec.gauge("des.queue.peak_depth").unwrap_or(0.0),
        }
    }
}

/// The outcome of one isolated experiment: the table, or why it failed.
#[derive(Debug)]
pub struct ExperimentOutcome {
    /// Experiment id (e.g. "t3").
    pub id: String,
    /// The generated table, or a failure description (panic payload or
    /// deadline overrun).
    pub result: Result<Table, String>,
    /// Wall-clock time the experiment took (up to the deadline).
    pub elapsed: Duration,
    /// Recording summary when the experiment ran observed
    /// ([`run_isolated_observed`]); `None` for unobserved runs.
    pub obs: Option<ObsSummary>,
    /// Attempts consumed producing this outcome: 1 for a plain isolated
    /// run, more when a campaign retry policy re-ran a failure
    /// (`crate::campaign::RetryPolicy`). The render is attempt-invariant
    /// so retried-then-successful runs stay byte-identical to clean ones;
    /// the count is recorded here and in the campaign journal.
    pub attempts: u32,
}

impl ExperimentOutcome {
    /// Whether the experiment failed (panicked or timed out).
    pub fn failed(&self) -> bool {
        self.result.is_err()
    }

    /// Render for the console: the table (or a one-line FAILED row), plus
    /// an observability summary row when the run was observed.
    pub fn render(&self) -> String {
        let mut out = match &self.result {
            Ok(t) => t.render(),
            Err(why) => format!("== {} FAILED: {} ==\n", self.id, why),
        };
        if let Some(o) = &self.obs {
            out.push_str(&format!(
                "[obs {}] {} spans, {} instants, {} metric points, peak queue depth {:.0}\n",
                self.id,
                o.totals.spans,
                o.totals.instants,
                o.totals.metric_points,
                o.peak_queue_depth
            ));
        }
        out
    }
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Run one experiment body isolated: on its own thread, behind
/// `catch_unwind`, with a wall-clock `deadline`. A panic or overrun
/// becomes an `Err` in the outcome instead of propagating.
///
/// On deadline overrun the worker thread is abandoned (detached, still
/// running); the caller gets its FAILED outcome immediately. That is the
/// right trade for a CLI run — `repro` exits soon after and the OS reaps
/// the stragglers.
pub fn run_isolated<F>(id: &str, deadline: Duration, body: F) -> ExperimentOutcome
where
    F: FnOnce() -> Table + Send + 'static,
{
    run_isolated_inner(id, deadline, None, body)
}

/// [`run_isolated`] with `rec` installed as the worker thread's ambient
/// recorder for the duration of the experiment body. The outcome carries
/// an [`ObsSummary`] of what was captured — also on failure, since
/// whatever the experiment recorded before panicking or hanging is often
/// the best clue to why.
pub fn run_isolated_observed<F>(
    id: &str,
    deadline: Duration,
    rec: Arc<obs::MemRecorder>,
    body: F,
) -> ExperimentOutcome
where
    F: FnOnce() -> Table + Send + 'static,
{
    run_isolated_inner(id, deadline, Some(rec), body)
}

fn run_isolated_inner<F>(
    id: &str,
    deadline: Duration,
    rec: Option<Arc<obs::MemRecorder>>,
    body: F,
) -> ExperimentOutcome
where
    F: FnOnce() -> Table + Send + 'static,
{
    let started = Instant::now();
    let (tx, rx) = mpsc::channel();
    let worker_rec = rec.clone();
    std::thread::spawn(move || {
        let observed = move || match worker_rec {
            Some(r) => obs::with_recorder(r, body),
            None => body(),
        };
        let result = catch_unwind(AssertUnwindSafe(observed)).map_err(panic_message);
        // The receiver may have given up at the deadline: ignore send errors.
        let _ = tx.send(result);
    });
    let result = match rx.recv_timeout(deadline) {
        Ok(r) => r,
        Err(_) => Err(format!("deadline of {:.0?} exceeded", deadline)),
    };
    ExperimentOutcome {
        id: id.to_string(),
        result,
        elapsed: started.elapsed(),
        obs: rec.map(|r| ObsSummary::of(&r)),
        attempts: 1,
    }
}

/// Run every experiment isolated (see [`run_isolated`]) on at most
/// `workers` queue workers, returning outcomes in paper order. A failed
/// experiment occupies its slot with a FAILED outcome; the rest still run.
pub fn run_all_isolated(workers: usize, deadline: Duration) -> Vec<ExperimentOutcome> {
    let ids = experiments::all_ids();
    let workers = workers.clamp(1, ids.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ExperimentOutcome>>> =
        ids.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let work = |_w: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            // Copy out the `&'static str` so the isolated closure is 'static.
            let Some(&id) = ids.get(i) else { break };
            let outcome = run_isolated(id, deadline, move || {
                experiments::run_one(id).expect("known id")
            });
            // A worker that panicked between lock and store poisons the
            // slot mutex; recovering the guard keeps one bad experiment
            // from cascading into every later `.lock().unwrap()` and
            // taking down the whole campaign summary.
            *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
        };
        let mut handles = Vec::with_capacity(workers - 1);
        for w in 1..workers {
            handles.push(scope.spawn(move || work(w)));
        }
        work(0);
        for h in handles {
            if h.join().is_err() {
                // run_isolated never panics itself, but be safe.
                panic!("experiment worker panicked");
            }
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every slot filled")
        })
        .collect()
}

/// Run every experiment concurrently on at most `available_parallelism`
/// workers, returning them in paper order.
pub fn run_all_parallel() -> Vec<Table> {
    run_all_parallel_bounded(densela::pool::available_parallelism())
}

/// Run every experiment concurrently on at most `workers` worker threads
/// (at least one), returning them in paper order.
///
/// # Panics
/// Panics if any experiment fails; use [`run_all_isolated`] to degrade to
/// FAILED entries instead.
pub fn run_all_parallel_bounded(workers: usize) -> Vec<Table> {
    run_all_isolated(workers, DEFAULT_DEADLINE)
        .into_iter()
        .map(|o| match o.result {
            Ok(t) => t,
            Err(why) => panic!("experiment {} failed: {why}", o.id),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_run_matches_serial_order_and_content() {
        let par = run_all_parallel();
        let ser = experiments::run_all();
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.id, s.id, "order must be paper order");
            assert_eq!(p, s, "{}: parallel and serial runs must agree", p.id);
        }
    }

    #[test]
    fn bounded_run_matches_for_any_worker_count() {
        let ser = experiments::run_all();
        for workers in [1usize, 2, 100] {
            let par = run_all_parallel_bounded(workers);
            assert_eq!(par, ser, "{workers} workers");
        }
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads(" 8 "), Ok(8));
        assert_eq!(parse_threads("1000000"), Ok(1_000_000));
    }

    #[test]
    fn parse_threads_rejects_garbage() {
        // The satellite cases: unparseable, zero, negative, overflow, empty.
        for bad in ["abc", "0", "-3", "1.5", "", "  ", "99999999999999999999999"] {
            assert!(parse_threads(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn explicit_thread_request_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        // Zero explicit request falls through to the default chain.
        assert!(resolve_threads(Some(0)) >= 1);
    }

    #[test]
    fn explicit_des_backend_wins() {
        // The flag beats the environment and the serial default.
        let b = resolve_des_backend(Some(netsim::DesBackend::Sharded { shards: 4 }));
        assert_eq!(b, netsim::DesBackend::Sharded { shards: 4 });
    }

    #[test]
    fn explicit_pricing_beats_environment() {
        use crate::costmodel::PricingBackend;
        // The flag beats the environment and the flat default.
        assert_eq!(
            resolve_pricing_from(Some(PricingBackend::Ecm), Some("flat")),
            PricingBackend::Ecm
        );
        assert_eq!(
            resolve_pricing_from(Some(PricingBackend::Flat), Some("ecm")),
            PricingBackend::Flat
        );
    }

    #[test]
    fn environment_pricing_used_when_no_flag() {
        use crate::costmodel::PricingBackend;
        assert_eq!(
            resolve_pricing_from(None, Some(" ECM ")),
            PricingBackend::Ecm
        );
        assert_eq!(
            resolve_pricing_from(None, Some("flat")),
            PricingBackend::Flat
        );
        assert_eq!(resolve_pricing_from(None, None), PricingBackend::Flat);
    }

    #[test]
    fn garbage_pricing_environment_falls_back_to_flat() {
        use crate::costmodel::PricingBackend;
        // A typo in a login script must never change results: every
        // unrecognised value degrades to the flat reference model.
        for bad in ["roofline", "", "ecm2", "Ecm Model", "1"] {
            assert_eq!(
                resolve_pricing_from(None, Some(bad)),
                PricingBackend::Flat,
                "{bad:?} must fall back to flat"
            );
        }
    }

    #[test]
    fn parse_deadline_accepts_positive_seconds() {
        assert_eq!(parse_deadline_secs("1"), Ok(1));
        assert_eq!(parse_deadline_secs(" 600 "), Ok(600));
        assert_eq!(parse_deadline_secs("86400"), Ok(86_400));
    }

    #[test]
    fn parse_deadline_rejects_garbage() {
        for bad in [
            "abc",
            "0",
            "-5",
            "2.5",
            "",
            "  ",
            "10s",
            "99999999999999999999999",
        ] {
            assert!(
                parse_deadline_secs(bad).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn explicit_deadline_beats_environment() {
        assert_eq!(
            resolve_deadline_from(Some(Duration::from_secs(5)), Some("99")),
            Duration::from_secs(5)
        );
        // A zero explicit request falls through to the default chain.
        assert_eq!(
            resolve_deadline_from(Some(Duration::ZERO), None),
            DEFAULT_DEADLINE
        );
    }

    #[test]
    fn environment_deadline_used_when_no_flag() {
        assert_eq!(
            resolve_deadline_from(None, Some("42")),
            Duration::from_secs(42)
        );
        assert_eq!(resolve_deadline_from(None, None), DEFAULT_DEADLINE);
    }

    #[test]
    fn garbage_deadline_environment_falls_back_to_default() {
        // A typo in a login script must never change results: every
        // unrecognised value degrades to the ten-minute default.
        for bad in ["soon", "", "0", "-1", "5 minutes"] {
            assert_eq!(
                resolve_deadline_from(None, Some(bad)),
                DEFAULT_DEADLINE,
                "{bad:?} must fall back to the default"
            );
        }
    }

    #[test]
    fn isolated_outcomes_record_one_attempt() {
        let o = run_isolated("once", DEFAULT_DEADLINE, || {
            experiments::run_one("t1").expect("known id")
        });
        assert_eq!(o.attempts, 1);
    }

    #[test]
    fn isolated_panic_becomes_failed_outcome() {
        let o = run_isolated("boom", DEFAULT_DEADLINE, || {
            panic!("deliberate test panic");
        });
        assert!(o.failed());
        let why = o.result.as_ref().unwrap_err();
        assert!(why.contains("deliberate test panic"), "{why}");
        assert!(o.render().contains("boom FAILED"));
    }

    #[test]
    fn isolated_deadline_overrun_becomes_failed_outcome() {
        let o = run_isolated("sleepy", Duration::from_millis(50), || {
            std::thread::sleep(Duration::from_secs(30));
            unreachable!("the runner must not wait for this");
        });
        assert!(o.failed());
        assert!(o.result.as_ref().unwrap_err().contains("deadline"));
        assert!(o.elapsed < Duration::from_secs(5), "must give up promptly");
    }

    #[test]
    fn isolated_success_returns_the_table() {
        let o = run_isolated("ok", DEFAULT_DEADLINE, || {
            experiments::run_one("t1").expect("known id")
        });
        assert!(!o.failed());
        assert_eq!(o.result.as_ref().unwrap().id, "T1");
        assert!(o.obs.is_none(), "unobserved runs carry no obs summary");
        assert!(!o.render().contains("[obs"));
    }

    #[test]
    fn observed_run_summarises_recording_in_render() {
        let rec = Arc::new(obs::MemRecorder::new());
        let o = run_isolated_observed("ok", DEFAULT_DEADLINE, rec.clone(), || {
            // The recorder is installed on the worker thread, so ambient
            // instrumentation inside the body lands in `rec`.
            obs::span("app.phase", "warmup", 0.0, 1.0, &[]);
            experiments::run_one("t1").expect("known id")
        });
        assert!(!o.failed());
        let summary = o.obs.expect("observed run must carry a summary");
        assert!(summary.totals.spans >= 1, "body span must be recorded");
        assert_eq!(summary.totals, rec.totals());
        let rendered = o.render();
        assert!(rendered.contains("[obs ok]"), "{rendered}");
        assert!(rendered.contains("spans"), "{rendered}");
        // The table itself is identical to the unobserved run.
        let plain = run_isolated("ok", DEFAULT_DEADLINE, || {
            experiments::run_one("t1").expect("known id")
        });
        assert_eq!(o.result.unwrap(), plain.result.unwrap());
    }

    #[test]
    fn observed_failure_still_reports_partial_recording() {
        let rec = Arc::new(obs::MemRecorder::new());
        let o = run_isolated_observed("boom", DEFAULT_DEADLINE, rec, || {
            obs::add("progress.marker", 1);
            panic!("deliberate test panic");
        });
        assert!(o.failed());
        let summary = o.obs.expect("failed observed runs keep their summary");
        assert_eq!(summary.totals.metric_points, 1);
        assert!(o.render().contains("FAILED"));
        assert!(o.render().contains("[obs boom]"));
    }
}
