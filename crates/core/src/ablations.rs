//! Ablation studies over the model's design choices.
//!
//! The paper explains its results through a handful of mechanisms: HBM2
//! bandwidth, interconnect topology, process placement, block decomposition
//! granularity and fast-math compilation. Each ablation here removes or
//! sweeps one mechanism and shows how the headline results move — evidence
//! that the reproduction's behaviour comes from the mechanism, not from a
//! fitted constant.

use a64fx_apps::{cosa, hpcg, minikab, nekbone};
use archsim::{paper_toolchain, system, InterconnectKind, SystemId};
use netsim::{build_topology, Network};
use simmpi::{Placement, PlacementPolicy, World};

use crate::costmodel::{Executor, JobLayout};
use crate::report::Table;
use crate::tracecache;

/// Sweep the A64FX's sustained memory bandwidth: what if it had DDR4
/// instead of HBM2? HPCG and Nekbone collapse; OpenSBLI barely moves
/// (it is front-end bound).
pub fn bandwidth_sweep() -> Table {
    let mut t = Table::new(
        "A1",
        "Ablation: A64FX sustained bandwidth sweep (fraction of HBM2) vs single-node results",
        &[
            "BW fraction",
            "HPCG GFLOP/s",
            "Nekbone GFLOP/s (fast math)",
            "equivalent",
        ],
    );
    let spec = system(SystemId::A64fx);
    for frac in [0.125, 0.25, 0.5, 1.0] {
        let tc_hpcg = paper_toolchain(SystemId::A64fx, "hpcg").unwrap();
        let tc_nek = paper_toolchain(SystemId::A64fx, "nekbone").unwrap();
        let calib = crate::Calibration {
            mem_scale: frac,
            ..Default::default()
        };
        let layout = JobLayout::mpi_full(1, &spec);
        let h = Executor::with_calibration(&spec, &tc_hpcg, calib).run(
            &tracecache::hpcg(hpcg::HpcgConfig::paper(), layout.ranks),
            layout,
        );
        let n = Executor::with_calibration(&spec, &tc_nek, calib).run(
            &tracecache::nekbone(nekbone::NekboneConfig::paper(), layout.ranks),
            layout,
        );
        let label = match frac {
            f if f <= 0.13 => "~DDR4 dual-socket class",
            f if f <= 0.26 => "~Cascade Lake class",
            f if f <= 0.51 => "half HBM2",
            _ => "full HBM2 (paper)",
        };
        t.push_row(vec![
            format!("{frac:.3}"),
            format!("{:.2}", h.gflops),
            format!("{:.2}", n.gflops),
            label.to_string(),
        ]);
    }
    t.note("With DDR-class bandwidth the A64FX loses its entire HPCG lead: the paper's headline is a memory-system result.");
    t
}

/// Swap the A64FX's TofuD for the other interconnects and rerun 8-node
/// HPCG: the result barely moves, supporting the paper's finding that
/// "there is no significant overhead from the network hardware" at these
/// scales.
pub fn topology_swap() -> Table {
    let mut t = Table::new(
        "A2",
        "Ablation: interconnect swap under 8-node A64FX HPCG",
        &["Interconnect", "GFLOP/s", "vs TofuD"],
    );
    let spec = system(SystemId::A64fx);
    let tc = paper_toolchain(SystemId::A64fx, "hpcg").unwrap();
    let layout = JobLayout::mpi_full(8, &spec);
    let trace = tracecache::hpcg(hpcg::HpcgConfig::paper(), layout.ranks);
    let mut baseline = 0.0;
    for kind in [
        InterconnectKind::TofuD,
        InterconnectKind::Aries,
        InterconnectKind::FdrInfiniband,
        InterconnectKind::EdrInfiniband,
        InterconnectKind::OmniPath,
    ] {
        let mut spec2 = spec.clone();
        spec2.interconnect = kind;
        let r = Executor::new(&spec2, &tc).run(&trace, layout);
        if kind == InterconnectKind::TofuD {
            baseline = r.gflops;
        }
        t.push_row(vec![
            kind.name().to_string(),
            format!("{:.2}", r.gflops),
            format!("{:+.1}%", 100.0 * (r.gflops / baseline - 1.0)),
        ]);
    }
    t.note("HPCG at 8 nodes is compute/bandwidth dominated; swapping fabrics moves the result by low single digits.");
    t
}

/// COSA block-count sweep at 16 A64FX nodes (768 ranks): decomposition
/// granularity drives the load-balance cliff the paper describes.
pub fn cosa_block_sweep() -> Table {
    let mut t = Table::new(
        "A3",
        "Ablation: COSA block count vs 16-node A64FX runtime (768 ranks)",
        &["Blocks", "Max blocks/rank", "Idle ranks", "Runtime s"],
    );
    let spec = system(SystemId::A64fx);
    let tc = paper_toolchain(SystemId::A64fx, "cosa").unwrap();
    let layout = JobLayout::mpi_full(16, &spec);
    for (gx, gy) in [(20usize, 20usize), (48, 16), (40, 20), (48, 32), (64, 48)] {
        // Keep total cells roughly constant: shrink blocks as their count
        // grows. 768 blocks = exactly one per rank.
        let blocks = gx * gy;
        let edge = ((3_690_218.0 / blocks as f64).sqrt()).round() as usize;
        let cfg = cosa::CosaConfig {
            blocks,
            block_grid: (gx, gy),
            block_edge: edge.max(4),
            harmonics: 4,
            iterations: 100,
        };
        let part = sparsela::partition::BlockPartition::new(cfg.blocks, 768);
        let trace = tracecache::cosa(cfg, layout.ranks);
        let r = Executor::new(&spec, &tc).run(&trace, layout);
        t.push_row(vec![
            cfg.blocks.to_string(),
            part.max_blocks().to_string(),
            (768usize.saturating_sub(part.active_ranks())).to_string(),
            format!("{:.2}", r.runtime_s),
        ]);
    }
    t.note("768 blocks (1 per rank) is the sweet spot; 800 leaves 32 double-loaded stragglers — the paper's exact situation.");
    t
}

/// Placement-policy ablation for the half-populated minikab run the paper's
/// Figure 1 tops out at (48 single-thread ranks on 2 A64FX nodes):
/// round-robin pinning (the paper's set-up) spreads 6 ranks over each CMG;
/// packed placement crams 12 into each of the first two CMGs and leaves the
/// other two idle, cutting the per-rank bandwidth share.
pub fn placement_policy() -> Table {
    let mut t = Table::new(
        "A4",
        "Ablation: rank placement policy for 48 single-thread minikab ranks on 2 A64FX nodes",
        &["Policy", "Runtime s", "Slowdown"],
    );
    let spec = system(SystemId::A64fx);
    let tc = paper_toolchain(SystemId::A64fx, "minikab").unwrap();
    let cfg = minikab::MinikabConfig::paper();
    let trace = tracecache::minikab(cfg, 48);
    let mut base = 0.0;
    for (name, policy) in [
        (
            "round-robin CMGs (paper pinning)",
            PlacementPolicy::RoundRobinDomain,
        ),
        ("packed (CMGs 0-1 only)", PlacementPolicy::Packed),
    ] {
        let placement = Placement::new(48, 24, 1, &spec.node, policy).unwrap();
        let net = Network::new(spec.interconnect, 2);
        let mut world = World::new(net, placement);
        // Price the trace manually with the chosen placement.
        let ex = Executor::new(&spec, &tc);
        ex.replay(&trace, &mut world);
        let r = world.elapsed_s();
        if base == 0.0 {
            base = r;
        }
        t.push_row(vec![
            name.to_string(),
            format!("{r:.2}"),
            format!("{:.2}x", r / base),
        ]);
    }
    t.note("Thread pinning matters: packing ranks into one CMG starves them of bandwidth, which is why the paper pins.");
    t
}

/// Fast-math ablation across systems for Nekbone — Table VI's compiler-flag
/// sensitivity as a standalone study.
pub fn fastmath_sweep() -> Table {
    let mut t = Table::new(
        "A5",
        "Ablation: fast-math flags on/off, Nekbone full node",
        &["System", "plain GFLOP/s", "fast-math GFLOP/s", "gain"],
    );
    for sys in [
        SystemId::A64fx,
        SystemId::Ngio,
        SystemId::Fulhame,
        SystemId::Archer,
    ] {
        let cores = system(sys).node.cores();
        let plain = crate::experiments::nekbone::nekbone_gflops(sys, 1, cores, false);
        let fast = crate::experiments::nekbone::nekbone_gflops(sys, 1, cores, true);
        t.push_row(vec![
            sys.name().to_string(),
            format!("{plain:.2}"),
            format!("{fast:.2}"),
            format!("{:+.1}%", 100.0 * (fast / plain - 1.0)),
        ]);
    }
    t.note("Only the Fujitsu compiler on the A64FX converts re-association into real throughput; Intel's fast-math hurts.");
    t
}

/// Run every ablation.
pub fn run_all() -> Vec<Table> {
    vec![
        bandwidth_sweep(),
        topology_swap(),
        cosa_block_sweep(),
        placement_policy(),
        fastmath_sweep(),
    ]
}

/// Build the topology for an ablation (re-exported convenience).
pub fn topology_for(kind: InterconnectKind, nodes: usize) -> Box<dyn netsim::Topology> {
    build_topology(kind, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_sweep_is_monotone() {
        let t = bandwidth_sweep();
        assert_eq!(t.rows.len(), 4);
        let vals: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(
            vals.windows(2).all(|w| w[0] <= w[1]),
            "HPCG must rise with bandwidth: {vals:?}"
        );
        // At DDR-class bandwidth the A64FX loses its HPCG crown (paper value
        // for optimised NGIO: 37.61).
        assert!(vals[0] < 26.0, "DDR-class A64FX HPCG: {}", vals[0]);
    }

    #[test]
    fn topology_swap_is_small_effect() {
        let t = topology_swap();
        for row in &t.rows {
            let pct: f64 = row[2].trim_end_matches('%').parse().unwrap();
            assert!(pct.abs() < 10.0, "topology effect should be small: {row:?}");
        }
    }

    #[test]
    fn cosa_sweep_shows_imbalance_cliff() {
        let t = cosa_block_sweep();
        let runtimes: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        let max_blocks: Vec<u32> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // The ~768-block row has one block per rank (perfect balance) and
        // must beat the ~800-block row (32 double-loaded stragglers).
        assert_eq!(max_blocks[1], 1, "second row should be perfectly balanced");
        assert!(max_blocks[2] >= 2, "third row should have stragglers");
        assert!(
            runtimes[1] < runtimes[2],
            "balance beats stragglers: {runtimes:?}"
        );
        // Very coarse decomposition (400 blocks on 768 ranks) wastes half
        // the machine.
        assert!(
            runtimes[0] > 1.5 * runtimes[1],
            "coarse blocks waste ranks: {runtimes:?}"
        );
    }

    #[test]
    fn placement_policy_penalises_packing() {
        let t = placement_policy();
        let rr: f64 = t.rows[0][1].parse().unwrap();
        let packed: f64 = t.rows[1][1].parse().unwrap();
        assert!(
            packed > 1.2 * rr,
            "packed placement must starve bandwidth: {rr} vs {packed}"
        );
    }

    #[test]
    fn fastmath_sweep_matches_table6_directions() {
        let t = fastmath_sweep();
        let gain = |sys: &str| -> f64 {
            let row = t.rows.iter().find(|r| r[0] == sys).unwrap();
            row[3].trim_end_matches('%').parse().unwrap()
        };
        assert!(gain("A64FX") > 50.0);
        assert!(gain("EPCC NGIO") < 0.0);
        assert!(gain("Fulhame") > 0.0 && gain("Fulhame") < 20.0);
    }
}
