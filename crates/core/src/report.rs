//! Plain-text table rendering with paper-vs-simulated comparison support.

use serde::{Deserialize, Serialize};

/// A rendered experiment result: title, column headers, string cells.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id, e.g. "T3" or "F4".
    pub id: String,
    /// Human title, e.g. "Single node HPCG performance".
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row as long as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (shape checks, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        for n in &self.notes {
            out.push_str(&format!("*{n}*\n\n"));
        }
        out
    }
}

/// Escape a string for embedding in a JSON string literal. Shared with
/// the campaign journal writer, whose records must round-trip rendered
/// tables (including newlines) through single-line JSONL.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_str_array(items: &[String], indent: &str) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    let body = items
        .iter()
        .map(|s| format!("{indent}  \"{}\"", json_escape(s)))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{body}\n{indent}]")
}

impl Table {
    /// Serialise the table to pretty-printed JSON with a stable key order.
    ///
    /// The workspace's `serde` is an offline marker stub, so this is the
    /// real serialisation seam: the `conform` crate snapshots every
    /// experiment table through it and diffs reruns against the versioned
    /// goldens. `extra` key/value pairs (already-rendered JSON values) are
    /// appended verbatim after the table fields — the conformance harness
    /// uses this to embed per-column tolerance bands in the golden files.
    pub fn to_json(&self, extra: &[(&str, String)]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"id\": \"{}\",\n", json_escape(&self.id)));
        out.push_str(&format!("  \"title\": \"{}\",\n", json_escape(&self.title)));
        out.push_str(&format!(
            "  \"headers\": {},\n",
            json_str_array(&self.headers, "  ")
        ));
        let rows = if self.rows.is_empty() {
            "[]".to_string()
        } else {
            let body = self
                .rows
                .iter()
                .map(|r| format!("    {}", json_str_array(r, "    ")))
                .collect::<Vec<_>>()
                .join(",\n");
            format!("[\n{body}\n  ]")
        };
        out.push_str(&format!("  \"rows\": {rows},\n"));
        out.push_str(&format!(
            "  \"notes\": {}",
            json_str_array(&self.notes, "  ")
        ));
        for (k, v) in extra {
            out.push_str(&format!(",\n  \"{}\": {v}", json_escape(k)));
        }
        out.push_str("\n}\n");
        out
    }
}

/// Format a (paper, simulated) pair with their ratio, e.g. `38.26 / 36.90
/// (0.96x)`.
pub fn pair(paper: f64, simulated: f64) -> String {
    if paper == 0.0 {
        return format!("- / {simulated:.2}");
    }
    format!("{paper:.2} / {simulated:.2} ({:.2}x)", simulated / paper)
}

/// Format seconds adaptively.
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T0", "demo", &["sys", "value"]);
        t.push_row(vec!["A64FX".into(), "38.26".into()]);
        t.push_row(vec!["ARCHER".into(), "15.65".into()]);
        t.note("shape holds");
        let s = t.render();
        assert!(s.contains("A64FX"));
        assert!(s.contains("note: shape holds"));
        // Both value cells end at the same column.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new("T1", "x", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("T1", "x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn pair_formats_ratio() {
        let p = pair(10.0, 12.0);
        assert!(p.contains("1.20x"), "{p}");
        assert!(pair(0.0, 5.0).starts_with("- /"));
    }

    #[test]
    fn to_json_round_trips_structure_and_escapes() {
        let mut t = Table::new("T3", "quote \" and \\ back", &["sys", "val"]);
        t.push_row(vec!["A64FX".into(), "38.26 / 36.90 (0.96x)".into()]);
        t.note("line\nbreak");
        let j = t.to_json(&[("tolerance", "{\"default\": 0.02}".to_string())]);
        assert!(j.contains("\"id\": \"T3\""));
        assert!(j.contains("quote \\\" and \\\\ back"));
        assert!(j.contains("line\\nbreak"));
        assert!(j.contains("\"tolerance\": {\"default\": 0.02}"));
        // Each structural key appears exactly once.
        for key in ["\"headers\"", "\"rows\"", "\"notes\""] {
            assert_eq!(j.matches(key).count(), 1, "{key}");
        }
    }

    #[test]
    fn secs_adapts() {
        assert_eq!(secs(1234.5), "1234");
        assert_eq!(secs(3.456), "3.46");
        assert_eq!(secs(0.069), "0.069");
    }
}
