//! Plain-text table rendering with paper-vs-simulated comparison support.

use serde::{Deserialize, Serialize};

/// A rendered experiment result: title, column headers, string cells.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id, e.g. "T3" or "F4".
    pub id: String,
    /// Human title, e.g. "Single node HPCG performance".
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row as long as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (shape checks, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        for n in &self.notes {
            out.push_str(&format!("*{n}*\n\n"));
        }
        out
    }
}

/// Format a (paper, simulated) pair with their ratio, e.g. `38.26 / 36.90
/// (0.96x)`.
pub fn pair(paper: f64, simulated: f64) -> String {
    if paper == 0.0 {
        return format!("- / {simulated:.2}");
    }
    format!("{paper:.2} / {simulated:.2} ({:.2}x)", simulated / paper)
}

/// Format seconds adaptively.
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T0", "demo", &["sys", "value"]);
        t.push_row(vec!["A64FX".into(), "38.26".into()]);
        t.push_row(vec!["ARCHER".into(), "15.65".into()]);
        t.note("shape holds");
        let s = t.render();
        assert!(s.contains("A64FX"));
        assert!(s.contains("note: shape holds"));
        // Both value cells end at the same column.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new("T1", "x", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("T1", "x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn pair_formats_ratio() {
        let p = pair(10.0, 12.0);
        assert!(p.contains("1.20x"), "{p}");
        assert!(pair(0.0, 5.0).starts_with("- /"));
    }

    #[test]
    fn secs_adapts() {
        assert_eq!(secs(1234.5), "1234");
        assert_eq!(secs(3.456), "3.46");
        assert_eq!(secs(0.069), "0.069");
    }
}
